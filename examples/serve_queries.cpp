//===- examples/serve_queries.cpp - concurrent serving demo ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving layer under live traffic: writer threads ingest (and
// occasionally remove) corpus profiles through an IndexService while
// reader threads answer top-k queries the whole time — the mutable-
// corpus workload a bare ProfileIndex cannot survive, because its
// add() invalidates every outstanding view.
//
// Every reader works off immutable snapshots: queries taken mid-ingest
// re-verify against their own snapshot at the end, demonstrating that
// a snapshot's answers never change once taken. After the churn the
// service compacts, saves one v2 cache per shard, and restarts itself
// from those files.
//
//   $ ./serve_queries
//   $ ./serve_queries --writers 4 --readers 4 --shards 16 --k 5
//   $ ./serve_queries --dir /tmp/kast_shards
//   $ ./serve_queries --v3        # also restart from mmapped flat images
//
//===----------------------------------------------------------------------===//

#include "index/IndexService.h"
#include "kernels/SpectrumKernels.h"
#include "runtime/QueryServer.h"
#include "util/StringUtil.h"
#include "util/TextTable.h"
#include "workloads/CorpusIO.h"
#include "workloads/DatasetBuilder.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <future>
#include <optional>
#include <thread>
#include <vector>

using namespace kast;

int main(int ArgC, char **ArgV) {
  size_t Writers = 2;
  size_t Readers = 2;
  size_t Shards = 8;
  size_t TopK = 3;
  bool V3Restart = false;
  std::string Dir = std::filesystem::temp_directory_path().string() +
                    "/kast_serve_queries";
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    std::optional<uint64_t> N;
    if (I + 1 < ArgC)
      N = parseUnsigned(ArgV[I + 1]);
    if (Arg == "--writers" && N) {
      Writers = static_cast<size_t>(*N), ++I;
    } else if (Arg == "--readers" && N) {
      Readers = static_cast<size_t>(*N), ++I;
    } else if (Arg == "--shards" && N) {
      Shards = static_cast<size_t>(*N), ++I;
    } else if (Arg == "--k" && N) {
      TopK = static_cast<size_t>(*N), ++I;
    } else if (Arg == "--v3") {
      V3Restart = true;
    } else if (Arg == "--dir" && I + 1 < ArgC) {
      Dir = ArgV[++I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--writers N] [--readers N] [--shards N] "
                   "[--k N] [--v3] [--dir PATH]\n",
                   ArgV[0]);
      return 2;
    }
  }

  // The paper's corpus, profiled once up front; the last copy of every
  // base is the query stream, the rest is the ingest stream.
  CorpusOptions Shape;
  LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), generateCorpus(Shape));
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  const std::string HeldOutSuffix = "." + std::to_string(Shape.CopiesPerBase);

  struct Entry {
    std::string Name;
    std::string Label;
    KernelProfile Profile;
  };
  std::vector<Entry> Ingest;
  std::vector<Entry> QueryStream;
  for (size_t I = 0; I < Data.size(); ++I) {
    Entry E{Data.string(I).name(), Data.label(I),
            Kernel.profile(Data.string(I))};
    (endsWith(E.Name, HeldOutSuffix) ? QueryStream : Ingest)
        .push_back(std::move(E));
  }
  std::printf("corpus: %zu to ingest, %zu held out as queries\n",
              Ingest.size(), QueryStream.size());

  IndexServiceOptions Options;
  Options.Shards = Shards;
  IndexService Service(Kernel.name(), Options);

  // Writers split the ingest stream; every 10th entry of a writer's
  // slice is removed again two adds later, so tombstones are part of
  // the traffic. Readers hammer snapshots until the ingest finishes,
  // each retaining its last mid-churn observation for the final
  // isolation check.
  std::atomic<size_t> WritersDone{0};
  std::atomic<size_t> QueriesServed{0};
  struct Observation {
    IndexSnapshot Snap;
    std::vector<std::vector<ServiceHit>> Results;
  };
  std::vector<Observation> Observed(Readers);
  std::vector<KernelProfile> Queries;
  for (const Entry &E : QueryStream)
    Queries.push_back(E.Profile);

  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Writers; ++W) {
    Threads.emplace_back([&, W] {
      for (size_t I = W; I < Ingest.size(); I += Writers) {
        Service.add(Ingest[I].Name, Ingest[I].Label, Ingest[I].Profile);
        if ((I / Writers) % 10 == 9)
          Service.remove(Ingest[I - 2 * Writers].Name);
      }
      WritersDone.fetch_add(1);
    });
  }
  for (size_t R = 0; R < Readers; ++R) {
    Threads.emplace_back([&, R] {
      do {
        IndexSnapshot Snap = Service.snapshot();
        Observed[R] = {Snap, Snap.queryBatch(Queries, TopK)};
        QueriesServed.fetch_add(Queries.size());
      } while (WritersDone.load() < Writers);
    });
  }
  for (std::thread &T : Threads)
    T.join();

  size_t Consistent = 0;
  for (const Observation &O : Observed)
    Consistent += O.Snap.queryBatch(Queries, TopK) == O.Results;
  std::printf("served %zu queries across %zu readers during ingest; "
              "%zu/%zu retained snapshots re-answer identically\n",
              QueriesServed.load(), Readers, Consistent, Observed.size());

  // Quiesced accuracy over the final corpus, through one snapshot.
  IndexSnapshot Final = Service.snapshot();
  std::vector<std::vector<ServiceHit>> Hits =
      Final.queryBatch(Queries, TopK);
  TextTable Table;
  Table.setHeader({"query", "label", "nearest", "cosine", "predicted", "ok"});
  size_t Correct = 0;
  for (size_t Q = 0; Q < Queries.size(); ++Q) {
    std::string Nearest, Sim;
    if (!Hits[Q].empty()) {
      Nearest = Hits[Q][0].Name;
      Sim = formatDouble(Hits[Q][0].Similarity, 3);
    }
    std::string Predicted = IndexSnapshot::majorityLabel(Hits[Q]);
    bool Ok = Predicted == QueryStream[Q].Label;
    Correct += Ok;
    Table.addRow({QueryStream[Q].Name, QueryStream[Q].Label, Nearest, Sim,
                  Predicted, Ok ? "yes" : "NO"});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\n%zu/%zu held-out traces matched their category "
              "(top-%zu majority, %zu live of %zu scanned entries "
              "across %zu shards; the gap is tombstone debt compact() "
              "reclaims)\n",
              Correct, Queries.size(), TopK, Final.size(),
              Final.entryCount(), Service.shardCount());

  // Compact (drop tombstones), persist one v2 block cache per shard,
  // and restart a second service from the files — the crash-recovery
  // path a long-lived serving process depends on.
  Service.compact();
  if (Status S = writeShardedProfileCaches(Service.toShardCaches(), Dir);
      !S) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 1;
  }
  Expected<std::vector<ProfileStoreCache>> Caches =
      loadShardedProfileCaches(Dir, Kernel);
  if (!Caches) {
    std::fprintf(stderr, "error: %s\n", Caches.message().c_str());
    return 1;
  }
  Expected<IndexService> Restored =
      IndexService::fromShardCaches(Caches.take());
  if (!Restored) {
    std::fprintf(stderr, "error: %s\n", Restored.message().c_str());
    return 1;
  }
  // Hits was computed from Final above, and a snapshot's answers never
  // change — no need to re-score the original side of the comparison.
  bool Identical = Restored->queryBatch(Queries, TopK) == Hits;
  std::printf("restart: %zu entries reloaded from %s; answers %s\n",
              Restored->size(), Dir.c_str(),
              Identical ? "identical" : "DIFFER (bug!)");

  // --v3: the same restart through the flat-image format. The save
  // writes one page-aligned "shard-NNN.kfi" image per shard; the
  // restore mmaps them, so the restored service serves straight off
  // the page cache (O(1) restart, shared pages across processes) and
  // must still answer bit-identically to the v2 path above.
  bool V3Identical = true;
  if (V3Restart) {
    const std::string V3Dir = Dir + "_v3";
    if (Status S = writeShardedProfileImages(Service.toShardCaches(), V3Dir);
        !S) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 1;
    }
    Expected<std::vector<ProfileStoreCache>> Images =
        loadShardedProfileImages(V3Dir, Kernel.name());
    if (!Images) {
      std::fprintf(stderr, "error: %s\n", Images.message().c_str());
      return 1;
    }
    size_t Mapped = 0;
    for (const ProfileStoreCache &Image : *Images)
      Mapped += Image.Store.isMapped();
    const size_t ImageCount = Images->size();
    Expected<IndexService> FromImages =
        IndexService::fromShardCaches(Images.take());
    if (!FromImages) {
      std::fprintf(stderr, "error: %s\n", FromImages.message().c_str());
      return 1;
    }
    V3Identical = FromImages->queryBatch(Queries, TopK) == Hits;
    std::printf("v3 restart: %zu entries from %zu flat images (%zu mmapped) "
                "in %s; answers %s\n",
                FromImages->size(), ImageCount, Mapped, V3Dir.c_str(),
                V3Identical ? "identical" : "DIFFER (bug!)");
  }

  // The async batched runtime over the same service: an open-loop
  // client pipelines the query stream through QueryServer's bounded
  // queue while a churn writer mixes adds and removes into the same
  // corpus — the three-way add/remove/query workload a serving tier
  // actually faces. The admission batcher drains the queue into
  // MaxBatch-sized dispatches, each executed against one snapshot;
  // the server's lock-free histograms provide the latency ladder.
  QueryServerOptions ServerOptions;
  ServerOptions.MaxBatch = 16;
  ServerOptions.QueueCapacity = 256;
  ServerOptions.ExecThreads = 1;
  QueryServer Server(Service, ServerOptions);

  std::atomic<bool> ChurnStop{false};
  std::atomic<size_t> ChurnOps{0};
  std::thread Churn([&] {
    constexpr size_t Window = 64;
    size_t I = 0;
    while (!ChurnStop.load(std::memory_order_relaxed)) {
      const Entry &E = Ingest[I % Ingest.size()];
      Service.add(E.Name + "~rt" + std::to_string(I), E.Label, E.Profile);
      if (I >= Window)
        Service.remove(Ingest[(I - Window) % Ingest.size()].Name + "~rt" +
                       std::to_string(I - Window));
      ChurnOps.fetch_add(2, std::memory_order_relaxed);
      ++I;
      std::this_thread::yield();
    }
  });

  constexpr size_t Rounds = 50;
  size_t Served = 0;
  std::vector<std::future<QueryResponse>> Futures;
  for (size_t Round = 0; Round < Rounds; ++Round) {
    Futures.clear();
    for (const KernelProfile &Q : Queries)
      Futures.push_back(Server.submitBorrowed(Q, TopK));
    for (std::future<QueryResponse> &F : Futures)
      Served += F.get().Status == ServeStatus::Ok;
  }
  ChurnStop.store(true, std::memory_order_relaxed);
  Churn.join();

  // Writer stopped and queue drained: one more window through the
  // server must bit-match the synchronous path — the runtime promises
  // asynchrony changes scheduling, never answers.
  Futures.clear();
  for (const KernelProfile &Q : Queries)
    Futures.push_back(Server.submitBorrowed(Q, TopK));
  std::vector<std::vector<ServiceHit>> Async;
  for (std::future<QueryResponse> &F : Futures)
    Async.push_back(F.get().Hits);
  bool AsyncIdentical = Async == Service.queryBatch(Queries, TopK);
  Server.shutdown();

  const ServerStats::Snapshot Stats = Server.stats().snapshot();
  const size_t Expected = (Rounds + 1) * Queries.size();
  bool LedgerOk = Stats.Submitted == Expected &&
                  Stats.Completed == Expected && Stats.Rejected == 0;
  std::printf("\nasync runtime: served %zu queries in %llu batches "
              "(mean %.1f/batch) against %zu concurrent writer ops; "
              "answers %s\n",
              Served + Queries.size(),
              static_cast<unsigned long long>(Stats.Batches),
              Stats.BatchSize.Mean, ChurnOps.load(),
              AsyncIdentical ? "bit-match the synchronous path"
                             : "DIFFER from synchronous (bug!)");
  TextTable Latency;
  Latency.setHeader({"stage", "p50", "p95", "p99", "max"});
  const auto Row = [&](const char *Stage, const HistogramSummary &H) {
    Latency.addRow({Stage, ServerStats::formatNanos(H.P50),
                    ServerStats::formatNanos(H.P95),
                    ServerStats::formatNanos(H.P99),
                    ServerStats::formatNanos(H.Max)});
  };
  Row("queue wait", Stats.QueueWaitNs);
  Row("execute", Stats.ExecuteNs);
  Row("total", Stats.TotalNs);
  std::printf("%s", Latency.render().c_str());

  // All headline claims gate the exit code, so a CI smoke run of the
  // demo fails if snapshot isolation, the restart, or the async
  // runtime's exactness contract breaks.
  return Identical && V3Identical && Consistent == Observed.size() &&
                 AsyncIdentical && LedgerOk &&
                 Served == Rounds * Queries.size()
             ? 0
             : 1;
}
