//===- examples/trace_explorer.cpp - inspect one trace's conversion --------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Shows every stage of the §3.1 conversion for one access pattern
// file: the parsed events, the raw tree, the compressed tree (with
// per-rule merge counts), and the final weighted string.
//
//   $ ./trace_explorer                     # built-in demo trace
//   $ ./trace_explorer mytrace.txt         # a trace file
//   $ ./trace_explorer --strace app.log    # an strace(1) recording
//   $ ./trace_explorer --no-bytes t.txt    # byte-ignoring representation
//   $ ./trace_explorer --passes 1 t.txt    # single compression pass
//   $ ./trace_explorer --dot t.txt         # Graphviz output
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/StringSerializer.h"
#include "trace/StraceAdapter.h"
#include "trace/TraceParser.h"
#include "trace/TraceWriter.h"
#include "tree/TreeDump.h"
#include "util/StringUtil.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace kast;

namespace {

Trace demoTrace() {
  // The shape of the paper's Figure 1 example: interleaved handles,
  // loops, and a seek/write tail.
  Trace T("demo");
  T.append(OpKind::Open, 3);
  T.append(OpKind::Read, 3, 2);
  T.append(OpKind::Read, 3, 4);
  T.append(OpKind::Read, 3, 2);
  T.append(OpKind::Read, 3, 4);
  T.append(OpKind::Open, 4);
  T.append(OpKind::Write, 4, 1024);
  T.append(OpKind::Write, 4, 1024);
  T.append(OpKind::Write, 4, 1024);
  T.append(OpKind::Lseek, 3, 0);
  T.append(OpKind::Write, 3, 512);
  T.append(OpKind::Lseek, 3, 0);
  T.append(OpKind::Write, 3, 512);
  T.append(OpKind::Close, 4);
  T.append(OpKind::Close, 3);
  return T;
}

void usage(const char *Program) {
  std::fprintf(stderr,
               "usage: %s [--no-bytes] [--passes N] [--dot] [--strace] "
               "[trace-file]\n",
               Program);
  std::exit(2);
}

} // namespace

int main(int ArgC, char **ArgV) {
  PipelineOptions Options;
  bool EmitDot = false;
  bool FromStrace = false;
  std::string Path;

  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    if (Arg == "--no-bytes") {
      Options.Builder.IgnoreBytes = true;
    } else if (Arg == "--dot") {
      EmitDot = true;
    } else if (Arg == "--strace") {
      FromStrace = true;
    } else if (Arg == "--passes") {
      if (I + 1 >= ArgC)
        usage(ArgV[0]);
      std::optional<uint64_t> N = parseUnsigned(ArgV[++I]);
      if (!N)
        usage(ArgV[0]);
      Options.Compressor.Passes = static_cast<size_t>(*N);
    } else if (!Arg.empty() && Arg[0] == '-') {
      usage(ArgV[0]);
    } else {
      Path = Arg;
    }
  }

  Trace T;
  if (Path.empty()) {
    T = demoTrace();
    std::printf("(no file given; using the built-in demo trace)\n");
  } else if (FromStrace) {
    StraceStats Stats;
    Expected<Trace> Parsed = parseStraceFile(Path, &Stats);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s\n", Parsed.message().c_str());
      return 1;
    }
    T = Parsed.take();
    std::printf("(strace log: %zu lines, %zu I/O events, %zu skipped, "
                "%zu failed calls)\n",
                Stats.LinesTotal, Stats.EventsEmitted, Stats.LinesSkipped,
                Stats.CallsFailed);
  } else {
    Expected<Trace> Parsed = parseTraceFile(Path);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s\n", Parsed.message().c_str());
      return 1;
    }
    T = Parsed.take();
  }

  std::printf("--- trace '%s' (%zu events) ---\n%s\n", T.name().c_str(),
              T.size(), formatTrace(T).c_str());

  PatternTree Raw = buildTree(T, Options.Builder);
  std::printf("--- tree before compression (%zu leaves) ---\n%s\n",
              Raw.numLeaves(), dumpTreeAscii(Raw).c_str());

  Pipeline P(Options);
  PipelineResult Result = P.convertDetailed(T);
  std::printf("--- tree after compression (%zu leaves, %.0f%% reduction) "
              "---\n%s\n",
              Result.Stats.LeavesAfter, 100.0 * Result.Stats.ratio(),
              dumpTreeAscii(Result.Tree).c_str());
  std::printf("merges by rule: r1=%zu r2=%zu r3=%zu r4=%zu\n\n",
              Result.Stats.MergesByRule[0], Result.Stats.MergesByRule[1],
              Result.Stats.MergesByRule[2], Result.Stats.MergesByRule[3]);

  std::printf("--- weighted string (total weight %llu) ---\n%s\n",
              static_cast<unsigned long long>(
                  Result.String.totalWeight()),
              formatWeightedString(Result.String).c_str());

  if (EmitDot)
    std::printf("\n--- Graphviz ---\n%s", dumpTreeDot(Result.Tree).c_str());
  return 0;
}
