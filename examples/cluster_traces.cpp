//===- examples/cluster_traces.cpp - cluster a corpus of traces ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's full workflow as a command-line tool: take a corpus of
// access pattern files (or the built-in synthetic corpus), compute the
// Kast similarity matrix, and report the hierarchical clustering.
//
//   $ ./cluster_traces                          # synthetic corpus
//   $ ./cluster_traces --cut 4 --clusters 3
//   $ ./cluster_traces --no-bytes
//   $ ./cluster_traces a.txt b.txt c.txt ...    # your own traces
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/Pipeline.h"
#include "ml/ClusterMetrics.h"
#include "ml/HierarchicalClustering.h"
#include "trace/TraceParser.h"
#include "util/StringUtil.h"
#include "util/TextTable.h"
#include "workloads/DatasetBuilder.h"

#include <cstdio>
#include <cstdlib>

using namespace kast;

namespace {

void usage(const char *Program) {
  std::fprintf(stderr,
               "usage: %s [--cut N] [--clusters K] [--no-bytes] "
               "[trace-file...]\n",
               Program);
  std::exit(2);
}

} // namespace

int main(int ArgC, char **ArgV) {
  uint64_t CutWeight = 2;
  size_t NumClusters = 3;
  bool IgnoreBytes = false;
  std::vector<std::string> Paths;

  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    if (Arg == "--cut" && I + 1 < ArgC) {
      std::optional<uint64_t> N = parseUnsigned(ArgV[++I]);
      if (!N)
        usage(ArgV[0]);
      CutWeight = *N;
    } else if (Arg == "--clusters" && I + 1 < ArgC) {
      std::optional<uint64_t> N = parseUnsigned(ArgV[++I]);
      if (!N || *N == 0)
        usage(ArgV[0]);
      NumClusters = static_cast<size_t>(*N);
    } else if (Arg == "--no-bytes") {
      IgnoreBytes = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      usage(ArgV[0]);
    } else {
      Paths.push_back(Arg);
    }
  }

  Pipeline P = IgnoreBytes ? Pipeline::withoutBytes() : Pipeline::withBytes();
  LabeledDataset Data;
  if (Paths.empty()) {
    std::printf("(no files given; clustering the built-in 110-example "
                "synthetic corpus)\n");
    Data = convertCorpus(P, generateCorpus());
  } else {
    for (const std::string &Path : Paths) {
      Expected<Trace> T = parseTraceFile(Path);
      if (!T) {
        std::fprintf(stderr, "error: %s\n", T.message().c_str());
        return 1;
      }
      // Label by file; with user traces the "category" is unknown.
      Data.add(P.convert(*T), T->name());
    }
  }
  if (Data.size() < 2) {
    std::fprintf(stderr, "error: need at least two traces\n");
    return 1;
  }
  NumClusters = std::min(NumClusters, Data.size());

  KastSpectrumKernel Kernel({CutWeight});
  KernelMatrixOptions Options;
  Options.RepairPsd = true;
  Matrix K = computeKernelMatrix(Kernel, Data.strings(), Options);

  Dendrogram D = clusterHierarchical(similarityToDistance(K));
  std::vector<size_t> Flat = D.cutToClusters(NumClusters);

  std::printf("\nKast Spectrum Kernel, cut weight %llu, %zu clusters:\n",
              static_cast<unsigned long long>(CutWeight), NumClusters);
  TextTable Table;
  Table.setHeader({"cluster", "members"});
  for (size_t C = 0; C < NumClusters; ++C) {
    std::string Members;
    for (size_t I = 0; I < Data.size(); ++I)
      if (Flat[I] == C) {
        if (!Members.empty())
          Members += " ";
        Members += Data.string(I).name();
      }
    if (!Members.empty())
      Table.addRow({std::to_string(C), Members});
  }
  std::printf("%s", Table.render().c_str());

  if (Paths.empty()) {
    // Ground truth known: report quality.
    std::printf("\npurity %.3f, ARI %.3f, misplaced (vs {A},{B},{C,D}): "
                "%zu\n",
                purity(Flat, Data.labels()),
                adjustedRandIndex(Flat, Data.labels()),
                misplacedCount(Flat, Data.labels(),
                               {{"A"}, {"B"}, {"C", "D"}}));
  }
  return 0;
}
