//===- examples/routed_restart_canary.cpp - rebuild-free restart gate ------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// CI gate for the arena-backed routing restart path. Fits a routed
// service over the paper's corpus, persists it as flat images whose
// routing arenas are first-class sections, restores from those images,
// and exits non-zero unless
//
//   (a) the restore performed zero k-means fits and zero posting-list
//       rebuilds — measured through the library's probe counters, so a
//       regression that quietly reintroduces a rebuild on the restart
//       path fails the job rather than just slowing it down, and
//   (b) the restored service, routed exhaustively (pure-defaults
//       pruning, every centroid probed), answers with recall@5 of
//       exactly 1.0 against its own exact scan — the bit-identity
//       contract of the candidate-generation tier, on the mapped
//       arenas this time.
//
//   $ ./routed_restart_canary
//   $ ./routed_restart_canary --shards 4 --dir /tmp/kast_canary
//
//===----------------------------------------------------------------------===//

#include "index/ClusterRouter.h"
#include "index/IndexService.h"
#include "index/InvertedIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/StringUtil.h"
#include "workloads/CorpusIO.h"
#include "workloads/Generators.h"

#include <cstdio>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

using namespace kast;

int main(int ArgC, char **ArgV) {
  size_t Shards = 4;
  std::string Dir = std::filesystem::temp_directory_path().string() +
                    "/kast_routed_restart_canary";
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    std::optional<uint64_t> N;
    if (I + 1 < ArgC)
      N = parseUnsigned(ArgV[I + 1]);
    if (Arg == "--shards" && N) {
      Shards = static_cast<size_t>(*N), ++I;
    } else if (Arg == "--dir" && I + 1 < ArgC) {
      Dir = ArgV[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--shards N] [--dir PATH]\n", ArgV[0]);
      return 2;
    }
  }

  LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), generateCorpus(CorpusOptions()));
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);

  IndexServiceOptions SvcOpts;
  SvcOpts.Shards = Shards;
  IndexService Service(Kernel.name(), SvcOpts);
  for (size_t I = 0; I < Data.size(); ++I)
    Service.add(Data.string(I).name(), Data.label(I),
                Kernel.profile(Data.string(I)));

  // Pure-defaults pruning: exhaustive mode, where the routed path is
  // bit-identical to the exact scan by contract.
  RoutingOptions Route;
  Route.Cluster.NumCentroids = 8;
  Service.rebuildRouting(Route);

  std::filesystem::create_directories(Dir);
  if (Status S = writeShardedProfileImages(Service.toShardCaches(), Dir); !S) {
    std::fprintf(stderr, "save failed: %s\n", S.message().c_str());
    return 1;
  }

  // The restart under test: open the images, adopt the mapped arenas.
  const uint64_t Fits = kmeansFitCount();
  const uint64_t Rebuilds = postingRebuildCount();
  Expected<std::vector<ProfileStoreCache>> Caches =
      loadShardedProfileImages(Dir, Kernel.name());
  if (!Caches) {
    std::fprintf(stderr, "load failed: %s\n", Caches.message().c_str());
    return 1;
  }
  Expected<IndexService> Restored =
      IndexService::fromShardCaches(Caches.take(), SvcOpts);
  if (!Restored) {
    std::fprintf(stderr, "restore failed: %s\n", Restored.message().c_str());
    return 1;
  }
  const uint64_t FitDelta = kmeansFitCount() - Fits;
  const uint64_t RebuildDelta = postingRebuildCount() - Rebuilds;
  const size_t Routed = Restored->snapshot().routedShardCount();

  if (Routed != Shards) {
    std::fprintf(stderr, "only %zu of %zu shards restored routed\n", Routed,
                 Shards);
    return 1;
  }
  if (FitDelta != 0 || RebuildDelta != 0) {
    std::fprintf(stderr,
                 "restore was not rebuild-free: %llu k-means fits, %llu "
                 "posting rebuilds\n",
                 static_cast<unsigned long long>(FitDelta),
                 static_cast<unsigned long long>(RebuildDelta));
    return 1;
  }

  // Exhaustive recall@5 on the restored service, against its own exact
  // scan: exactly 1.0 or the mapped arenas are wrong.
  size_t Queries = 0, Misses = 0;
  for (size_t I = 0; I < Data.size(); I += 7) {
    KernelProfile Q = Kernel.profile(Data.string(I));
    std::set<std::string> Exact;
    for (const ServiceHit &H : Restored->query(Q, 5, true, 1))
      Exact.insert(H.Name);
    for (const ServiceHit &H : Restored->queryApprox(Q, 5, true, 0, 1))
      Misses += Exact.erase(H.Name) == 0;
    Misses += Exact.size();
    ++Queries;
  }
  if (Misses != 0) {
    std::fprintf(stderr,
                 "exhaustive routed recall@5 < 1.0: %zu mismatches over %zu "
                 "queries\n",
                 Misses, Queries);
    return 1;
  }

  std::printf("routed_restart_canary: shards=%zu entries=%zu fits=0 "
              "posting_rebuilds=0 recall5_exhaustive=1.0 (%zu queries)\n",
              Shards, Data.size(), Queries);
  return 0;
}
