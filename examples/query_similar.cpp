//===- examples/query_similar.cpp - retrieval over a profile index ---------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's fingerprint claim served as retrieval: index the corpus
// once as cached kernel profiles, then answer top-k "which programs
// does this trace behave like?" queries by sparse dot products — no
// Gram matrix, no re-profiling of the corpus.
//
// One mutated copy of every base example is held out as the query set;
// the rest is indexed. With --cache the index round-trips through the
// versioned binary profile cache (core/ProfileSerializer), so a second
// run skips profiling entirely.
//
//   $ ./query_similar
//   $ ./query_similar --cache /tmp/kast.kpc --k 5
//   $ ./query_similar --no-bytes --cut 8
//
//===----------------------------------------------------------------------===//

#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/StringUtil.h"
#include "util/TextTable.h"
#include "workloads/CorpusIO.h"
#include "workloads/DatasetBuilder.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>

using namespace kast;

int main(int ArgC, char **ArgV) {
  uint64_t CutWeight = 2;
  size_t TopK = 3;
  bool IgnoreBytes = false;
  std::string CachePath;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    if (Arg == "--no-bytes") {
      IgnoreBytes = true;
    } else if (Arg == "--cut" && I + 1 < ArgC) {
      if (std::optional<uint64_t> N = parseUnsigned(ArgV[++I]))
        CutWeight = *N;
    } else if (Arg == "--k" && I + 1 < ArgC) {
      if (std::optional<uint64_t> N = parseUnsigned(ArgV[++I]))
        TopK = static_cast<size_t>(*N);
    } else if (Arg == "--cache" && I + 1 < ArgC) {
      CachePath = ArgV[++I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cache FILE] [--k N] [--no-bytes] [--cut N]\n",
                   ArgV[0]);
      return 2;
    }
  }

  // The corpus: 110 examples, 5 per base ("<label><base>.<copy>", copy
  // 0 is the base). The last copy of every base is the query set.
  CorpusOptions Shape;
  Pipeline P = IgnoreBytes ? Pipeline::withoutBytes() : Pipeline::withBytes();
  LabeledDataset Data = convertCorpus(P, generateCorpus(Shape));
  const std::string HeldOutSuffix =
      "." + std::to_string(Shape.CopiesPerBase);

  std::vector<WeightedString> IndexedStrings, QueryStrings;
  std::vector<std::string> IndexedLabels, QueryLabels;
  for (size_t I = 0; I < Data.size(); ++I) {
    bool HeldOut = endsWith(Data.string(I).name(), HeldOutSuffix);
    (HeldOut ? QueryStrings : IndexedStrings).push_back(Data.string(I));
    (HeldOut ? QueryLabels : IndexedLabels).push_back(Data.label(I));
  }

  // The index needs an explicit per-string embedding, so it runs on a
  // ProfiledStringKernel (the paper's weighted blended spectrum); the
  // pair-dependent Kast kernel has no such embedding.
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, CutWeight);

  // Cache identity covers the whole profile provenance: kernel *and*
  // pipeline representation. A cache built with byte info kept must
  // not silently serve a --no-bytes run (same kernel name, different
  // strings, skewed similarities).
  const std::string CacheTag =
      Kernel.name() + (IgnoreBytes ? "|no-bytes" : "|bytes");

  ProfileIndex Index(CacheTag);
  bool FromCache = false;
  if (!CachePath.empty() && std::filesystem::exists(CachePath)) {
    Expected<ProfileIndex> Loaded = ProfileIndex::load(CachePath);
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Loaded.message().c_str());
      return 1;
    }
    if (Loaded->kernelName() != CacheTag) {
      std::fprintf(stderr,
                   "error: cache '%s' was built as '%s', this run needs "
                   "'%s'\n",
                   CachePath.c_str(), Loaded->kernelName().c_str(),
                   CacheTag.c_str());
      return 1;
    }
    Index = Loaded.take();
    FromCache = true;
  } else {
    for (size_t I = 0; I < IndexedStrings.size(); ++I)
      Index.add(IndexedStrings[I].name(), IndexedLabels[I],
                Kernel.profile(IndexedStrings[I]));
    if (!CachePath.empty()) {
      if (Status S = Index.save(CachePath); !S) {
        std::fprintf(stderr, "error: %s\n", S.message().c_str());
        return 1;
      }
    }
  }
  std::printf("index: %zu profiles (%s), kernel %s\n", Index.size(),
              FromCache ? ("cache hit on " + CachePath).c_str()
                        : "built from corpus",
              Index.kernelName().c_str());
  // The profiles live in one structure-of-arrays arena (three flat
  // arrays + CSR offsets), which is also exactly what the v2 cache
  // file stores as contiguous blobs.
  const ProfileStore &Store = Index.store();
  std::printf("arena: %zu features in %zu + %zu + %zu byte blobs\n",
              Store.entryCount(), Store.hashes().size() * sizeof(uint64_t),
              Store.values().size() * sizeof(double),
              Store.offsets().size() * sizeof(uint64_t));

  std::vector<KernelProfile> Queries;
  Queries.reserve(QueryStrings.size());
  for (const WeightedString &Q : QueryStrings)
    Queries.push_back(Kernel.profile(Q));
  std::vector<std::vector<Neighbor>> Hits =
      Index.queryBatch(Queries, TopK);

  TextTable Table;
  Table.setHeader({"query", "label", "nearest", "cosine", "predicted",
                   "ok"});
  size_t Correct = 0;
  for (size_t Q = 0; Q < Queries.size(); ++Q) {
    std::string Nearest, Sim;
    if (!Hits[Q].empty()) {
      Nearest = Index.name(Hits[Q][0].Index);
      Sim = formatDouble(Hits[Q][0].Similarity, 3);
    }
    std::string Predicted = Index.majorityLabel(Hits[Q]);
    bool Ok = Predicted == QueryLabels[Q];
    Correct += Ok;
    Table.addRow({QueryStrings[Q].name(), QueryLabels[Q], Nearest, Sim,
                  Predicted, Ok ? "yes" : "NO"});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\n%zu/%zu held-out traces matched their category via "
              "top-%zu majority vote\n",
              Correct, Queries.size(), TopK);
  return 0;
}
