//===- examples/query_similar.cpp - retrieval over a profile index ---------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's fingerprint claim served as retrieval: index the corpus
// once as cached kernel profiles, then answer top-k "which programs
// does this trace behave like?" queries by sparse dot products — no
// Gram matrix, no re-profiling of the corpus.
//
// One mutated copy of every base example is held out as the query set;
// the rest is indexed. With --cache the index round-trips through the
// versioned binary profile cache (core/ProfileSerializer), so a second
// run skips profiling entirely.
//
//   $ ./query_similar
//   $ ./query_similar --cache /tmp/kast.kpc --k 5
//   $ ./query_similar --no-bytes --cut 8
//   $ ./query_similar --approx --nprobe 2
//
// With --approx the queries go through the candidate-generation tier
// (cluster router + df-pruned inverted index, exact re-rank) instead
// of the exhaustive scan, and every row reports its recall against
// the exact answer; --nprobe bounds how many centroids are probed.
//
//===----------------------------------------------------------------------===//

#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/StringUtil.h"
#include "util/TextTable.h"
#include "workloads/CorpusIO.h"
#include "workloads/DatasetBuilder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>

using namespace kast;

int main(int ArgC, char **ArgV) {
  uint64_t CutWeight = 2;
  size_t TopK = 3;
  bool IgnoreBytes = false;
  bool Approx = false;
  size_t NProbe = 0;
  std::string CachePath;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    if (Arg == "--no-bytes") {
      IgnoreBytes = true;
    } else if (Arg == "--approx") {
      Approx = true;
    } else if (Arg == "--nprobe" && I + 1 < ArgC) {
      if (std::optional<uint64_t> N = parseUnsigned(ArgV[++I]))
        NProbe = static_cast<size_t>(*N);
      Approx = true;
    } else if (Arg == "--cut" && I + 1 < ArgC) {
      if (std::optional<uint64_t> N = parseUnsigned(ArgV[++I]))
        CutWeight = *N;
    } else if (Arg == "--k" && I + 1 < ArgC) {
      if (std::optional<uint64_t> N = parseUnsigned(ArgV[++I]))
        TopK = static_cast<size_t>(*N);
    } else if (Arg == "--cache" && I + 1 < ArgC) {
      CachePath = ArgV[++I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cache FILE] [--k N] [--no-bytes] [--cut N] "
                   "[--approx] [--nprobe N]\n",
                   ArgV[0]);
      return 2;
    }
  }

  // The corpus: 110 examples, 5 per base ("<label><base>.<copy>", copy
  // 0 is the base). The last copy of every base is the query set.
  CorpusOptions Shape;
  Pipeline P = IgnoreBytes ? Pipeline::withoutBytes() : Pipeline::withBytes();
  LabeledDataset Data = convertCorpus(P, generateCorpus(Shape));
  const std::string HeldOutSuffix =
      "." + std::to_string(Shape.CopiesPerBase);

  std::vector<WeightedString> IndexedStrings, QueryStrings;
  std::vector<std::string> IndexedLabels, QueryLabels;
  for (size_t I = 0; I < Data.size(); ++I) {
    bool HeldOut = endsWith(Data.string(I).name(), HeldOutSuffix);
    (HeldOut ? QueryStrings : IndexedStrings).push_back(Data.string(I));
    (HeldOut ? QueryLabels : IndexedLabels).push_back(Data.label(I));
  }

  // The index needs an explicit per-string embedding, so it runs on a
  // ProfiledStringKernel (the paper's weighted blended spectrum); the
  // pair-dependent Kast kernel has no such embedding.
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, CutWeight);

  // Cache identity covers the whole profile provenance: kernel *and*
  // pipeline representation. A cache built with byte info kept must
  // not silently serve a --no-bytes run (same kernel name, different
  // strings, skewed similarities).
  const std::string CacheTag =
      Kernel.name() + (IgnoreBytes ? "|no-bytes" : "|bytes");

  ProfileIndex Index(CacheTag);
  bool FromCache = false;
  if (!CachePath.empty() && std::filesystem::exists(CachePath)) {
    Expected<ProfileIndex> Loaded = ProfileIndex::load(CachePath);
    if (!Loaded) {
      std::fprintf(stderr, "error: %s\n", Loaded.message().c_str());
      return 1;
    }
    if (Loaded->kernelName() != CacheTag) {
      std::fprintf(stderr,
                   "error: cache '%s' was built as '%s', this run needs "
                   "'%s'\n",
                   CachePath.c_str(), Loaded->kernelName().c_str(),
                   CacheTag.c_str());
      return 1;
    }
    Index = Loaded.take();
    FromCache = true;
  } else {
    for (size_t I = 0; I < IndexedStrings.size(); ++I)
      Index.add(IndexedStrings[I].name(), IndexedLabels[I],
                Kernel.profile(IndexedStrings[I]));
    if (!CachePath.empty()) {
      if (Status S = Index.save(CachePath); !S) {
        std::fprintf(stderr, "error: %s\n", S.message().c_str());
        return 1;
      }
    }
  }
  std::printf("index: %zu profiles (%s), kernel %s\n", Index.size(),
              FromCache ? ("cache hit on " + CachePath).c_str()
                        : "built from corpus",
              Index.kernelName().c_str());
  // The profiles live in one structure-of-arrays arena (three flat
  // arrays + CSR offsets), which is also exactly what the v2 cache
  // file stores as contiguous blobs.
  const ProfileStore &Store = Index.store();
  std::printf("arena: %zu features in %zu + %zu + %zu byte blobs\n",
              Store.entryCount(), Store.hashes().size() * sizeof(uint64_t),
              Store.values().size() * sizeof(double),
              Store.offsets().size() * sizeof(uint64_t));

  // The approximate path needs the routing tier; modest pruning so the
  // two paths can actually diverge on this small corpus.
  if (Approx) {
    RoutingOptions Routing;
    Routing.MaxDocFrequency = 0.5;
    Routing.RerankBudget = std::max<size_t>(4 * TopK, 16);
    Routing.DefaultNProbe = NProbe;
    Index.buildRouting(Routing);
    const std::string ProbeDesc =
        NProbe == 0
            ? "all"
            : std::to_string(std::min(NProbe, Index.router()->numCentroids()));
    std::printf("routing: %zu centroids, probing %s per query\n",
                Index.router()->numCentroids(), ProbeDesc.c_str());
  }

  std::vector<KernelProfile> Queries;
  Queries.reserve(QueryStrings.size());
  for (const WeightedString &Q : QueryStrings)
    Queries.push_back(Kernel.profile(Q));
  std::vector<std::vector<Neighbor>> Exact =
      Index.queryBatch(Queries, TopK);
  std::vector<std::vector<Neighbor>> Hits =
      Approx ? Index.queryBatchApprox(Queries, TopK, true, NProbe) : Exact;

  TextTable Table;
  std::vector<std::string> Header = {"query",  "label",     "nearest",
                                     "cosine", "predicted", "ok"};
  if (Approx)
    Header.push_back("recall");
  Table.setHeader(Header);
  size_t Correct = 0;
  double RecallSum = 0.0;
  for (size_t Q = 0; Q < Queries.size(); ++Q) {
    std::string Nearest, Sim;
    if (!Hits[Q].empty()) {
      Nearest = Index.name(Hits[Q][0].Index);
      Sim = formatDouble(Hits[Q][0].Similarity, 3);
    }
    std::string Predicted = Index.majorityLabel(Hits[Q]);
    bool Ok = Predicted == QueryLabels[Q];
    Correct += Ok;
    std::vector<std::string> Row = {QueryStrings[Q].name(), QueryLabels[Q],
                                    Nearest, Sim, Predicted,
                                    Ok ? "yes" : "NO"};
    if (Approx) {
      size_t Overlap = 0;
      for (const Neighbor &A : Hits[Q])
        for (const Neighbor &E : Exact[Q])
          Overlap += A.Index == E.Index;
      double Recall = Exact[Q].empty()
                          ? 1.0
                          : static_cast<double>(Overlap) /
                                static_cast<double>(Exact[Q].size());
      RecallSum += Recall;
      Row.push_back(formatDouble(Recall, 2));
    }
    Table.addRow(Row);
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\n%zu/%zu held-out traces matched their category via "
              "top-%zu majority vote\n",
              Correct, Queries.size(), TopK);
  if (Approx && !Queries.empty())
    std::printf("mean recall@%zu vs exact scan: %s\n", TopK,
                formatDouble(RecallSum / static_cast<double>(Queries.size()),
                             3)
                    .c_str());
  return 0;
}
