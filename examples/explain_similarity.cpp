//===- examples/explain_similarity.cpp - why are two traces similar? -------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Shows the explicit feature embedding behind one Kast kernel value:
// the shared substrings, their per-side weights, and each one's share
// of the similarity — the §3.2 worked example, applied to real
// (generated or user-supplied) traces.
//
//   $ ./explain_similarity                    # two corpus traces
//   $ ./explain_similarity a.txt b.txt        # your own traces
//   $ ./explain_similarity --cut 8 a.txt b.txt
//
//===----------------------------------------------------------------------===//

#include "core/Explain.h"
#include "core/Pipeline.h"
#include "core/StringSerializer.h"
#include "trace/TraceParser.h"
#include "util/StringUtil.h"
#include "workloads/DatasetBuilder.h"

#include <cstdio>
#include <cstdlib>

using namespace kast;

int main(int ArgC, char **ArgV) {
  uint64_t CutWeight = 2;
  std::vector<std::string> Paths;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    if (Arg == "--cut" && I + 1 < ArgC) {
      std::optional<uint64_t> N = parseUnsigned(ArgV[++I]);
      if (!N) {
        std::fprintf(stderr, "usage: %s [--cut N] [a.txt b.txt]\n",
                     ArgV[0]);
        return 2;
      }
      CutWeight = *N;
    } else {
      Paths.push_back(Arg);
    }
  }

  Pipeline P;
  WeightedString A, B;
  if (Paths.size() >= 2) {
    Expected<Trace> TA = parseTraceFile(Paths[0]);
    Expected<Trace> TB = parseTraceFile(Paths[1]);
    if (!TA || !TB) {
      std::fprintf(stderr, "error: %s\n",
                   (!TA ? TA.message() : TB.message()).c_str());
      return 1;
    }
    A = P.convert(*TA);
    B = P.convert(*TB);
  } else {
    std::printf("(no files given; explaining two category-A corpus "
                "examples, a base and its mutant)\n");
    std::vector<LabeledTrace> Corpus = generateCorpus();
    A = P.convert(Corpus[0].T); // A0.0
    B = P.convert(Corpus[1].T); // A0.1, a mutated copy of A0.0
  }

  std::printf("\nA = %s\n  %s\nB = %s\n  %s\n\n", A.name().c_str(),
              formatWeightedString(A).c_str(), B.name().c_str(),
              formatWeightedString(B).c_str());

  KastSpectrumKernel Kernel({CutWeight});
  KernelExplanation Explanation = explainKernel(Kernel, A, B);
  std::printf("Kast Spectrum Kernel, cut weight %llu:\n%s",
              static_cast<unsigned long long>(CutWeight),
              formatExplanation(Explanation, /*MaxRows=*/15).c_str());
  return 0;
}
