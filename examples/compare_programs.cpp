//===- examples/compare_programs.cpp - code similarity demo ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's stated future work, runnable today: Mini programs are
// parsed to ASTs, encoded as the same weighted strings as I/O traces
// (identifier abstraction plays the role byte-ignoring plays for
// traces), and compared with the Kast Spectrum Kernel — a miniature
// clone detector.
//
//   $ ./compare_programs
//
//===----------------------------------------------------------------------===//

#include "ast/AstEncoder.h"
#include "ast/Parser.h"
#include "core/KastKernel.h"
#include "core/StringSerializer.h"
#include "util/TextTable.h"

#include <cstdio>
#include <vector>

using namespace kast;

namespace {

struct Program {
  const char *Name;
  const char *Source;
};

const Program Programs[] = {
    {"gcd-iter", R"(
fn gcd(a, b) {
  while (b != 0) { let t = b; b = a % b; a = t; }
  return a;
})"},
    {"gcd-renamed", R"(
fn greatest(x, y) {
  while (y != 0) { let keep = y; y = x % y; x = keep; }
  return x;
})"},
    {"gcd-rec", R"(
fn gcd(a, b) {
  if (b == 0) { return a; }
  return gcd(b, a % b);
})"},
    {"fib-iter", R"(
fn fib(n) {
  let a = 0;
  let b = 1;
  while (n != 0) { let t = b; b = a + b; a = t; n = n - 1; }
  return a;
})"},
    {"sum2d", R"(
fn sum(n, m) {
  let total = 0;
  let i = 0;
  while (i < n) {
    let j = 0;
    while (j < m) { total = total + i * j; j = j + 1; }
    i = i + 1;
  }
  return total;
})"},
};

} // namespace

int main() {
  auto Table = TokenTable::create();
  std::vector<WeightedString> Strings;

  std::printf("encoding programs as weighted strings (identifiers "
              "abstracted):\n\n");
  for (const Program &P : Programs) {
    Expected<Ast> Tree = parseProgram(P.Source);
    if (!Tree) {
      std::fprintf(stderr, "error in %s: %s\n", P.Name,
                   Tree.message().c_str());
      return 1;
    }
    WeightedString S = encodeAst(*Tree, Table);
    S.setName(P.Name);
    std::printf("%-12s %s\n", P.Name, formatWeightedString(S).c_str());
    Strings.push_back(std::move(S));
  }

  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  std::printf("\nnormalized Kast similarity matrix (cut weight 2):\n");
  TextTable MatrixTable;
  std::vector<std::string> Header = {""};
  for (const Program &P : Programs)
    Header.push_back(P.Name);
  MatrixTable.setHeader(Header);
  for (size_t I = 0; I < Strings.size(); ++I) {
    std::vector<std::string> Row = {Strings[I].name()};
    for (size_t J = 0; J < Strings.size(); ++J)
      Row.push_back(formatDouble(
          Kernel.evaluateNormalized(Strings[I], Strings[J]), 3));
    MatrixTable.addRow(Row);
  }
  std::printf("%s", MatrixTable.render().c_str());

  std::printf("\nreading guide: gcd-iter == gcd-renamed (renaming is "
              "invisible under\nabstraction); everything else scores "
              "by *structural* overlap — note how\nfib-iter (another "
              "while/assign loop) lands closer to gcd-iter than\n"
              "gcd-rec does, even though gcd-rec computes the same "
              "function.\n");
  return 0;
}
