//===- examples/quickstart.cpp - five-minute tour of the library -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Builds two small I/O traces in memory, converts them to weighted
// strings through the standard pipeline, and compares them with the
// Kast Spectrum Kernel — the minimal end-to-end use of the library.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/Pipeline.h"
#include "core/StringSerializer.h"
#include "trace/Trace.h"
#include "tree/TreeDump.h"

#include <cstdio>

using namespace kast;

int main() {
  // 1. Two traces: a sequential reader and a seek-then-read loop.
  Trace Sequential("sequential");
  Sequential.append(OpKind::Open, 3);
  for (int I = 0; I < 20; ++I)
    Sequential.append(OpKind::Read, 3, 4096);
  Sequential.append(OpKind::Close, 3);

  Trace Seeky("seeky");
  Seeky.append(OpKind::Open, 3);
  for (int I = 0; I < 20; ++I) {
    Seeky.append(OpKind::Lseek, 3, 0);
    Seeky.append(OpKind::Read, 3, 4096);
  }
  Seeky.append(OpKind::Close, 3);

  Trace SequentialBig("sequential-big");
  SequentialBig.append(OpKind::Open, 7);
  for (int I = 0; I < 35; ++I)
    SequentialBig.append(OpKind::Read, 7, 4096);
  SequentialBig.append(OpKind::Close, 7);

  // 2. Convert through one pipeline so all strings share a token
  //    table. The pipeline groups events into the ROOT/HANDLE/BLOCK
  //    tree, compresses loops (two passes of the four merge rules),
  //    and flattens to a weighted string.
  Pipeline P;
  PipelineResult R1 = P.convertDetailed(Sequential);
  WeightedString S1 = R1.String;
  WeightedString S2 = P.convert(Seeky);
  WeightedString S3 = P.convert(SequentialBig);

  std::printf("tree of '%s' after compression:\n%s\n",
              Sequential.name().c_str(), dumpTreeAscii(R1.Tree).c_str());
  std::printf("weighted strings:\n");
  for (const WeightedString *S : {&S1, &S2, &S3})
    std::printf("  %-15s %s\n", S->name().c_str(),
                formatWeightedString(*S).c_str());

  // 3. Compare with the Kast Spectrum Kernel (cut weight 2).
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  std::printf("\nnormalized Kast similarities (cut weight = 2):\n");
  const WeightedString *Strings[] = {&S1, &S2, &S3};
  for (const WeightedString *A : Strings) {
    for (const WeightedString *B : Strings)
      std::printf("  %-15s vs %-15s = %.4f\n", A->name().c_str(),
                  B->name().c_str(), Kernel.evaluateNormalized(*A, *B));
  }

  // The two sequential traces differ only in loop length, which the
  // representation stores as token *weights* — so they come out far
  // more similar to each other than to the seek-loop trace.
  std::printf("\nexpected: sequential ~ sequential-big >> seeky\n");
  return 0;
}
