//===- examples/compare_kernels.cpp - kernel comparison at a glance --------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runs every kernel in the library over the synthetic corpus and
// prints a side-by-side quality table — a one-screen summary of the
// paper's evaluation (§4.2-4.3).
//
//   $ ./compare_kernels
//   $ ./compare_kernels --no-bytes --cut 8
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "kernels/BagOfWordsKernel.h"
#include "kernels/GapWeightedKernel.h"
#include "kernels/SpectrumKernels.h"
#include "ml/ClusterMetrics.h"
#include "ml/HierarchicalClustering.h"
#include "ml/NearestNeighbor.h"
#include "util/StringUtil.h"
#include "util/TextTable.h"
#include "workloads/DatasetBuilder.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace kast;

int main(int ArgC, char **ArgV) {
  uint64_t CutWeight = 2;
  bool IgnoreBytes = false;
  for (int I = 1; I < ArgC; ++I) {
    std::string Arg = ArgV[I];
    if (Arg == "--no-bytes") {
      IgnoreBytes = true;
    } else if (Arg == "--cut" && I + 1 < ArgC) {
      std::optional<uint64_t> N = parseUnsigned(ArgV[++I]);
      if (N)
        CutWeight = *N;
    } else {
      std::fprintf(stderr, "usage: %s [--no-bytes] [--cut N]\n", ArgV[0]);
      return 2;
    }
  }

  Pipeline P = IgnoreBytes ? Pipeline::withoutBytes() : Pipeline::withBytes();
  LabeledDataset Data = convertCorpus(P, generateCorpus());
  std::printf("corpus: 110 examples (A:50 B:20 C:20 D:20), %s, "
              "cut weight %llu\n\n",
              IgnoreBytes ? "byte info ignored" : "byte info kept",
              static_cast<unsigned long long>(CutWeight));

  std::vector<std::pair<std::string, std::unique_ptr<StringKernel>>>
      Kernels;
  Kernels.emplace_back("kast", std::make_unique<KastSpectrumKernel>(
                                   KastKernelOptions{CutWeight}));
  Kernels.emplace_back("blended (classic)",
                       std::make_unique<BlendedSpectrumKernel>(3, 1.25));
  Kernels.emplace_back(
      "blended (weighted)",
      std::make_unique<BlendedSpectrumKernel>(3, 1.0, true, CutWeight));
  Kernels.emplace_back("k-spectrum k=3",
                       std::make_unique<KSpectrumKernel>(3));
  Kernels.emplace_back("bag-of-tokens",
                       std::make_unique<BagOfTokensKernel>());
  Kernels.emplace_back("bag-of-words",
                       std::make_unique<BagOfWordsKernel>());
  Kernels.emplace_back("gap-weighted p=3",
                       std::make_unique<GapWeightedKernel>(3, 0.5));

  TextTable Table;
  Table.setHeader({"kernel", "purity@3", "ARI@3", "misplaced@3",
                   "3 groups found", "LOO-1NN acc"});
  const LabelGrouping Expected = {{"A"}, {"B"}, {"C", "D"}};
  for (const auto &[Name, Kernel] : Kernels) {
    KernelMatrixOptions Options;
    Options.RepairPsd = true;
    Matrix K = computeKernelMatrix(*Kernel, Data.strings(), Options);
    Dendrogram D = clusterHierarchical(similarityToDistance(K));
    std::vector<size_t> Flat = D.cutToClusters(3);
    // Nearest-neighbor retrieval quality at the C/D-merged group
    // level, matching the clustering ground truth.
    std::vector<std::string> Groups;
    Groups.reserve(Data.size());
    for (const std::string &L : Data.labels())
      Groups.push_back(L == "D" ? "C" : L);
    LooResult Loo = leaveOneOutNearestNeighbor(K, Groups);
    Table.addRow(
        {Name, formatDouble(purity(Flat, Data.labels()), 3),
         formatDouble(adjustedRandIndex(Flat, Data.labels()), 3),
         std::to_string(misplacedCount(Flat, Data.labels(), Expected)),
         matchesGrouping(Flat, Data.labels(), Expected) ? "yes" : "no",
         formatDouble(Loo.Accuracy, 3)});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("\n(paper §4.2-4.3: the Kast kernel finds the three "
              "groups, the count-based baselines do not; EXPERIMENTS.md "
              "discusses the weighted variants)\n");
  return 0;
}
