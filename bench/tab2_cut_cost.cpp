//===- bench/tab2_cut_cost.cpp - §4.2 cost-vs-cut-weight claim -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// §4.2: "regardless of the string representation, the smaller the cut
// weight the more expensive the computation became, because the
// algorithm always started searching from the substrings with the
// highest weight." This harness measures the full 110x110 Kast Gram
// matrix build at each cut weight and reports wall time together with
// the surviving feature volume (smaller cuts keep more features, which
// is where the extra work goes in KAST's formulation).
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "core/KastKernel.h"
#include "util/TextTable.h"

#include <chrono>
#include <cstdio>

using namespace kast;

namespace {

/// Sums the feature counts of every pair (upper triangle).
size_t totalFeatures(const KastSpectrumKernel &Kernel,
                     const LabeledDataset &Data) {
  size_t Total = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    for (size_t J = I + 1; J < Data.size(); ++J)
      Total += Kernel.features(Data.string(I), Data.string(J)).size();
  return Total;
}

double secondsToBuild(const KastSpectrumKernel &Kernel,
                      const LabeledDataset &Data) {
  KernelMatrixOptions Options;
  Options.Threads = 1; // Serial so times are comparable.
  auto Start = std::chrono::steady_clock::now();
  computeKernelMatrix(Kernel, Data.strings(), Options);
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main() {
  std::printf("=== Table 2: Kast kernel matrix cost vs cut weight ===\n");
  std::printf("(110x110 Gram matrix, serial build; paper §4.2 cost "
              "claim)\n\n");
  FigureContext Ctx = buildFigureContext();

  for (const auto &[Data, Name] :
       {std::make_pair(&Ctx.WithBytes, "byte information"),
        std::make_pair(&Ctx.NoBytes, "no byte information")}) {
    std::printf("--- %s ---\n", Name);
    TextTable Table;
    Table.setHeader(
        {"cut", "matrix time (s)", "qualifying features (all pairs)"});
    for (uint64_t Exp = 1; Exp <= 10; ++Exp) {
      uint64_t Cut = 1ULL << Exp;
      KastSpectrumKernel Kernel({Cut});
      Table.addRow({std::to_string(Cut),
                    formatDouble(secondsToBuild(Kernel, *Data), 4),
                    std::to_string(totalFeatures(Kernel, *Data))});
    }
    std::printf("%s\n", Table.render().c_str());
  }
  return 0;
}
