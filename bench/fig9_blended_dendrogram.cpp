//===- bench/fig9_blended_dendrogram.cpp - Figure 9 reproduction -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 9: "Hierarchical clustering for Blended Spectrum Kernel
// using byte information (cut weight = 2)". Expected: at 2 clusters
// only Flash I/O (A) is independently separated while B, C and D
// conform a single group (§4.3) — and unlike the Kast kernel, deeper
// cuts do not recover the three paper groups.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "kernels/SpectrumKernels.h"

int main() {
  using namespace kast;
  FigureContext Ctx = buildFigureContext();
  BlendedSpectrumKernel Kernel(/*K=*/3, /*Lambda=*/1.25);
  Matrix K = paperGram(Kernel, Ctx.WithBytes);
  printDendrogramFigure(
      "Figure 9: single-linkage clustering, Blended kernel (k=3, "
      "l=1.25), byte info",
      K, Ctx.WithBytes, {{"A"}, {"B", "C", "D"}}, /*ExpectedCut=*/2);
  return 0;
}
