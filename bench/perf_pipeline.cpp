//===- bench/perf_pipeline.cpp - conversion-stage microbenchmarks ----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Per-stage cost of the trace-to-string conversion: parsing, tree
// construction, compression (with the pass-count ablation from
// DESIGN.md), and flattening. Trace size scales with the generator's
// Scale knob.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "core/Pipeline.h"
#include "core/TreeFlattener.h"
#include "kernels/SpectrumKernels.h"
#include "trace/TraceParser.h"
#include "trace/TraceWriter.h"
#include "tree/TreeBuilder.h"
#include "tree/TreeCompressor.h"
#include "util/Rng.h"
#include "workloads/DatasetBuilder.h"
#include "workloads/Generators.h"

#include <benchmark/benchmark.h>

using namespace kast;

namespace {

Trace scaledTrace(size_t Scale) {
  Rng R(Scale * 97 + 3);
  GeneratorConfig Config;
  Config.Scale = Scale;
  return generateFlashIO(R, Config);
}

void BM_ParseTrace(benchmark::State &State) {
  Trace T = scaledTrace(static_cast<size_t>(State.range(0)));
  std::string Text = formatTrace(T);
  for (auto _ : State)
    benchmark::DoNotOptimize(parseTrace(Text, "bench"));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_ParseTrace)->RangeMultiplier(4)->Range(1, 64);

void BM_BuildTree(benchmark::State &State) {
  Trace T = scaledTrace(static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(buildTree(T));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_BuildTree)->RangeMultiplier(4)->Range(1, 64);

void BM_CompressTree(benchmark::State &State) {
  Trace T = scaledTrace(16);
  CompressorOptions Options;
  Options.Passes = static_cast<size_t>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    PatternTree Tree = buildTree(T);
    State.ResumeTiming();
    benchmark::DoNotOptimize(compressTree(Tree, Options));
  }
}
BENCHMARK(BM_CompressTree)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_FlattenTree(benchmark::State &State) {
  Trace T = scaledTrace(static_cast<size_t>(State.range(0)));
  PatternTree Tree = buildTree(T);
  compressTree(Tree);
  auto Table = TokenTable::create();
  for (auto _ : State)
    benchmark::DoNotOptimize(flattenTree(Tree, Table));
}
BENCHMARK(BM_FlattenTree)->RangeMultiplier(4)->Range(1, 64);

void BM_FullPipeline(benchmark::State &State) {
  Trace T = scaledTrace(static_cast<size_t>(State.range(0)));
  Pipeline P;
  for (auto _ : State)
    benchmark::DoNotOptimize(P.convert(T));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}
BENCHMARK(BM_FullPipeline)->RangeMultiplier(4)->Range(1, 64);

/// The learning-stage hot path downstream of conversion: the Gram
/// matrix of the paper-shaped corpus under the weighted blended
/// spectrum kernel. Arg toggles KernelMatrixOptions::UsePrecompute, so
/// the 0-row is the pre-profile O(N²·build) baseline and the 1-row the
/// profiled O(N·build + N²·dot) fast path.
void BM_CorpusGramMatrix(benchmark::State &State) {
  static std::vector<LabeledTrace> Corpus = generateCorpus();
  static LabeledDataset Data = convertCorpus(Pipeline::withBytes(), Corpus);
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  KernelMatrixOptions Options;
  Options.UsePrecompute = State.range(0) != 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        computeKernelMatrix(Kernel, Data.strings(), Options));
}
BENCHMARK(BM_CorpusGramMatrix)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
