//===- bench/fig8_blended_kpca.cpp - Figure 8 reproduction -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 8: "Kernel PCA for Blended Spectrum Kernel using byte
// information (cut weight = 2)". Expected geometry: only A separates;
// B, C and D form one cloud (§4.3). The paper does not specify the
// blended kernel's parameters; KAST uses k = 3 with lambda = 1.25, the
// baseline's best configuration on this corpus (see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "kernels/SpectrumKernels.h"

int main() {
  using namespace kast;
  FigureContext Ctx = buildFigureContext();
  BlendedSpectrumKernel Kernel(/*K=*/3, /*Lambda=*/1.25);
  Matrix K = paperGram(Kernel, Ctx.WithBytes);
  printKpcaFigure(
      "Figure 8: Kernel PCA, Blended Spectrum Kernel (k=3, l=1.25), "
      "byte info",
      K, Ctx.WithBytes);
  return 0;
}
