#!/usr/bin/env bash
#===-- bench/run_benchmarks.sh - perf bench driver ------------------------===#
#
# Runs the Google Benchmark perf drivers with JSON output so the perf
# trajectory accumulates in version-controllable artifacts:
#
#   BENCH_kernels.json   <- bench/perf_kernels
#   BENCH_pipeline.json  <- bench/perf_pipeline
#   BENCH_index.json     <- bench/perf_index  (append-vs-recompute, queries)
#   BENCH_serving.json   <- bench/perf_serving (async batched runtime)
#
# Each JSON's "context" object is stamped with the git SHA and UTC run
# date, so a committed artifact is traceable to the exact tree that
# produced it without relying on git blame.
#
# Usage:
#   bench/run_benchmarks.sh [output-dir]
#
# Environment:
#   BUILD_DIR          build tree containing bench/perf_* (default: build)
#   BENCH_FILTER       --benchmark_filter regex (default: all benchmarks)
#   BENCH_ARGS         extra flags, e.g. --benchmark_repetitions=3
#   BENCH_ALLOW_DEBUG  set to 1 to record from a non-Release build anyway
#   PAGE_CACHE_STATE   "warm" (default) or "cold"; recorded in the JSON
#                      context — set "cold" only if caches were actually
#                      dropped before the run (see note below)
#
# The build must have been configured with system Google Benchmark
# available (the perf_* targets are skipped without it), and it must be
# a Release build: numbers from an unoptimized tree are meaningless as a
# perf trajectory, and committing them silently poisons every later
# comparison. The guard reads CMAKE_BUILD_TYPE out of the build tree's
# CMakeCache.txt — the JSON's "library_build_type" field is no help, as
# it records how the *benchmark library* was compiled (the distro
# package reports "debug" regardless of how our code was built).
# Non-Release trees are an error unless BENCH_ALLOW_DEBUG=1 is set
# explicitly.
#
#===------------------------------------------------------------------------===#

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-"$REPO_ROOT/build"}"
OUT_DIR="${1:-"$REPO_ROOT"}"
mkdir -p "$OUT_DIR"
BENCH_FILTER="${BENCH_FILTER:-}"
BENCH_ARGS="${BENCH_ARGS:-}"
BENCH_ALLOW_DEBUG="${BENCH_ALLOW_DEBUG:-}"

# Refuse to record numbers from an unoptimized tree.
CACHE="$BUILD_DIR/CMakeCache.txt"
if [[ ! -f "$CACHE" ]]; then
  echo "error: $CACHE not found ($BUILD_DIR is not a configured build tree)" >&2
  exit 1
fi
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  if [[ "$BENCH_ALLOW_DEBUG" == "1" ]]; then
    echo "WARNING: recording benchmarks from a '${BUILD_TYPE:-<unset>}' build" >&2
    echo "WARNING: these numbers are NOT comparable to Release baselines" >&2
  else
    echo "error: $BUILD_DIR is a '${BUILD_TYPE:-<unset>}' build, not Release." >&2
    echo "error: benchmark numbers from unoptimized builds are meaningless;" >&2
    echo "error: reconfigure with -DCMAKE_BUILD_TYPE=Release, or set" >&2
    echo "error: BENCH_ALLOW_DEBUG=1 to record them anyway." >&2
    exit 1
  fi
fi

# Provenance for committed artifacts: the SHA of the tree that produced
# the numbers and the UTC date of the run, written into the Google
# Benchmark JSON's top-level "context" object (where machine info
# already lives). Dirty trees are marked so a number from uncommitted
# code can't masquerade as the SHA's.
GIT_SHA="$(git -C "$REPO_ROOT" rev-parse HEAD 2>/dev/null || echo unknown)"
if [[ "$GIT_SHA" != unknown ]] \
   && ! git -C "$REPO_ROOT" diff --quiet HEAD -- 2>/dev/null; then
  GIT_SHA="$GIT_SHA-dirty"
fi
RUN_DATE_UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Page-cache state matters for the restart/mmap benchmarks
# (BM_RestartToFirstQuery, BM_MappedImageSharedRss): their setup writes
# the shard files immediately before the timed region, so mapped pages
# are served from a warm page cache and the numbers measure restart
# *software* cost, not disk latency. A truly cold restart (after
# `echo 3 > /proc/sys/vm/drop_caches`, which needs root) would add
# device read time on first fault for the v3 leg while the v2 leg pays
# the same read inside its full-file copy. The context records which
# regime produced the artifact so committed numbers are comparable.
PAGE_CACHE_STATE="${PAGE_CACHE_STATE:-warm}"

stamp_json() {
  local out="$1"
  GIT_SHA="$GIT_SHA" RUN_DATE_UTC="$RUN_DATE_UTC" \
  PAGE_CACHE_STATE="$PAGE_CACHE_STATE" python3 - "$out" <<'EOF'
import json, os, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
doc.setdefault("context", {})
doc["context"]["git_sha"] = os.environ["GIT_SHA"]
doc["context"]["run_date_utc"] = os.environ["RUN_DATE_UTC"]
doc["context"]["page_cache_state"] = os.environ["PAGE_CACHE_STATE"]
doc["context"]["page_cache_note"] = (
    "restart/mmap benchmarks write their files in setup, so 'warm' means "
    "mapped pages come from the page cache; cold-cache restarts add device "
    "read latency to first-fault (v3) or to the full-file copy (v2)")
with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
}

run_bench() {
  local name="$1" out="$2"
  local bin="$BUILD_DIR/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (configure with system Google Benchmark)" >&2
    exit 1
  fi
  local flags=(--benchmark_format=json --benchmark_out="$out"
               --benchmark_out_format=json)
  [[ -n "$BENCH_FILTER" ]] && flags+=(--benchmark_filter="$BENCH_FILTER")
  # shellcheck disable=SC2206
  [[ -n "$BENCH_ARGS" ]] && flags+=($BENCH_ARGS)
  echo "== $name -> $out"
  "$bin" "${flags[@]}" > /dev/null
  stamp_json "$out"
}

run_bench perf_kernels "$OUT_DIR/BENCH_kernels.json"
run_bench perf_pipeline "$OUT_DIR/BENCH_pipeline.json"
run_bench perf_index "$OUT_DIR/BENCH_index.json"
run_bench perf_serving "$OUT_DIR/BENCH_serving.json"

echo "done: $OUT_DIR/BENCH_kernels.json $OUT_DIR/BENCH_pipeline.json" \
     "$OUT_DIR/BENCH_index.json $OUT_DIR/BENCH_serving.json"
