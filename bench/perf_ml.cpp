//===- bench/perf_ml.cpp - linalg/ml microbenchmarks -----------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scaling of the analysis substrate: Jacobi eigendecomposition, PSD
// projection, Kernel PCA, and agglomerative clustering across matrix
// sizes around the paper's 110-example operating point.
//
//===----------------------------------------------------------------------===//

#include "linalg/Eigen.h"
#include "ml/HierarchicalClustering.h"
#include "ml/KernelPca.h"
#include "util/Rng.h"

#include <benchmark/benchmark.h>

using namespace kast;

namespace {

/// Random symmetric matrix with unit diagonal (similarity-shaped).
Matrix randomSimilarity(size_t N, uint64_t Seed) {
  Rng R(Seed);
  Matrix K(N, N, 0.0);
  for (size_t I = 0; I < N; ++I) {
    K.at(I, I) = 1.0;
    for (size_t J = I + 1; J < N; ++J) {
      double V = R.uniformReal();
      K.at(I, J) = V;
      K.at(J, I) = V;
    }
  }
  return K;
}

void BM_JacobiEigen(benchmark::State &State) {
  Matrix K = randomSimilarity(static_cast<size_t>(State.range(0)), 11);
  for (auto _ : State)
    benchmark::DoNotOptimize(eigenSymmetric(K));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_JacobiEigen)->Arg(16)->Arg(32)->Arg(64)->Arg(110)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_PsdProjection(benchmark::State &State) {
  Matrix K = randomSimilarity(static_cast<size_t>(State.range(0)), 13);
  for (auto _ : State)
    benchmark::DoNotOptimize(projectToPsd(K));
}
BENCHMARK(BM_PsdProjection)->Arg(32)->Arg(110)
    ->Unit(benchmark::kMillisecond);

void BM_KernelPca(benchmark::State &State) {
  Matrix K = randomSimilarity(static_cast<size_t>(State.range(0)), 17);
  for (auto _ : State)
    benchmark::DoNotOptimize(kernelPca(K, 2));
}
BENCHMARK(BM_KernelPca)->Arg(32)->Arg(110)->Unit(benchmark::kMillisecond);

void BM_HierarchicalClustering(benchmark::State &State) {
  Matrix K = randomSimilarity(static_cast<size_t>(State.range(0)), 19);
  Matrix D = similarityToDistance(K);
  Linkage Link = static_cast<Linkage>(State.range(1));
  for (auto _ : State)
    benchmark::DoNotOptimize(clusterHierarchical(D, Link));
}
BENCHMARK(BM_HierarchicalClustering)
    ->Args({110, 0})
    ->Args({110, 1})
    ->Args({110, 2})
    ->Args({256, 0})
    ->Unit(benchmark::kMillisecond);

void BM_DendrogramCut(benchmark::State &State) {
  Matrix D = similarityToDistance(randomSimilarity(110, 23));
  Dendrogram Tree = clusterHierarchical(D);
  for (auto _ : State)
    benchmark::DoNotOptimize(Tree.cutToClusters(3));
}
BENCHMARK(BM_DendrogramCut);

} // namespace

BENCHMARK_MAIN();
