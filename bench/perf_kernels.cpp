//===- bench/perf_kernels.cpp - kernel microbenchmarks ---------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scaling of the kernel evaluations: the Kast kernel's suffix-automaton
// path vs the quadratic reference matcher (the DESIGN.md ablation),
// the spectrum-family baselines, and the parallel Gram-matrix build.
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/Pipeline.h"
#include "kernels/GapWeightedKernel.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "workloads/DatasetBuilder.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace kast;

namespace {

/// Random weighted string of \p Length tokens over \p Alphabet.
WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

/// Pair of random strings sized by the benchmark argument.
std::pair<WeightedString, WeightedString>
randomPair(size_t Length) {
  static auto Table = TokenTable::create();
  Rng R(Length * 1000 + 7);
  return {randomString(Table, R, Length, 12),
          randomString(Table, R, Length, 12)};
}

void BM_KastKernelSam(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_KastKernelSam)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

void BM_KastKernelReferenceDP(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KastKernelOptions Options{/*CutWeight=*/2};
  Options.UseReferenceMatcher = true;
  KastSpectrumKernel Kernel(Options);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_KastKernelReferenceDP)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_BlendedKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  BlendedSpectrumKernel Kernel(3, 1.25);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BlendedKernel)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

void BM_GapWeightedKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  GapWeightedKernel Kernel(3, 0.5);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GapWeightedKernel)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_KSpectrumKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KSpectrumKernel Kernel(3);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
}
BENCHMARK(BM_KSpectrumKernel)->RangeMultiplier(4)->Range(16, 4096);

/// Kast evaluation on real corpus strings (not random symbols).
void BM_KastKernelCorpusPair(benchmark::State &State) {
  static std::vector<LabeledTrace> Corpus = generateCorpus();
  static LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), Corpus);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  size_t I = 0;
  for (auto _ : State) {
    size_t A = I % Data.size();
    size_t B = (I * 31 + 7) % Data.size();
    benchmark::DoNotOptimize(
        Kernel.evaluate(Data.string(A), Data.string(B)));
    ++I;
  }
}
BENCHMARK(BM_KastKernelCorpusPair);

void BM_GramMatrixBuild(benchmark::State &State) {
  static std::vector<LabeledTrace> Corpus = generateCorpus();
  static LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), Corpus);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.Threads = static_cast<size_t>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        computeKernelMatrix(Kernel, Data.strings(), Options));
}
BENCHMARK(BM_GramMatrixBuild)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Random corpus of N strings (length 64, alphabet 12) shared across
/// the Gram benches below; one corpus per size.
const std::vector<WeightedString> &randomCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 7919 + 13);
    for (size_t I = 0; I < N; ++I)
      It->second.push_back(randomString(Table, R, 64, 12));
  }
  return It->second;
}

/// Spectrum-family Gram matrix: Args are {N, UsePrecompute}. The
/// UsePrecompute=0 rows measure the pre-profile baseline (every pair
/// rebuilds both strings' features); UsePrecompute=1 is the
/// O(N·build + N²·dot) fast path — since the ProfileStore arena, the
/// cache-blocked tile fill over structure-of-arrays views (the
/// N=1024 row is the tiled-Gram headline number).
void BM_GramMatrixSpectrum(benchmark::State &State) {
  const std::vector<WeightedString> &Corpus =
      randomCorpus(static_cast<size_t>(State.range(0)));
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  KernelMatrixOptions Options;
  Options.UsePrecompute = State.range(1) != 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(computeKernelMatrix(Kernel, Corpus, Options));
}
BENCHMARK(BM_GramMatrixSpectrum)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

/// Kast Gram matrix over random strings: Args are {N, UsePrecompute};
/// the fast path reuses each string's reversed suffix automaton across
/// its N-1 pairs.
void BM_GramMatrixKast(benchmark::State &State) {
  const std::vector<WeightedString> &Corpus =
      randomCorpus(static_cast<size_t>(State.range(0)));
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.UsePrecompute = State.range(1) != 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(computeKernelMatrix(Kernel, Corpus, Options));
}
BENCHMARK(BM_GramMatrixKast)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

/// Cost of building one spectrum profile (the O(N·build) half of the
/// fast path), over string length.
void BM_SpectrumProfileBuild(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.profile(A));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SpectrumProfileBuild)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
