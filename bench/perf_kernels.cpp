//===- bench/perf_kernels.cpp - kernel microbenchmarks ---------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scaling of the kernel evaluations: the Kast kernel's suffix-automaton
// path vs the quadratic reference matcher (the DESIGN.md ablation),
// the spectrum-family baselines, and the parallel Gram-matrix build.
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/Pipeline.h"
#include "kernels/GapWeightedKernel.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "workloads/DatasetBuilder.h"

#include <benchmark/benchmark.h>

using namespace kast;

namespace {

/// Random weighted string of \p Length tokens over \p Alphabet.
WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

/// Pair of random strings sized by the benchmark argument.
std::pair<WeightedString, WeightedString>
randomPair(size_t Length) {
  static auto Table = TokenTable::create();
  Rng R(Length * 1000 + 7);
  return {randomString(Table, R, Length, 12),
          randomString(Table, R, Length, 12)};
}

void BM_KastKernelSam(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_KastKernelSam)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

void BM_KastKernelReferenceDP(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KastKernelOptions Options{/*CutWeight=*/2};
  Options.UseReferenceMatcher = true;
  KastSpectrumKernel Kernel(Options);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_KastKernelReferenceDP)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_BlendedKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  BlendedSpectrumKernel Kernel(3, 1.25);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BlendedKernel)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

void BM_GapWeightedKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  GapWeightedKernel Kernel(3, 0.5);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GapWeightedKernel)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_KSpectrumKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KSpectrumKernel Kernel(3);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
}
BENCHMARK(BM_KSpectrumKernel)->RangeMultiplier(4)->Range(16, 4096);

/// Kast evaluation on real corpus strings (not random symbols).
void BM_KastKernelCorpusPair(benchmark::State &State) {
  static std::vector<LabeledTrace> Corpus = generateCorpus();
  static LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), Corpus);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  size_t I = 0;
  for (auto _ : State) {
    size_t A = I % Data.size();
    size_t B = (I * 31 + 7) % Data.size();
    benchmark::DoNotOptimize(
        Kernel.evaluate(Data.string(A), Data.string(B)));
    ++I;
  }
}
BENCHMARK(BM_KastKernelCorpusPair);

void BM_GramMatrixBuild(benchmark::State &State) {
  static std::vector<LabeledTrace> Corpus = generateCorpus();
  static LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), Corpus);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.Threads = static_cast<size_t>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        computeKernelMatrix(Kernel, Data.strings(), Options));
}
BENCHMARK(BM_GramMatrixBuild)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
