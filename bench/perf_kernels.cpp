//===- bench/perf_kernels.cpp - kernel microbenchmarks ---------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Scaling of the kernel evaluations: the Kast kernel's suffix-automaton
// path vs the quadratic reference matcher (the DESIGN.md ablation),
// the spectrum-family baselines, and the parallel Gram-matrix build.
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/KernelMatrix.h"
#include "core/Pipeline.h"
#include "core/ProfileStore.h"
#include "kernels/GapWeightedKernel.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "util/SimdDot.h"
#include "workloads/DatasetBuilder.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>

using namespace kast;

namespace {

/// Random weighted string of \p Length tokens over \p Alphabet.
WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

/// Pair of random strings sized by the benchmark argument.
std::pair<WeightedString, WeightedString>
randomPair(size_t Length) {
  static auto Table = TokenTable::create();
  Rng R(Length * 1000 + 7);
  return {randomString(Table, R, Length, 12),
          randomString(Table, R, Length, 12)};
}

void BM_KastKernelSam(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_KastKernelSam)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

void BM_KastKernelReferenceDP(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KastKernelOptions Options{/*CutWeight=*/2};
  Options.UseReferenceMatcher = true;
  KastSpectrumKernel Kernel(Options);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_KastKernelReferenceDP)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_BlendedKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  BlendedSpectrumKernel Kernel(3, 1.25);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_BlendedKernel)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

void BM_GapWeightedKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  GapWeightedKernel Kernel(3, 0.5);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GapWeightedKernel)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity();

void BM_KSpectrumKernel(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  KSpectrumKernel Kernel(3);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.evaluate(A, B));
}
BENCHMARK(BM_KSpectrumKernel)->RangeMultiplier(4)->Range(16, 4096);

/// Kast evaluation on real corpus strings (not random symbols).
void BM_KastKernelCorpusPair(benchmark::State &State) {
  static std::vector<LabeledTrace> Corpus = generateCorpus();
  static LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), Corpus);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  size_t I = 0;
  for (auto _ : State) {
    size_t A = I % Data.size();
    size_t B = (I * 31 + 7) % Data.size();
    benchmark::DoNotOptimize(
        Kernel.evaluate(Data.string(A), Data.string(B)));
    ++I;
  }
}
BENCHMARK(BM_KastKernelCorpusPair);

/// One synthetic sparse-dot operand pair with a controlled overlap:
/// both sides sample their hash sets from a shared sorted universe of
/// |A| + |B| slots, so the expected intersection is |A|·|B| / (|A|+|B|)
/// — dense when balanced, sparse when skewed, like real profiles from
/// one corpus. The stored (B) side also carries its int8 quantization.
struct DotOperands {
  std::vector<uint64_t> AHashes, BHashes;
  std::vector<double> AValues, BValues;
  std::vector<int8_t> BQuant;
  double Scale = 0.0;
};

DotOperands makeDotOperands(size_t ASize, size_t BSize) {
  Rng R(ASize * 1000003 + BSize);
  const size_t Slots = ASize + BSize;
  std::vector<uint64_t> Universe(Slots);
  uint64_t H = 0;
  for (size_t I = 0; I < Slots; ++I) {
    H += 1 + R.uniformInt(0, 1u << 20);
    Universe[I] = H;
  }
  auto Sample = [&](size_t N) {
    std::vector<uint32_t> Idx(Slots);
    for (size_t I = 0; I < Slots; ++I)
      Idx[I] = static_cast<uint32_t>(I);
    R.shuffle(Idx);
    Idx.resize(N);
    std::sort(Idx.begin(), Idx.end());
    std::vector<uint64_t> Hashes(N);
    for (size_t I = 0; I < N; ++I)
      Hashes[I] = Universe[Idx[I]];
    return Hashes;
  };
  DotOperands Ops;
  Ops.AHashes = Sample(ASize);
  Ops.BHashes = Sample(BSize);
  auto Values = [&](size_t N) {
    std::vector<double> V(N);
    for (double &X : V)
      X = R.uniformReal() * 2.0 - 1.0;
    return V;
  };
  Ops.AValues = Values(ASize);
  Ops.BValues = Values(BSize);
  double MaxAbs = 0.0;
  for (double V : Ops.BValues)
    MaxAbs = std::max(MaxAbs, std::abs(V));
  Ops.Scale = MaxAbs > 0.0 ? MaxAbs / 127.0 : 0.0;
  Ops.BQuant.resize(BSize);
  for (size_t I = 0; I < BSize; ++I)
    Ops.BQuant[I] = static_cast<int8_t>(std::lround(Ops.BValues[I] / Ops.Scale));
  return Ops;
}

/// Dot products per second for one kernel at one size/skew shape.
/// Args are {SmallSize, SkewRatio, Kind}: the small side has SmallSize
/// entries, the large side SmallSize * SkewRatio; Kind 0 is the scalar
/// reference merge, 1 the dispatched exact kernel (gallop + SIMD
/// block; label says which ISA won dispatch), 2 the quantized scan
/// kernel. Skew 1 is the Gram/exhaustive-scan shape; skew 16-64 is the
/// query-vs-centroid / query-vs-posting routing shape. Each iteration
/// rotates through a pool of operand pairs: dotting one fixed pair
/// lets the branch predictor memorize the scalar merge's exact
/// branch sequence, overstating it by ~4x versus real scans where
/// every candidate's interleaving is fresh.
void BM_DotThroughput(benchmark::State &State) {
  const size_t Small = static_cast<size_t>(State.range(0));
  const size_t Large = Small * static_cast<size_t>(State.range(1));
  const int Kind = static_cast<int>(State.range(2));
  constexpr size_t PoolSize = 32;
  static std::map<std::pair<size_t, size_t>, std::vector<DotOperands>> Cache;
  std::vector<DotOperands> &Pool = Cache[{Small, Large}];
  if (Pool.empty())
    for (size_t I = 0; I < PoolSize; ++I)
      Pool.push_back(makeDotOperands(Small + I, Large + I));
  size_t P = 0;
  for (auto _ : State) {
    const DotOperands &Ops = Pool[P];
    P = (P + 1) % PoolSize;
    double D = 0.0;
    switch (Kind) {
    case 0:
      D = simd::dotScalar(Ops.AHashes.data(), Ops.AValues.data(),
                          Ops.AHashes.size(), Ops.BHashes.data(),
                          Ops.BValues.data(), Ops.BHashes.size());
      break;
    case 1:
      D = simd::dotExact(Ops.AHashes.data(), Ops.AValues.data(),
                         Ops.AHashes.size(), Ops.BHashes.data(),
                         Ops.BValues.data(), Ops.BHashes.size());
      break;
    default:
      D = simd::dotQuantized(Ops.AHashes.data(), Ops.AValues.data(),
                             Ops.AHashes.size(), Ops.BHashes.data(),
                             Ops.BQuant.data(), Ops.BHashes.size(), Ops.Scale);
      break;
    }
    benchmark::DoNotOptimize(D);
  }
  State.SetItemsProcessed(State.iterations());
  State.SetLabel(Kind == 0 ? "scalar"
                           : simd::kernelName(simd::activeKernel()));
}
BENCHMARK(BM_DotThroughput)
    // Balanced (Gram / exhaustive scan shape).
    ->Args({128, 1, 0})
    ->Args({128, 1, 1})
    ->Args({128, 1, 2})
    ->Args({1024, 1, 0})
    ->Args({1024, 1, 1})
    ->Args({1024, 1, 2})
    // Skewed (query vs centroid / posting segment shape).
    ->Args({64, 16, 0})
    ->Args({64, 16, 1})
    ->Args({64, 16, 2})
    ->Args({16, 64, 0})
    ->Args({16, 64, 1})
    ->Args({16, 64, 2});

void BM_GramMatrixBuild(benchmark::State &State) {
  static std::vector<LabeledTrace> Corpus = generateCorpus();
  static LabeledDataset Data =
      convertCorpus(Pipeline::withBytes(), Corpus);
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.Threads = static_cast<size_t>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        computeKernelMatrix(Kernel, Data.strings(), Options));
}
BENCHMARK(BM_GramMatrixBuild)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

/// Random corpus of N strings (length 64, alphabet 12) shared across
/// the Gram benches below; one corpus per size.
const std::vector<WeightedString> &randomCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 7919 + 13);
    for (size_t I = 0; I < N; ++I)
      It->second.push_back(randomString(Table, R, 64, 12));
  }
  return It->second;
}

/// Spectrum-family Gram matrix: Args are {N, UsePrecompute}. The
/// UsePrecompute=0 rows measure the pre-profile baseline (every pair
/// rebuilds both strings' features); UsePrecompute=1 is the
/// O(N·build + N²·dot) fast path — since the ProfileStore arena, the
/// cache-blocked tile fill over structure-of-arrays views (the
/// N=1024 row is the tiled-Gram headline number).
void BM_GramMatrixSpectrum(benchmark::State &State) {
  const std::vector<WeightedString> &Corpus =
      randomCorpus(static_cast<size_t>(State.range(0)));
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  KernelMatrixOptions Options;
  Options.UsePrecompute = State.range(1) != 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(computeKernelMatrix(Kernel, Corpus, Options));
}
BENCHMARK(BM_GramMatrixSpectrum)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

/// Kast Gram matrix over random strings: Args are {N, UsePrecompute};
/// the fast path reuses each string's reversed suffix automaton across
/// its N-1 pairs.
void BM_GramMatrixKast(benchmark::State &State) {
  const std::vector<WeightedString> &Corpus =
      randomCorpus(static_cast<size_t>(State.range(0)));
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  KernelMatrixOptions Options;
  Options.UsePrecompute = State.range(1) != 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(computeKernelMatrix(Kernel, Corpus, Options));
}
BENCHMARK(BM_GramMatrixKast)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Unit(benchmark::kMillisecond);

/// Cost of building one spectrum profile (the O(N·build) half of the
/// fast path), over string length.
void BM_SpectrumProfileBuild(benchmark::State &State) {
  auto [A, B] = randomPair(static_cast<size_t>(State.range(0)));
  BlendedSpectrumKernel Kernel(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  for (auto _ : State)
    benchmark::DoNotOptimize(Kernel.profile(A));
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SpectrumProfileBuild)->RangeMultiplier(4)->Range(16, 4096)
    ->Complexity();

} // namespace

BENCHMARK_MAIN();
