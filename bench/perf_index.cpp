//===- bench/perf_index.cpp - retrieval-scale growth benchmarks ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The corpus-growth story in numbers: extending an existing Gram matrix
// with KernelMatrix::appendRows versus recomputing it from scratch,
// top-k profile-index queries (single and batched over the ProfileStore
// arena) versus the full-matrix detour they replace, and v2 block-cache
// loads versus the per-entry v1 format. Args are {N, M}: N
// already-indexed strings, M arriving ones.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "index/IndexService.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"
#include "workloads/CorpusIO.h"

#include <benchmark/benchmark.h>

#include <unistd.h>
#ifdef __linux__
#include <sys/wait.h>
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <utility>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

/// Random corpus of N strings (length 64, alphabet 12); one per size.
const std::vector<WeightedString> &randomCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 7919 + 13);
    for (size_t I = 0; I < N; ++I)
      It->second.push_back(randomString(Table, R, 64, 12));
  }
  return It->second;
}

BlendedSpectrumKernel &kernel() {
  static BlendedSpectrumKernel K(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  return K;
}

/// Growing an N-string Gram by M rows: only the N·M + M(M+1)/2 new
/// entries are evaluated; the base build runs outside the timed region.
void BM_GramAppendRows(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const size_t M = static_cast<size_t>(State.range(1));
  const std::vector<WeightedString> &All = randomCorpus(N + M);
  std::vector<WeightedString> Base(All.begin(), All.begin() + N);
  std::vector<WeightedString> Extra(All.begin() + N, All.end());
  for (auto _ : State) {
    State.PauseTiming();
    KernelMatrix Gram(kernel(), {});
    Gram.appendRows(Base);
    State.ResumeTiming();
    Gram.appendRows(Extra);
    benchmark::DoNotOptimize(Gram.raw().data().data());
  }
}
BENCHMARK(BM_GramAppendRows)
    ->Args({96, 32})
    ->Args({256, 32})
    ->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

/// The alternative appendRows replaces: recomputing the whole
/// (N+M)×(N+M) matrix when M strings arrive.
void BM_GramRecomputeAfterArrival(benchmark::State &State) {
  const std::vector<WeightedString> &All =
      randomCorpus(static_cast<size_t>(State.range(0)) +
                   static_cast<size_t>(State.range(1)));
  KernelMatrixOptions Options;
  Options.Normalize = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(computeKernelMatrix(kernel(), All, Options));
}
BENCHMARK(BM_GramRecomputeAfterArrival)
    ->Args({96, 32})
    ->Args({256, 32})
    ->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

/// One top-k query against an N-string index: O(N · dot), the
/// retrieval hot path.
void BM_IndexQueryTop5(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  ProfileIndex Index = ProfileIndex::build(
      kernel(), {Corpus.begin(), Corpus.begin() + N});
  KernelProfile Query = kernel().profile(Corpus[N]);
  for (auto _ : State)
    benchmark::DoNotOptimize(Index.query(Query, 5));
}
BENCHMARK(BM_IndexQueryTop5)->Arg(128)->Arg(1024)->Arg(8192);

/// Batched top-k queries over the arena: Args are {N, B} — B queries
/// against an N-string index through queryBatch, which scores views
/// straight off the store's flat hash/value arrays and reuses one
/// O(N) candidate buffer per worker thread across the whole batch.
void BM_IndexQueryBatchTop5(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const size_t B = static_cast<size_t>(State.range(1));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + B);
  ProfileIndex Index = ProfileIndex::build(
      kernel(), {Corpus.begin(), Corpus.begin() + N});
  std::vector<KernelProfile> Queries;
  for (size_t I = 0; I < B; ++I)
    Queries.push_back(kernel().profile(Corpus[N + I]));
  for (auto _ : State)
    benchmark::DoNotOptimize(Index.queryBatch(Queries, 5));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(B));
}
BENCHMARK(BM_IndexQueryBatchTop5)
    ->Args({1024, 64})
    ->Args({8192, 64})
    ->Unit(benchmark::kMillisecond);

/// Clustered corpus for the routed benchmarks: a handful of base
/// strings, each entry a point mutation of its base (~25% of
/// positions resampled). Cosine neighborhoods are the sibling groups
/// — the structure a cluster router exists to exploit; uniform-random
/// strings have no neighborhoods to route to. Same length, alphabet
/// and weight range as randomCorpus, so per-profile scan cost (and
/// hence the exact-scan baseline) is unchanged.
const std::vector<WeightedString> &clusteredCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 104729 + 7);
    const size_t NumBases =
        std::max<size_t>(8, std::min<size_t>(64, N / 16));
    constexpr size_t Length = 64;
    constexpr uint32_t Alphabet = 12;
    using TokenSeq = std::vector<std::pair<std::string, uint32_t>>;
    std::vector<TokenSeq> Bases(NumBases);
    for (TokenSeq &Base : Bases)
      for (size_t I = 0; I < Length; ++I)
        Base.emplace_back("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
                          R.uniformInt(1, 16));
    for (size_t I = 0; I < N; ++I) {
      TokenSeq Seq = Bases[I % NumBases];
      for (auto &[Token, Weight] : Seq)
        if (R.uniformInt(0, 99) < 25) {
          Token = "t" + std::to_string(R.uniformInt(0, Alphabet - 1));
          Weight = R.uniformInt(1, 16);
        }
      WeightedString S(Table);
      for (const auto &[Token, Weight] : Seq)
        S.append(Token, Weight);
      It->second.push_back(std::move(S));
    }
  }
  return It->second;
}

/// Held-out queries per corpus size for the routed benchmarks: the
/// routed index covers Corpus[0, N) and these are Corpus[N, N+16) —
/// fresh mutations of the same bases, so every query has true near
/// neighbors to find.
constexpr size_t RoutedQueryCount = 16;

std::vector<KernelProfile> heldOutQueries(size_t N) {
  const std::vector<WeightedString> &Corpus =
      clusteredCorpus(N + RoutedQueryCount);
  std::vector<KernelProfile> Queries;
  for (size_t I = N; I < N + RoutedQueryCount; ++I)
    Queries.push_back(kernel().profile(Corpus[I]));
  return Queries;
}

/// Sweep/serving routing knobs. DfPct is MaxDocFrequency in percent;
/// the sentinel -1 requests pure defaults, i.e. exhaustive mode
/// (all centroids, no df-pruning, no re-rank budget), which is
/// bit-identical to the exact scan.
RoutingOptions sweepRouting(int DfPct) {
  RoutingOptions Options;
  if (DfPct < 0)
    return Options;
  Options.Cluster.TrainingSample = 2048;
  Options.Cluster.MaxIterations = 6;
  Options.MaxDocFrequency = static_cast<double>(DfPct) / 100.0;
  Options.RerankBudget = 96;
  Options.DefaultNProbe = 8;
  return Options;
}

/// One routed index per (N, DfPct); the k-means fit dominates setup,
/// so fitted indexes are cached across benchmark registrations.
const ProfileIndex &routedIndex(size_t N, int DfPct) {
  static std::map<std::pair<size_t, int>, ProfileIndex> Cache;
  auto [It, Inserted] = Cache.try_emplace(std::make_pair(N, DfPct));
  if (Inserted) {
    const std::vector<WeightedString> &Corpus =
        clusteredCorpus(N + RoutedQueryCount);
    It->second = ProfileIndex::build(kernel(),
                                     {Corpus.begin(), Corpus.begin() + N});
    It->second.buildRouting(sweepRouting(DfPct));
  }
  return It->second;
}

/// Mean recall@5 of the routed path against the exact scan on the
/// same index, over the held-out query set.
double meanRecall5(const ProfileIndex &Routed,
                   const std::vector<KernelProfile> &Queries, size_t NProbe) {
  double Sum = 0.0;
  for (const KernelProfile &Q : Queries) {
    const std::vector<Neighbor> Exact = Routed.query(Q, 5);
    const std::vector<Neighbor> Approx = Routed.queryApprox(Q, 5, true, NProbe);
    size_t Hits = 0;
    for (const Neighbor &A : Approx)
      for (const Neighbor &E : Exact)
        Hits += A.Index == E.Index;
    Sum += Exact.empty() ? 1.0
                         : static_cast<double>(Hits) /
                               static_cast<double>(Exact.size());
  }
  return Queries.empty() ? 1.0 : Sum / static_cast<double>(Queries.size());
}

/// The exact O(N · dot) scan on the clustered corpus — the in-corpus
/// baseline for BM_InvertedQueryTop5 (same index, same query). Exact
/// scan cost only depends on profile sizes, not corpus shape, so this
/// tracks BM_IndexQueryTop5 closely; it pins the speedup comparison
/// to identical data anyway.
void BM_ClusteredExactQueryTop5(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const ProfileIndex &Routed = routedIndex(N, /*DfPct=*/100);
  const KernelProfile Query = heldOutQueries(N).front();
  for (auto _ : State)
    benchmark::DoNotOptimize(Routed.query(Query, 5));
}
BENCHMARK(BM_ClusteredExactQueryTop5)->Arg(128)->Arg(1024)->Arg(8192);

/// One top-5 query through the candidate-generation tier (cluster
/// routing + df-pruned inverted index + exact re-rank) — the routed
/// counterpart of BM_IndexQueryTop5. Counters carry the measured
/// recall@5 against the exact scan at the serving knobs, and at
/// nprobe = numCentroids on a pure-defaults routing where bit-identity
/// guarantees exactly 1.0 — the CI canary greps for that counter.
void BM_InvertedQueryTop5(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const ProfileIndex &Routed = routedIndex(N, /*DfPct=*/100);
  const ProfileIndex &Exhaustive = routedIndex(N, /*DfPct=*/-1);
  const std::vector<KernelProfile> Queries = heldOutQueries(N);
  const double Recall = meanRecall5(Routed, Queries, /*NProbe=*/0);
  const double ExhaustiveRecall = meanRecall5(
      Exhaustive, Queries, Exhaustive.router()->numCentroids());
  const KernelProfile &Query = Queries.front();
  for (auto _ : State)
    benchmark::DoNotOptimize(Routed.queryApprox(Query, 5));
  State.counters["recall5"] = benchmark::Counter(Recall);
  State.counters["recall5_exhaustive"] = benchmark::Counter(ExhaustiveRecall);
  State.counters["centroids"] =
      benchmark::Counter(static_cast<double>(Routed.router()->numCentroids()));
}
BENCHMARK(BM_InvertedQueryTop5)->Arg(128)->Arg(1024)->Arg(8192);

/// Recall@5-vs-latency sweep across the two pruning knobs at N=8192:
/// Args are {nprobe, df-percent}; nprobe 0 means all centroids. Each
/// row's recall5 counter is measured against the exact scan over the
/// held-out queries, so BENCH_index.json carries the accuracy/speed
/// frontier next to the timings.
void BM_InvertedRecallSweep(benchmark::State &State) {
  const size_t N = 8192;
  const int DfPct = static_cast<int>(State.range(1));
  const ProfileIndex &Routed = routedIndex(N, DfPct);
  const size_t NProbe = State.range(0) != 0
                            ? static_cast<size_t>(State.range(0))
                            : Routed.router()->numCentroids();
  const std::vector<KernelProfile> Queries = heldOutQueries(N);
  const double Recall = meanRecall5(Routed, Queries, NProbe);
  const KernelProfile &Query = Queries.front();
  for (auto _ : State)
    benchmark::DoNotOptimize(Routed.queryApprox(Query, 5, true, NProbe));
  State.counters["recall5"] = benchmark::Counter(Recall);
  State.counters["nprobe"] =
      benchmark::Counter(static_cast<double>(NProbe));
  State.counters["df_pct"] = benchmark::Counter(static_cast<double>(DfPct));
}
BENCHMARK(BM_InvertedRecallSweep)
    ->ArgNames({"nprobe", "dfpct"})
    ->Args({1, 100})
    ->Args({2, 100})
    ->Args({4, 100})
    ->Args({8, 100})
    ->Args({16, 100})
    ->Args({0, 100})
    ->Args({1, 50})
    ->Args({2, 50})
    ->Args({4, 50})
    ->Args({8, 50})
    ->Args({16, 50})
    ->Args({0, 50})
    ->Args({1, 10})
    ->Args({2, 10})
    ->Args({4, 10})
    ->Args({8, 10})
    ->Args({16, 10})
    ->Args({0, 10});

/// Building the index itself (N profiles + norms, parallel).
void BM_IndexBuild(benchmark::State &State) {
  const std::vector<WeightedString> &Corpus =
      randomCorpus(static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(ProfileIndex::build(kernel(), Corpus));
}
BENCHMARK(BM_IndexBuild)->Arg(128)->Arg(1024)->Unit(benchmark::kMillisecond);

/// Query latency *during* concurrent ingest — the serving-layer claim
/// in one number. An IndexService starts with N entries; a background
/// writer thread appends continuously (removing every 8th of its own
/// adds) for the whole measurement, while the timed loop runs top-5
/// queries through fresh snapshots. Compare against BM_IndexQueryTop5
/// at the same N: the gap is the cost of snapshot isolation plus
/// whatever cache pressure the writer induces. A bare ProfileIndex
/// cannot run this benchmark at all — add() invalidates the views a
/// concurrent query is scanning.
void BM_ServiceQueryWhileAppend(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  IndexService Service = IndexService::fromIndex(
      ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N}));
  KernelProfile Query = kernel().profile(Corpus[N]);

  // The ingest stream reuses pre-built profiles round-robin under
  // fresh names (publish cost, not profile construction), holds the
  // live set bounded with a ring of removals so every timed query
  // scans a fixed-size corpus, and compacts periodically so tombstone
  // accumulation stays bounded too — the shape a real serving loop
  // has, and the shape that makes the measurement stable.
  std::vector<KernelProfile> IngestPool;
  for (size_t I = 0; I < std::min<size_t>(N, 256); ++I)
    IngestPool.push_back(kernel().profile(Corpus[I]));
  constexpr size_t IngestWindow = 256;
  std::atomic<bool> Stop{false};
  std::atomic<size_t> Appended{0};
  std::thread Writer([&] {
    size_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      Service.add("in" + std::to_string(I), "ingest",
                  IngestPool[I % IngestPool.size()]);
      if (I >= IngestWindow)
        Service.remove("in" + std::to_string(I - IngestWindow));
      if (I % 2048 == 2047)
        Service.compact(1);
      ++I;
      Appended.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (auto _ : State)
    benchmark::DoNotOptimize(Service.query(Query, 5, true, 1));
  Stop.store(true);
  Writer.join();
  State.counters["appends"] =
      benchmark::Counter(static_cast<double>(Appended.load()));
}
BENCHMARK(BM_ServiceQueryWhileAppend)->Arg(1024)->Arg(8192);

/// The quiesced baseline for the same service: identical snapshot
/// query machinery, no writer running.
void BM_ServiceQueryQuiesced(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  IndexService Service = IndexService::fromIndex(
      ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N}));
  KernelProfile Query = kernel().profile(Corpus[N]);
  for (auto _ : State)
    benchmark::DoNotOptimize(Service.query(Query, 5, true, 1));
}
BENCHMARK(BM_ServiceQueryQuiesced)->Arg(1024)->Arg(8192);

/// Per-process scratch path: concurrent bench runs (nightly job plus
/// a developer run) must not truncate each other's cache mid-load.
std::string scratchCachePath(const char *Tag) {
  return "/tmp/kast_perf_index_" + std::string(Tag) + "." +
         std::to_string(static_cast<long>(::getpid())) + ".kpc";
}

/// Loading an N-profile cache in the v2 block format: the offset,
/// hash and value arrays arrive as three bulk reads straight into the
/// ProfileStore arena.
void BM_IndexLoadV2(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N);
  ProfileIndex Index = ProfileIndex::build(kernel(), Corpus);
  std::string Path = scratchCachePath("v2");
  if (Status S = Index.save(Path); !S) {
    std::remove(Path.c_str());
    State.SkipWithError(S.message().c_str());
    return;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(ProfileIndex::load(Path));
  std::remove(Path.c_str());
}
BENCHMARK(BM_IndexLoadV2)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

/// The same load through the per-entry v1 format — the copy-by-copy
/// baseline the block layout replaces.
void BM_IndexLoadV1(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N);
  ProfileIndex Index = ProfileIndex::build(kernel(), Corpus);
  std::string Path = scratchCachePath("v1");
  if (Status S = writeProfileCacheFile(Index.toCache(), Path); !S) {
    std::remove(Path.c_str());
    State.SkipWithError(S.message().c_str());
    return;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(ProfileIndex::load(Path));
  std::remove(Path.c_str());
}
BENCHMARK(BM_IndexLoadV1)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

/// Per-process restart scratch directories, written once per (N,
/// format) and removed at process exit. The write happens outside the
/// timed region; the benchmark measures the *reader's* path.
struct RestartDirs {
  std::map<std::string, bool> Ready;
  ~RestartDirs() {
    std::error_code Ec;
    for (const auto &[Dir, Ok] : Ready)
      std::filesystem::remove_all(Dir, Ec);
  }
};

/// Restart-to-first-answer: everything a serving process does between
/// exec and its first top-5 response — open the persisted shards,
/// restore an IndexService, answer one query. The v2 leg pays the
/// O(entries) block copy on every restart; the v3 flat-image leg
/// validates headers and O(N) metadata, mmaps the entry arrays, and
/// faults in only the pages the first query touches — so it stays
/// roughly flat as N grows. Args are {N, v3}.
void BM_RestartToFirstQuery(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const bool V3 = State.range(1) != 0;
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  const std::string Dir = "/tmp/kast_perf_index_restart." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(N) + (V3 ? ".v3" : ".v2");
  static RestartDirs Dirs;
  if (!Dirs.Ready.count(Dir)) {
    IndexService Service = IndexService::fromIndex(
        ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N}));
    std::vector<ProfileStoreCache> Caches = Service.toShardCaches();
    Status S = V3 ? writeShardedProfileImages(Caches, Dir)
                  : writeShardedProfileCaches(Caches, Dir);
    if (!S) {
      State.SkipWithError(S.message().c_str());
      return;
    }
    Dirs.Ready[Dir] = true;
  }
  const KernelProfile Query = kernel().profile(Corpus[N]);
  // The timed total is the whole restart-to-first-answer path; the
  // open/query split rides along as counters because the first top-5
  // answer is an O(N) exact scan both formats pay identically — the
  // format gap lives in open_ms.
  double OpenMs = 0.0, QueryMs = 0.0;
  using Clock = std::chrono::steady_clock;
  for (auto _ : State) {
    const Clock::time_point T0 = Clock::now();
    Expected<std::vector<ProfileStoreCache>> Caches =
        V3 ? loadShardedProfileImages(Dir) : loadShardedProfileCaches(Dir);
    if (!Caches) {
      State.SkipWithError(Caches.message().c_str());
      return;
    }
    Expected<IndexService> Service =
        IndexService::fromShardCaches(Caches.take());
    if (!Service) {
      State.SkipWithError(Service.message().c_str());
      return;
    }
    const Clock::time_point T1 = Clock::now();
    benchmark::DoNotOptimize(Service->query(Query, 5, true, 1));
    const Clock::time_point T2 = Clock::now();
    OpenMs += std::chrono::duration<double, std::milli>(T1 - T0).count();
    QueryMs += std::chrono::duration<double, std::milli>(T2 - T1).count();
  }
  State.counters["open_ms"] =
      benchmark::Counter(OpenMs, benchmark::Counter::kAvgIterations);
  State.counters["first_query_ms"] =
      benchmark::Counter(QueryMs, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RestartToFirstQuery)
    ->ArgNames({"n", "v3"})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Unit(benchmark::kMillisecond);

/// Routed restart-to-first-routed-answer: Args are {n, mapped}. The
/// sidecar leg (mapped=0) restores v2 caches, then replays the .route
/// sidecars — the router state deserializes, but the posting lists are
/// rebuilt O(N) on every restart. The mapped leg (mapped=1) opens flat
/// images whose routing arenas are first-class sections: validate
/// headers and O(centroids) metadata, mmap, alias — no k-means refit,
/// no posting rebuild — so its open cost stays roughly flat in N.
/// The fits / posting_rebuilds counters are per-iteration probe-counter
/// deltas pinning that claim in BENCH_index.json.
void BM_RoutedRestartToFirstQuery(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const bool Mapped = State.range(1) != 0;
  const std::vector<WeightedString> &Corpus =
      clusteredCorpus(N + RoutedQueryCount);
  const std::string Dir = "/tmp/kast_perf_index_routed." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(N) + (Mapped ? ".kfi" : ".kpc");
  static RestartDirs Dirs;
  if (!Dirs.Ready.count(Dir)) {
    IndexService Service = IndexService::fromIndex(
        ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N}));
    Service.rebuildRouting(sweepRouting(/*DfPct=*/100));
    std::vector<ProfileStoreCache> Caches = Service.toShardCaches();
    Status S = Mapped ? writeShardedProfileImages(Caches, Dir)
                      : writeShardedProfileCaches(Caches, Dir);
    if (S && !Mapped)
      S = Service.saveShardRouting(Dir);
    if (!S) {
      State.SkipWithError(S.message().c_str());
      return;
    }
    Dirs.Ready[Dir] = true;
  }
  const KernelProfile Query = kernel().profile(Corpus[N]);
  double OpenMs = 0.0, QueryMs = 0.0;
  const uint64_t Fits0 = kmeansFitCount();
  const uint64_t Rebuilds0 = postingRebuildCount();
  using Clock = std::chrono::steady_clock;
  for (auto _ : State) {
    const Clock::time_point T0 = Clock::now();
    Expected<std::vector<ProfileStoreCache>> Caches =
        Mapped ? loadShardedProfileImages(Dir) : loadShardedProfileCaches(Dir);
    if (!Caches) {
      State.SkipWithError(Caches.message().c_str());
      return;
    }
    Expected<IndexService> Service =
        IndexService::fromShardCaches(Caches.take());
    if (!Service) {
      State.SkipWithError(Service.message().c_str());
      return;
    }
    if (!Mapped) {
      if (Status S = Service->loadShardRouting(Dir); !S) {
        State.SkipWithError(S.message().c_str());
        return;
      }
    }
    const Clock::time_point T1 = Clock::now();
    benchmark::DoNotOptimize(Service->queryApprox(Query, 5, true, 0, 1));
    const Clock::time_point T2 = Clock::now();
    OpenMs += std::chrono::duration<double, std::milli>(T1 - T0).count();
    QueryMs += std::chrono::duration<double, std::milli>(T2 - T1).count();
  }
  State.counters["open_ms"] =
      benchmark::Counter(OpenMs, benchmark::Counter::kAvgIterations);
  State.counters["first_query_ms"] =
      benchmark::Counter(QueryMs, benchmark::Counter::kAvgIterations);
  State.counters["fits"] = benchmark::Counter(
      static_cast<double>(kmeansFitCount() - Fits0),
      benchmark::Counter::kAvgIterations);
  State.counters["posting_rebuilds"] = benchmark::Counter(
      static_cast<double>(postingRebuildCount() - Rebuilds0),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RoutedRestartToFirstQuery)
    ->ArgNames({"n", "mapped"})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1})
    ->Args({32768, 0})
    ->Args({32768, 1})
    ->Unit(benchmark::kMillisecond);

#ifdef __linux__
/// Rss and Pss (in KiB) that /proc/self/smaps attributes to mappings
/// of \p PathSuffix. Pss divides each shared page by its mapper count,
/// so (sum of Rss) / (sum of Pss) across processes is the page-cache
/// sharing factor.
std::pair<uint64_t, uint64_t> smapsRssPss(const std::string &PathSuffix) {
  std::FILE *F = std::fopen("/proc/self/smaps", "r");
  if (!F)
    return {0, 0};
  uint64_t Rss = 0, Pss = 0;
  bool InMapping = false;
  char Line[512];
  while (std::fgets(Line, sizeof(Line), F)) {
    std::string L(Line);
    if (!L.empty() && L.back() == '\n')
      L.pop_back();
    // Mapping headers lead with the "start-end" address range;
    // attribute lines lead with a "Key:" keyword. Every header resets
    // the in-mapping flag, so anonymous regions between matches never
    // leak into the totals.
    const size_t FirstSpace = L.find(' ');
    const bool Header = FirstSpace != std::string::npos &&
                        L.find('-') != std::string::npos &&
                        L.find('-') < FirstSpace;
    if (Header) {
      InMapping = L.size() >= PathSuffix.size() &&
                  L.compare(L.size() - PathSuffix.size(), PathSuffix.size(),
                            PathSuffix) == 0;
    } else if (InMapping &&
               (L.rfind("Rss:", 0) == 0 || L.rfind("Pss:", 0) == 0)) {
      unsigned long long KiB = 0;
      std::sscanf(L.c_str(), "%*[^0-9]%llu", &KiB);
      (L[0] == 'R' ? Rss : Pss) += KiB;
    }
  }
  std::fclose(F);
  return {Rss, Pss};
}

/// The multi-process memory claim measured directly: several processes
/// map the same flat image and touch every byte; MAP_SHARED read-only
/// mappings of one file are the same physical page-cache pages, so
/// the per-process *proportional* set (Pss) collapses while each
/// process's Rss reports the full arena. Counters: summed Rss and Pss
/// over the children in MiB, and the sharing factor between them. A
/// v2 restart has no shared mode — every process owns a private copy,
/// i.e. the rss_mb number per process, with no collapse.
void BM_MappedImageSharedRss(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  constexpr int Procs = 4;
  const std::vector<WeightedString> &Corpus = randomCorpus(N);
  const std::string Path =
      "/tmp/kast_perf_index_shared." +
      std::to_string(static_cast<long>(::getpid())) + ".kfi";
  {
    ProfileIndex Index = ProfileIndex::build(kernel(), Corpus);
    IndexService Service = IndexService::fromIndex(Index, {.Shards = 1});
    std::vector<ProfileStoreCache> Caches = Service.toShardCaches();
    if (Status S = writeProfileStoreImageFile(Caches[0], Path); !S) {
      State.SkipWithError(S.message().c_str());
      return;
    }
  }

  uint64_t SumRss = 0, SumPss = 0;
  bool Failed = false;
  for (auto _ : State) {
    State.PauseTiming();
    SumRss = SumPss = 0;
    int Pipes[Procs][2];
    pid_t Pids[Procs];
    // Children all map the image and hold it resident while each
    // samples its own smaps — sampling must overlap, or the pages are
    // not shared at sample time. A barrier pipe releases them
    // together after the last one signals readiness.
    int Barrier[2], ReadyPipe[2];
    if (::pipe(Barrier) != 0 || ::pipe(ReadyPipe) != 0) {
      State.SkipWithError("pipe failed");
      return;
    }
    State.ResumeTiming();
    for (int P = 0; P < Procs; ++P) {
      if (::pipe(Pipes[P]) != 0) {
        State.SkipWithError("pipe failed");
        return;
      }
      Pids[P] = ::fork();
      if (Pids[P] == 0) {
        Expected<ProfileStoreCache> Cache = readProfileStoreImageFile(Path);
        uint64_t Touched = 0;
        if (Cache) {
          // Fault in every entry page.
          for (uint64_t H : Cache->Store.hashes())
            Touched += H;
          for (double V : Cache->Store.values())
            Touched += static_cast<uint64_t>(V);
        }
        benchmark::DoNotOptimize(Touched);
        char Token = 'r';
        (void)!::write(ReadyPipe[1], &Token, 1);
        (void)!::read(Barrier[0], &Token, 1); // Wait for all siblings.
        auto [Rss, Pss] = smapsRssPss(".kfi");
        uint64_t Out[2] = {Rss, Pss};
        (void)!::write(Pipes[P][1], Out, sizeof(Out));
        ::_exit(Cache ? 0 : 1);
      }
    }
    for (int P = 0; P < Procs; ++P) {
      char Token;
      if (::read(ReadyPipe[0], &Token, 1) != 1)
        Failed = true;
    }
    for (int P = 0; P < Procs; ++P) {
      char Token = 'g';
      (void)!::write(Barrier[1], &Token, 1);
    }
    for (int P = 0; P < Procs; ++P) {
      uint64_t In[2] = {0, 0};
      if (::read(Pipes[P][0], In, sizeof(In)) != sizeof(In))
        Failed = true;
      SumRss += In[0];
      SumPss += In[1];
      ::close(Pipes[P][0]);
      ::close(Pipes[P][1]);
      int WaitStatus = 0;
      ::waitpid(Pids[P], &WaitStatus, 0);
      Failed = Failed || WaitStatus != 0;
    }
    ::close(Barrier[0]);
    ::close(Barrier[1]);
    ::close(ReadyPipe[0]);
    ::close(ReadyPipe[1]);
  }
  std::remove(Path.c_str());
  if (Failed) {
    State.SkipWithError("child process failed");
    return;
  }
  State.counters["procs"] = benchmark::Counter(Procs);
  State.counters["sum_rss_mb"] =
      benchmark::Counter(static_cast<double>(SumRss) / 1024.0);
  State.counters["sum_pss_mb"] =
      benchmark::Counter(static_cast<double>(SumPss) / 1024.0);
  State.counters["share_factor"] = benchmark::Counter(
      SumPss ? static_cast<double>(SumRss) / static_cast<double>(SumPss)
             : 0.0);
}
BENCHMARK(BM_MappedImageSharedRss)->Arg(8192)->Unit(benchmark::kMillisecond);
#endif // __linux__

} // namespace

// BENCH_LARGE=1 adds the million-profile routed restart legs — minutes
// of one-time corpus/fit setup, so they are opt-in rather than part of
// the default suite the nightly job and BENCH_index.json track.
int main(int argc, char **argv) {
  if (const char *Large = std::getenv("BENCH_LARGE"); Large && Large[0] == '1')
    ::benchmark::RegisterBenchmark("BM_RoutedRestartToFirstQuery",
                                   BM_RoutedRestartToFirstQuery)
        ->ArgNames({"n", "mapped"})
        ->Args({1000000, 0})
        ->Args({1000000, 1})
        ->Unit(benchmark::kMillisecond);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
