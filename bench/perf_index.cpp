//===- bench/perf_index.cpp - retrieval-scale growth benchmarks ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The corpus-growth story in numbers: extending an existing Gram matrix
// with KernelMatrix::appendRows versus recomputing it from scratch,
// top-k profile-index queries (single and batched over the ProfileStore
// arena) versus the full-matrix detour they replace, and v2 block-cache
// loads versus the per-entry v1 format. Args are {N, M}: N
// already-indexed strings, M arriving ones.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "index/IndexService.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <thread>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

/// Random corpus of N strings (length 64, alphabet 12); one per size.
const std::vector<WeightedString> &randomCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 7919 + 13);
    for (size_t I = 0; I < N; ++I)
      It->second.push_back(randomString(Table, R, 64, 12));
  }
  return It->second;
}

BlendedSpectrumKernel &kernel() {
  static BlendedSpectrumKernel K(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  return K;
}

/// Growing an N-string Gram by M rows: only the N·M + M(M+1)/2 new
/// entries are evaluated; the base build runs outside the timed region.
void BM_GramAppendRows(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const size_t M = static_cast<size_t>(State.range(1));
  const std::vector<WeightedString> &All = randomCorpus(N + M);
  std::vector<WeightedString> Base(All.begin(), All.begin() + N);
  std::vector<WeightedString> Extra(All.begin() + N, All.end());
  for (auto _ : State) {
    State.PauseTiming();
    KernelMatrix Gram(kernel(), {});
    Gram.appendRows(Base);
    State.ResumeTiming();
    Gram.appendRows(Extra);
    benchmark::DoNotOptimize(Gram.raw().data().data());
  }
}
BENCHMARK(BM_GramAppendRows)
    ->Args({96, 32})
    ->Args({256, 32})
    ->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

/// The alternative appendRows replaces: recomputing the whole
/// (N+M)×(N+M) matrix when M strings arrive.
void BM_GramRecomputeAfterArrival(benchmark::State &State) {
  const std::vector<WeightedString> &All =
      randomCorpus(static_cast<size_t>(State.range(0)) +
                   static_cast<size_t>(State.range(1)));
  KernelMatrixOptions Options;
  Options.Normalize = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(computeKernelMatrix(kernel(), All, Options));
}
BENCHMARK(BM_GramRecomputeAfterArrival)
    ->Args({96, 32})
    ->Args({256, 32})
    ->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

/// One top-k query against an N-string index: O(N · dot), the
/// retrieval hot path.
void BM_IndexQueryTop5(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  ProfileIndex Index = ProfileIndex::build(
      kernel(), {Corpus.begin(), Corpus.begin() + N});
  KernelProfile Query = kernel().profile(Corpus[N]);
  for (auto _ : State)
    benchmark::DoNotOptimize(Index.query(Query, 5));
}
BENCHMARK(BM_IndexQueryTop5)->Arg(128)->Arg(1024)->Arg(8192);

/// Batched top-k queries over the arena: Args are {N, B} — B queries
/// against an N-string index through queryBatch, which scores views
/// straight off the store's flat hash/value arrays and reuses one
/// O(N) candidate buffer per worker thread across the whole batch.
void BM_IndexQueryBatchTop5(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const size_t B = static_cast<size_t>(State.range(1));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + B);
  ProfileIndex Index = ProfileIndex::build(
      kernel(), {Corpus.begin(), Corpus.begin() + N});
  std::vector<KernelProfile> Queries;
  for (size_t I = 0; I < B; ++I)
    Queries.push_back(kernel().profile(Corpus[N + I]));
  for (auto _ : State)
    benchmark::DoNotOptimize(Index.queryBatch(Queries, 5));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(B));
}
BENCHMARK(BM_IndexQueryBatchTop5)
    ->Args({1024, 64})
    ->Args({8192, 64})
    ->Unit(benchmark::kMillisecond);

/// Building the index itself (N profiles + norms, parallel).
void BM_IndexBuild(benchmark::State &State) {
  const std::vector<WeightedString> &Corpus =
      randomCorpus(static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(ProfileIndex::build(kernel(), Corpus));
}
BENCHMARK(BM_IndexBuild)->Arg(128)->Arg(1024)->Unit(benchmark::kMillisecond);

/// Query latency *during* concurrent ingest — the serving-layer claim
/// in one number. An IndexService starts with N entries; a background
/// writer thread appends continuously (removing every 8th of its own
/// adds) for the whole measurement, while the timed loop runs top-5
/// queries through fresh snapshots. Compare against BM_IndexQueryTop5
/// at the same N: the gap is the cost of snapshot isolation plus
/// whatever cache pressure the writer induces. A bare ProfileIndex
/// cannot run this benchmark at all — add() invalidates the views a
/// concurrent query is scanning.
void BM_ServiceQueryWhileAppend(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  IndexService Service = IndexService::fromIndex(
      ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N}));
  KernelProfile Query = kernel().profile(Corpus[N]);

  // The ingest stream reuses pre-built profiles round-robin under
  // fresh names (publish cost, not profile construction), holds the
  // live set bounded with a ring of removals so every timed query
  // scans a fixed-size corpus, and compacts periodically so tombstone
  // accumulation stays bounded too — the shape a real serving loop
  // has, and the shape that makes the measurement stable.
  std::vector<KernelProfile> IngestPool;
  for (size_t I = 0; I < std::min<size_t>(N, 256); ++I)
    IngestPool.push_back(kernel().profile(Corpus[I]));
  constexpr size_t IngestWindow = 256;
  std::atomic<bool> Stop{false};
  std::atomic<size_t> Appended{0};
  std::thread Writer([&] {
    size_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      Service.add("in" + std::to_string(I), "ingest",
                  IngestPool[I % IngestPool.size()]);
      if (I >= IngestWindow)
        Service.remove("in" + std::to_string(I - IngestWindow));
      if (I % 2048 == 2047)
        Service.compact(1);
      ++I;
      Appended.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (auto _ : State)
    benchmark::DoNotOptimize(Service.query(Query, 5, true, 1));
  Stop.store(true);
  Writer.join();
  State.counters["appends"] =
      benchmark::Counter(static_cast<double>(Appended.load()));
}
BENCHMARK(BM_ServiceQueryWhileAppend)->Arg(1024)->Arg(8192);

/// The quiesced baseline for the same service: identical snapshot
/// query machinery, no writer running.
void BM_ServiceQueryQuiesced(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  IndexService Service = IndexService::fromIndex(
      ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N}));
  KernelProfile Query = kernel().profile(Corpus[N]);
  for (auto _ : State)
    benchmark::DoNotOptimize(Service.query(Query, 5, true, 1));
}
BENCHMARK(BM_ServiceQueryQuiesced)->Arg(1024)->Arg(8192);

/// Per-process scratch path: concurrent bench runs (nightly job plus
/// a developer run) must not truncate each other's cache mid-load.
std::string scratchCachePath(const char *Tag) {
  return "/tmp/kast_perf_index_" + std::string(Tag) + "." +
         std::to_string(static_cast<long>(::getpid())) + ".kpc";
}

/// Loading an N-profile cache in the v2 block format: the offset,
/// hash and value arrays arrive as three bulk reads straight into the
/// ProfileStore arena.
void BM_IndexLoadV2(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N);
  ProfileIndex Index = ProfileIndex::build(kernel(), Corpus);
  std::string Path = scratchCachePath("v2");
  if (Status S = Index.save(Path); !S) {
    std::remove(Path.c_str());
    State.SkipWithError(S.message().c_str());
    return;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(ProfileIndex::load(Path));
  std::remove(Path.c_str());
}
BENCHMARK(BM_IndexLoadV2)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

/// The same load through the per-entry v1 format — the copy-by-copy
/// baseline the block layout replaces.
void BM_IndexLoadV1(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N);
  ProfileIndex Index = ProfileIndex::build(kernel(), Corpus);
  std::string Path = scratchCachePath("v1");
  if (Status S = writeProfileCacheFile(Index.toCache(), Path); !S) {
    std::remove(Path.c_str());
    State.SkipWithError(S.message().c_str());
    return;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(ProfileIndex::load(Path));
  std::remove(Path.c_str());
}
BENCHMARK(BM_IndexLoadV1)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
