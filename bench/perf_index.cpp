//===- bench/perf_index.cpp - retrieval-scale growth benchmarks ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The corpus-growth story in numbers: extending an existing Gram matrix
// with KernelMatrix::appendRows versus recomputing it from scratch, and
// top-k profile-index queries versus the full-matrix detour they
// replace. Args are {N, M}: N already-indexed strings, M arriving ones.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "util/Rng.h"

#include <benchmark/benchmark.h>

#include <map>

using namespace kast;

namespace {

WeightedString randomString(const std::shared_ptr<TokenTable> &Table,
                            Rng &R, size_t Length, uint32_t Alphabet) {
  WeightedString S(Table);
  for (size_t I = 0; I < Length; ++I)
    S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
             R.uniformInt(1, 16));
  return S;
}

/// Random corpus of N strings (length 64, alphabet 12); one per size.
const std::vector<WeightedString> &randomCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 7919 + 13);
    for (size_t I = 0; I < N; ++I)
      It->second.push_back(randomString(Table, R, 64, 12));
  }
  return It->second;
}

BlendedSpectrumKernel &kernel() {
  static BlendedSpectrumKernel K(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  return K;
}

/// Growing an N-string Gram by M rows: only the N·M + M(M+1)/2 new
/// entries are evaluated; the base build runs outside the timed region.
void BM_GramAppendRows(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const size_t M = static_cast<size_t>(State.range(1));
  const std::vector<WeightedString> &All = randomCorpus(N + M);
  std::vector<WeightedString> Base(All.begin(), All.begin() + N);
  std::vector<WeightedString> Extra(All.begin() + N, All.end());
  for (auto _ : State) {
    State.PauseTiming();
    KernelMatrix Gram(kernel(), {});
    Gram.appendRows(Base);
    State.ResumeTiming();
    Gram.appendRows(Extra);
    benchmark::DoNotOptimize(Gram.raw().data().data());
  }
}
BENCHMARK(BM_GramAppendRows)
    ->Args({96, 32})
    ->Args({256, 32})
    ->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

/// The alternative appendRows replaces: recomputing the whole
/// (N+M)×(N+M) matrix when M strings arrive.
void BM_GramRecomputeAfterArrival(benchmark::State &State) {
  const std::vector<WeightedString> &All =
      randomCorpus(static_cast<size_t>(State.range(0)) +
                   static_cast<size_t>(State.range(1)));
  KernelMatrixOptions Options;
  Options.Normalize = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(computeKernelMatrix(kernel(), All, Options));
}
BENCHMARK(BM_GramRecomputeAfterArrival)
    ->Args({96, 32})
    ->Args({256, 32})
    ->Args({1024, 32})
    ->Unit(benchmark::kMillisecond);

/// One top-k query against an N-string index: O(N · dot), the
/// retrieval hot path.
void BM_IndexQueryTop5(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const std::vector<WeightedString> &Corpus = randomCorpus(N + 1);
  ProfileIndex Index = ProfileIndex::build(
      kernel(), {Corpus.begin(), Corpus.begin() + N});
  KernelProfile Query = kernel().profile(Corpus[N]);
  for (auto _ : State)
    benchmark::DoNotOptimize(Index.query(Query, 5));
}
BENCHMARK(BM_IndexQueryTop5)->Arg(128)->Arg(1024)->Arg(8192);

/// Building the index itself (N profiles + norms, parallel).
void BM_IndexBuild(benchmark::State &State) {
  const std::vector<WeightedString> &Corpus =
      randomCorpus(static_cast<size_t>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(ProfileIndex::build(kernel(), Corpus));
}
BENCHMARK(BM_IndexBuild)->Arg(128)->Arg(1024)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
