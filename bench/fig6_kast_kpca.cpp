//===- bench/fig6_kast_kpca.cpp - Figure 6 reproduction --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 6: "Kernel PCA for Kast Spectrum Kernel using byte
// information (cut weight = 2)". Expected geometry: A and B form their
// own clouds; C and D overlap in one cloud; no example sits in a
// foreign cloud.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "core/KastKernel.h"

int main() {
  using namespace kast;
  FigureContext Ctx = buildFigureContext();
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = paperGram(Kernel, Ctx.WithBytes);
  printKpcaFigure(
      "Figure 6: Kernel PCA, Kast Spectrum Kernel, byte info, cut = 2",
      K, Ctx.WithBytes);
  return 0;
}
