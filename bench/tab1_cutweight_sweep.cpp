//===- bench/tab1_cutweight_sweep.cpp - §4.2/4.3 textual claims ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The paper's evaluation text (§4.1-4.3) is a matrix of qualitative
// claims over cut weights {2^1 .. 2^10}, the two string
// representations, and three kernels. This harness regenerates that
// matrix as one table per kernel/representation with a row per cut
// weight, reporting the 3-cut composition, purity, ARI, and whether
// the paper's expected groupings appear:
//
//  * Kast + bytes: 3 groups {A},{B},{C u D} at *small* cuts, no
//    misplacements; very large cuts lose structure;
//  * Kast + no bytes: only {B} vs {A,C,D} at small cuts (2 clusters);
//  * Blended: at best {A} vs {B,C,D}; never the 3 paper groups;
//  * k-Spectrum: "not successful at finding an acceptable clustering".
//
// Classic (count-based) baselines are cut-independent and printed as a
// single row.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "core/KastKernel.h"
#include "kernels/SpectrumKernels.h"
#include "util/TextTable.h"

#include <cstdio>
#include <memory>

using namespace kast;

namespace {

const LabelGrouping ThreeGroups = {{"A"}, {"B"}, {"C", "D"}};
const LabelGrouping OnlyB = {{"B"}, {"A", "C", "D"}};
const LabelGrouping OnlyA = {{"A"}, {"B", "C", "D"}};

/// One sweep row: cluster the Gram matrix and report cut outcomes.
void addRow(TextTable &Table, const std::string &CutLabel,
            const StringKernel &Kernel, const LabeledDataset &Data) {
  Matrix K = paperGram(Kernel, Data);
  Dendrogram D = clusterHierarchical(similarityToDistance(K));
  std::vector<size_t> At2 = D.cutToClusters(2);
  std::vector<size_t> At3 = D.cutToClusters(3);

  std::string Outcome = "-";
  if (matchesGrouping(At3, Data.labels(), ThreeGroups))
    Outcome = "A|B|CD";
  else if (matchesGrouping(At2, Data.labels(), OnlyB))
    Outcome = "B|ACD";
  else if (matchesGrouping(At2, Data.labels(), OnlyA))
    Outcome = "A|BCD";

  Table.addRow({CutLabel, compositionString(At3, Data),
                formatDouble(purity(At3, Data.labels()), 3),
                formatDouble(adjustedRandIndex(At3, Data.labels()), 3),
                std::to_string(
                    misplacedCount(At3, Data.labels(), ThreeGroups)),
                Outcome});
}

void sweepKast(const LabeledDataset &Data, const char *Name) {
  std::printf("--- Kast Spectrum Kernel, %s ---\n", Name);
  TextTable Table;
  Table.setHeader({"cut", "3-cut composition", "purity", "ARI",
                   "misplaced", "grouping"});
  for (uint64_t Exp = 1; Exp <= 10; ++Exp) {
    uint64_t Cut = 1ULL << Exp;
    KastSpectrumKernel Kernel({Cut});
    addRow(Table, std::to_string(Cut), Kernel, Data);
  }
  std::printf("%s\n", Table.render().c_str());
}

void sweepWeightedBaseline(const LabeledDataset &Data, const char *Name,
                           bool Blended) {
  std::printf("--- %s (weighted), %s ---\n",
              Blended ? "Blended Spectrum" : "k-Spectrum", Name);
  TextTable Table;
  Table.setHeader({"cut", "3-cut composition", "purity", "ARI",
                   "misplaced", "grouping"});
  for (uint64_t Exp = 1; Exp <= 10; ++Exp) {
    uint64_t Cut = 1ULL << Exp;
    std::unique_ptr<StringKernel> Kernel;
    if (Blended)
      Kernel = std::make_unique<BlendedSpectrumKernel>(3, 1.25, true, Cut);
    else
      Kernel = std::make_unique<KSpectrumKernel>(3, true, Cut);
    addRow(Table, std::to_string(Cut), *Kernel, Data);
  }
  std::printf("%s\n", Table.render().c_str());
}

void classicBaselines(const LabeledDataset &Data, const char *Name) {
  std::printf("--- classic count-based baselines (cut-independent), "
              "%s ---\n",
              Name);
  TextTable Table;
  Table.setHeader({"kernel", "3-cut composition", "purity", "ARI",
                   "misplaced", "grouping"});
  BlendedSpectrumKernel Blended(3, 1.25);
  KSpectrumKernel KSpec(3);
  BagOfTokensKernel Bag;
  addRow(Table, "blended k=3 l=1.25", Blended, Data);
  addRow(Table, "k-spectrum k=3", KSpec, Data);
  addRow(Table, "bag-of-tokens", Bag, Data);
  std::printf("%s\n", Table.render().c_str());
}

} // namespace

int main() {
  std::printf("=== Table 1: cut-weight sweep, all kernels, both "
              "representations ===\n");
  std::printf("(paper §4.2-4.3; cut weights 2^1 .. 2^10)\n\n");
  FigureContext Ctx = buildFigureContext();

  sweepKast(Ctx.WithBytes, "byte information");
  sweepKast(Ctx.NoBytes, "no byte information");
  sweepWeightedBaseline(Ctx.WithBytes, "byte information",
                        /*Blended=*/true);
  sweepWeightedBaseline(Ctx.NoBytes, "no byte information",
                        /*Blended=*/true);
  sweepWeightedBaseline(Ctx.WithBytes, "byte information",
                        /*Blended=*/false);
  classicBaselines(Ctx.WithBytes, "byte information");
  classicBaselines(Ctx.NoBytes, "no byte information");
  return 0;
}
