//===- bench/FigureCommon.cpp - Shared figure-bench plumbing ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"

#include "core/Pipeline.h"
#include "linalg/Eigen.h"
#include "ml/KernelPca.h"
#include "util/AsciiPlot.h"
#include "util/TextTable.h"

#include <cstdio>
#include <map>

using namespace kast;

FigureContext kast::buildFigureContext() {
  FigureContext Ctx;
  Ctx.Corpus = generateCorpus();
  Ctx.WithBytes = convertCorpus(Pipeline::withBytes(), Ctx.Corpus);
  Ctx.NoBytes = convertCorpus(Pipeline::withoutBytes(), Ctx.Corpus);
  return Ctx;
}

Matrix kast::paperGram(const StringKernel &Kernel,
                       const LabeledDataset &Data) {
  KernelMatrixOptions Options;
  Options.Normalize = true;
  Options.RepairPsd = true; // §4.1 negative-eigenvalue repair.
  return computeKernelMatrix(Kernel, Data.strings(), Options);
}

char kast::categoryGlyph(const std::string &Label) {
  return Label.empty() ? '?' : Label[0];
}

void kast::printKpcaFigure(const std::string &Title, const Matrix &K,
                           const LabeledDataset &Data) {
  std::printf("=== %s ===\n", Title.c_str());
  KernelPcaResult Pca = kernelPca(K, 2);
  if (Pca.Projections.cols() < 2) {
    std::printf("fewer than two positive components; cannot plot\n");
    return;
  }
  std::printf("explained variance: PC1 %.1f%%  PC2 %.1f%%\n",
              100.0 * Pca.ExplainedVariance[0],
              100.0 * Pca.ExplainedVariance[1]);

  AsciiScatter Plot(72, 24);
  for (size_t I = 0; I < Data.size(); ++I)
    Plot.addPoint(Pca.Projections.at(I, 0), Pca.Projections.at(I, 1),
                  categoryGlyph(Data.label(I)));
  std::printf("%s", Plot.render().c_str());

  // Per-category centroids summarize the geometry numerically.
  TextTable Table;
  Table.setHeader({"category", "n", "centroid PC1", "centroid PC2"});
  for (const std::string &Label : Data.labelSet()) {
    double X = 0.0, Y = 0.0;
    std::vector<size_t> Idx = Data.indicesOf(Label);
    for (size_t I : Idx) {
      X += Pca.Projections.at(I, 0);
      Y += Pca.Projections.at(I, 1);
    }
    Table.addRow({Label, std::to_string(Idx.size()),
                  formatDouble(X / static_cast<double>(Idx.size())),
                  formatDouble(Y / static_cast<double>(Idx.size()))});
  }
  std::printf("%s", Table.render().c_str());

  std::printf("coordinates (name pc1 pc2):\n");
  for (size_t I = 0; I < Data.size(); ++I)
    std::printf("  %-8s %9.4f %9.4f\n", Data.string(I).name().c_str(),
                Pca.Projections.at(I, 0), Pca.Projections.at(I, 1));
}

std::string kast::compositionString(const std::vector<size_t> &Flat,
                                    const LabeledDataset &Data) {
  std::map<size_t, std::map<std::string, size_t>> Comp;
  for (size_t I = 0; I < Flat.size(); ++I)
    ++Comp[Flat[I]][Data.label(I)];
  std::string Out;
  for (const auto &[Cluster, Members] : Comp) {
    if (!Out.empty())
      Out += " | ";
    Out += "{";
    bool First = true;
    for (const auto &[Label, Count] : Members) {
      if (!First)
        Out += " ";
      Out += Label + ":" + std::to_string(Count);
      First = false;
    }
    Out += "}";
  }
  return Out;
}

void kast::printDendrogramFigure(const std::string &Title, const Matrix &K,
                                 const LabeledDataset &Data,
                                 const LabelGrouping &ExpectedGroups,
                                 size_t ExpectedCut) {
  std::printf("=== %s ===\n", Title.c_str());
  Dendrogram D = clusterHierarchical(similarityToDistance(K));

  std::vector<std::string> LeafLabels;
  LeafLabels.reserve(Data.size());
  for (size_t I = 0; I < Data.size(); ++I)
    LeafLabels.push_back(Data.string(I).name());
  std::printf("single-linkage dendrogram:\n%s",
              renderDendrogramAscii(D, LeafLabels).c_str());

  Matrix Dist = similarityToDistance(K);
  TextTable Table;
  Table.setHeader({"clusters", "composition", "purity", "ARI",
                   "misplaced", "silhouette"});
  for (size_t Cut : {2, 3, 4}) {
    std::vector<size_t> Flat = D.cutToClusters(Cut);
    Table.addRow({std::to_string(Cut), compositionString(Flat, Data),
                  formatDouble(purity(Flat, Data.labels()), 3),
                  formatDouble(adjustedRandIndex(Flat, Data.labels()), 3),
                  std::to_string(misplacedCount(Flat, Data.labels(),
                                                ExpectedGroups)),
                  formatDouble(silhouetteScore(Dist.data(), Data.size(),
                                               Flat),
                               3)});
  }
  std::printf("%s", Table.render().c_str());

  std::vector<size_t> Flat = D.cutToClusters(ExpectedCut);
  bool Match = matchesGrouping(Flat, Data.labels(), ExpectedGroups);
  std::string Expected;
  for (const auto &Group : ExpectedGroups) {
    if (!Expected.empty())
      Expected += " | ";
    Expected += "{";
    for (size_t I = 0; I < Group.size(); ++I)
      Expected += (I ? " " : "") + Group[I];
    Expected += "}";
  }
  std::printf("expected grouping at %zu clusters: %s -> %s\n",
              ExpectedCut, Expected.c_str(),
              Match ? "MATCHES PAPER" : "DIFFERS FROM PAPER");
}
