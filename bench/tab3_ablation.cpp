//===- bench/tab3_ablation.cpp - design-choice ablations -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Ablation study of the representation/kernel design choices DESIGN.md
// §5 calls out, measured by the end metric — does the 3-cluster cut
// recover the paper's grouping, and at what quality:
//
//  * compression pass count (the paper applies the rule sequence
//    twice);
//  * the four merge rules individually disabled;
//  * trailing [LEVEL_UP] emission;
//  * cut policy (per-occurrence vs per-feature-total);
//  * matcher implementation (suffix automaton vs reference DP — must
//    be bit-identical).
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "core/KastKernel.h"
#include "core/Pipeline.h"
#include "util/TextTable.h"

#include <cstdio>

using namespace kast;

namespace {

const LabelGrouping ThreeGroups = {{"A"}, {"B"}, {"C", "D"}};

/// Converts the corpus with \p Options, clusters with the Kast kernel,
/// and appends one result row.
void ablate(TextTable &Table, const std::string &Name,
            const std::vector<LabeledTrace> &Corpus,
            const PipelineOptions &PipeOptions,
            const KastKernelOptions &KernelOptions) {
  Pipeline P(PipeOptions);
  LabeledDataset Data = convertCorpus(P, Corpus);
  KastSpectrumKernel Kernel(KernelOptions);
  Matrix K = paperGram(Kernel, Data);
  Dendrogram D = clusterHierarchical(similarityToDistance(K));
  std::vector<size_t> Flat = D.cutToClusters(3);

  // Mean string length tracks how much compression shrank the corpus.
  size_t TotalTokens = 0;
  for (const WeightedString &S : Data.strings())
    TotalTokens += S.size();

  Table.addRow({Name,
                matchesGrouping(Flat, Data.labels(), ThreeGroups) ? "yes"
                                                                  : "no",
                formatDouble(purity(Flat, Data.labels()), 3),
                formatDouble(adjustedRandIndex(Flat, Data.labels()), 3),
                std::to_string(
                    misplacedCount(Flat, Data.labels(), ThreeGroups)),
                formatDouble(static_cast<double>(TotalTokens) /
                                 static_cast<double>(Data.size()),
                             1)});
}

} // namespace

int main() {
  std::printf("=== Table 3 (beyond paper): design-choice ablations ===\n");
  std::printf("(Kast kernel, byte info, cut 2, 3-cluster cut vs "
              "{A},{B},{C u D})\n\n");
  std::vector<LabeledTrace> Corpus = generateCorpus();

  TextTable Table;
  Table.setHeader({"configuration", "3 groups", "purity", "ARI",
                   "misplaced", "tokens/string"});

  PipelineOptions Default;
  KastKernelOptions Kernel{/*CutWeight=*/2};
  ablate(Table, "baseline (2 passes, all rules)", Corpus, Default, Kernel);

  for (size_t Passes : {0, 1, 4}) {
    PipelineOptions Options = Default;
    Options.Compressor.Passes = Passes;
    ablate(Table, "compression passes = " + std::to_string(Passes),
           Corpus, Options, Kernel);
  }
  {
    PipelineOptions Options = Default;
    Options.Compressor.EnableRule1 = false;
    ablate(Table, "rule 1 (same name+bytes) off", Corpus, Options, Kernel);
  }
  {
    PipelineOptions Options = Default;
    Options.Compressor.EnableRule2 = false;
    ablate(Table, "rule 2 (combine bytes) off", Corpus, Options, Kernel);
  }
  {
    PipelineOptions Options = Default;
    Options.Compressor.EnableRule3 = false;
    ablate(Table, "rule 3 (combine names) off", Corpus, Options, Kernel);
  }
  {
    PipelineOptions Options = Default;
    Options.Compressor.EnableRule4 = false;
    ablate(Table, "rule 4 (zero-byte merge) off", Corpus, Options, Kernel);
  }
  {
    PipelineOptions Options = Default;
    Options.Flatten.EmitTrailingLevelUp = true;
    ablate(Table, "trailing [LEVEL_UP] on", Corpus, Options, Kernel);
  }
  {
    KastKernelOptions Options = Kernel;
    Options.Policy = CutPolicy::PerFeatureTotal;
    ablate(Table, "cut policy: per-feature total", Corpus, Default,
           Options);
  }
  {
    KastKernelOptions Options = Kernel;
    Options.UseReferenceMatcher = true;
    ablate(Table, "reference DP matcher", Corpus, Default, Options);
  }

  std::printf("%s\n", Table.render().c_str());
  std::printf("expected: the reference-matcher row is identical to the "
              "baseline;\ncompression (any nonzero pass count) is what "
              "makes the corpus tractable.\n");
  return 0;
}
