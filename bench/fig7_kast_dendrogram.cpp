//===- bench/fig7_kast_dendrogram.cpp - Figure 7 reproduction --------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Paper Figure 7: "Hierarchical clustering for Kast Spectrum Kernel
// using byte information (cut weight = 2)". Expected: the 3-cluster
// cut is exactly {A}, {B}, {C u D} with "not misplaced examples on any
// of the groups" (§4.2).
//
//===----------------------------------------------------------------------===//

#include "FigureCommon.h"
#include "core/KastKernel.h"

int main() {
  using namespace kast;
  FigureContext Ctx = buildFigureContext();
  KastSpectrumKernel Kernel({/*CutWeight=*/2});
  Matrix K = paperGram(Kernel, Ctx.WithBytes);
  printDendrogramFigure(
      "Figure 7: single-linkage clustering, Kast kernel, byte info, "
      "cut = 2",
      K, Ctx.WithBytes, {{"A"}, {"B"}, {"C", "D"}}, /*ExpectedCut=*/3);
  return 0;
}
