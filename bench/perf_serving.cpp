//===- bench/perf_serving.cpp - async serving runtime benchmarks -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The serving runtime in numbers, across its two regimes:
//
// Work-bound (BM_ServeCallPerQuery / BM_ServeBatchedRuntime): a routed
// 10^5-entry IndexService under continuous background ingest, queried
// open-loop. Routed scoring at this scale costs milliseconds per
// request, so on a single-core host every admission scheme is limited
// by the same scoring work — these rows pin serving QPS and the
// p50/p95/p99 latency ladder (from the runtime's lock-free
// histograms), and show the batcher adds no throughput penalty over
// direct library calls. (With ExecThreads > 1 on a multi-core host the
// batched path additionally parallelizes across the batch; the numbers
// here keep ExecThreads = 1 so they are comparable on any machine.)
//
// Admission-bound (BM_ServeThreadPerRequest / BM_ServeAdmission*): a
// small exact-scan index where per-request work is microseconds, so
// the cost under test is the serving architecture itself. The
// call-per-query baseline is BM_ServeThreadPerRequest — a thread per
// call over the synchronous API, each request paying its own spawn,
// snapshot, scratch, and scheduler handoffs, under the same open-loop
// window the batched rows use. Batched admission funnels the window
// through the bounded queue into MaxBatch-sized dispatches; at
// batch >= 8 its throughput is >= 2x the call-per-query baseline
// (the runtime's acceptance bar). BM_ServeAdmissionCallPerQuery
// (MaxBatch = 1, a submit-and-wait RPC client) and BM_ServeSyncFloor
// (the raw library loop) bracket the comparison: the former is the
// runtime's own dispatch floor, the latter the single-core ceiling no
// concurrent-serving scheme can beat.
//
//===----------------------------------------------------------------------===//

#include "index/IndexService.h"
#include "index/ProfileIndex.h"
#include "kernels/SpectrumKernels.h"
#include "runtime/QueryServer.h"
#include "util/Rng.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

using namespace kast;

namespace {

BlendedSpectrumKernel &kernel() {
  static BlendedSpectrumKernel K(3, 1.0, /*Weighted=*/true, /*CutWeight=*/2);
  return K;
}

/// Clustered corpus (same construction as perf_index's): a few dozen
/// base strings, each entry a 25% mutation of its base, so the cluster
/// router has real neighborhoods to route to. The last HeldOut entries
/// are the query stream.
constexpr size_t HeldOut = 64;

const std::vector<WeightedString> &clusteredCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 104729 + 7);
    const size_t NumBases = std::max<size_t>(8, std::min<size_t>(64, N / 16));
    constexpr size_t Length = 64;
    constexpr uint32_t Alphabet = 12;
    using TokenSeq = std::vector<std::pair<std::string, uint32_t>>;
    std::vector<TokenSeq> Bases(NumBases);
    for (TokenSeq &Base : Bases)
      for (size_t I = 0; I < Length; ++I)
        Base.emplace_back("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
                          R.uniformInt(1, 16));
    for (size_t I = 0; I < N; ++I) {
      TokenSeq Seq = Bases[I % NumBases];
      for (auto &[Token, Weight] : Seq)
        if (R.uniformInt(0, 99) < 25) {
          Token = "t" + std::to_string(R.uniformInt(0, Alphabet - 1));
          Weight = R.uniformInt(1, 16);
        }
      WeightedString S(Table);
      for (const auto &[Token, Weight] : Seq)
        S.append(Token, Weight);
      It->second.push_back(std::move(S));
    }
  }
  return It->second;
}

/// The N-entry base index, built once per size (profile construction
/// dominates; everything downstream re-shards from this).
const ProfileIndex &baseIndex(size_t N) {
  static std::map<size_t, ProfileIndex> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    const std::vector<WeightedString> &Corpus = clusteredCorpus(N + HeldOut);
    It->second =
        ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N});
  }
  return It->second;
}

/// Serving-tuned routing: bounded fit cost, pruned posting lists,
/// small probe set, tight re-rank budget. The configuration a serving
/// deployment runs, not the exhaustive bit-identical one — recall at
/// these knobs is tracked by perf_index's sweep.
RoutingOptions servingRouting() {
  RoutingOptions Options;
  Options.Cluster.TrainingSample = 2048;
  Options.Cluster.MaxIterations = 6;
  Options.MaxDocFrequency = 0.5;
  Options.RerankBudget = 96;
  Options.DefaultNProbe = 8;
  return Options;
}

/// Fresh routed service per benchmark: isolation from whatever a
/// previous benchmark's ingest left behind. rebuildRouting is
/// deterministic for a fixed corpus, so every rebuild serves from the
/// same routing.
IndexService makeRoutedService(size_t N) {
  IndexService Service = IndexService::fromIndex(baseIndex(N));
  Service.rebuildRouting(servingRouting(), 1);
  return Service;
}

std::vector<KernelProfile> queryStream(size_t N) {
  const std::vector<WeightedString> &Corpus = clusteredCorpus(N + HeldOut);
  std::vector<KernelProfile> Queries;
  for (size_t I = N; I < N + HeldOut; ++I)
    Queries.push_back(kernel().profile(Corpus[I]));
  return Queries;
}

/// Background ingest for the serving benchmarks: windowed adds and
/// removes under fresh names, reusing pre-built profiles round-robin.
/// No compaction — compact() drops routing, and a routed serving tier
/// rebuilds routing offline, not mid-traffic. Tombstoned tail entries
/// cost only an iteration skip, so the drift over a measurement is
/// negligible and identical for every serving mode.
class IngestWriter {
public:
  IngestWriter(IndexService &Service, std::vector<KernelProfile> Pool)
      : Service(Service), Pool(std::move(Pool)),
        Thread([this] { run(); }) {}

  ~IngestWriter() {
    Stop.store(true, std::memory_order_relaxed);
    Thread.join();
  }

  size_t operations() const { return Ops.load(std::memory_order_relaxed); }

private:
  void run() {
    constexpr size_t Window = 256;
    size_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      Service.add("ing" + std::to_string(I), "ingest",
                  Pool[I % Pool.size()]);
      if (I >= Window)
        Service.remove("ing" + std::to_string(I - Window));
      Ops.fetch_add(1, std::memory_order_relaxed);
      ++I;
      // Cooperative pacing: yield every op, back off harder every few
      // hundred so ingest shares the machine with the query path the
      // way a throttled writer would, instead of racing it for every
      // cycle.
      if (I % 256 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      else
        std::this_thread::yield();
    }
  }

  IndexService &Service;
  std::vector<KernelProfile> Pool;
  std::atomic<bool> Stop{false};
  std::atomic<size_t> Ops{0};
  std::thread Thread;
};

std::vector<KernelProfile> ingestPool(size_t N) {
  const std::vector<WeightedString> &Corpus = clusteredCorpus(N + HeldOut);
  std::vector<KernelProfile> Pool;
  for (size_t I = 0; I < std::min<size_t>(N, 128); ++I)
    Pool.push_back(kernel().profile(Corpus[I]));
  return Pool;
}

/// Call-per-query serving baseline under concurrent ingest: every
/// request takes its own snapshot and allocates its own per-shard
/// scoring scratch — what serving looks like without an admission
/// batcher. Routed path, serving knobs, single executor thread.
void BM_ServeCallPerQuery(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  IndexService Service = makeRoutedService(N);
  const std::vector<KernelProfile> Queries = queryStream(N);
  IngestWriter Writer(Service, ingestPool(N));
  size_t I = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Service.queryApprox(Queries[I++ % Queries.size()], 5, true, 0, 1));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
  State.counters["ingest_ops"] =
      benchmark::Counter(static_cast<double>(Writer.operations()));
}
BENCHMARK(BM_ServeCallPerQuery)
    ->Arg(8192)
    ->Arg(100000)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// The async batched runtime under the same concurrent ingest: an
/// open-loop submitter fires windows of requests without waiting
/// between submissions (futures are drained at the window boundary,
/// so up to QueueCapacity requests are in flight and the bounded
/// queue provides the backpressure). Args are {N, MaxBatch};
/// MaxBatch == 1 measures the runtime's overhead floor, MaxBatch >= 8
/// is where the >= 2x batching multiple must show. Latency
/// percentiles (enqueue -> response, microseconds) come from the
/// server's own histograms.
void BM_ServeBatchedRuntime(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const size_t MaxBatch = static_cast<size_t>(State.range(1));
  IndexService Service = makeRoutedService(N);
  const std::vector<KernelProfile> Queries = queryStream(N);

  QueryServerOptions Options;
  Options.MaxBatch = MaxBatch;
  Options.MaxWaitMicros = 200;
  Options.QueueCapacity = 1024;
  Options.Overflow = OverflowPolicy::Block;
  Options.ExecThreads = 1;
  Options.Approx = true;
  QueryServer Server(Service, Options);
  IngestWriter Writer(Service, ingestPool(N));

  constexpr size_t Window = 128;
  std::vector<std::future<QueryResponse>> Futures(Window);
  size_t I = 0;
  for (auto _ : State) {
    for (size_t W = 0; W < Window; ++W)
      Futures[W] = Server.submitBorrowed(Queries[I++ % Queries.size()], 5);
    for (size_t W = 0; W < Window; ++W)
      benchmark::DoNotOptimize(Futures[W].get());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Window));

  const ServerStats::Snapshot Stats = Server.stats().snapshot();
  State.counters["p50_us"] = benchmark::Counter(Stats.TotalNs.P50 / 1e3);
  State.counters["p95_us"] = benchmark::Counter(Stats.TotalNs.P95 / 1e3);
  State.counters["p99_us"] = benchmark::Counter(Stats.TotalNs.P99 / 1e3);
  State.counters["batch_mean"] = benchmark::Counter(Stats.BatchSize.Mean);
  State.counters["ingest_ops"] =
      benchmark::Counter(static_cast<double>(Writer.operations()));
}
BENCHMARK(BM_ServeBatchedRuntime)
    ->ArgNames({"N", "batch"})
    ->Args({8192, 8})
    ->Args({8192, 32})
    ->Args({100000, 1})
    ->Args({100000, 8})
    ->Args({100000, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Admission-bound regime
//===----------------------------------------------------------------------===//

/// Short uniform-random strings: exact-scan queries over a small index
/// cost single-digit microseconds, so these fixtures measure the
/// admission machinery rather than kernel arithmetic.
const std::vector<WeightedString> &tinyCorpus(size_t N) {
  static auto Table = TokenTable::create();
  static std::map<size_t, std::vector<WeightedString>> Cache;
  auto [It, Inserted] = Cache.try_emplace(N);
  if (Inserted) {
    Rng R(N * 7919 + 13);
    constexpr size_t Length = 8;
    constexpr uint32_t Alphabet = 12;
    for (size_t I = 0; I < N; ++I) {
      WeightedString S(Table);
      for (size_t J = 0; J < Length; ++J)
        S.append("t" + std::to_string(R.uniformInt(0, Alphabet - 1)),
                 R.uniformInt(1, 16));
      It->second.push_back(std::move(S));
    }
  }
  return It->second;
}

/// Single shard: at this size sharding only multiplies per-dispatch
/// setup, and the admission comparison wants the per-request work
/// floor as low as the library allows.
IndexService makeTinyService(size_t N) {
  const std::vector<WeightedString> &Corpus = tinyCorpus(N + HeldOut);
  IndexServiceOptions Options;
  Options.Shards = 1;
  return IndexService::fromIndex(
      ProfileIndex::build(kernel(), {Corpus.begin(), Corpus.begin() + N}),
      Options);
}

std::vector<KernelProfile> tinyQueries(size_t N) {
  const std::vector<WeightedString> &Corpus = tinyCorpus(N + HeldOut);
  std::vector<KernelProfile> Queries;
  for (size_t I = N; I < N + HeldOut; ++I)
    Queries.push_back(kernel().profile(Corpus[I]));
  return Queries;
}

/// Reference floor: the raw library call in a loop, no runtime at all.
/// Nothing that serves concurrent clients can beat this on one core;
/// it bounds what the admission rows below can possibly reach.
void BM_ServeSyncFloor(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  IndexService Service = makeTinyService(N);
  const std::vector<KernelProfile> Queries = tinyQueries(N);
  size_t I = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Service.query(Queries[I++ % Queries.size()], 1, true, 1));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));
}
BENCHMARK(BM_ServeSyncFloor)
    ->Arg(16)
    ->Arg(128)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Call-per-query serving: the architecture the runtime replaces. A
/// dedicated thread per request over the synchronous API — each call
/// is serviced independently (own thread spawn, own snapshot, own
/// scoring scratch, scheduler handoffs), with the same open-loop
/// window of in-flight requests the batched rows use. This is the
/// baseline the >= 2x batched-admission criterion is measured against.
void BM_ServeThreadPerRequest(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  IndexService Service = makeTinyService(N);
  const std::vector<KernelProfile> Queries = tinyQueries(N);

  constexpr size_t Window = 128;
  std::vector<std::thread> Threads;
  Threads.reserve(Window);
  size_t I = 0;
  for (auto _ : State) {
    for (size_t W = 0; W < Window; ++W) {
      const KernelProfile &Q = Queries[I++ % Queries.size()];
      Threads.emplace_back(
          [&Service, &Q] { benchmark::DoNotOptimize(Service.query(Q, 1, true, 1)); });
    }
    for (std::thread &T : Threads)
      T.join();
    Threads.clear();
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Window));
}
BENCHMARK(BM_ServeThreadPerRequest)
    ->ArgName("N")
    ->Arg(16)
    ->Arg(128)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Call-per-query admission: MaxBatch = 1 and a client that submits
/// one request and waits for its answer before sending the next — the
/// synchronous RPC pattern. Every request pays the full admission
/// round trip: enqueue, batcher wakeup, a one-request dispatch with
/// its own snapshot and scratch, future handoff back.
void BM_ServeAdmissionCallPerQuery(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  IndexService Service = makeTinyService(N);
  const std::vector<KernelProfile> Queries = tinyQueries(N);

  QueryServerOptions Options;
  Options.MaxBatch = 1;
  Options.QueueCapacity = 16;
  Options.ExecThreads = 1;
  QueryServer Server(Service, Options);

  size_t I = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Server.submitBorrowed(Queries[I++ % Queries.size()], 1).get());
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()));

  const ServerStats::Snapshot Stats = Server.stats().snapshot();
  State.counters["p50_us"] = benchmark::Counter(Stats.TotalNs.P50 / 1e3);
  State.counters["p99_us"] = benchmark::Counter(Stats.TotalNs.P99 / 1e3);
  State.counters["batch_mean"] = benchmark::Counter(Stats.BatchSize.Mean);
}
BENCHMARK(BM_ServeAdmissionCallPerQuery)
    ->ArgName("N")
    ->Arg(16)
    ->Arg(128)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Batched admission over the same fixture: an open-loop client keeps
/// the queue non-empty, the batcher drains up to MaxBatch requests per
/// dispatch, and the wakeup/snapshot/scratch cost divides by the batch
/// size. The acceptance bar for the runtime is this row at batch >= 8
/// reaching >= 2x the call-per-query row's throughput.
void BM_ServeAdmissionBatched(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const size_t MaxBatch = static_cast<size_t>(State.range(1));
  IndexService Service = makeTinyService(N);
  const std::vector<KernelProfile> Queries = tinyQueries(N);

  QueryServerOptions Options;
  Options.MaxBatch = MaxBatch;
  Options.MaxWaitMicros = 200;
  Options.QueueCapacity = 1024;
  Options.Overflow = OverflowPolicy::Block;
  Options.ExecThreads = 1;
  QueryServer Server(Service, Options);

  constexpr size_t Window = 128;
  std::vector<std::future<QueryResponse>> Futures(Window);
  size_t I = 0;
  for (auto _ : State) {
    for (size_t W = 0; W < Window; ++W)
      Futures[W] = Server.submitBorrowed(Queries[I++ % Queries.size()], 1);
    for (size_t W = 0; W < Window; ++W)
      benchmark::DoNotOptimize(Futures[W].get());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Window));

  const ServerStats::Snapshot Stats = Server.stats().snapshot();
  State.counters["p50_us"] = benchmark::Counter(Stats.TotalNs.P50 / 1e3);
  State.counters["p99_us"] = benchmark::Counter(Stats.TotalNs.P99 / 1e3);
  State.counters["batch_mean"] = benchmark::Counter(Stats.BatchSize.Mean);
}
BENCHMARK(BM_ServeAdmissionBatched)
    ->ArgNames({"N", "batch"})
    ->Args({16, 8})
    ->Args({16, 32})
    ->Args({128, 8})
    ->Args({128, 32})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
