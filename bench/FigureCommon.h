//===- bench/FigureCommon.h - Shared figure-bench plumbing -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the figure/table reproduction harnesses: the
/// corpus in both representations, Gram-matrix helpers, and the
/// renderers that print a Kernel PCA "figure" (ASCII scatter plot) or
/// a clustering "figure" (dendrogram plus cut compositions and
/// quality metrics) the way the paper's evaluation reports them.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_BENCH_FIGURECOMMON_H
#define KAST_BENCH_FIGURECOMMON_H

#include "core/Dataset.h"
#include "core/KernelMatrix.h"
#include "core/StringKernel.h"
#include "ml/ClusterMetrics.h"
#include "ml/HierarchicalClustering.h"
#include "workloads/DatasetBuilder.h"

#include <string>
#include <vector>

namespace kast {

/// The evaluation corpus in both string representations.
struct FigureContext {
  std::vector<LabeledTrace> Corpus;
  LabeledDataset WithBytes;
  LabeledDataset NoBytes;
};

/// Generates the paper-shaped corpus (110 examples) once.
FigureContext buildFigureContext();

/// Normalized Gram matrix with the paper's PSD repair applied.
Matrix paperGram(const StringKernel &Kernel, const LabeledDataset &Data);

/// Scatter glyph for a category label ("A" -> 'A', ...).
char categoryGlyph(const std::string &Label);

/// Prints a Kernel PCA figure: header, explained variance, ASCII
/// scatter with one glyph per category, per-category centroids, and
/// the first two projection coordinates of every example.
void printKpcaFigure(const std::string &Title, const Matrix &K,
                     const LabeledDataset &Data);

/// Prints a clustering figure: single-linkage dendrogram, the cluster
/// compositions at 2/3/4-cluster cuts, quality metrics against the
/// paper's expected grouping, and a MATCH/expected verdict line.
void printDendrogramFigure(const std::string &Title, const Matrix &K,
                           const LabeledDataset &Data,
                           const LabelGrouping &ExpectedGroups,
                           size_t ExpectedCut);

/// "{A:50}|{B:20}|{C:20 D:20}"-style composition of a flat clustering.
std::string compositionString(const std::vector<size_t> &Flat,
                              const LabeledDataset &Data);

} // namespace kast

#endif // KAST_BENCH_FIGURECOMMON_H
