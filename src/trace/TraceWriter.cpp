//===- trace/TraceWriter.cpp - Trace serialization -------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceWriter.h"

#include <cstdio>
#include <fstream>

using namespace kast;

std::string kast::formatTraceEvent(const TraceEvent &Event) {
  std::string Line = Event.Op + " " + std::to_string(Event.Handle);
  if (Event.Bytes != 0)
    Line += " bytes=" + std::to_string(Event.Bytes);
  if (Event.Address != 0) {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), " addr=0x%llx",
                  static_cast<unsigned long long>(Event.Address));
    Line += Buffer;
  }
  return Line;
}

std::string kast::formatTrace(const Trace &T) {
  std::string Out;
  if (!T.name().empty())
    Out += "# trace: " + T.name() + "\n";
  for (const TraceEvent &E : T.events()) {
    Out += formatTraceEvent(E);
    Out += '\n';
  }
  return Out;
}

bool kast::writeTraceFile(const Trace &T, const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << formatTrace(T);
  return static_cast<bool>(Out);
}
