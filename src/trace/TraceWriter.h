//===- trace/TraceWriter.h - Trace serialization ---------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes traces back to the plain-text format accepted by the
/// parser, guaranteeing parse(write(t)) == t. Used by the examples to
/// materialize generated workloads as files and by round-trip tests.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TRACE_TRACEWRITER_H
#define KAST_TRACE_TRACEWRITER_H

#include "trace/Trace.h"

#include <string>

namespace kast {

/// Renders one event as a canonical trace line (no newline).
std::string formatTraceEvent(const TraceEvent &Event);

/// Renders the whole trace, one line per event, each newline-terminated,
/// preceded by a comment header naming the trace.
std::string formatTrace(const Trace &T);

/// Writes formatTrace(T) to \p Path. \returns false on I/O failure.
bool writeTraceFile(const Trace &T, const std::string &Path);

} // namespace kast

#endif // KAST_TRACE_TRACEWRITER_H
