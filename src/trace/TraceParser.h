//===- trace/TraceParser.h - Plain-text trace parsing ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the plain-text access pattern format ("plain text files
/// where each line corresponds to an operation", §3.1). The canonical
/// line grammar is
///
///   line    := ws op ws handle fields ws comment?
///   op      := identifier                (lowercased on input)
///   handle  := decimal integer
///   fields  := (ws field)*
///   field   := "bytes=" decimal | "addr=" hex | decimal
///   comment := "#" anything
///
/// A bare trailing decimal is accepted as the byte count, so both
/// "read 3 bytes=4096" and "read 3 4096" parse. Blank and comment-only
/// lines are skipped. Errors carry 1-based line numbers.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TRACE_TRACEPARSER_H
#define KAST_TRACE_TRACEPARSER_H

#include "trace/Trace.h"
#include "util/Error.h"

#include <string_view>

namespace kast {

/// Parses a whole access pattern document.
///
/// \param Text  the document
/// \param Name  name recorded on the resulting trace
/// \returns the trace, or a diagnostic naming the offending line.
Expected<Trace> parseTrace(std::string_view Text, std::string Name = "");

/// Parses a single line. \returns a filled event, an empty optional for
/// blank/comment lines, or an error message.
Expected<std::optional<TraceEvent>> parseTraceLine(std::string_view Line);

/// Reads and parses a trace file from disk.
Expected<Trace> parseTraceFile(const std::string &Path);

} // namespace kast

#endif // KAST_TRACE_TRACEPARSER_H
