//===- trace/TraceParser.cpp - Plain-text trace parsing --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceParser.h"
#include "util/StringUtil.h"

#include <fstream>
#include <sstream>

using namespace kast;

Expected<std::optional<TraceEvent>>
kast::parseTraceLine(std::string_view Line) {
  using Result = Expected<std::optional<TraceEvent>>;

  // Strip trailing comment, then whitespace.
  size_t Hash = Line.find('#');
  if (Hash != std::string_view::npos)
    Line = Line.substr(0, Hash);
  Line = trim(Line);
  if (Line.empty())
    return Result(std::nullopt);

  std::vector<std::string_view> Fields = splitWhitespace(Line);
  if (Fields.size() < 2)
    return Result::error("expected '<op> <handle> [fields...]'");

  TraceEvent Event;
  Event.Op = toLower(Fields[0]);
  if (Event.Op.empty() ||
      Event.Op.find_first_not_of(
          "abcdefghijklmnopqrstuvwxyz0123456789_+") != std::string::npos)
    return Result::error("malformed operation name '" +
                         std::string(Fields[0]) + "'");

  std::optional<uint64_t> Handle = parseUnsigned(Fields[1]);
  if (!Handle)
    return Result::error("malformed handle '" + std::string(Fields[1]) + "'");
  Event.Handle = *Handle;

  bool SawBytes = false;
  for (size_t I = 2; I < Fields.size(); ++I) {
    std::string_view Field = Fields[I];
    if (startsWith(Field, "bytes=")) {
      std::optional<uint64_t> Bytes = parseUnsigned(Field.substr(6));
      if (!Bytes)
        return Result::error("malformed byte count '" + std::string(Field) +
                             "'");
      Event.Bytes = *Bytes;
      SawBytes = true;
      continue;
    }
    if (startsWith(Field, "addr=")) {
      std::optional<uint64_t> Addr = parseHex(Field.substr(5));
      if (!Addr)
        return Result::error("malformed address '" + std::string(Field) +
                             "'");
      Event.Address = *Addr;
      continue;
    }
    // Bare decimal: positional byte count, once.
    std::optional<uint64_t> Bytes = parseUnsigned(Field);
    if (Bytes && !SawBytes) {
      Event.Bytes = *Bytes;
      SawBytes = true;
      continue;
    }
    return Result::error("unrecognized field '" + std::string(Field) + "'");
  }
  return Result(std::optional<TraceEvent>(std::move(Event)));
}

Expected<Trace> kast::parseTrace(std::string_view Text, std::string Name) {
  Trace Out(std::move(Name));
  size_t LineNumber = 0;
  size_t Start = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Start, End - Start);
    ++LineNumber;

    Expected<std::optional<TraceEvent>> Parsed = parseTraceLine(Line);
    if (!Parsed)
      return Expected<Trace>::error("line " + std::to_string(LineNumber) +
                                    ": " + Parsed.message());
    if (*Parsed)
      Out.append(std::move(**Parsed));

    if (End == Text.size())
      break;
    Start = End + 1;
  }
  return Out;
}

Expected<Trace> kast::parseTraceFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<Trace>::error("cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  // Use the basename as the trace name.
  size_t Slash = Path.find_last_of('/');
  std::string Name =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  return parseTrace(Buffer.str(), Name);
}
