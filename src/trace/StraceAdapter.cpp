//===- trace/StraceAdapter.cpp - strace output ingestion -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/StraceAdapter.h"
#include "util/StringUtil.h"

#include <cctype>
#include <fstream>
#include <sstream>

using namespace kast;

namespace {

/// One decoded strace line.
struct StraceCall {
  std::string Syscall;
  std::vector<std::string> Arguments; ///< Raw argument spellings.
  int64_t ReturnValue = 0;
  bool HasReturn = false;
};

/// Splits the argument list at top-level commas (quotes and nesting
/// respected well enough for strace's renderings).
std::vector<std::string> splitArguments(std::string_view Args) {
  std::vector<std::string> Out;
  std::string Current;
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < Args.size(); ++I) {
    char C = Args[I];
    if (InString) {
      Current += C;
      if (C == '\\' && I + 1 < Args.size()) {
        Current += Args[++I];
        continue;
      }
      if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      Current += C;
      break;
    case '(':
    case '[':
    case '{':
      ++Depth;
      Current += C;
      break;
    case ')':
    case ']':
    case '}':
      --Depth;
      Current += C;
      break;
    case ',':
      if (Depth == 0) {
        Out.emplace_back(trim(Current));
        Current.clear();
        break;
      }
      Current += C;
      break;
    default:
      Current += C;
    }
  }
  std::string_view Last = trim(Current);
  if (!Last.empty())
    Out.emplace_back(Last);
  return Out;
}

/// Decodes "name(args) = ret ..." into a StraceCall; nullopt for lines
/// that are not complete syscall records (signals, unfinished halves).
std::optional<StraceCall> decodeLine(std::string_view Line) {
  Line = trim(Line);
  if (Line.empty())
    return std::nullopt;
  // Optional leading PID or timestamp columns: strip leading digits,
  // dots and colons followed by whitespace, repeatedly.
  while (!Line.empty() &&
         (std::isdigit(static_cast<unsigned char>(Line[0])))) {
    size_t I = 0;
    while (I < Line.size() &&
           (std::isdigit(static_cast<unsigned char>(Line[I])) ||
            Line[I] == '.' || Line[I] == ':'))
      ++I;
    if (I < Line.size() && std::isspace(static_cast<unsigned char>(Line[I])))
      Line = trim(Line.substr(I));
    else
      break;
  }
  if (Line.empty() || !std::isalpha(static_cast<unsigned char>(Line[0])))
    return std::nullopt;
  if (Line.find("unfinished") != std::string_view::npos ||
      Line.find("resumed") != std::string_view::npos)
    return std::nullopt;

  size_t Open = Line.find('(');
  if (Open == std::string_view::npos)
    return std::nullopt;
  StraceCall Call;
  Call.Syscall = toLower(trim(Line.substr(0, Open)));

  // Find the matching close parenthesis from the right: strace puts
  // " = ret" after it.
  size_t Eq = Line.rfind(" = ");
  size_t Close = Line.rfind(')', Eq == std::string_view::npos
                                     ? std::string_view::npos
                                     : Eq);
  if (Close == std::string_view::npos || Close < Open)
    return std::nullopt;
  Call.Arguments = splitArguments(Line.substr(Open + 1, Close - Open - 1));

  if (Eq != std::string_view::npos) {
    std::string_view Ret = trim(Line.substr(Eq + 3));
    // Return value is the first whitespace-delimited field; may be
    // negative or "-1 ENOENT (...)" or "?".
    size_t End = 0;
    while (End < Ret.size() &&
           !std::isspace(static_cast<unsigned char>(Ret[End])))
      ++End;
    std::string_view Value = Ret.substr(0, End);
    bool Negative = !Value.empty() && Value[0] == '-';
    if (Negative)
      Value.remove_prefix(1);
    std::optional<uint64_t> Parsed = parseUnsigned(Value);
    if (Parsed) {
      Call.ReturnValue = Negative ? -static_cast<int64_t>(*Parsed)
                                  : static_cast<int64_t>(*Parsed);
      Call.HasReturn = true;
    }
  }
  return Call;
}

/// Parses a decimal file descriptor argument ("3" or "3</path>").
std::optional<uint64_t> parseFd(const std::string &Argument) {
  size_t End = 0;
  while (End < Argument.size() &&
         std::isdigit(static_cast<unsigned char>(Argument[End])))
    ++End;
  if (End == 0)
    return std::nullopt;
  return parseUnsigned(std::string_view(Argument).substr(0, End));
}

} // namespace

Expected<Trace> kast::parseStrace(std::string_view Text, std::string Name,
                                  StraceStats *Stats) {
  using Result = Expected<Trace>;
  Trace Out(std::move(Name));
  StraceStats Local;

  size_t Start = 0;
  size_t LineNumber = 0;
  while (Start <= Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = Text.substr(Start, End - Start);
    ++LineNumber;
    size_t NextStart = End + 1;
    if (!trim(Line).empty())
      ++Local.LinesTotal;

    std::optional<StraceCall> Call = decodeLine(Line);
    if (!Call) {
      if (!trim(Line).empty())
        ++Local.LinesSkipped;
      if (End == Text.size())
        break;
      Start = NextStart;
      continue;
    }

    const std::string &Sys = Call->Syscall;
    bool IsOpen = Sys == "open" || Sys == "openat" || Sys == "creat";
    bool IsRead = Sys == "read" || Sys == "pread" || Sys == "pread64";
    bool IsWrite = Sys == "write" || Sys == "pwrite" || Sys == "pwrite64";
    bool IsSeek = Sys == "lseek" || Sys == "llseek" || Sys == "_llseek";
    bool IsSync = Sys == "fsync" || Sys == "fdatasync";
    bool IsClose = Sys == "close";
    if (!IsOpen && !IsRead && !IsWrite && !IsSeek && !IsSync && !IsClose) {
      ++Local.LinesSkipped;
      if (End == Text.size())
        break;
      Start = NextStart;
      continue;
    }

    if (Call->HasReturn && Call->ReturnValue < 0) {
      ++Local.CallsFailed;
      if (End == Text.size())
        break;
      Start = NextStart;
      continue;
    }

    TraceEvent Event;
    if (IsOpen) {
      if (!Call->HasReturn)
        return Result::error("line " + std::to_string(LineNumber) +
                             ": open call without return value");
      Event.Op = "open";
      Event.Handle = static_cast<uint64_t>(Call->ReturnValue);
    } else {
      if (Call->Arguments.empty())
        return Result::error("line " + std::to_string(LineNumber) +
                             ": missing file descriptor argument");
      std::optional<uint64_t> Fd = parseFd(Call->Arguments[0]);
      if (!Fd)
        return Result::error("line " + std::to_string(LineNumber) +
                             ": malformed file descriptor '" +
                             Call->Arguments[0] + "'");
      Event.Handle = *Fd;
      if (IsRead) {
        Event.Op = "read";
        Event.Bytes = Call->HasReturn
                          ? static_cast<uint64_t>(Call->ReturnValue)
                          : 0;
      } else if (IsWrite) {
        Event.Op = "write";
        Event.Bytes = Call->HasReturn
                          ? static_cast<uint64_t>(Call->ReturnValue)
                          : 0;
      } else if (IsSeek) {
        Event.Op = "lseek";
      } else if (IsSync) {
        Event.Op = "fsync";
      } else {
        Event.Op = "close";
      }
    }
    Out.append(std::move(Event));
    ++Local.EventsEmitted;

    if (End == Text.size())
      break;
    Start = NextStart;
  }

  if (Stats)
    *Stats = Local;
  return Out;
}

Expected<Trace> kast::parseStraceFile(const std::string &Path,
                                      StraceStats *Stats) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<Trace>::error("cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  size_t Slash = Path.find_last_of('/');
  std::string Name =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  return parseStrace(Buffer.str(), Name, Stats);
}
