//===- trace/Trace.h - I/O trace event model -------------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory model of an I/O access pattern file (paper §3.1): a
/// chronological sequence of operations, each with a name, the file
/// handle it acts on, an optional byte count, and an optional memory
/// address. Addresses are parsed for completeness but deliberately
/// ignored by the representation ("the memory addresses are ignored
/// completely", §3.1).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TRACE_TRACE_H
#define KAST_TRACE_TRACE_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace kast {

/// Well-known operation names. Traces may also contain arbitrary names
/// (OK_Other); the tree layer treats names as opaque strings, so the
/// enum exists only for convenient construction and classification.
enum class OpKind {
  Open,
  Close,
  Read,
  Write,
  Lseek,
  Fsync,
  Fileno,  ///< Negligible by default (§3.1).
  Mmap,    ///< Negligible by default (§3.1).
  Fscanf,  ///< Negligible by default (§3.1).
  Other,
};

/// \returns the canonical lowercase spelling, e.g. "read".
const char *opKindName(OpKind Kind);

/// Maps a spelling back to the enum; unknown names yield OK_Other.
OpKind opKindFromName(const std::string &Name);

/// One line of an I/O access pattern file.
struct TraceEvent {
  /// Operation name, lowercase ("read", "write", "lseek", ...).
  std::string Op;
  /// File handle the operation acts on.
  uint64_t Handle = 0;
  /// Number of bytes involved; 0 when the operation carries none.
  uint64_t Bytes = 0;
  /// Memory address associated with the operation (0 if absent).
  uint64_t Address = 0;

  TraceEvent() = default;
  TraceEvent(std::string Op, uint64_t Handle, uint64_t Bytes = 0,
             uint64_t Address = 0)
      : Op(std::move(Op)), Handle(Handle), Bytes(Bytes), Address(Address) {}
  TraceEvent(OpKind Kind, uint64_t Handle, uint64_t Bytes = 0,
             uint64_t Address = 0)
      : Op(opKindName(Kind)), Handle(Handle), Bytes(Bytes), Address(Address) {
  }

  bool isOpen() const { return Op == "open"; }
  bool isClose() const { return Op == "close"; }

  bool operator==(const TraceEvent &Rhs) const = default;
};

/// A chronological I/O access pattern plus an identifying name.
class Trace {
public:
  Trace() = default;
  explicit Trace(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  const std::vector<TraceEvent> &events() const { return Events; }
  std::vector<TraceEvent> &events() { return Events; }

  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }

  /// Appends one event.
  void append(TraceEvent Event) { Events.push_back(std::move(Event)); }

  /// Convenience append by fields.
  void append(OpKind Kind, uint64_t Handle, uint64_t Bytes = 0,
              uint64_t Address = 0) {
    Events.emplace_back(Kind, Handle, Bytes, Address);
  }

  /// Distinct handles in order of first appearance.
  std::vector<uint64_t> handles() const;

  /// Copy with every byte count forced to zero — the paper's second
  /// string representation ("ignoring is made by assuming all byte
  /// values are zero", §3.1).
  Trace withoutBytes() const;

  /// Copy with the events whose operation name is in \p Negligible
  /// removed (paper: fileno, mmap and fscanf "are negligible and hence
  /// ignored").
  Trace filtered(const std::set<std::string> &Negligible) const;

  /// The default negligible-operation set from §3.1.
  static const std::set<std::string> &defaultNegligibleOps();

  bool operator==(const Trace &Rhs) const = default;

private:
  std::string Name;
  std::vector<TraceEvent> Events;
};

} // namespace kast

#endif // KAST_TRACE_TRACE_H
