//===- trace/Trace.cpp - I/O trace event model -----------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include <algorithm>

using namespace kast;

const char *kast::opKindName(OpKind Kind) {
  switch (Kind) {
  case OpKind::Open:
    return "open";
  case OpKind::Close:
    return "close";
  case OpKind::Read:
    return "read";
  case OpKind::Write:
    return "write";
  case OpKind::Lseek:
    return "lseek";
  case OpKind::Fsync:
    return "fsync";
  case OpKind::Fileno:
    return "fileno";
  case OpKind::Mmap:
    return "mmap";
  case OpKind::Fscanf:
    return "fscanf";
  case OpKind::Other:
    return "other";
  }
  return "other";
}

OpKind kast::opKindFromName(const std::string &Name) {
  if (Name == "open")
    return OpKind::Open;
  if (Name == "close")
    return OpKind::Close;
  if (Name == "read")
    return OpKind::Read;
  if (Name == "write")
    return OpKind::Write;
  if (Name == "lseek")
    return OpKind::Lseek;
  if (Name == "fsync")
    return OpKind::Fsync;
  if (Name == "fileno")
    return OpKind::Fileno;
  if (Name == "mmap")
    return OpKind::Mmap;
  if (Name == "fscanf")
    return OpKind::Fscanf;
  return OpKind::Other;
}

std::vector<uint64_t> Trace::handles() const {
  std::vector<uint64_t> Handles;
  for (const TraceEvent &E : Events)
    if (std::find(Handles.begin(), Handles.end(), E.Handle) == Handles.end())
      Handles.push_back(E.Handle);
  return Handles;
}

Trace Trace::withoutBytes() const {
  Trace Out(Name + "#nobytes");
  Out.Events = Events;
  for (TraceEvent &E : Out.Events)
    E.Bytes = 0;
  return Out;
}

Trace Trace::filtered(const std::set<std::string> &Negligible) const {
  Trace Out(Name);
  Out.Events.reserve(Events.size());
  for (const TraceEvent &E : Events)
    if (!Negligible.count(E.Op))
      Out.Events.push_back(E);
  return Out;
}

const std::set<std::string> &Trace::defaultNegligibleOps() {
  static const std::set<std::string> Ops = {"fileno", "mmap", "fscanf"};
  return Ops;
}
