//===- trace/StraceAdapter.h - strace output ingestion ---------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts strace(1)-style output into KAST traces, so real program
/// recordings can be analyzed without hand-converting them to the
/// canonical format. Recognized line shapes (one syscall per line):
///
///   openat(AT_FDCWD, "data.bin", O_RDONLY) = 3
///   open("data.bin", O_RDONLY)             = 3
///   read(3, "..."..., 4096)                = 4096
///   write(3, "...", 512)                   = 512
///   pread64(3, "...", 4096, 8192)          = 4096
///   lseek(3, 1024, SEEK_SET)               = 1024
///   fsync(3)                               = 0
///   close(3)                               = 0
///
/// Mapping rules:
///  * the first argument of read/write/lseek/fsync/close is the
///    handle; open/openat take the handle from the *return value*;
///  * read/write byte counts come from the return value (actual bytes
///    moved); pread64/pwrite64 map to read/write;
///  * failed calls (return -1 or -ERRNO) are dropped;
///  * unrecognized syscalls are skipped (strace logs everything; only
///    file-I/O calls are access-pattern relevant);
///  * "unfinished ..."/"resumed" split lines are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TRACE_STRACEADAPTER_H
#define KAST_TRACE_STRACEADAPTER_H

#include "trace/Trace.h"
#include "util/Error.h"

#include <string_view>

namespace kast {

/// Statistics of one conversion.
struct StraceStats {
  size_t LinesTotal = 0;
  size_t EventsEmitted = 0;
  size_t LinesSkipped = 0; ///< Unrecognized or non-I/O syscalls.
  size_t CallsFailed = 0;  ///< Syscalls that returned an error.
};

/// Converts strace output to a trace. Never fails on unknown syscalls
/// (they are skipped); fails only on lines that look like recognized
/// I/O calls but cannot be decoded.
Expected<Trace> parseStrace(std::string_view Text, std::string Name = "",
                            StraceStats *Stats = nullptr);

/// Reads and converts an strace log file.
Expected<Trace> parseStraceFile(const std::string &Path,
                                StraceStats *Stats = nullptr);

} // namespace kast

#endif // KAST_TRACE_STRACEADAPTER_H
