//===- ml/NearestNeighbor.cpp - Kernel nearest-neighbor evaluation ---------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/NearestNeighbor.h"

#include <cassert>

using namespace kast;

LooResult kast::leaveOneOutNearestNeighbor(
    const Matrix &K, const std::vector<std::string> &Labels) {
  assert(K.rows() == K.cols() && "similarity matrix not square");
  assert(K.rows() == Labels.size() && "label count mismatch");
  const size_t N = Labels.size();

  LooResult Result;
  Result.Predictions.resize(N);
  size_t Correct = 0;
  for (size_t I = 0; I < N; ++I) {
    // Seed from the first J != I rather than a sentinel similarity:
    // unnormalized kernels can put every neighbor at or below any
    // fixed sentinel, which would leak the self-index through as an
    // empty prediction.
    size_t Best = I;
    double BestSim = 0.0;
    for (size_t J = 0; J < N; ++J) {
      if (J == I)
        continue;
      if (Best == I || K.at(I, J) > BestSim) {
        BestSim = K.at(I, J);
        Best = J;
      }
    }
    // Best == I only when N == 1 (no candidate neighbor exists).
    Result.Predictions[I] = Best == I ? "" : Labels[Best];
    if (Result.Predictions[I] == Labels[I])
      ++Correct;
    else
      Result.Errors.push_back(I);
  }
  Result.Accuracy =
      N == 0 ? 1.0 : static_cast<double>(Correct) / static_cast<double>(N);
  return Result;
}
