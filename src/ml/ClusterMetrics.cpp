//===- ml/ClusterMetrics.cpp - Clustering quality measures -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/ClusterMetrics.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

using namespace kast;

size_t kast::numClusters(const std::vector<size_t> &Assignments) {
  size_t Max = 0;
  for (size_t C : Assignments)
    Max = std::max(Max, C + 1);
  return Max;
}

/// Contingency counts: Result[cluster][label] = #examples.
static std::vector<std::map<std::string, size_t>>
contingency(const std::vector<size_t> &Assignments,
            const std::vector<std::string> &Labels) {
  assert(Assignments.size() == Labels.size() &&
         "assignment/label length mismatch");
  std::vector<std::map<std::string, size_t>> Table(
      numClusters(Assignments));
  for (size_t I = 0; I < Assignments.size(); ++I)
    ++Table[Assignments[I]][Labels[I]];
  return Table;
}

double kast::purity(const std::vector<size_t> &Assignments,
                    const std::vector<std::string> &Labels) {
  if (Assignments.empty())
    return 1.0;
  size_t Agree = 0;
  for (const auto &Row : contingency(Assignments, Labels)) {
    size_t Best = 0;
    for (const auto &[Label, Count] : Row)
      Best = std::max(Best, Count);
    Agree += Best;
  }
  return static_cast<double>(Agree) /
         static_cast<double>(Assignments.size());
}

/// n choose 2 as a double.
static double pairs(size_t N) {
  return 0.5 * static_cast<double>(N) * static_cast<double>(N - 1);
}

double kast::adjustedRandIndex(const std::vector<size_t> &Assignments,
                               const std::vector<std::string> &Labels) {
  const size_t N = Assignments.size();
  if (N < 2)
    return 1.0;
  std::vector<std::map<std::string, size_t>> Table =
      contingency(Assignments, Labels);

  double SumCells = 0.0;
  std::map<std::string, size_t> LabelTotals;
  std::vector<size_t> ClusterTotals(Table.size(), 0);
  for (size_t C = 0; C < Table.size(); ++C) {
    for (const auto &[Label, Count] : Table[C]) {
      SumCells += pairs(Count);
      LabelTotals[Label] += Count;
      ClusterTotals[C] += Count;
    }
  }
  double SumClusters = 0.0;
  for (size_t Total : ClusterTotals)
    SumClusters += pairs(Total);
  double SumLabels = 0.0;
  for (const auto &[Label, Total] : LabelTotals)
    SumLabels += pairs(Total);

  double Expected = SumClusters * SumLabels / pairs(N);
  double MaxIndex = 0.5 * (SumClusters + SumLabels);
  double Denominator = MaxIndex - Expected;
  if (Denominator == 0.0)
    return 1.0; // Degenerate: all in one cluster and one label.
  return (SumCells - Expected) / Denominator;
}

/// \returns the group index containing \p Label, or Groups.size().
static size_t groupOf(const std::string &Label, const LabelGrouping &Groups) {
  for (size_t G = 0; G < Groups.size(); ++G)
    if (std::find(Groups[G].begin(), Groups[G].end(), Label) !=
        Groups[G].end())
      return G;
  return Groups.size();
}

size_t kast::misplacedCount(const std::vector<size_t> &Assignments,
                            const std::vector<std::string> &Labels,
                            const LabelGrouping &Groups) {
  assert(Assignments.size() == Labels.size() &&
         "assignment/label length mismatch");
  const size_t NumC = numClusters(Assignments);
  // Overlap[cluster][group].
  std::vector<std::vector<size_t>> Overlap(
      NumC, std::vector<size_t>(Groups.size() + 1, 0));
  for (size_t I = 0; I < Assignments.size(); ++I)
    ++Overlap[Assignments[I]][groupOf(Labels[I], Groups)];

  size_t Misplaced = 0;
  for (size_t C = 0; C < NumC; ++C) {
    size_t Total = 0, Best = 0;
    for (size_t G = 0; G <= Groups.size(); ++G) {
      Total += Overlap[C][G];
      Best = std::max(Best, Overlap[C][G]);
    }
    Misplaced += Total - Best;
  }
  return Misplaced;
}

double kast::silhouetteScore(const std::vector<double> &Distance, size_t N,
                             const std::vector<size_t> &Assignments) {
  assert(Distance.size() == N * N && "distance data size mismatch");
  assert(Assignments.size() == N && "assignment length mismatch");
  if (N < 2)
    return 0.0;
  const size_t NumC = numClusters(Assignments);
  std::vector<size_t> ClusterSizes(NumC, 0);
  for (size_t C : Assignments)
    ++ClusterSizes[C];

  double Total = 0.0;
  std::vector<double> MeanTo(NumC);
  for (size_t I = 0; I < N; ++I) {
    std::fill(MeanTo.begin(), MeanTo.end(), 0.0);
    for (size_t J = 0; J < N; ++J)
      if (J != I)
        MeanTo[Assignments[J]] += Distance[I * N + J];

    size_t Own = Assignments[I];
    if (ClusterSizes[Own] < 2)
      continue; // Singleton: silhouette defined as 0.
    double A = MeanTo[Own] / static_cast<double>(ClusterSizes[Own] - 1);
    double B = std::numeric_limits<double>::infinity();
    for (size_t C = 0; C < NumC; ++C) {
      if (C == Own || ClusterSizes[C] == 0)
        continue;
      B = std::min(B, MeanTo[C] / static_cast<double>(ClusterSizes[C]));
    }
    if (B == std::numeric_limits<double>::infinity())
      continue; // Only one non-empty cluster.
    double Max = std::max(A, B);
    Total += Max > 0.0 ? (B - A) / Max : 0.0;
  }
  return Total / static_cast<double>(N);
}

bool kast::matchesGrouping(const std::vector<size_t> &Assignments,
                           const std::vector<std::string> &Labels,
                           const LabelGrouping &Groups) {
  assert(Assignments.size() == Labels.size() &&
         "assignment/label length mismatch");
  const size_t NumC = numClusters(Assignments);
  if (NumC != Groups.size())
    return false;
  // Each cluster must map to exactly one group and contain no example
  // of any other group; each group must be claimed exactly once.
  std::vector<size_t> ClusterGroup(NumC, Groups.size());
  for (size_t I = 0; I < Assignments.size(); ++I) {
    size_t G = groupOf(Labels[I], Groups);
    if (G == Groups.size())
      return false; // Label outside the grouping.
    size_t &Assigned = ClusterGroup[Assignments[I]];
    if (Assigned == Groups.size())
      Assigned = G;
    else if (Assigned != G)
      return false; // Mixed cluster.
  }
  std::vector<bool> Claimed(Groups.size(), false);
  for (size_t G : ClusterGroup) {
    if (G == Groups.size() || Claimed[G])
      return false; // Empty cluster or group split across clusters.
    Claimed[G] = true;
  }
  return true;
}
