//===- ml/KernelPca.cpp - Kernel principal component analysis --------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/KernelPca.h"
#include "linalg/Eigen.h"

#include <cassert>
#include <cmath>

using namespace kast;

KernelPcaResult kast::kernelPca(const Matrix &K, size_t MaxComponents) {
  assert(K.rows() == K.cols() && "Gram matrix must be square");
  const size_t N = K.rows();
  KernelPcaResult Result;
  if (N == 0)
    return Result;

  Matrix Centered = doubleCenter(K);
  EigenDecomposition E = eigenSymmetric(Centered);

  // Retain positive components only.
  size_t Keep = 0;
  double PositiveTotal = 0.0;
  for (double Lambda : E.Values)
    if (Lambda > 1e-12)
      PositiveTotal += Lambda;
  for (size_t J = 0; J < E.Values.size() && Keep < MaxComponents; ++J)
    if (E.Values[J] > 1e-12)
      ++Keep;

  Result.Projections = Matrix(N, Keep);
  Result.Eigenvalues.reserve(Keep);
  Result.ExplainedVariance.reserve(Keep);
  for (size_t J = 0; J < Keep; ++J) {
    double Lambda = E.Values[J];
    Result.Eigenvalues.push_back(Lambda);
    Result.ExplainedVariance.push_back(
        PositiveTotal > 0.0 ? Lambda / PositiveTotal : 0.0);
    double Scale = std::sqrt(Lambda);
    for (size_t I = 0; I < N; ++I)
      Result.Projections.at(I, J) = Scale * E.Vectors.at(I, J);
  }
  return Result;
}
