//===- ml/KernelPca.h - Kernel principal component analysis ----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kernel PCA (Schoelkopf, Smola & Mueller, 1997), the first of the two
/// learning algorithms the paper applies to its similarity matrices.
/// Given a Gram matrix K over n examples:
///
///   1. double-center K (zero-mean implicit features);
///   2. eigendecompose the centered matrix;
///   3. the projection of example i onto component j is
///      sqrt(lambda_j) * v_j[i] (principal coordinates).
///
/// Components with non-positive eigenvalues are dropped; indefinite
/// input (possible for the Kast kernel before PSD repair) therefore
/// yields fewer usable components rather than NaNs.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_ML_KERNELPCA_H
#define KAST_ML_KERNELPCA_H

#include "linalg/Matrix.h"

#include <vector>

namespace kast {

/// Output of Kernel PCA.
struct KernelPcaResult {
  /// n x c matrix; row i is example i's coordinates on the c retained
  /// components (ordered by decreasing eigenvalue).
  Matrix Projections;
  /// The retained eigenvalues (positive, descending).
  std::vector<double> Eigenvalues;
  /// Fraction of total positive spectrum captured per component.
  std::vector<double> ExplainedVariance;
};

/// Runs Kernel PCA on Gram matrix \p K keeping at most
/// \p MaxComponents components (the paper's figures use 2).
KernelPcaResult kernelPca(const Matrix &K, size_t MaxComponents = 2);

} // namespace kast

#endif // KAST_ML_KERNELPCA_H
