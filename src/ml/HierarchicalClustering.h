//===- ml/HierarchicalClustering.h - Agglomerative clustering --*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Agglomerative hierarchical clustering, the second learning
/// algorithm of the paper's evaluation ("Hierarchical Clustering, ...
/// using the simple linkage method", §4.1 — i.e. single linkage).
/// Implemented with Lance-Williams updates over a working distance
/// matrix; single, complete and average linkage are provided (the
/// extra linkages support the ablation benches).
///
/// The result is a dendrogram: n - 1 merges in agglomeration order.
/// Leaves are clusters 0..n-1; merge i creates cluster n + i. Flat
/// clusterings are obtained by cutting to a cluster count or at a
/// height.
///
/// Kernel matrices are converted to distances either by the implicit
/// feature-space metric d^2 = k(x,x) + k(y,y) - 2 k(x,y) (clamped at
/// zero) or, for normalized matrices, by d = 1 - k.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_ML_HIERARCHICALCLUSTERING_H
#define KAST_ML_HIERARCHICALCLUSTERING_H

#include "linalg/Matrix.h"

#include <string>
#include <vector>

namespace kast {

/// Inter-cluster distance update rule.
enum class Linkage {
  Single,   ///< min pairwise distance (the paper's choice)
  Complete, ///< max pairwise distance
  Average,  ///< unweighted average (UPGMA)
};

/// \returns "single", "complete" or "average".
const char *linkageName(Linkage L);

/// One agglomeration step.
struct Merge {
  /// Cluster ids merged (leaf ids < n; internal ids >= n).
  size_t Left = 0;
  size_t Right = 0;
  /// Linkage distance at which the merge happened.
  double Distance = 0.0;
  /// Number of leaves in the merged cluster.
  size_t Size = 0;
};

/// The full agglomeration history.
class Dendrogram {
public:
  Dendrogram(size_t NumLeaves, std::vector<Merge> Merges);

  size_t numLeaves() const { return NumLeaves; }
  const std::vector<Merge> &merges() const { return Merges; }

  /// Flat clustering with exactly \p K clusters (1 <= K <= n):
  /// Result[i] is a dense cluster index in [0, K) for leaf i. Cluster
  /// indices are ordered by first leaf occurrence.
  std::vector<size_t> cutToClusters(size_t K) const;

  /// Flat clustering keeping only merges with Distance <= Height.
  std::vector<size_t> cutAtHeight(double Height) const;

  /// Number of clusters obtained by cutAtHeight.
  size_t numClustersAtHeight(double Height) const;

private:
  size_t NumLeaves;
  std::vector<Merge> Merges;
};

/// Clusters the symmetric distance matrix \p Distance.
Dendrogram clusterHierarchical(const Matrix &Distance,
                               Linkage Link = Linkage::Single);

/// Feature-space distance from an (unnormalized or normalized) kernel
/// matrix: d(i,j) = sqrt(max(0, k_ii + k_jj - 2 k_ij)).
Matrix kernelToDistance(const Matrix &K);

/// 1 - k distance for normalized kernel matrices (diagonal == 1).
Matrix similarityToDistance(const Matrix &K);

/// Text rendering of the dendrogram with per-leaf labels, drawn as a
/// rotated tree (merge heights increase to the right).
std::string renderDendrogramAscii(const Dendrogram &D,
                                  const std::vector<std::string> &Labels);

} // namespace kast

#endif // KAST_ML_HIERARCHICALCLUSTERING_H
