//===- ml/HierarchicalClustering.cpp - Agglomerative clustering ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/HierarchicalClustering.h"
#include "util/TextTable.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace kast;

const char *kast::linkageName(Linkage L) {
  switch (L) {
  case Linkage::Single:
    return "single";
  case Linkage::Complete:
    return "complete";
  case Linkage::Average:
    return "average";
  }
  return "single";
}

Dendrogram::Dendrogram(size_t NumLeaves, std::vector<Merge> Merges)
    : NumLeaves(NumLeaves), Merges(std::move(Merges)) {
  assert((NumLeaves == 0 || this->Merges.size() == NumLeaves - 1) &&
         "a dendrogram over n leaves has n-1 merges");
}

/// Union-find over leaf ids after applying the first \p NumMerges
/// merges, renumbered densely by first leaf occurrence.
static std::vector<size_t> flatten(size_t NumLeaves,
                                   const std::vector<Merge> &Merges,
                                   size_t NumMerges) {
  // Cluster id space: leaves [0, n), internal [n, n + merges).
  std::vector<size_t> Root(NumLeaves + Merges.size());
  for (size_t I = 0; I < Root.size(); ++I)
    Root[I] = I;
  auto Find = [&Root](size_t X) {
    while (Root[X] != X) {
      Root[X] = Root[Root[X]];
      X = Root[X];
    }
    return X;
  };
  for (size_t M = 0; M < NumMerges; ++M) {
    size_t Id = NumLeaves + M;
    Root[Find(Merges[M].Left)] = Id;
    Root[Find(Merges[M].Right)] = Id;
  }

  std::vector<size_t> Dense(NumLeaves);
  std::vector<size_t> SeenRoots;
  for (size_t Leaf = 0; Leaf < NumLeaves; ++Leaf) {
    size_t R = Find(Leaf);
    auto It = std::find(SeenRoots.begin(), SeenRoots.end(), R);
    if (It == SeenRoots.end()) {
      SeenRoots.push_back(R);
      Dense[Leaf] = SeenRoots.size() - 1;
    } else {
      Dense[Leaf] = static_cast<size_t>(It - SeenRoots.begin());
    }
  }
  return Dense;
}

std::vector<size_t> Dendrogram::cutToClusters(size_t K) const {
  assert(K >= 1 && K <= std::max<size_t>(NumLeaves, 1) &&
         "cluster count out of range");
  if (NumLeaves == 0)
    return {};
  size_t NumMerges = NumLeaves - K;
  return flatten(NumLeaves, Merges, NumMerges);
}

std::vector<size_t> Dendrogram::cutAtHeight(double Height) const {
  size_t NumMerges = 0;
  while (NumMerges < Merges.size() && Merges[NumMerges].Distance <= Height)
    ++NumMerges;
  return flatten(NumLeaves, Merges, NumMerges);
}

size_t Dendrogram::numClustersAtHeight(double Height) const {
  std::vector<size_t> Flat = cutAtHeight(Height);
  size_t Max = 0;
  for (size_t C : Flat)
    Max = std::max(Max, C + 1);
  return Max;
}

Dendrogram kast::clusterHierarchical(const Matrix &Distance, Linkage Link) {
  assert(Distance.rows() == Distance.cols() && "distance matrix not square");
  const size_t N = Distance.rows();
  std::vector<Merge> Merges;
  if (N < 2)
    return Dendrogram(N, std::move(Merges));

  // Active cluster slots; slot s holds cluster Ids[s] of size Sizes[s].
  std::vector<size_t> Ids(N);
  std::vector<size_t> Sizes(N, 1);
  for (size_t I = 0; I < N; ++I)
    Ids[I] = I;
  Matrix D = Distance;
  std::vector<bool> Active(N, true);

  for (size_t Step = 0; Step + 1 < N; ++Step) {
    // Find the closest active pair; ties break toward smaller ids for
    // deterministic output.
    size_t BestI = 0, BestJ = 0;
    double BestD = std::numeric_limits<double>::infinity();
    for (size_t I = 0; I < N; ++I) {
      if (!Active[I])
        continue;
      for (size_t J = I + 1; J < N; ++J) {
        if (!Active[J])
          continue;
        if (D.at(I, J) < BestD) {
          BestD = D.at(I, J);
          BestI = I;
          BestJ = J;
        }
      }
    }
    assert(BestD < std::numeric_limits<double>::infinity() &&
           "no active pair found");

    // Lance-Williams update into slot BestI; slot BestJ retires.
    for (size_t K = 0; K < N; ++K) {
      if (!Active[K] || K == BestI || K == BestJ)
        continue;
      double Dik = D.at(BestI, K);
      double Djk = D.at(BestJ, K);
      double NewD = 0.0;
      switch (Link) {
      case Linkage::Single:
        NewD = std::min(Dik, Djk);
        break;
      case Linkage::Complete:
        NewD = std::max(Dik, Djk);
        break;
      case Linkage::Average: {
        double Ni = static_cast<double>(Sizes[BestI]);
        double Nj = static_cast<double>(Sizes[BestJ]);
        NewD = (Ni * Dik + Nj * Djk) / (Ni + Nj);
        break;
      }
      }
      D.at(BestI, K) = NewD;
      D.at(K, BestI) = NewD;
    }

    Merges.push_back({Ids[BestI], Ids[BestJ], BestD,
                      Sizes[BestI] + Sizes[BestJ]});
    Ids[BestI] = N + Step;
    Sizes[BestI] += Sizes[BestJ];
    Active[BestJ] = false;
  }
  return Dendrogram(N, std::move(Merges));
}

Matrix kast::kernelToDistance(const Matrix &K) {
  assert(K.rows() == K.cols() && "kernel matrix not square");
  const size_t N = K.rows();
  Matrix D(N, N, 0.0);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J) {
      double Sq = K.at(I, I) + K.at(J, J) - 2.0 * K.at(I, J);
      D.at(I, J) = Sq > 0.0 ? std::sqrt(Sq) : 0.0;
    }
  return D;
}

Matrix kast::similarityToDistance(const Matrix &K) {
  assert(K.rows() == K.cols() && "similarity matrix not square");
  const size_t N = K.rows();
  Matrix D(N, N, 0.0);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      D.at(I, J) = I == J ? 0.0 : std::max(0.0, 1.0 - K.at(I, J));
  return D;
}

namespace {

/// Recursive sideways tree printer.
class DendrogramPrinter {
public:
  DendrogramPrinter(const Dendrogram &D,
                    const std::vector<std::string> &Labels)
      : D(D), Labels(Labels) {}

  std::string print() {
    if (D.numLeaves() == 0)
      return "(empty dendrogram)\n";
    size_t RootId = D.numLeaves() == 1
                        ? 0
                        : D.numLeaves() + D.merges().size() - 1;
    std::string Out;
    emit(RootId, "", "", Out);
    return Out;
  }

private:
  void emit(size_t Id, const std::string &Prefix,
            const std::string &Branch, std::string &Out) {
    if (Id < D.numLeaves()) {
      Out += Prefix + Branch +
             (Id < Labels.size() ? Labels[Id]
                                 : "#" + std::to_string(Id)) +
             "\n";
      return;
    }
    const Merge &M = D.merges()[Id - D.numLeaves()];
    Out += Prefix + Branch + "(d=" + formatDouble(M.Distance) + ")\n";
    std::string ChildPrefix = Prefix;
    if (!Branch.empty())
      ChildPrefix += Branch == "`-" ? "  " : "| ";
    emit(M.Left, ChildPrefix, "|-", Out);
    emit(M.Right, ChildPrefix, "`-", Out);
  }

  const Dendrogram &D;
  const std::vector<std::string> &Labels;
};

} // namespace

std::string
kast::renderDendrogramAscii(const Dendrogram &D,
                            const std::vector<std::string> &Labels) {
  DendrogramPrinter Printer(D, Labels);
  return Printer.print();
}
