//===- ml/NearestNeighbor.h - Kernel nearest-neighbor evaluation *- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leave-one-out nearest-neighbor classification over a similarity
/// matrix. The paper's framing — "I/O access patterns act as
/// fingerprints of a parallel program" — is exactly a retrieval claim;
/// LOO-1NN accuracy quantifies it beyond the clustering views.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_ML_NEARESTNEIGHBOR_H
#define KAST_ML_NEARESTNEIGHBOR_H

#include "linalg/Matrix.h"

#include <string>
#include <vector>

namespace kast {

/// Result of a leave-one-out nearest-neighbor run.
struct LooResult {
  /// Predicted label per example (its nearest neighbor's label).
  std::vector<std::string> Predictions;
  /// Fraction of examples whose prediction matches their label.
  double Accuracy = 0.0;
  /// Indices of the misclassified examples.
  std::vector<size_t> Errors;
};

/// Leave-one-out 1-NN over similarity matrix \p K (higher = closer).
/// Ties break toward the smaller index for determinism.
LooResult leaveOneOutNearestNeighbor(
    const Matrix &K, const std::vector<std::string> &Labels);

} // namespace kast

#endif // KAST_ML_NEARESTNEIGHBOR_H
