//===- ml/ClusterMetrics.h - Clustering quality measures -------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the qualitative claims of the paper's evaluation ("2 out
/// of 4 I/O access pattern groups were completely identified", "no
/// misplaced examples") so the benches can report numbers:
///
///  * purity — fraction of examples in the majority label of their
///    cluster;
///  * adjusted Rand index — chance-corrected pair agreement;
///  * misplacedCount — examples outside their cluster's majority
///    group under an expected label grouping;
///  * matchesGrouping — exact test that a flat clustering realizes a
///    given partition of the labels (e.g. {A}, {B}, {C, D}).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_ML_CLUSTERMETRICS_H
#define KAST_ML_CLUSTERMETRICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace kast {

/// Purity of \p Assignments (dense cluster ids) against \p Labels.
/// \returns a value in (0, 1]; 1 means every cluster is label-pure.
double purity(const std::vector<size_t> &Assignments,
              const std::vector<std::string> &Labels);

/// Adjusted Rand index in [-1, 1]; 1 = identical partitions, ~0 =
/// chance agreement.
double adjustedRandIndex(const std::vector<size_t> &Assignments,
                         const std::vector<std::string> &Labels);

/// An expected grouping: each element is the set of labels forming one
/// ground-truth cluster, e.g. {{"A"}, {"B"}, {"C", "D"}}.
using LabelGrouping = std::vector<std::vector<std::string>>;

/// Number of examples whose cluster's majority group (by overlap)
/// differs from their own group under \p Groups.
size_t misplacedCount(const std::vector<size_t> &Assignments,
                      const std::vector<std::string> &Labels,
                      const LabelGrouping &Groups);

/// \returns true iff the clusters of \p Assignments correspond 1:1 to
/// \p Groups: every cluster contains exactly the examples of one group
/// and every group is covered.
bool matchesGrouping(const std::vector<size_t> &Assignments,
                     const std::vector<std::string> &Labels,
                     const LabelGrouping &Groups);

/// Number of distinct clusters in \p Assignments.
size_t numClusters(const std::vector<size_t> &Assignments);

/// Mean silhouette coefficient of \p Assignments over the symmetric
/// distance matrix \p Distance (row-major n*n, as linalg::Matrix
/// data): for each point, (b - a) / max(a, b) with a = mean distance
/// to its own cluster, b = smallest mean distance to another cluster.
/// Points in singleton clusters contribute 0. \returns a value in
/// [-1, 1]; larger = better-separated clustering. Used to quantify
/// the *margin* differences between kernels that the paper reports
/// only qualitatively.
double silhouetteScore(const std::vector<double> &Distance, size_t N,
                       const std::vector<size_t> &Assignments);

} // namespace kast

#endif // KAST_ML_CLUSTERMETRICS_H
