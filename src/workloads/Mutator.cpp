//===- workloads/Mutator.cpp - Synthetic trace mutations -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/Mutator.h"

#include <algorithm>
#include <cassert>

using namespace kast;

const char *kast::mutationKindName(size_t Kind) {
  switch (Kind) {
  case 0:
    return "perturb-bytes";
  case 1:
    return "duplicate-run";
  case 2:
    return "delete-event";
  case 3:
    return "insert-event";
  default:
    return "?";
  }
}

/// Indices of events that are safe to touch (not open/close, which
/// would change block structure drastically).
static std::vector<size_t> mutableIndices(const Trace &T) {
  std::vector<size_t> Indices;
  for (size_t I = 0; I < T.size(); ++I) {
    const TraceEvent &E = T.events()[I];
    if (!E.isOpen() && !E.isClose())
      Indices.push_back(I);
  }
  return Indices;
}

static void perturbBytes(Trace &T, Rng &R) {
  std::vector<size_t> Indices = mutableIndices(T);
  if (Indices.empty())
    return;
  // Prefer events that actually carry bytes.
  for (size_t Attempt = 0; Attempt < 8; ++Attempt) {
    TraceEvent &E = T.events()[R.pick(Indices)];
    if (E.Bytes == 0)
      continue;
    E.Bytes = R.flip(0.5) ? E.Bytes * 2 : std::max<uint64_t>(1, E.Bytes / 2);
    return;
  }
}

static void duplicateRun(Trace &T, Rng &R, size_t MaxRunLength) {
  std::vector<size_t> Indices = mutableIndices(T);
  if (Indices.empty())
    return;
  size_t Start = R.pick(Indices);
  size_t Length = std::min<size_t>(R.uniformInt(1, MaxRunLength),
                                   T.size() - Start);
  // Do not copy across an open/close boundary.
  for (size_t I = Start; I < Start + Length; ++I) {
    const TraceEvent &E = T.events()[I];
    if (E.isOpen() || E.isClose()) {
      Length = I - Start;
      break;
    }
  }
  if (Length == 0)
    return;
  std::vector<TraceEvent> Run(T.events().begin() + Start,
                              T.events().begin() + Start + Length);
  T.events().insert(T.events().begin() + Start + Length, Run.begin(),
                    Run.end());
}

static void deleteEvent(Trace &T, Rng &R) {
  std::vector<size_t> Indices = mutableIndices(T);
  if (Indices.size() < 2) // Keep at least one operation.
    return;
  T.events().erase(T.events().begin() + R.pick(Indices));
}

static void insertEvent(Trace &T, Rng &R) {
  std::vector<size_t> Indices = mutableIndices(T);
  if (Indices.empty())
    return;
  size_t Source = R.pick(Indices);
  TraceEvent Copy = T.events()[Source];
  T.events().insert(T.events().begin() + Source, std::move(Copy));
}

Trace kast::mutateTrace(const Trace &Original, Rng &R,
                        const MutatorOptions &Options) {
  assert(Options.MinMutations <= Options.MaxMutations &&
         "inverted mutation range");
  Trace Copy = Original;
  size_t Count = R.uniformInt(Options.MinMutations, Options.MaxMutations);
  for (size_t M = 0; M < Count; ++M) {
    switch (R.uniformInt(0, 3)) {
    case 0:
      perturbBytes(Copy, R);
      break;
    case 1:
      duplicateRun(Copy, R, Options.MaxRunLength);
      break;
    case 2:
      deleteEvent(Copy, R);
      break;
    case 3:
      insertEvent(Copy, R);
      break;
    }
  }
  return Copy;
}
