//===- workloads/CorpusIO.h - Corpus directories on disk -------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Materializes a corpus as a directory of plain-text access pattern
/// files — the form the paper's corpus originally had — and loads such
/// a directory back. File names are "<name>.trace" where the name's
/// leading alphabetic prefix is the category label ("A3.2.trace" is a
/// category-A example). This lets every tool in examples/ run against
/// on-disk corpora, synthetic or real.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_WORKLOADS_CORPUSIO_H
#define KAST_WORKLOADS_CORPUSIO_H

#include "util/Error.h"
#include "workloads/DatasetBuilder.h"

#include <string>
#include <vector>

namespace kast {

/// Writes every corpus trace to "<Dir>/<name>.trace". Creates \p Dir
/// if missing. Fails on the first I/O error.
Status writeCorpusDirectory(const std::vector<LabeledTrace> &Corpus,
                            const std::string &Dir);

/// Loads every "*.trace" file of \p Dir (sorted by file name for
/// determinism). Labels are recovered from the leading alphabetic
/// prefix of the file name; BaseIndex/IsMutant are recovered from the
/// "<label><base>.<copy>" convention when present, else 0/false.
Expected<std::vector<LabeledTrace>>
loadCorpusDirectory(const std::string &Dir);

} // namespace kast

#endif // KAST_WORKLOADS_CORPUSIO_H
