//===- workloads/CorpusIO.h - Corpus directories on disk -------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Materializes a corpus as a directory of plain-text access pattern
/// files — the form the paper's corpus originally had — and loads such
/// a directory back. File names are "<name>.trace" where the name
/// follows the "<label><base>.<copy>" lineage convention: a leading
/// alphabetic category label ("A3.2.trace" is a category-A example),
/// a base-example index, and the mutated-copy index after the dot.
/// Loading rejects names that break the convention with a diagnostic
/// error rather than guessing at labels.
///
/// Next to the plain-text traces, a corpus can carry a binary profile
/// cache (core/ProfileSerializer): per-string kernel profiles computed
/// once and reused by every later Gram build or index query.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_WORKLOADS_CORPUSIO_H
#define KAST_WORKLOADS_CORPUSIO_H

#include "core/FlatImage.h"
#include "core/ProfileSerializer.h"
#include "core/StringKernel.h"
#include "util/Error.h"
#include "workloads/DatasetBuilder.h"

#include <string>
#include <vector>

namespace kast {

/// Writes every corpus trace to "<Dir>/<name>.trace". Creates \p Dir
/// if missing. Fails on the first I/O error.
Status writeCorpusDirectory(const std::vector<LabeledTrace> &Corpus,
                            const std::string &Dir);

/// Loads every "*.trace" file of \p Dir. Labels and lineage are
/// recovered from the "<label><base>.<copy>" file-name convention; a
/// name with no alphabetic label prefix, no base index, or no
/// ".<copy>" suffix is a hard error naming the offending file. The
/// result is in numeric lineage order — (label, base index, copy
/// index) — not lexicographic file-name order, so "A2.0" precedes
/// "A10.0" and corpus order matches generation order at any corpus
/// size.
Expected<std::vector<LabeledTrace>>
loadCorpusDirectory(const std::string &Dir);

/// Profiles every string of \p Data with \p Kernel (in parallel),
/// gathers the results into one ProfileStore arena, and writes the
/// versioned binary profile cache (v2 block layout) to \p Path,
/// tagged with the kernel's name.
Status writeCorpusProfileCache(const std::string &Path,
                               const ProfiledStringKernel &Kernel,
                               const LabeledDataset &Data,
                               size_t Threads = 0);

/// Loads a profile cache (v1 or v2) into record-wise form and verifies
/// it was produced by a kernel named like \p Kernel — profiles from
/// different kernels (or the same kernel under different options) are
/// not comparable, and the mismatch surfaces here instead of as
/// silently wrong similarities.
Expected<ProfileCache>
loadCorpusProfileCache(const std::string &Path,
                       const ProfiledStringKernel &Kernel);

/// loadCorpusProfileCache in arena form: a v2 file loads as three bulk
/// blob reads straight into the ProfileStore, with the same
/// kernel-name verification.
Expected<ProfileStoreCache>
loadCorpusProfileStore(const std::string &Path,
                       const ProfiledStringKernel &Kernel);

/// Writes one v2 block-cache file per shard — "<Dir>/shard-NNN.kpc",
/// zero-padded, one per element of \p Shards — creating \p Dir if
/// missing. This is the persistence format of index/IndexService's
/// toShardCaches(): a service restart loads the files back with
/// loadShardedProfileCaches and adopts each shard's arena wholesale.
Status writeShardedProfileCaches(const std::vector<ProfileStoreCache> &Shards,
                                 const std::string &Dir);

/// Loads every "<Dir>/shard-NNN.kpc" written by
/// writeShardedProfileCaches, in shard order. The numbering must be
/// contiguous from 0 (a missing middle shard is a hard error — serving
/// a partial corpus silently would skew every query). A non-empty
/// \p ExpectedKernelName is verified against every shard's cache;
/// pass "" to skip verification and check KernelName yourself.
Expected<std::vector<ProfileStoreCache>>
loadShardedProfileCaches(const std::string &Dir,
                         const std::string &ExpectedKernelName = "");

/// loadShardedProfileCaches verified against \p Kernel's name.
Expected<std::vector<ProfileStoreCache>>
loadShardedProfileCaches(const std::string &Dir,
                         const ProfiledStringKernel &Kernel);

/// Writes one flat image per shard — "<Dir>/shard-NNN.kfi" — with
/// the same three-phase atomic save, staging-file and sweep rules as
/// writeShardedProfileCaches. Each image carries the shard's
/// quantized sidecar (when built) and its routing arenas as v4
/// sections, so a routed service restores via
/// loadShardedProfileImages + IndexService::fromShardCaches with
/// zero-copy stores and no refit or posting rebuild. Leftover
/// "shard-NNN.route" sidecars of routed shards are swept — the
/// embedded arenas supersede them, and a stale sidecar beside a
/// later image would trip loadShardRouting's mismatch diagnostic.
Status writeShardedProfileImages(const std::vector<ProfileStoreCache> &Shards,
                                 const std::string &Dir);

/// Loads every "<Dir>/shard-NNN.kfi" written by
/// writeShardedProfileImages, in shard order, with the same
/// contiguity and staging-leftover rules as loadShardedProfileCaches.
/// The returned stores alias their file mappings (see core/FlatImage)
/// until first mutation.
Expected<std::vector<ProfileStoreCache>>
loadShardedProfileImages(const std::string &Dir,
                         const std::string &ExpectedKernelName = "",
                         const FlatImageReadOptions &Options = {});

} // namespace kast

#endif // KAST_WORKLOADS_CORPUSIO_H
