//===- workloads/CorpusIO.cpp - Corpus directories on disk -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/CorpusIO.h"
#include "trace/TraceParser.h"
#include "trace/TraceWriter.h"
#include "util/StringUtil.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

using namespace kast;

Status kast::writeCorpusDirectory(const std::vector<LabeledTrace> &Corpus,
                                  const std::string &Dir) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return Status::error("cannot create directory '" + Dir +
                         "': " + Ec.message());
  for (const LabeledTrace &Example : Corpus) {
    std::string Name =
        Example.T.name().empty() ? "unnamed" : Example.T.name();
    std::string Path = Dir + "/" + Name + ".trace";
    if (!writeTraceFile(Example.T, Path))
      return Status::error("cannot write '" + Path + "'");
  }
  return Status();
}

/// Splits "<label><base>.<copy>" lineage out of a trace name; every
/// part is mandatory, so a nonconforming name fails loudly instead of
/// yielding an empty label that corrupts downstream accuracy metrics.
static Status parseLineage(const std::string &Name, LabeledTrace &Out) {
  size_t I = 0;
  while (I < Name.size() &&
         std::isalpha(static_cast<unsigned char>(Name[I])))
    ++I;
  if (I == 0)
    return Status::error("no alphabetic label prefix");
  Out.Label = Name.substr(0, I);
  size_t Dot = Name.find('.', I);
  if (Dot == std::string::npos)
    return Status::error("no '.<copy>' suffix");
  std::optional<uint64_t> Base =
      parseUnsigned(std::string_view(Name).substr(I, Dot - I));
  if (!Base)
    return Status::error("no base index between label and '.'");
  Out.BaseIndex = static_cast<size_t>(*Base);
  std::optional<uint64_t> Copy =
      parseUnsigned(std::string_view(Name).substr(Dot + 1));
  if (!Copy)
    return Status::error("copy index after '.' is not a number");
  Out.IsMutant = *Copy != 0;
  return Status();
}

Expected<std::vector<LabeledTrace>>
kast::loadCorpusDirectory(const std::string &Dir) {
  using Result = Expected<std::vector<LabeledTrace>>;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec)
    return Result::error("cannot read directory '" + Dir +
                         "': " + Ec.message());

  std::vector<std::string> Paths;
  for (const std::filesystem::directory_entry &Entry : It)
    if (Entry.is_regular_file() &&
        Entry.path().extension() == ".trace")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());

  std::vector<LabeledTrace> Corpus;
  Corpus.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    Expected<Trace> T = parseTraceFile(Path);
    if (!T)
      return Result::error(T.message());
    LabeledTrace Example;
    Example.T = T.take();
    // Strip the ".trace" suffix the parser kept in the name.
    std::string Name = Example.T.name();
    if (endsWith(Name, ".trace"))
      Name.resize(Name.size() - 6);
    Example.T.setName(Name);
    Status Lineage = parseLineage(Name, Example);
    if (!Lineage)
      return Result::error("malformed trace name '" + Name + "' ('" + Path +
                           "'): " + Lineage.message());
    Corpus.push_back(std::move(Example));
  }
  return Corpus;
}

Status kast::writeCorpusProfileCache(const std::string &Path,
                                     const ProfiledStringKernel &Kernel,
                                     const LabeledDataset &Data,
                                     size_t Threads) {
  std::vector<KernelProfile> Profiles(Data.size());
  parallelFor(
      Data.size(),
      [&](size_t I) { Profiles[I] = Kernel.profile(Data.string(I)); },
      Threads);

  ProfileStoreCache Cache;
  Cache.KernelName = Kernel.name();
  Cache.Names.reserve(Data.size());
  Cache.Labels.reserve(Data.size());
  Cache.Store.appendAll(Profiles);
  for (size_t I = 0; I < Data.size(); ++I) {
    Cache.Names.push_back(Data.string(I).name());
    Cache.Labels.push_back(Data.label(I));
  }
  return writeProfileStoreCacheFile(Cache, Path);
}

Expected<ProfileCache>
kast::loadCorpusProfileCache(const std::string &Path,
                             const ProfiledStringKernel &Kernel) {
  using Result = Expected<ProfileCache>;
  Expected<ProfileCache> Cache = readProfileCacheFile(Path);
  if (!Cache)
    return Cache;
  if (Cache->KernelName != Kernel.name())
    return Result::error("profile cache '" + Path + "' was built by kernel '" +
                         Cache->KernelName + "', expected '" + Kernel.name() +
                         "'");
  return Cache;
}

Expected<ProfileStoreCache>
kast::loadCorpusProfileStore(const std::string &Path,
                             const ProfiledStringKernel &Kernel) {
  using Result = Expected<ProfileStoreCache>;
  Expected<ProfileStoreCache> Cache = readProfileStoreCacheFile(Path);
  if (!Cache)
    return Cache;
  if (Cache->KernelName != Kernel.name())
    return Result::error("profile cache '" + Path + "' was built by kernel '" +
                         Cache->KernelName + "', expected '" + Kernel.name() +
                         "'");
  return Cache;
}
