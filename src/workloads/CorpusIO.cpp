//===- workloads/CorpusIO.cpp - Corpus directories on disk -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/CorpusIO.h"
#include "trace/TraceParser.h"
#include "trace/TraceWriter.h"
#include "util/StringUtil.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <functional>
#include <optional>

using namespace kast;

Status kast::writeCorpusDirectory(const std::vector<LabeledTrace> &Corpus,
                                  const std::string &Dir) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return Status::error("cannot create directory '" + Dir +
                         "': " + Ec.message());
  for (const LabeledTrace &Example : Corpus) {
    std::string Name =
        Example.T.name().empty() ? "unnamed" : Example.T.name();
    std::string Path = Dir + "/" + Name + ".trace";
    if (!writeTraceFile(Example.T, Path))
      return Status::error("cannot write '" + Path + "'");
  }
  return Status();
}

/// Splits "<label><base>.<copy>" lineage out of a trace name; every
/// part is mandatory, so a nonconforming name fails loudly instead of
/// yielding an empty label that corrupts downstream accuracy metrics.
/// \p CopyOut receives the numeric copy index (the load order's final
/// sort key).
static Status parseLineage(const std::string &Name, LabeledTrace &Out,
                           uint64_t &CopyOut) {
  size_t I = 0;
  while (I < Name.size() &&
         std::isalpha(static_cast<unsigned char>(Name[I])))
    ++I;
  if (I == 0)
    return Status::error("no alphabetic label prefix");
  Out.Label = Name.substr(0, I);
  size_t Dot = Name.find('.', I);
  if (Dot == std::string::npos)
    return Status::error("no '.<copy>' suffix");
  std::optional<uint64_t> Base =
      parseUnsigned(std::string_view(Name).substr(I, Dot - I));
  if (!Base)
    return Status::error("no base index between label and '.'");
  Out.BaseIndex = static_cast<size_t>(*Base);
  std::optional<uint64_t> Copy =
      parseUnsigned(std::string_view(Name).substr(Dot + 1));
  if (!Copy)
    return Status::error("copy index after '.' is not a number");
  CopyOut = *Copy;
  Out.IsMutant = *Copy != 0;
  return Status();
}

Expected<std::vector<LabeledTrace>>
kast::loadCorpusDirectory(const std::string &Dir) {
  using Result = Expected<std::vector<LabeledTrace>>;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec)
    return Result::error("cannot read directory '" + Dir +
                         "': " + Ec.message());

  std::vector<std::string> Paths;
  for (const std::filesystem::directory_entry &Entry : It)
    if (Entry.is_regular_file() &&
        Entry.path().extension() == ".trace")
      Paths.push_back(Entry.path().string());
  // Directory iteration order is platform-dependent; pin it before
  // parsing so diagnostics fire in a deterministic order too.
  std::sort(Paths.begin(), Paths.end());

  // Loaded examples keep their numeric copy index alongside so the
  // final order can be the *lineage* order (label, base, copy), not
  // the lexicographic file-name order — which would interleave bases
  // ("A10.0" sorts before "A2.0") the moment a corpus has ten or more
  // bases per label, silently breaking every consumer that assumes
  // corpus order matches lineage order.
  struct ParsedTrace {
    LabeledTrace Example;
    uint64_t Copy = 0;
  };
  std::vector<ParsedTrace> Parsed;
  Parsed.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    Expected<Trace> T = parseTraceFile(Path);
    if (!T)
      return Result::error(T.message());
    ParsedTrace Entry;
    Entry.Example.T = T.take();
    // Strip the ".trace" suffix the parser kept in the name.
    std::string Name = Entry.Example.T.name();
    if (endsWith(Name, ".trace"))
      Name.resize(Name.size() - 6);
    Entry.Example.T.setName(Name);
    Status Lineage = parseLineage(Name, Entry.Example, Entry.Copy);
    if (!Lineage)
      return Result::error("malformed trace name '" + Name + "' ('" + Path +
                           "'): " + Lineage.message());
    Parsed.push_back(std::move(Entry));
  }
  std::sort(Parsed.begin(), Parsed.end(),
            [](const ParsedTrace &L, const ParsedTrace &R) {
              if (L.Example.Label != R.Example.Label)
                return L.Example.Label < R.Example.Label;
              if (L.Example.BaseIndex != R.Example.BaseIndex)
                return L.Example.BaseIndex < R.Example.BaseIndex;
              if (L.Copy != R.Copy)
                return L.Copy < R.Copy;
              return L.Example.T.name() < R.Example.T.name();
            });

  std::vector<LabeledTrace> Corpus;
  Corpus.reserve(Parsed.size());
  for (ParsedTrace &Entry : Parsed)
    Corpus.push_back(std::move(Entry.Example));
  return Corpus;
}

Status kast::writeCorpusProfileCache(const std::string &Path,
                                     const ProfiledStringKernel &Kernel,
                                     const LabeledDataset &Data,
                                     size_t Threads) {
  std::vector<KernelProfile> Profiles(Data.size());
  parallelFor(
      Data.size(),
      [&](size_t I) { Profiles[I] = Kernel.profile(Data.string(I)); },
      Threads);

  ProfileStoreCache Cache;
  Cache.KernelName = Kernel.name();
  Cache.Names.reserve(Data.size());
  Cache.Labels.reserve(Data.size());
  Cache.Store.appendAll(Profiles);
  for (size_t I = 0; I < Data.size(); ++I) {
    Cache.Names.push_back(Data.string(I).name());
    Cache.Labels.push_back(Data.label(I));
  }
  return writeProfileStoreCacheFile(Cache, Path);
}

Expected<ProfileCache>
kast::loadCorpusProfileCache(const std::string &Path,
                             const ProfiledStringKernel &Kernel) {
  using Result = Expected<ProfileCache>;
  Expected<ProfileCache> Cache = readProfileCacheFile(Path);
  if (!Cache)
    return Cache;
  if (Cache->KernelName != Kernel.name())
    return Result::error("profile cache '" + Path + "' was built by kernel '" +
                         Cache->KernelName + "', expected '" + Kernel.name() +
                         "'");
  return Cache;
}

Expected<ProfileStoreCache>
kast::loadCorpusProfileStore(const std::string &Path,
                             const ProfiledStringKernel &Kernel) {
  using Result = Expected<ProfileStoreCache>;
  Expected<ProfileStoreCache> Cache = readProfileStoreCacheFile(Path);
  if (!Cache)
    return Cache;
  if (Cache->KernelName != Kernel.name())
    return Result::error("profile cache '" + Path + "' was built by kernel '" +
                         Cache->KernelName + "', expected '" + Kernel.name() +
                         "'");
  return Cache;
}

/// "<Dir>/shard-NNN<Ext>" with at least three digits; writer, sweeper
/// and loader agree through this formatter and parseShardNumber. Ext
/// is ".kpc" (v2 block caches) or ".kfi" (v3 flat images) — the two
/// sharded persistence formats share every naming, staging, sweeping
/// and contiguity rule, differing only in extension and per-file
/// codec.
static std::string shardFilePath(const std::string &Dir, size_t Shard,
                                 const std::string &Ext) {
  std::string Number = std::to_string(Shard);
  while (Number.size() < 3)
    Number.insert(Number.begin(), '0');
  return Dir + "/shard-" + Number + Ext;
}

/// The inverse of shardFilePath's file-name half: the shard number of
/// a "shard-NNN<Ext>" name, nullopt for anything else — including the
/// "<Ext>.tmp" staging files of an in-flight save and non-canonical
/// spellings like "shard-7.kpc", which would otherwise alias the
/// writer's "shard-007.kpc" in sweep and contiguity decisions.
static std::optional<uint64_t> parseShardNumber(const std::string &File,
                                                const std::string &Ext) {
  if (!File.starts_with("shard-") || !endsWith(File, Ext))
    return std::nullopt;
  std::string_view Digits =
      std::string_view(File).substr(6, File.size() - 6 - Ext.size());
  std::optional<uint64_t> Number = parseUnsigned(Digits);
  if (!Number)
    return std::nullopt;
  std::string Canonical = std::to_string(*Number);
  while (Canonical.size() < 3)
    Canonical.insert(Canonical.begin(), '0');
  return Digits == Canonical ? Number : std::nullopt;
}

/// The extension-generic three-phase sharded save behind both
/// writeShardedProfileCaches (.kpc) and writeShardedProfileImages
/// (.kfi). \p WriteShard writes shard S to a path.
static Status writeShardedFiles(
    size_t Count, const std::string &Dir, const std::string &Ext,
    const std::function<Status(size_t, const std::string &)> &WriteShard) {
  // An empty shard list would write nothing and then sweep *every*
  // existing shard file as stale — a degenerate input silently erasing
  // the previous generation. No real service produces it (a service
  // always has at least one shard), so refuse loudly.
  if (Count == 0)
    return Status::error("refusing to write an empty sharded profile cache "
                         "to '" + Dir + "'");
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return Status::error("cannot create directory '" + Dir +
                         "': " + Ec.message());
  // Three-phase save — write staging files, sweep stale files, rename
  // into place — ordered so that *no* crash point leaves a directory
  // that loads silently wrong: the loader refuses any directory with
  // leftover "<Ext>.tmp" staging files, and until the very last rename
  // at least one staging file exists. A crash therefore yields either
  // the intact previous generation plus a loud diagnostic, never a
  // quietly loadable mix of generations.
  //
  // Phase 1: write every shard under its "<Ext>.tmp" staging name (an
  // ENOSPC here leaves the previous generation untouched).
  for (size_t S = 0; S < Count; ++S)
    if (Status W = WriteShard(S, shardFilePath(Dir, S, Ext) + ".tmp"); !W)
      return W;
  // Phase 2: sweep files of the previous generation the new one will
  // not overwrite — higher-numbered "shard-NNN<Ext>" (their numbering
  // would stay contiguous and silently restore the old corpus
  // alongside the new) and staging leftovers of older interrupted
  // saves. A file the sweep cannot delete fails the save loudly for
  // the same reason.
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec)
    return Status::error("cannot re-read directory '" + Dir +
                         "': " + Ec.message());
  for (const std::filesystem::directory_entry &Entry : It) {
    if (!Entry.is_regular_file())
      continue;
    std::string File = Entry.path().filename().string();
    bool Stale = false;
    if (File.starts_with("shard-") && endsWith(File, Ext + ".tmp")) {
      // Our own phase-1 files are "shard-<canonical 0..N-1><Ext>.tmp";
      // anything else tmp-shaped is a leftover.
      std::optional<uint64_t> Number =
          parseShardNumber(File.substr(0, File.size() - 4), Ext);
      Stale = !Number || *Number >= Count;
    } else if (std::optional<uint64_t> Number = parseShardNumber(File, Ext)) {
      Stale = *Number >= Count;
    }
    if (!Stale)
      continue;
    std::filesystem::remove(Entry.path(), Ec);
    if (Ec)
      return Status::error("cannot remove stale shard cache '" +
                           Entry.path().string() + "': " + Ec.message());
  }
  // Phase 3: rename the staging files into place (atomic per file;
  // each rename overwrites the same-numbered previous-generation
  // file, so partial progress only ever mixes with a loud staging
  // leftover, which the loader rejects).
  for (size_t S = 0; S < Count; ++S) {
    std::string Path = shardFilePath(Dir, S, Ext);
    std::filesystem::rename(Path + ".tmp", Path, Ec);
    if (Ec)
      return Status::error("cannot rename '" + Path + ".tmp' into place: " +
                           Ec.message());
  }
  return Status();
}

/// The extension-generic sharded loader behind both
/// loadShardedProfileCaches (.kpc) and loadShardedProfileImages
/// (.kfi). \p ReadShard reads one shard file into a cache.
static Expected<std::vector<ProfileStoreCache>> loadShardedFiles(
    const std::string &Dir, const std::string &Ext,
    const std::string &ExpectedKernelName,
    const std::function<Expected<ProfileStoreCache>(const std::string &)>
        &ReadShard) {
  using Result = Expected<std::vector<ProfileStoreCache>>;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec)
    return Result::error("cannot read directory '" + Dir +
                         "': " + Ec.message());

  // Collect the shard numbers actually present, then demand the
  // contiguous range 0..N-1: a hole means the corpus on disk is
  // partial, and serving a partial corpus silently would skew every
  // query that restart answers.
  std::vector<uint64_t> Numbers;
  for (const std::filesystem::directory_entry &Entry : It) {
    if (!Entry.is_regular_file())
      continue;
    std::string File = Entry.path().filename().string();
    // A "<Ext>.tmp" staging file means a save is in flight or died
    // mid-way; the shard files beside it may mix generations, so
    // refuse the whole directory rather than restore them silently
    // (a completed re-save sweeps the leftovers and unblocks).
    if (File.starts_with("shard-") && endsWith(File, Ext + ".tmp"))
      return Result::error("interrupted save: staging file '" + File +
                           "' present in '" + Dir +
                           "'; re-save the shards or remove it");
    if (!File.starts_with("shard-") || !endsWith(File, Ext))
      continue;
    std::optional<uint64_t> Number = parseShardNumber(File, Ext);
    if (!Number)
      return Result::error("unparseable shard cache name '" + File +
                           "' in '" + Dir + "'");
    Numbers.push_back(*Number);
  }
  if (Numbers.empty())
    return Result::error("no shard-*" + Ext + " caches in '" + Dir + "'");
  std::sort(Numbers.begin(), Numbers.end());
  for (size_t S = 0; S < Numbers.size(); ++S)
    if (Numbers[S] != S)
      return Result::error("shard caches in '" + Dir +
                           "' are not contiguous: missing shard " +
                           std::to_string(S));

  std::vector<ProfileStoreCache> Shards;
  Shards.reserve(Numbers.size());
  for (size_t S = 0; S < Numbers.size(); ++S) {
    std::string Path = shardFilePath(Dir, S, Ext);
    Expected<ProfileStoreCache> Cache = ReadShard(Path);
    if (!Cache)
      return Result::error(Cache.message());
    if (!ExpectedKernelName.empty() &&
        Cache->KernelName != ExpectedKernelName)
      return Result::error("shard cache '" + Path +
                           "' was built by kernel '" + Cache->KernelName +
                           "', expected '" + ExpectedKernelName + "'");
    Shards.push_back(Cache.take());
  }
  return Shards;
}

Status
kast::writeShardedProfileCaches(const std::vector<ProfileStoreCache> &Shards,
                                const std::string &Dir) {
  return writeShardedFiles(Shards.size(), Dir, ".kpc",
                           [&](size_t S, const std::string &Path) {
                             return writeProfileStoreCacheFile(Shards[S],
                                                               Path);
                           });
}

Expected<std::vector<ProfileStoreCache>>
kast::loadShardedProfileCaches(const std::string &Dir,
                               const std::string &ExpectedKernelName) {
  return loadShardedFiles(Dir, ".kpc", ExpectedKernelName,
                          readProfileStoreCacheFile);
}

Status
kast::writeShardedProfileImages(const std::vector<ProfileStoreCache> &Shards,
                                const std::string &Dir) {
  Status W = writeShardedFiles(Shards.size(), Dir, ".kfi",
                               [&](size_t S, const std::string &Path) {
                                 return writeProfileStoreImageFile(Shards[S],
                                                                   Path);
                               });
  if (!W.ok())
    return W;
  // An image that embeds its shard's routing (v4 arenas, or the legacy
  // ROUTE blob) supersedes any "shard-NNN.route" sidecar left from a
  // pre-image save of the same directory: sweep it, or a later
  // loadShardRouting could pair the stale fit with contents it was not
  // fitted on. Sidecars of shards whose image carries no routing are
  // left alone — the .kpc + .route layout still owns them.
  for (size_t S = 0; S < Shards.size(); ++S) {
    if (!Shards[S].Routing && Shards[S].RouteBlob.empty())
      continue;
    std::error_code Ec;
    std::filesystem::remove(shardFilePath(Dir, S, ".route"), Ec);
  }
  return Status();
}

Expected<std::vector<ProfileStoreCache>>
kast::loadShardedProfileImages(const std::string &Dir,
                               const std::string &ExpectedKernelName,
                               const FlatImageReadOptions &Options) {
  return loadShardedFiles(Dir, ".kfi", ExpectedKernelName,
                          [&](const std::string &Path) {
                            return readProfileStoreImageFile(Path, Options);
                          });
}

Expected<std::vector<ProfileStoreCache>>
kast::loadShardedProfileCaches(const std::string &Dir,
                               const ProfiledStringKernel &Kernel) {
  return loadShardedProfileCaches(Dir, Kernel.name());
}
