//===- workloads/CorpusIO.cpp - Corpus directories on disk -----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/CorpusIO.h"
#include "trace/TraceParser.h"
#include "trace/TraceWriter.h"
#include "util/StringUtil.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

using namespace kast;

Status kast::writeCorpusDirectory(const std::vector<LabeledTrace> &Corpus,
                                  const std::string &Dir) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return Status::error("cannot create directory '" + Dir +
                         "': " + Ec.message());
  for (const LabeledTrace &Example : Corpus) {
    std::string Name =
        Example.T.name().empty() ? "unnamed" : Example.T.name();
    std::string Path = Dir + "/" + Name + ".trace";
    if (!writeTraceFile(Example.T, Path))
      return Status::error("cannot write '" + Path + "'");
  }
  return Status();
}

/// Splits "<label><base>.<copy>" lineage out of a trace name.
static void parseLineage(const std::string &Name, LabeledTrace &Out) {
  size_t I = 0;
  while (I < Name.size() &&
         std::isalpha(static_cast<unsigned char>(Name[I])))
    ++I;
  Out.Label = Name.substr(0, I);
  size_t Dot = Name.find('.', I);
  std::optional<uint64_t> Base =
      parseUnsigned(std::string_view(Name).substr(I, Dot - I));
  if (Base)
    Out.BaseIndex = static_cast<size_t>(*Base);
  if (Dot != std::string::npos) {
    std::optional<uint64_t> Copy =
        parseUnsigned(std::string_view(Name).substr(Dot + 1));
    Out.IsMutant = Copy && *Copy != 0;
  }
}

Expected<std::vector<LabeledTrace>>
kast::loadCorpusDirectory(const std::string &Dir) {
  using Result = Expected<std::vector<LabeledTrace>>;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec);
  if (Ec)
    return Result::error("cannot read directory '" + Dir +
                         "': " + Ec.message());

  std::vector<std::string> Paths;
  for (const std::filesystem::directory_entry &Entry : It)
    if (Entry.is_regular_file() &&
        Entry.path().extension() == ".trace")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());

  std::vector<LabeledTrace> Corpus;
  Corpus.reserve(Paths.size());
  for (const std::string &Path : Paths) {
    Expected<Trace> T = parseTraceFile(Path);
    if (!T)
      return Result::error(T.message());
    LabeledTrace Example;
    Example.T = T.take();
    // Strip the ".trace" suffix the parser kept in the name.
    std::string Name = Example.T.name();
    if (endsWith(Name, ".trace"))
      Name.resize(Name.size() - 6);
    Example.T.setName(Name);
    parseLineage(Name, Example);
    Corpus.push_back(std::move(Example));
  }
  return Corpus;
}
