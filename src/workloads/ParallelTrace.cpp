//===- workloads/ParallelTrace.cpp - Multi-rank trace merging --------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/ParallelTrace.h"

#include <cassert>

using namespace kast;

std::vector<Trace>
kast::disjointHandles(const std::vector<Trace> &RankTraces,
                      uint64_t HandleStride) {
  std::vector<Trace> Out;
  Out.reserve(RankTraces.size());
  for (size_t Rank = 0; Rank < RankTraces.size(); ++Rank) {
    Trace Remapped = RankTraces[Rank];
    for (TraceEvent &E : Remapped.events()) {
      assert(E.Handle < HandleStride &&
             "handle exceeds the disjoint-range stride");
      E.Handle += static_cast<uint64_t>(Rank) * HandleStride;
    }
    Out.push_back(std::move(Remapped));
  }
  return Out;
}

Trace kast::interleaveTraces(const std::vector<Trace> &RankTraces, Rng &R,
                             const InterleaveOptions &Options) {
  Trace Global("parallel");
  std::vector<size_t> Position(RankTraces.size(), 0);
  size_t Remaining = 0;
  for (const Trace &T : RankTraces)
    Remaining += T.size();

  size_t LastRank = RankTraces.size(); // Sentinel: no burst yet.
  while (Remaining > 0) {
    // Weighted pick over ranks with events left; the previous rank
    // gets a burstiness bonus.
    std::vector<double> Weights(RankTraces.size(), 0.0);
    for (size_t Rank = 0; Rank < RankTraces.size(); ++Rank) {
      if (Position[Rank] >= RankTraces[Rank].size())
        continue;
      Weights[Rank] = 1.0;
      if (Rank == LastRank)
        Weights[Rank] += Options.Burstiness;
    }
    size_t Rank = R.pickWeighted(Weights);
    Global.append(RankTraces[Rank].events()[Position[Rank]]);
    ++Position[Rank];
    --Remaining;
    LastRank = Rank;
  }
  return Global;
}

Trace kast::generateParallelTrace(Category C, size_t NumRanks, Rng &R,
                                  const GeneratorConfig &Config,
                                  const InterleaveOptions &Interleave) {
  assert(NumRanks >= 1 && "a parallel run needs at least one rank");
  std::vector<Trace> Ranks;
  Ranks.reserve(NumRanks);
  for (size_t Rank = 0; Rank < NumRanks; ++Rank) {
    Rng RankRng = R.split();
    Ranks.push_back(generateTrace(C, RankRng, Config));
  }
  Ranks = disjointHandles(Ranks);
  Trace Global = interleaveTraces(Ranks, R, Interleave);
  Global.setName(std::string(categoryName(C)) + "-x" +
                 std::to_string(NumRanks));
  return Global;
}
