//===- workloads/Mutator.h - Synthetic trace mutations ---------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small category-preserving mutations of traces, reproducing the
/// paper's corpus expansion (§4.1: "For each pattern 4 additional
/// synthetic copies were created. Such copies introduced small
/// mutations on the pattern; ... access patterns that were, in theory,
/// closer to a determined example than the rest of the category
/// members").
///
/// Mutation kinds:
///   * PerturbBytes  — scale one event's byte count (x2 or /2);
///   * DuplicateRun  — duplicate a short run of events in place;
///   * DeleteEvent   — remove one non-open/close event;
///   * InsertEvent   — insert a copy of an existing event nearby.
///
/// Mutations only recombine material already present in the trace, so
/// no category-foreign operation (e.g. an lseek in a category-C trace)
/// can appear — the property that keeps copies clustered with their
/// originals.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_WORKLOADS_MUTATOR_H
#define KAST_WORKLOADS_MUTATOR_H

#include "trace/Trace.h"
#include "util/Rng.h"

namespace kast {

/// Mutation tuning.
struct MutatorOptions {
  /// How many mutations one copy receives.
  size_t MinMutations = 1;
  size_t MaxMutations = 3;
  /// Longest run DuplicateRun copies.
  size_t MaxRunLength = 4;
};

/// Names of the four mutation kinds, index 0..3.
const char *mutationKindName(size_t Kind);

/// \returns a mutated copy of \p Original (named "<name>~mN").
Trace mutateTrace(const Trace &Original, Rng &R,
                  const MutatorOptions &Options = {});

} // namespace kast

#endif // KAST_WORKLOADS_MUTATOR_H
