//===- workloads/Generators.cpp - Synthetic trace generators ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Design note: every generated BLOCK is *homogeneous* (one phase of
// one transfer pattern). The paper's compression rules are greedy and
// local; heterogeneous blocks collapse into composite tokens whose
// byte signatures depend on incidental orderings, which makes two runs
// of the same program look unrelated. Real I/O benchmarks behave like
// the homogeneous shape anyway: IOR opens the file per phase, FLASH
// writes its metadata burst and then streams uniform data chunks.
// Under homogeneous blocks the compressor produces stable tokens
// (read[S]:n, lseek+read[S]:2n, write[4+8+16+32]:4, ...) and the
// corpus reproduces the separability structure §4.2 describes.
//
//===----------------------------------------------------------------------===//

#include "workloads/Generators.h"

using namespace kast;

const char *kast::categoryLabel(Category C) {
  switch (C) {
  case Category::FlashIO:
    return "A";
  case Category::RandomPosix:
    return "B";
  case Category::NormalIO:
    return "C";
  case Category::RandomAccess:
    return "D";
  }
  return "?";
}

const char *kast::categoryName(Category C) {
  switch (C) {
  case Category::FlashIO:
    return "flash-io";
  case Category::RandomPosix:
    return "random-posix";
  case Category::NormalIO:
    return "normal-io";
  case Category::RandomAccess:
    return "random-access";
  }
  return "?";
}

/// Transfer sizes shared by categories B/C/D. The pools of B/C/D and A
/// are disjoint: §4.2 attributes A's separation (with byte info) to
/// write byte values "not present in the other categories".
static const std::vector<uint64_t> &commonSizes() {
  static const std::vector<uint64_t> Sizes = {4096, 8192, 65536};
  return Sizes;
}

/// Large checkpoint chunk sizes used only by category A.
static const std::vector<uint64_t> &flashChunkSizes() {
  static const std::vector<uint64_t> Sizes = {131072, 262144, 524288,
                                              1048576};
  return Sizes;
}

Trace kast::generateFlashIO(Rng &R, const GeneratorConfig &Config) {
  Trace T("flash-io");
  // A checkpoint run writes a few files (plotfile, checkpoint,
  // particle file). Per file: a metadata block — a burst of small
  // writes with *different* byte values following the fixed header
  // layout — then one or two data blocks streaming uniform chunks.
  size_t NumFiles = R.uniformInt(2, 3);
  for (size_t F = 0; F < NumFiles; ++F) {
    uint64_t Handle = 10 + F;

    // Metadata block: fixed 4/8/16/32 progression, occasionally with
    // a trailing 64-byte attribute record.
    T.append(OpKind::Open, Handle);
    for (uint64_t FieldSize : {4, 8, 16, 32})
      T.append(OpKind::Write, Handle, FieldSize);
    if (R.flip(0.3))
      T.append(OpKind::Write, Handle, 64);
    T.append(OpKind::Close, Handle);

    // Data blocks: uniform chunk size per block.
    size_t DataBlocks = R.uniformInt(1, 2);
    for (size_t B = 0; B < DataBlocks; ++B) {
      uint64_t Chunk = R.pick(flashChunkSizes());
      size_t Count = R.uniformInt(8, 24) * Config.Scale;
      T.append(OpKind::Open, Handle);
      for (size_t I = 0; I < Count; ++I)
        T.append(OpKind::Write, Handle, Chunk);
      if (R.flip(0.5))
        T.append(OpKind::Fsync, Handle);
      T.append(OpKind::Close, Handle);
    }
  }
  return T;
}

Trace kast::generateRandomPosix(Rng &R, const GeneratorConfig &Config) {
  Trace T("random-posix");
  uint64_t Handle = 20;
  // Random-I/O runs open with a short *sequential* warm-up scan (no
  // seeks — ordinary reads from the size pool C/D also use), then the
  // defining seek-then-transfer loops. The warm-up gives B the same
  // surface vocabulary as C/D — a count-based kernel sees the shared
  // token types and merges B with C/D — but the warm-up carries little
  // weight next to the long lseek loops, so a weight-aware kernel
  // still tells them apart. The first loop is always a page-sized
  // index scan, which every B run shares.
  T.append(OpKind::Open, Handle);
  size_t WarmUp = R.uniformInt(4, 8);
  for (size_t I = 0; I < WarmUp; ++I)
    T.append(OpKind::Read, Handle, 4096);
  T.append(OpKind::Close, Handle);

  size_t Phases = R.uniformInt(2, 4);
  for (size_t P = 0; P < Phases; ++P) {
    uint64_t Size = P == 0 ? 4096 : R.pick(commonSizes());
    bool Reading = P == 0 || R.flip(0.6);
    size_t Iterations = R.uniformInt(15, 40) * Config.Scale;
    T.append(OpKind::Open, Handle);
    for (size_t I = 0; I < Iterations; ++I) {
      T.append(OpKind::Lseek, Handle, 0);
      T.append(Reading ? OpKind::Read : OpKind::Write, Handle, Size);
    }
    T.append(OpKind::Close, Handle);
    // Occasionally a short plain burst between seek loops.
    if (R.flip(0.4)) {
      uint64_t BurstSize = R.pick(commonSizes());
      size_t Burst = R.uniformInt(3, 6);
      T.append(OpKind::Open, Handle);
      for (size_t I = 0; I < Burst; ++I)
        T.append(R.flip(0.5) ? OpKind::Read : OpKind::Write, Handle,
                 BurstSize);
      T.append(OpKind::Close, Handle);
    }
  }
  return T;
}

Trace kast::generateNormalIO(Rng &R, const GeneratorConfig &Config) {
  Trace T("normal-io");
  uint64_t Handle = 30;
  // Long sequential phases, one per open..close span (IOR reopens the
  // file between its write and read phases). Few blocks, long runs.
  size_t Phases = R.uniformInt(2, 4);
  for (size_t P = 0; P < Phases; ++P) {
    uint64_t Size = R.pick(commonSizes());
    // Leading phases lean toward reads, trailing toward writes.
    bool Reading = R.flip(P + 1 < Phases ? 0.7 : 0.3);
    size_t Run = R.uniformInt(15, 40) * Config.Scale;
    T.append(OpKind::Open, Handle);
    for (size_t I = 0; I < Run; ++I)
      T.append(Reading ? OpKind::Read : OpKind::Write, Handle, Size);
    T.append(OpKind::Close, Handle);
  }
  return T;
}

Trace kast::generateRandomAccess(Rng &R, const GeneratorConfig &Config) {
  Trace T("random-access");
  uint64_t Handle = 40;
  // Random access at the trace level shows up as many short transfer
  // bursts over reopened spans, with the same operation vocabulary and
  // size pool as C — which is why the paper finds C and D "shared
  // roughly the same pattern". Many blocks, short runs, random mix.
  size_t Bursts = R.uniformInt(5, 9);
  for (size_t B = 0; B < Bursts; ++B) {
    uint64_t Size = R.pick(commonSizes());
    bool Reading = R.flip(0.5);
    size_t Run = R.uniformInt(4, 12) * Config.Scale;
    T.append(OpKind::Open, Handle);
    for (size_t I = 0; I < Run; ++I)
      T.append(Reading ? OpKind::Read : OpKind::Write, Handle, Size);
    T.append(OpKind::Close, Handle);
  }
  return T;
}

Trace kast::generateTrace(Category C, Rng &R,
                          const GeneratorConfig &Config) {
  Trace T;
  switch (C) {
  case Category::FlashIO:
    T = generateFlashIO(R, Config);
    break;
  case Category::RandomPosix:
    T = generateRandomPosix(R, Config);
    break;
  case Category::NormalIO:
    T = generateNormalIO(R, Config);
    break;
  case Category::RandomAccess:
    T = generateRandomAccess(R, Config);
    break;
  }
  return T;
}
