//===- workloads/Generators.h - Synthetic trace generators -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the paper's trace corpus (§4.1): patterns
/// "generated from 4 different I/O forms of accessing the storage".
/// The originals came from instrumented IOR [14] and FLASH [15] runs,
/// which are not available; these generators encode the structural
/// facts §4.2 attributes the clustering outcome to:
///
///   A  Flash I/O       — multi-file checkpoint writer: per handle a
///                        burst of small metadata writes with *varying*
///                        byte counts then large data writes ("(A)
///                        examples contained contiguous write
///                        operations with different byte values that
///                        were not present in the other categories").
///   B  Random POSIX    — seek-then-transfer loops ("(B) examples
///                        contained lseek operations not seen
///                        elsewhere").
///   C  Normal I/O      — sequential fixed-size read/write phases.
///   D  Random Access   — same operation vocabulary as C but irregular
///                        interleavings and run lengths ("(C) and (D)
///                        shared roughly the same pattern").
///
/// All generators draw structure (phase counts, sizes, run lengths)
/// from a caller-provided Rng, so one category yields a family of
/// related-but-distinct examples, as in the paper's corpus.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_WORKLOADS_GENERATORS_H
#define KAST_WORKLOADS_GENERATORS_H

#include "trace/Trace.h"
#include "util/Rng.h"

#include <string>

namespace kast {

/// The four corpus categories.
enum class Category { FlashIO, RandomPosix, NormalIO, RandomAccess };

/// \returns "A", "B", "C" or "D" (the paper's group letters).
const char *categoryLabel(Category C);

/// \returns a descriptive name ("flash-io", ...).
const char *categoryName(Category C);

/// Generator tuning shared by all categories.
struct GeneratorConfig {
  /// Scale factor on loop lengths (1 = paper-scale small traces).
  size_t Scale = 1;
};

/// Generates one FLASH-style checkpoint trace (category A).
Trace generateFlashIO(Rng &R, const GeneratorConfig &Config = {});

/// Generates one random-POSIX trace with lseek loops (category B).
Trace generateRandomPosix(Rng &R, const GeneratorConfig &Config = {});

/// Generates one sequential read/write trace (category C).
Trace generateNormalIO(Rng &R, const GeneratorConfig &Config = {});

/// Generates one random-access trace (category D).
Trace generateRandomAccess(Rng &R, const GeneratorConfig &Config = {});

/// Dispatches on \p C.
Trace generateTrace(Category C, Rng &R, const GeneratorConfig &Config = {});

} // namespace kast

#endif // KAST_WORKLOADS_GENERATORS_H
