//===- workloads/DatasetBuilder.cpp - The 110-example corpus ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "workloads/DatasetBuilder.h"

using namespace kast;

std::vector<LabeledTrace> kast::generateCorpus(const CorpusOptions &Options) {
  std::vector<LabeledTrace> Corpus;
  Rng Master(Options.Seed);

  const std::pair<Category, size_t> Plan[] = {
      {Category::FlashIO, Options.BaseA},
      {Category::RandomPosix, Options.BaseB},
      {Category::NormalIO, Options.BaseC},
      {Category::RandomAccess, Options.BaseD},
  };

  for (const auto &[Cat, NumBase] : Plan) {
    const char *Label = categoryLabel(Cat);
    for (size_t Base = 0; Base < NumBase; ++Base) {
      // Every example gets its own stream: corpus layout changes do
      // not reshuffle unrelated examples.
      Rng ExampleRng = Master.split();
      Trace BaseTrace = generateTrace(Cat, ExampleRng, Options.Generator);
      BaseTrace.setName(std::string(Label) + std::to_string(Base) + ".0");
      Corpus.push_back({BaseTrace, Label, Base, /*IsMutant=*/false});

      for (size_t Copy = 1; Copy <= Options.CopiesPerBase; ++Copy) {
        Trace Mutant = mutateTrace(BaseTrace, ExampleRng, Options.Mutator);
        Mutant.setName(std::string(Label) + std::to_string(Base) + "." +
                       std::to_string(Copy));
        Corpus.push_back({std::move(Mutant), Label, Base,
                          /*IsMutant=*/true});
      }
    }
  }
  return Corpus;
}

LabeledDataset kast::convertCorpus(const Pipeline &Pipeline,
                                   const std::vector<LabeledTrace> &Corpus) {
  LabeledDataset Data;
  for (const LabeledTrace &Example : Corpus) {
    WeightedString S = Pipeline.convert(Example.T);
    S.setName(Example.T.name());
    Data.add(std::move(S), Example.Label);
  }
  return Data;
}
