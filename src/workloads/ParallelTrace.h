//===- workloads/ParallelTrace.h - Multi-rank trace merging ----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel-program trace plumbing. The paper's tree construction
/// exists because "with several file handles acting at the same time
/// it is not always possible that all the operations belonging to the
/// same file handle could have been written contiguously" (§3.1) —
/// i.e. a parallel run's global trace interleaves the per-rank,
/// per-handle streams. These helpers simulate that:
///
///  * disjointHandles  — remaps each rank's handles into a disjoint
///    range (rank r's handle h becomes r * Stride + h), as a shared
///    file system would assign distinct descriptors;
///  * interleaveTraces — merges per-rank traces into one chronological
///    global trace under a random (seeded) schedule that preserves
///    each rank's internal order.
///
/// The representation's central invariance — the weighted string
/// depends only on each handle's event sequence and the handles'
/// first-appearance order, not on the interleaving — is property-
/// tested in WorkloadsTest/PropertyTest.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_WORKLOADS_PARALLELTRACE_H
#define KAST_WORKLOADS_PARALLELTRACE_H

#include "trace/Trace.h"
#include "util/Rng.h"
#include "workloads/Generators.h"

#include <vector>

namespace kast {

/// Remaps the handles of \p RankTraces into disjoint ranges:
/// rank r's handle h becomes r * HandleStride + h. Asserts that every
/// original handle is below \p HandleStride.
std::vector<Trace> disjointHandles(const std::vector<Trace> &RankTraces,
                                   uint64_t HandleStride = 1000);

/// Options for interleaving.
struct InterleaveOptions {
  /// Probability weight of continuing with the same rank (burstiness);
  /// 0 = round-robin-ish uniform scheduling, larger = longer bursts,
  /// matching the bursty behavior of real supercomputing I/O (§2.1).
  double Burstiness = 0.0;
};

/// Merges per-rank traces into one global trace: repeatedly picks a
/// rank (seeded by \p R) and emits its next event. Per-rank order is
/// preserved exactly; the global order is a random legal schedule.
Trace interleaveTraces(const std::vector<Trace> &RankTraces, Rng &R,
                       const InterleaveOptions &Options = {});

/// Generates a \p NumRanks-rank parallel run of category \p C: each
/// rank runs the category generator with its own stream (ranks of one
/// run resemble each other but are not identical), handles are made
/// disjoint, and the result is interleaved into a global trace.
Trace generateParallelTrace(Category C, size_t NumRanks, Rng &R,
                            const GeneratorConfig &Config = {},
                            const InterleaveOptions &Interleave = {});

} // namespace kast

#endif // KAST_WORKLOADS_PARALLELTRACE_H
