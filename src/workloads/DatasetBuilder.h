//===- workloads/DatasetBuilder.h - The 110-example corpus -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's corpus shape (§4.1): 22 base examples over
/// categories A/B/C/D, each with 4 mutated synthetic copies, giving 110
/// examples distributed A:50, B:20, C:20, D:20 (so A has 10 base
/// examples and B/C/D have 4 each). Traces are generated once and can
/// then be converted by any Pipeline (byte-aware or byte-ignoring), as
/// the paper evaluates both representations of the same corpus.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_WORKLOADS_DATASETBUILDER_H
#define KAST_WORKLOADS_DATASETBUILDER_H

#include "core/Dataset.h"
#include "core/Pipeline.h"
#include "workloads/Generators.h"
#include "workloads/Mutator.h"

#include <string>
#include <vector>

namespace kast {

/// One corpus element before string conversion.
struct LabeledTrace {
  Trace T;
  std::string Label;     ///< "A", "B", "C" or "D".
  size_t BaseIndex = 0;  ///< Which base example this descends from.
  bool IsMutant = false; ///< True for the synthetic copies.
};

/// Corpus shape parameters (defaults = the paper's corpus).
struct CorpusOptions {
  size_t BaseA = 10;
  size_t BaseB = 4;
  size_t BaseC = 4;
  size_t BaseD = 4;
  size_t CopiesPerBase = 4;
  uint64_t Seed = 20170904; ///< PaCT 2017 started September 4, 2017.
  GeneratorConfig Generator;
  MutatorOptions Mutator;
};

/// Generates the corpus traces (base examples + mutated copies), in
/// category-major deterministic order.
std::vector<LabeledTrace> generateCorpus(const CorpusOptions &Options = {});

/// Converts corpus traces into a labeled string dataset with
/// \p Pipeline; string names are "<label><base>.<copy>" (copy 0 is the
/// base example).
LabeledDataset convertCorpus(const Pipeline &Pipeline,
                             const std::vector<LabeledTrace> &Corpus);

} // namespace kast

#endif // KAST_WORKLOADS_DATASETBUILDER_H
