//===- linalg/Eigen.cpp - Symmetric eigensolver and PSD repair ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace kast;

/// Sum of squares of the strict upper triangle; convergence measure.
static double offDiagonalNormSq(const Matrix &A) {
  double Sum = 0.0;
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = I + 1; J < A.cols(); ++J)
      Sum += A.at(I, J) * A.at(I, J);
  return Sum;
}

EigenDecomposition kast::eigenSymmetric(const Matrix &Input,
                                        const JacobiOptions &Options) {
  assert(Input.rows() == Input.cols() && "eigendecomposition needs square");
  assert(Input.isSymmetric(1e-6) && "eigendecomposition needs symmetry");
  const size_t N = Input.rows();

  Matrix A = Input;
  Matrix V = Matrix::identity(N);
  EigenDecomposition Result;

  const double Threshold = Options.Tolerance * Options.Tolerance;
  for (size_t Sweep = 0; Sweep < Options.MaxSweeps; ++Sweep) {
    if (offDiagonalNormSq(A) <= Threshold) {
      Result.Converged = true;
      break;
    }
    ++Result.Sweeps;
    // One cyclic sweep over the strict upper triangle.
    for (size_t P = 0; P + 1 < N; ++P) {
      for (size_t Q = P + 1; Q < N; ++Q) {
        double Apq = A.at(P, Q);
        if (std::fabs(Apq) < 1e-300)
          continue;
        double App = A.at(P, P);
        double Aqq = A.at(Q, Q);
        // Rotation angle from the standard Jacobi formulas.
        double Theta = (Aqq - App) / (2.0 * Apq);
        double T = (Theta >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;

        // Apply the rotation to rows/columns p and q of A.
        for (size_t K = 0; K < N; ++K) {
          double Akp = A.at(K, P);
          double Akq = A.at(K, Q);
          A.at(K, P) = C * Akp - S * Akq;
          A.at(K, Q) = S * Akp + C * Akq;
        }
        for (size_t K = 0; K < N; ++K) {
          double Apk = A.at(P, K);
          double Aqk = A.at(Q, K);
          A.at(P, K) = C * Apk - S * Aqk;
          A.at(Q, K) = S * Apk + C * Aqk;
        }
        // Accumulate the eigenvector rotation.
        for (size_t K = 0; K < N; ++K) {
          double Vkp = V.at(K, P);
          double Vkq = V.at(K, Q);
          V.at(K, P) = C * Vkp - S * Vkq;
          V.at(K, Q) = S * Vkp + C * Vkq;
        }
      }
    }
  }
  if (!Result.Converged)
    Result.Converged = offDiagonalNormSq(A) <= Threshold;

  // Extract and sort eigenpairs in descending eigenvalue order.
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::vector<double> Diag(N);
  for (size_t I = 0; I < N; ++I)
    Diag[I] = A.at(I, I);
  std::sort(Order.begin(), Order.end(),
            [&Diag](size_t L, size_t R) { return Diag[L] > Diag[R]; });

  Result.Values.resize(N);
  Result.Vectors = Matrix(N, N);
  for (size_t J = 0; J < N; ++J) {
    Result.Values[J] = Diag[Order[J]];
    for (size_t I = 0; I < N; ++I)
      Result.Vectors.at(I, J) = V.at(I, Order[J]);
  }
  return Result;
}

/// Rebuilds sum over non-negative eigenvalues of lambda * v v^T from a
/// computed decomposition; shared by the two PSD projections.
static Matrix rebuildClipped(const EigenDecomposition &E, size_t N) {
  Matrix Out(N, N, 0.0);
  // Out = sum over non-negative eigenvalues of lambda * v v^T.
  for (size_t K = 0; K < N; ++K) {
    double Lambda = E.Values[K];
    if (Lambda <= 0.0)
      continue;
    for (size_t I = 0; I < N; ++I) {
      double Vi = E.Vectors.at(I, K);
      if (Vi == 0.0)
        continue;
      for (size_t J = 0; J < N; ++J)
        Out.at(I, J) += Lambda * Vi * E.Vectors.at(J, K);
    }
  }
  // Remove rounding asymmetry.
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J) {
      double Mean = 0.5 * (Out.at(I, J) + Out.at(J, I));
      Out.at(I, J) = Mean;
      Out.at(J, I) = Mean;
    }
  return Out;
}

Matrix kast::projectToPsd(const Matrix &A, const JacobiOptions &Options) {
  return rebuildClipped(eigenSymmetric(A, Options), A.rows());
}

Matrix kast::projectToPsdIfNeeded(const Matrix &A,
                                  const JacobiOptions &Options) {
  EigenDecomposition E = eigenSymmetric(A, Options);
  if (E.Values.empty() || E.Values.back() >= 0.0)
    return A;
  return rebuildClipped(E, A.rows());
}

double kast::minEigenvalue(const Matrix &A, const JacobiOptions &Options) {
  EigenDecomposition E = eigenSymmetric(A, Options);
  assert(!E.Values.empty() && "empty matrix has no eigenvalues");
  return E.Values.back();
}

Matrix kast::doubleCenter(const Matrix &K) {
  assert(K.rows() == K.cols() && "centering needs a square Gram matrix");
  const size_t N = K.rows();
  if (N == 0)
    return K;
  std::vector<double> RowMean(N, 0.0);
  double TotalMean = 0.0;
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J < N; ++J)
      RowMean[I] += K.at(I, J);
    RowMean[I] /= static_cast<double>(N);
    TotalMean += RowMean[I];
  }
  TotalMean /= static_cast<double>(N);

  Matrix Out(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      Out.at(I, J) = K.at(I, J) - RowMean[I] - RowMean[J] + TotalMean;
  return Out;
}
