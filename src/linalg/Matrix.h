//===- linalg/Matrix.h - Dense row-major matrix ----------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense matrix of doubles. KAST's linear algebra needs are
/// modest (Gram matrices of a few hundred examples, Kernel PCA,
/// eigenvalue clipping), so this is a straightforward row-major
/// implementation with the handful of operations the ml layer uses,
/// written for clarity and asserted invariants rather than BLAS-level
/// performance.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_LINALG_MATRIX_H
#define KAST_LINALG_MATRIX_H

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace kast {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Creates a Rows x Cols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0);

  /// Creates the N x N identity.
  static Matrix identity(size_t N);

  /// Builds a matrix from nested initializer data (rows of equal size).
  static Matrix fromRows(const std::vector<std::vector<double>> &Rows);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  bool empty() const { return Data.empty(); }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Raw row-major storage; size() == rows()*cols().
  const std::vector<double> &data() const { return Data; }
  std::vector<double> &data() { return Data; }

  /// Matrix product this * Rhs.
  Matrix multiply(const Matrix &Rhs) const;

  /// Transposed copy.
  Matrix transposed() const;

  /// Element-wise maximum absolute difference to \p Rhs (same shape).
  double maxAbsDiff(const Matrix &Rhs) const;

  /// Frobenius norm.
  double frobeniusNorm() const;

  /// \returns true if |at(i,j) - at(j,i)| <= Tol for all i, j.
  bool isSymmetric(double Tol = 1e-9) const;

  /// Multi-line human-readable rendering (for diagnostics and tests).
  std::string str(int Precision = 4) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Dot product of two equal-length vectors.
double dot(const std::vector<double> &A, const std::vector<double> &B);

/// Euclidean norm.
double norm(const std::vector<double> &A);

} // namespace kast

#endif // KAST_LINALG_MATRIX_H
