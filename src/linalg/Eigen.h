//===- linalg/Eigen.h - Symmetric eigensolver and PSD repair ---*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cyclic Jacobi eigendecomposition for symmetric matrices, plus the
/// two kernel-matrix transformations the paper's evaluation pipeline
/// needs:
///
///  * PSD projection — Section 4.1: "If the matrices presented negative
///    eigenvalues, they were replaced by zero and the matrices
///    rebuilt." Implemented as V * max(D, 0) * V^T.
///  * double centering — the feature-space centering step of Kernel PCA
///    (Schoelkopf et al., 1997): K' = K - 1K - K1 + 1K1.
///
/// Jacobi is chosen over faster tridiagonalization methods because it
/// is simple, unconditionally stable for symmetric input, and the Gram
/// matrices here are at most a few hundred rows.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_LINALG_EIGEN_H
#define KAST_LINALG_EIGEN_H

#include "linalg/Matrix.h"

#include <vector>

namespace kast {

/// Result of a symmetric eigendecomposition A = V * diag(Values) * V^T.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> Values;
  /// Column j of this matrix is the eigenvector for Values[j].
  Matrix Vectors;
  /// Number of Jacobi sweeps performed.
  size_t Sweeps = 0;
  /// True if the off-diagonal norm converged below tolerance.
  bool Converged = false;
};

/// Options for the Jacobi solver.
struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius norm falls below this.
  double Tolerance = 1e-12;
  /// Hard sweep limit; 100 is far beyond what symmetric input needs.
  size_t MaxSweeps = 100;
};

/// Computes the full eigendecomposition of symmetric \p A.
///
/// \pre A.isSymmetric(). Asserts on non-square input.
EigenDecomposition eigenSymmetric(const Matrix &A,
                                  const JacobiOptions &Options = {});

/// Clips negative eigenvalues to zero and rebuilds the matrix,
/// returning the nearest (Frobenius) positive semi-definite matrix.
/// The result is re-symmetrized to remove rounding asymmetry.
Matrix projectToPsd(const Matrix &A, const JacobiOptions &Options = {});

/// Like projectToPsd, but returns \p A unchanged when its spectrum is
/// already non-negative — and decides that from the same single
/// eigendecomposition the rebuild uses, where the minEigenvalue-then-
/// projectToPsd sequence costs two.
Matrix projectToPsdIfNeeded(const Matrix &A,
                            const JacobiOptions &Options = {});

/// \returns the smallest eigenvalue of symmetric \p A.
double minEigenvalue(const Matrix &A, const JacobiOptions &Options = {});

/// Double-centers a Gram matrix: K' = K - 1K - K1 + 1K1 where 1 is the
/// constant 1/n matrix. After centering the implicit feature vectors
/// have zero mean.
Matrix doubleCenter(const Matrix &K);

} // namespace kast

#endif // KAST_LINALG_EIGEN_H
