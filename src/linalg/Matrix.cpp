//===- linalg/Matrix.cpp - Dense row-major matrix --------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Matrix.h"
#include "util/TextTable.h"

#include <algorithm>
#include <cmath>

using namespace kast;

Matrix::Matrix(size_t Rows, size_t Cols, double Fill)
    : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

Matrix Matrix::identity(size_t N) {
  Matrix I(N, N, 0.0);
  for (size_t K = 0; K < N; ++K)
    I.at(K, K) = 1.0;
  return I;
}

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows[0].size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.cols() && "ragged row data");
    for (size_t C = 0; C < M.cols(); ++C)
      M.at(R, C) = Rows[R][C];
  }
  return M;
}

Matrix Matrix::multiply(const Matrix &Rhs) const {
  assert(NumCols == Rhs.NumRows && "shape mismatch in multiply");
  Matrix Out(NumRows, Rhs.NumCols, 0.0);
  for (size_t I = 0; I < NumRows; ++I) {
    for (size_t K = 0; K < NumCols; ++K) {
      double Aik = at(I, K);
      if (Aik == 0.0)
        continue;
      for (size_t J = 0; J < Rhs.NumCols; ++J)
        Out.at(I, J) += Aik * Rhs.at(K, J);
    }
  }
  return Out;
}

Matrix Matrix::transposed() const {
  Matrix Out(NumCols, NumRows);
  for (size_t I = 0; I < NumRows; ++I)
    for (size_t J = 0; J < NumCols; ++J)
      Out.at(J, I) = at(I, J);
  return Out;
}

double Matrix::maxAbsDiff(const Matrix &Rhs) const {
  assert(NumRows == Rhs.NumRows && NumCols == Rhs.NumCols &&
         "shape mismatch in maxAbsDiff");
  double Max = 0.0;
  for (size_t I = 0; I < Data.size(); ++I)
    Max = std::max(Max, std::fabs(Data[I] - Rhs.Data[I]));
  return Max;
}

double Matrix::frobeniusNorm() const {
  double Sum = 0.0;
  for (double V : Data)
    Sum += V * V;
  return std::sqrt(Sum);
}

bool Matrix::isSymmetric(double Tol) const {
  if (NumRows != NumCols)
    return false;
  for (size_t I = 0; I < NumRows; ++I)
    for (size_t J = I + 1; J < NumCols; ++J)
      if (std::fabs(at(I, J) - at(J, I)) > Tol)
        return false;
  return true;
}

std::string Matrix::str(int Precision) const {
  std::string Out;
  for (size_t I = 0; I < NumRows; ++I) {
    Out += '[';
    for (size_t J = 0; J < NumCols; ++J) {
      if (J != 0)
        Out += ", ";
      Out += formatDouble(at(I, J), Precision);
    }
    Out += "]\n";
  }
  return Out;
}

double kast::dot(const std::vector<double> &A, const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot of unequal lengths");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double kast::norm(const std::vector<double> &A) { return std::sqrt(dot(A, A)); }
