//===- runtime/QueryServer.h - Async batched serving runtime ---*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous serving runtime over an IndexService. Callers
/// submit queries from any number of threads and get a future; an
/// admission batcher drains the bounded lock-free queue, executes each
/// admitted batch against ONE IndexSnapshot through the batched query
/// path, and fulfills the futures. The batch amortizes what
/// call-per-query serving pays per request — snapshot acquisition,
/// query flattening scratch, and (on the routed path) the per-shard
/// InvertedScratch allocation — which is where the throughput
/// headroom on a loaded box actually is.
///
/// Exactness contract: for every admitted request the response is
/// bit-identical — scores, order, and tie-breaks — to calling
/// snapshot().query(...) (or queryApprox, in approximate mode)
/// synchronously on the snapshot the batch executed against. Batching
/// changes *when* work happens and which snapshot a request observes
/// (the one current at admission, not at submit), never *what* a
/// query computes. Differential tests pin this.
///
/// Backpressure is explicit: the admission queue is bounded, and when
/// it is full submit() either fails fast with ServeStatus::Rejected or
/// blocks until a slot frees, per OverflowPolicy. There is no hidden
/// unbounded buffer anywhere in the path.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_RUNTIME_QUERYSERVER_H
#define KAST_RUNTIME_QUERYSERVER_H

#include "index/IndexService.h"
#include "runtime/MpscQueue.h"
#include "runtime/ServerStats.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace kast {

/// Terminal state of one submitted request.
enum class ServeStatus {
  Ok,       ///< Executed; Hits holds the answer.
  Rejected, ///< Bounced at admission: queue full under OverflowPolicy::Reject.
  ShutDown, ///< Bounced at admission: server stopping or stopped.
};

/// What a submitted request's future resolves to.
struct QueryResponse {
  ServeStatus Status = ServeStatus::Ok;
  std::vector<ServiceHit> Hits;
};

/// What submit() does when the admission queue is full.
enum class OverflowPolicy {
  Block,  ///< Spin/yield until a slot frees (or shutdown begins).
  Reject, ///< Resolve the future immediately with ServeStatus::Rejected.
};

struct QueryServerOptions {
  /// Most requests one admission batch may carry. Larger batches
  /// amortize more per-batch cost but add queueing delay under light
  /// load (bounded by MaxWaitMicros).
  size_t MaxBatch = 32;
  /// How long the batcher waits for stragglers after admitting the
  /// first request of a batch before executing a partial batch. The
  /// tail-latency price of batching under light load.
  size_t MaxWaitMicros = 200;
  /// Admission queue capacity (rounded up to a power of two). This
  /// bound IS the backpressure: submit() of a full queue blocks or
  /// rejects, per Overflow.
  size_t QueueCapacity = 1024;
  OverflowPolicy Overflow = OverflowPolicy::Block;
  /// Worker width for batch execution (passed through to the batched
  /// query path's parallelFor; 0 = hardware concurrency).
  size_t ExecThreads = 0;
  /// Serve through the routed candidate-generation tier
  /// (queryBatchApprox) instead of the exact scan. The bit-identity
  /// contract is then against snapshot().queryApprox(...).
  bool Approx = false;
  /// NProbe for approximate mode (0 = shard default).
  size_t NProbe = 0;
};

/// Asynchronous batched query server over one IndexService.
///
/// Thread-safety: submit()/submitBorrowed() may be called from any
/// number of threads concurrently with each other, with writers
/// mutating the underlying service, and with shutdown(). The service
/// must outlive the server.
class QueryServer {
public:
  explicit QueryServer(const IndexService &Service,
                       QueryServerOptions Options = {});
  ~QueryServer(); ///< Calls shutdown().

  QueryServer(const QueryServer &) = delete;
  QueryServer &operator=(const QueryServer &) = delete;

  /// Submits an owned query. The future resolves once the batch the
  /// request was admitted into has executed (ServeStatus::Ok), or
  /// immediately on rejection/shutdown.
  std::future<QueryResponse> submit(KernelProfile Query, size_t K,
                                    bool Normalize = true);

  /// submit() without copying: the caller guarantees \p Query stays
  /// alive and unmodified until the returned future is ready. The
  /// load-generator path — profiles live in a corpus array anyway.
  std::future<QueryResponse> submitBorrowed(const KernelProfile &Query,
                                            size_t K, bool Normalize = true);

  /// Stops admission (subsequent submits resolve ShutDown), drains and
  /// executes every already-admitted request, and joins the batcher.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Test/ops hook: holds the batcher between batches. Submissions
  /// still enqueue (and, once the queue fills, exercise the overflow
  /// policy) but nothing executes until resume(). shutdown() overrides
  /// a pause to drain.
  void pause() { Paused.store(true, std::memory_order_release); }
  void resume();

  const ServerStats &stats() const { return Stats; }

  /// Requests admitted but not yet executed (racy; exact quiesced).
  size_t queueDepth() const { return Queue.sizeApprox(); }

  size_t queueCapacity() const { return Queue.capacity(); }

private:
  /// One in-flight request. Heap-allocated at submit, owned by the
  /// queue slot (as a raw pointer) until the batcher takes it, deleted
  /// after its promise is resolved.
  struct Request {
    const KernelProfile *Profile = nullptr; ///< Borrowed, or &Owned.
    KernelProfile Owned;
    size_t K = 0;
    bool Normalize = true;
    std::promise<QueryResponse> Promise;
    uint64_t EnqueueNs = 0;
  };

  std::future<QueryResponse> submitRequest(Request *R);
  void batcherLoop();
  /// Pops up to MaxBatch requests, waiting MaxWaitMicros for
  /// stragglers after the first. Returns an empty batch on idle
  /// timeout or shutdown-with-empty-queue.
  void gatherBatch(std::vector<Request *> &Batch);
  /// Executes \p Batch against one snapshot and resolves every
  /// promise. Groups requests by (K, Normalize) so mixed-parameter
  /// batches still hit the batched path per group.
  void executeBatch(std::vector<Request *> &Batch);
  void wakeBatcher();

  const IndexService &Service;
  const QueryServerOptions Options;
  ServerStats Stats;

  mutable MpscQueue<Request *> Queue;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Paused{false};
  /// Submitters between their admission-gate check and the end of
  /// their push (Dekker handshake with the batcher's shutdown drain:
  /// both sides use seq_cst, so once the batcher observes Stopping
  /// and then ActiveSubmitters == 0, every push that passed the gate
  /// is visible and no new one can start — one final tryPop decides).
  std::atomic<size_t> ActiveSubmitters{0};

  /// Idle parking handshake: the batcher publishes Parked before
  /// waiting on WakeCv; producers notify only when they observe it.
  /// The batcher's wait is timed, so the push-between-check-and-wait
  /// race costs one bounded timeout, never a lost wakeup.
  std::atomic<bool> Parked{false};
  std::mutex WakeMutex;
  std::condition_variable WakeCv;

  std::mutex ShutdownMutex;
  std::thread Batcher;
};

} // namespace kast

#endif // KAST_RUNTIME_QUERYSERVER_H
