//===- runtime/QueryServer.cpp - Async batched serving runtime ------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/QueryServer.h"
#include "runtime/Backoff.h"

#include <algorithm>
#include <chrono>

using namespace kast;

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

QueryServer::QueryServer(const IndexService &Service, QueryServerOptions Opts)
    : Service(Service), Options([&] {
        QueryServerOptions O = Opts;
        O.MaxBatch = std::max<size_t>(1, O.MaxBatch);
        O.QueueCapacity = std::max<size_t>(2, O.QueueCapacity);
        return O;
      }()),
      Queue(Options.QueueCapacity) {
  Batcher = std::thread([this] { batcherLoop(); });
}

QueryServer::~QueryServer() { shutdown(); }

//===----------------------------------------------------------------------===//
// Submission
//===----------------------------------------------------------------------===//

std::future<QueryResponse> QueryServer::submit(KernelProfile Query, size_t K,
                                               bool Normalize) {
  Request *R = new Request;
  R->Owned = std::move(Query);
  R->Profile = &R->Owned;
  R->K = K;
  R->Normalize = Normalize;
  return submitRequest(R);
}

std::future<QueryResponse> QueryServer::submitBorrowed(
    const KernelProfile &Query, size_t K, bool Normalize) {
  Request *R = new Request;
  R->Profile = &Query;
  R->K = K;
  R->Normalize = Normalize;
  return submitRequest(R);
}

std::future<QueryResponse> QueryServer::submitRequest(Request *R) {
  std::future<QueryResponse> Fut = R->Promise.get_future();
  // Admission gate, Dekker-paired with the batcher's shutdown drain
  // (see ActiveSubmitters in the header): increment FIRST, then check
  // Stopping, and hold the count until the push is complete.
  ActiveSubmitters.fetch_add(1);
  const auto Bounce = [&](ServeStatus Status,
                          std::atomic<uint64_t> &Counter) {
    Counter.fetch_add(1, std::memory_order_relaxed);
    ActiveSubmitters.fetch_sub(1);
    R->Promise.set_value(QueryResponse{Status, {}});
    delete R;
    return std::move(Fut);
  };
  if (Stopping.load())
    return Bounce(ServeStatus::ShutDown, Stats.RejectedShutdown);
  R->EnqueueNs = nowNs();
  Request *P = R;
  if (!Queue.tryPush(std::move(P))) {
    if (Options.Overflow == OverflowPolicy::Reject)
      return Bounce(ServeStatus::Rejected, Stats.Rejected);
    // Block: the queue is the backpressure valve — spin/yield until
    // the batcher frees a slot. Shutdown mid-wait bounces rather than
    // risking a push the draining batcher never takes.
    Backoff B;
    for (;;) {
      B.pause();
      if (Stopping.load())
        return Bounce(ServeStatus::ShutDown, Stats.RejectedShutdown);
      P = R;
      if (Queue.tryPush(std::move(P)))
        break;
    }
  }
  ActiveSubmitters.fetch_sub(1);
  Stats.Submitted.fetch_add(1, std::memory_order_relaxed);
  wakeBatcher();
  return Fut;
}

void QueryServer::wakeBatcher() {
  if (Parked.load(std::memory_order_acquire)) {
    // The lock pairs with the batcher's park sequence: after we
    // acquire it the batcher is either inside wait_for (sees the
    // notify) or past its re-check (sees the pushed request).
    std::lock_guard<std::mutex> Lock(WakeMutex);
    WakeCv.notify_one();
  }
}

void QueryServer::resume() {
  Paused.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(WakeMutex);
  WakeCv.notify_one();
}

//===----------------------------------------------------------------------===//
// Admission batching
//===----------------------------------------------------------------------===//

void QueryServer::gatherBatch(std::vector<Request *> &Batch) {
  Batch.clear();
  Request *R = nullptr;

  // Phase 1: wait for the batch's first request — spin briefly, then
  // park on the cv (bounded wait; see the Parked comment in the
  // header for why the race with producers is benign).
  Backoff B;
  for (;;) {
    if (Paused.load(std::memory_order_acquire) &&
        !Stopping.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> Lock(WakeMutex);
      WakeCv.wait_for(Lock, std::chrono::milliseconds(1));
      continue;
    }
    if (Queue.tryPop(R)) {
      Batch.push_back(R);
      break;
    }
    if (Stopping.load() && ActiveSubmitters.load() == 0) {
      // No submitter is mid-push and none can start (they see
      // Stopping first), so one final pop decides emptiness.
      if (Queue.tryPop(R)) {
        Batch.push_back(R);
        break;
      }
      return; // Stopping and the queue is drained: nothing to gather.
    }
    if (!B.yielding()) {
      B.pause();
      continue;
    }
    Parked.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> Lock(WakeMutex);
    if (Queue.tryPop(R)) {
      Parked.store(false, std::memory_order_release);
      Batch.push_back(R);
      break;
    }
    WakeCv.wait_for(Lock, std::chrono::milliseconds(1));
    Parked.store(false, std::memory_order_release);
    B.reset();
  }

  // Phase 2: admit stragglers until the batch is full or the wait
  // budget is spent. Draining a backlog never waits; the budget only
  // applies once the queue runs dry mid-gather.
  const auto Deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(Options.MaxWaitMicros);
  B.reset();
  while (Batch.size() < Options.MaxBatch) {
    if (Queue.tryPop(R)) {
      Batch.push_back(R);
      B.reset();
      continue;
    }
    if (Stopping.load(std::memory_order_acquire))
      break; // Execute what we have; the loop re-enters to drain.
    if (std::chrono::steady_clock::now() >= Deadline)
      break;
    B.pause();
  }
}

void QueryServer::executeBatch(std::vector<Request *> &Batch) {
  if (Batch.empty())
    return;
  const uint64_t ExecStart = nowNs();

  // One snapshot for the whole batch — every request admitted here
  // observes the same published state, and snapshot acquisition
  // (shard-count atomic shared_ptr loads) is paid once.
  const IndexSnapshot Snap = Service.snapshot();

  // Group by (K, Normalize) so heterogeneous batches still execute
  // through the batched path: stable partition keeps admission order
  // within a group, and each group makes one queryBatch call.
  std::stable_sort(Batch.begin(), Batch.end(),
                   [](const Request *L, const Request *R) {
                     if (L->K != R->K)
                       return L->K < R->K;
                     return L->Normalize < R->Normalize;
                   });
  std::vector<const KernelProfile *> Group;
  size_t Begin = 0;
  while (Begin < Batch.size()) {
    size_t End = Begin + 1;
    while (End < Batch.size() && Batch[End]->K == Batch[Begin]->K &&
           Batch[End]->Normalize == Batch[Begin]->Normalize)
      ++End;
    Group.clear();
    for (size_t I = Begin; I < End; ++I)
      Group.push_back(Batch[I]->Profile);
    try {
      std::vector<std::vector<ServiceHit>> Results =
          Options.Approx
              ? Snap.queryBatchApprox(Group, Batch[Begin]->K,
                                      Batch[Begin]->Normalize, Options.NProbe,
                                      Options.ExecThreads)
              : Snap.queryBatch(Group, Batch[Begin]->K,
                                Batch[Begin]->Normalize, Options.ExecThreads);
      for (size_t I = Begin; I < End; ++I)
        Batch[I]->Promise.set_value(
            QueryResponse{ServeStatus::Ok, std::move(Results[I - Begin])});
    } catch (...) {
      for (size_t I = Begin; I < End; ++I)
        Batch[I]->Promise.set_exception(std::current_exception());
    }
    Begin = End;
  }

  const uint64_t ExecEnd = nowNs();
  Stats.ExecuteNs.record(ExecEnd - ExecStart);
  Stats.BatchSize.record(Batch.size());
  Stats.Batches.fetch_add(1, std::memory_order_relaxed);
  Stats.Completed.fetch_add(Batch.size(), std::memory_order_relaxed);
  for (Request *R : Batch) {
    Stats.QueueWaitNs.record(ExecStart >= R->EnqueueNs
                                 ? ExecStart - R->EnqueueNs
                                 : 0);
    Stats.TotalNs.record(ExecEnd >= R->EnqueueNs ? ExecEnd - R->EnqueueNs : 0);
    delete R;
  }
  Batch.clear();
}

void QueryServer::batcherLoop() {
  std::vector<Request *> Batch;
  Batch.reserve(Options.MaxBatch);
  for (;;) {
    gatherBatch(Batch);
    if (Batch.empty()) {
      // gatherBatch returns empty only when stopping with a drained
      // queue — the shutdown exit.
      if (Stopping.load(std::memory_order_acquire))
        return;
      continue;
    }
    executeBatch(Batch);
  }
}

//===----------------------------------------------------------------------===//
// Shutdown
//===----------------------------------------------------------------------===//

void QueryServer::shutdown() {
  std::lock_guard<std::mutex> Lock(ShutdownMutex);
  if (!Batcher.joinable())
    return; // Already shut down.
  Stopping.store(true, std::memory_order_release);
  {
    // Unpark the batcher so it observes Stopping promptly.
    std::lock_guard<std::mutex> WakeLock(WakeMutex);
    WakeCv.notify_one();
  }
  Batcher.join();
  // The batcher drained the queue before exiting; nothing can have
  // been pushed since (submitters bounce on Stopping before pushing).
}
