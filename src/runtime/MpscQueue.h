//===- runtime/MpscQueue.h - Bounded lock-free MPSC queue ------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission queue of the serving runtime: many producer threads
/// (request submitters) push, one consumer (the admission batcher)
/// pops. Bounded by construction — the queue *is* the backpressure
/// mechanism, so it must refuse rather than grow.
///
/// The implementation is the classic sequence-number ring (Vyukov's
/// bounded queue): each slot carries an atomic sequence that encodes,
/// relative to the ticket counters, whether the slot is free, full, or
/// mid-handoff. Producers claim a ticket with one CAS and then publish
/// their payload with a release store on the slot sequence; the
/// consumer observes payloads through the matching acquire load, so no
/// locks, no spurious blocking, and each push/pop is O(1) with exactly
/// one contended atomic. (The ring is in fact MPMC-safe; the runtime
/// only ever attaches one consumer.)
///
/// tryPush/tryPop never wait. Callers layer policy on top: the
/// runtime's submit() either fails fast (reject-with-status) or spins
/// with runtime/Backoff.h (block) when the ring is full.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_RUNTIME_MPSCQUEUE_H
#define KAST_RUNTIME_MPSCQUEUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace kast {

/// Bounded multi-producer single-consumer ring of movable T.
template <typename T> class MpscQueue {
public:
  /// Capacity is rounded up to the next power of two (minimum 2) so
  /// slot addressing is a mask, not a modulo.
  explicit MpscQueue(size_t Capacity) {
    size_t Cap = 2;
    while (Cap < Capacity)
      Cap <<= 1;
    Slots = std::make_unique<Slot[]>(Cap);
    Mask = Cap - 1;
    for (size_t I = 0; I <= Mask; ++I)
      Slots[I].Sequence.store(I, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue &) = delete;
  MpscQueue &operator=(const MpscQueue &) = delete;

  size_t capacity() const { return Mask + 1; }

  /// Entries currently enqueued (racy under concurrency; exact when
  /// quiesced). Never exceeds capacity().
  size_t sizeApprox() const {
    const size_t Back = Tail.load(std::memory_order_relaxed);
    const size_t Front = Head.load(std::memory_order_relaxed);
    return Back >= Front ? Back - Front : 0;
  }

  /// Enqueues \p Value if a slot is free; the value is moved only on
  /// success. Returns false when the ring is full.
  bool tryPush(T &&Value) {
    Slot *S;
    size_t Pos = Tail.load(std::memory_order_relaxed);
    for (;;) {
      S = &Slots[Pos & Mask];
      const size_t Seq = S->Sequence.load(std::memory_order_acquire);
      const intptr_t Dif =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos);
      if (Dif == 0) {
        // Slot free for this ticket: claim it. Weak CAS — a spurious
        // failure just retries with the reloaded position.
        if (Tail.compare_exchange_weak(Pos, Pos + 1,
                                       std::memory_order_relaxed))
          break;
      } else if (Dif < 0) {
        // The slot still holds the entry one full lap behind: full.
        return false;
      } else {
        // Another producer claimed this ticket; chase the tail.
        Pos = Tail.load(std::memory_order_relaxed);
      }
    }
    S->Value = std::move(Value);
    S->Sequence.store(Pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeues into \p Out. Returns false when empty.
  bool tryPop(T &Out) {
    Slot *S;
    size_t Pos = Head.load(std::memory_order_relaxed);
    for (;;) {
      S = &Slots[Pos & Mask];
      const size_t Seq = S->Sequence.load(std::memory_order_acquire);
      const intptr_t Dif =
          static_cast<intptr_t>(Seq) - static_cast<intptr_t>(Pos + 1);
      if (Dif == 0) {
        if (Head.compare_exchange_weak(Pos, Pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (Dif < 0) {
        // The producer that claimed this ticket has not published yet
        // (or the ring is empty): nothing to take.
        return false;
      } else {
        Pos = Head.load(std::memory_order_relaxed);
      }
    }
    Out = std::move(S->Value);
    S->Sequence.store(Pos + Mask + 1, std::memory_order_release);
    return true;
  }

private:
  struct Slot {
    std::atomic<size_t> Sequence{0};
    T Value{};
  };

  std::unique_ptr<Slot[]> Slots;
  size_t Mask = 0;
  /// Producer and consumer tickets, kept on separate cache lines from
  /// each other and the slot array.
  alignas(64) std::atomic<size_t> Tail{0};
  alignas(64) std::atomic<size_t> Head{0};
};

} // namespace kast

#endif // KAST_RUNTIME_MPSCQUEUE_H
