//===- runtime/ServerStats.cpp - Lock-free serving telemetry --------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "runtime/ServerStats.h"

#include <cmath>
#include <cstdio>

using namespace kast;

size_t LatencyHistogram::bucketOf(uint64_t Value) {
  // Values below 2^SubBucketBits land in octave 0, addressed linearly
  // (exact buckets for the smallest values).
  if (Value < SubBuckets)
    return static_cast<size_t>(Value);
  // Octave = position of the highest set bit above the sub-bucket
  // range; the SubBucketBits bits just below it pick the sub-bucket.
  const int High = 63 - __builtin_clzll(Value);
  const size_t Octave = static_cast<size_t>(High) - SubBucketBits + 1;
  const size_t Sub =
      static_cast<size_t>(Value >> (High - static_cast<int>(SubBucketBits))) &
      (SubBuckets - 1);
  const size_t B = Octave * SubBuckets + Sub;
  return B < NumBuckets ? B : NumBuckets - 1;
}

double LatencyHistogram::bucketUpper(size_t B) {
  const size_t Octave = B / SubBuckets;
  const size_t Sub = B % SubBuckets;
  if (Octave == 0)
    return static_cast<double>(Sub);
  // First value of the octave is 2^(Octave + SubBucketBits - 1); each
  // sub-bucket spans 2^(Octave - 1) values.
  const double Base = std::ldexp(1.0, static_cast<int>(Octave) +
                                          static_cast<int>(SubBucketBits) - 1);
  const double Width = std::ldexp(1.0, static_cast<int>(Octave) - 1);
  return Base + Width * static_cast<double>(Sub + 1) - 1.0;
}

void LatencyHistogram::record(uint64_t Value) {
  Buckets[bucketOf(Value)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Prev = MaxSeen.load(std::memory_order_relaxed);
  while (Prev < Value && !MaxSeen.compare_exchange_weak(
                             Prev, Value, std::memory_order_relaxed))
    ;
}

double LatencyHistogram::percentile(double Fraction) const {
  const uint64_t Total = Count.load(std::memory_order_relaxed);
  if (Total == 0)
    return 0.0;
  // Rank of the requested sample, 1-based, clamped into range.
  uint64_t Rank = static_cast<uint64_t>(Fraction * static_cast<double>(Total));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B].load(std::memory_order_relaxed);
    if (Seen >= Rank)
      return bucketUpper(B);
  }
  return bucketUpper(NumBuckets - 1);
}

HistogramSummary LatencyHistogram::summarize() const {
  HistogramSummary S;
  S.Count = Count.load(std::memory_order_relaxed);
  if (S.Count == 0)
    return S;
  S.Mean = static_cast<double>(Sum.load(std::memory_order_relaxed)) /
           static_cast<double>(S.Count);
  S.P50 = percentile(0.50);
  S.P95 = percentile(0.95);
  S.P99 = percentile(0.99);
  S.Max = static_cast<double>(MaxSeen.load(std::memory_order_relaxed));
  return S;
}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot S;
  S.Submitted = Submitted.load(std::memory_order_relaxed);
  S.Rejected = Rejected.load(std::memory_order_relaxed);
  S.RejectedShutdown = RejectedShutdown.load(std::memory_order_relaxed);
  S.Completed = Completed.load(std::memory_order_relaxed);
  S.Batches = Batches.load(std::memory_order_relaxed);
  S.QueueWaitNs = QueueWaitNs.summarize();
  S.ExecuteNs = ExecuteNs.summarize();
  S.TotalNs = TotalNs.summarize();
  S.BatchSize = BatchSize.summarize();
  return S;
}

std::string ServerStats::formatNanos(double Nanos) {
  char Buf[32];
  if (Nanos >= 1e9)
    std::snprintf(Buf, sizeof(Buf), "%.2fs", Nanos / 1e9);
  else if (Nanos >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", Nanos / 1e6);
  else if (Nanos >= 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.1fus", Nanos / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0fns", Nanos);
  return Buf;
}
