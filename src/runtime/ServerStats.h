//===- runtime/ServerStats.h - Lock-free serving telemetry -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation for the serving runtime: per-request lifecycle
/// counters and latency histograms that any number of threads can
/// record into without locks. A histogram is a fixed array of atomic
/// bucket counters in a log-linear layout (16 linear sub-buckets per
/// power of two), so record() is two shifts and one relaxed
/// fetch_add, and percentiles are recovered from the bucket
/// boundaries with bounded relative error (one sub-bucket width,
/// ≤ 6.25%).
///
/// Reads (snapshot(), percentile()) are racy-by-design: they observe
/// each bucket atomically but not the histogram as a whole, which is
/// the standard monitoring trade — exact when the recorders are
/// quiesced, momentarily approximate while they run, never torn or
/// blocking.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_RUNTIME_SERVERSTATS_H
#define KAST_RUNTIME_SERVERSTATS_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace kast {

/// Percentile summary of one histogram, in the unit recorded
/// (nanoseconds for the latency histograms, requests for batch size).
struct HistogramSummary {
  uint64_t Count = 0;
  double Mean = 0.0;
  /// Upper bucket boundaries containing the percentile; 0 when empty.
  double P50 = 0.0;
  double P95 = 0.0;
  double P99 = 0.0;
  double Max = 0.0;
};

/// Lock-free log-linear histogram of uint64 samples.
class LatencyHistogram {
public:
  /// Records one sample. Wait-free: one relaxed fetch_add per counter.
  void record(uint64_t Value);

  /// Value at or below which \p Fraction of recorded samples fall,
  /// reported as the containing bucket's upper boundary (relative
  /// error bounded by the sub-bucket width). 0 for an empty histogram.
  double percentile(double Fraction) const;

  HistogramSummary summarize() const;

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

private:
  /// 2^6 = 64 octaves × 16 sub-buckets covers [0, 2^63] — every
  /// uint64 nanosecond value maps somewhere.
  static constexpr size_t SubBucketBits = 4;
  static constexpr size_t SubBuckets = size_t(1) << SubBucketBits;
  static constexpr size_t Octaves = 60;
  static constexpr size_t NumBuckets = Octaves * SubBuckets;

  static size_t bucketOf(uint64_t Value);
  /// Inclusive upper boundary of bucket \p B.
  static double bucketUpper(size_t B);

  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> MaxSeen{0};
};

/// Counter + histogram bundle one QueryServer exposes. Writers are the
/// submitting threads (admission counters) and the batcher (everything
/// else); readers are monitoring threads and the load generator.
class ServerStats {
public:
  /// Admission outcomes.
  std::atomic<uint64_t> Submitted{0}; ///< Accepted into the queue.
  std::atomic<uint64_t> Rejected{0};  ///< Bounced by backpressure.
  std::atomic<uint64_t> RejectedShutdown{0}; ///< Bounced: shutting down.
  /// Execution outcomes.
  std::atomic<uint64_t> Completed{0}; ///< Responses delivered.
  std::atomic<uint64_t> Batches{0};   ///< Admission batches executed.

  /// Enqueue → batch admission (time spent waiting in the ring).
  LatencyHistogram QueueWaitNs;
  /// Batch admission → response ready (snapshot + scoring + merge).
  LatencyHistogram ExecuteNs;
  /// Enqueue → response ready: what the caller observes.
  LatencyHistogram TotalNs;
  /// Requests per executed admission batch.
  LatencyHistogram BatchSize;

  /// One consistent-enough view for reporting (racy while serving, see
  /// file comment).
  struct Snapshot {
    uint64_t Submitted = 0;
    uint64_t Rejected = 0;
    uint64_t RejectedShutdown = 0;
    uint64_t Completed = 0;
    uint64_t Batches = 0;
    HistogramSummary QueueWaitNs;
    HistogramSummary ExecuteNs;
    HistogramSummary TotalNs;
    HistogramSummary BatchSize;
  };
  Snapshot snapshot() const;

  /// Human-readable percentile table (used by examples/serve_queries).
  static std::string formatNanos(double Nanos);
};

} // namespace kast

#endif // KAST_RUNTIME_SERVERSTATS_H
