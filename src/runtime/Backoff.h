//===- runtime/Backoff.h - Exponential contention backoff ------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard escalation ladder for spin-retry loops around the
/// lock-free structures: a few busy spins (cheap when the conflicting
/// writer is mid-flight on another core), then exponentially more CPU
/// relax hints, then yields to the scheduler (essential on machines
/// with fewer cores than contending threads, where spinning would
/// starve the very thread being waited on).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_RUNTIME_BACKOFF_H
#define KAST_RUNTIME_BACKOFF_H

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace kast {

/// One contention episode: construct (or reset()) fresh, call pause()
/// each failed attempt.
class Backoff {
public:
  void pause() {
    if (Round < SpinRounds) {
      for (uint32_t I = 0; I < (1u << Round); ++I)
        cpuRelax();
      ++Round;
      return;
    }
    std::this_thread::yield();
  }

  /// True once the episode escalated past pure spinning — callers use
  /// this to decide when to park on a condition variable instead.
  bool yielding() const { return Round >= SpinRounds; }

  void reset() { Round = 0; }

private:
  static void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#elif defined(__aarch64__)
    asm volatile("isb" ::: "memory");
#else
    // No relax hint on this target; the loop itself is the pause.
#endif
  }

  /// 2^0 + ... + 2^5 = 63 relax hints (~a few hundred cycles) before
  /// the first yield.
  static constexpr uint32_t SpinRounds = 6;
  uint32_t Round = 0;
};

} // namespace kast

#endif // KAST_RUNTIME_BACKOFF_H
