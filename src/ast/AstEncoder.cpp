//===- ast/AstEncoder.cpp - AST to weighted string --------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/AstEncoder.h"
#include "core/PreorderEncoder.h"

using namespace kast;

/// \returns true if the node's Text is an identifier payload.
static bool hasIdentifierPayload(AstKind Kind) {
  switch (Kind) {
  case AstKind::Function:
  case AstKind::Param:
  case AstKind::Let:
  case AstKind::Assign:
  case AstKind::Call:
  case AstKind::Var:
    return true;
  default:
    return false;
  }
}

std::string kast::astTokenLiteral(const Ast &Tree, AstNodeId Id,
                                  const AstEncodeOptions &Options) {
  const AstNode &Node = Tree.node(Id);
  std::string Payload = Node.Text;
  if (Options.AbstractIdentifiers && hasIdentifierPayload(Node.Kind))
    Payload.clear();
  if (Options.AbstractLiterals && Node.Kind == AstKind::Number)
    Payload.clear();
  // Structural kinds carry no payload at all.
  if (Node.Kind == AstKind::Module || Node.Kind == AstKind::Block ||
      Node.Kind == AstKind::If || Node.Kind == AstKind::While ||
      Node.Kind == AstKind::Return || Node.Kind == AstKind::ExprStmt)
    return astKindName(Node.Kind);
  return std::string(astKindName(Node.Kind)) + "[" + Payload + "]";
}

namespace {

/// Recursive emitter with sibling-run collapsing.
class Emitter {
public:
  Emitter(const Ast &Tree, const AstEncodeOptions &Options)
      : Tree(Tree), Options(Options) {}

  std::vector<PreorderItem> run() {
    emit(Tree.root(), 0, /*Repetitions=*/1);
    return std::move(Items);
  }

private:
  void emit(AstNodeId Id, size_t Depth, uint64_t Repetitions) {
    PreorderItem Item;
    Item.Literal = astTokenLiteral(Tree, Id, Options);
    Item.Weight = Repetitions;
    Item.Depth = Depth;
    Items.push_back(std::move(Item));

    const std::vector<AstNodeId> &Kids = Tree.node(Id).Children;
    size_t I = 0;
    while (I < Kids.size()) {
      size_t RunLength = 1;
      if (Options.CollapseSiblingRuns) {
        while (I + RunLength < Kids.size() &&
               encodedEqual(Kids[I], Kids[I + RunLength]))
          ++RunLength;
      }
      emit(Kids[I], Depth + 1, RunLength);
      I += RunLength;
    }
  }

  /// Subtree equality at the *encoded* level: payloads that the
  /// options abstract away do not block collapsing ("x = x + 1" and
  /// "y = y + 1" collapse under identifier abstraction).
  bool encodedEqual(AstNodeId A, AstNodeId B) const {
    if (astTokenLiteral(Tree, A, Options) !=
        astTokenLiteral(Tree, B, Options))
      return false;
    const std::vector<AstNodeId> &KA = Tree.node(A).Children;
    const std::vector<AstNodeId> &KB = Tree.node(B).Children;
    if (KA.size() != KB.size())
      return false;
    for (size_t I = 0; I < KA.size(); ++I)
      if (!encodedEqual(KA[I], KB[I]))
        return false;
    return true;
  }

  const Ast &Tree;
  const AstEncodeOptions &Options;
  std::vector<PreorderItem> Items;
};

} // namespace

WeightedString kast::encodeAst(const Ast &Tree,
                               const std::shared_ptr<TokenTable> &Table,
                               const AstEncodeOptions &Options) {
  Emitter E(Tree, Options);
  return encodePreorder(E.run(), Table);
}
