//===- ast/Lexer.cpp - Mini-language lexer ----------------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Lexer.h"

#include <cctype>

using namespace kast;

const char *kast::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Identifier:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::KwFn:
    return "'fn'";
  case TokKind::KwLet:
    return "'let'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semicolon:
    return "';'";
  case TokKind::Operator:
    return "operator";
  case TokKind::EndOfFile:
    return "end of file";
  }
  return "?";
}

namespace {

/// Cursor over the source with position tracking.
class Cursor {
public:
  explicit Cursor(std::string_view Source) : Source(Source) {}

  bool atEnd() const { return Offset >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Offset + Ahead < Source.size() ? Source[Offset + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Offset++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  size_t line() const { return Line; }
  size_t column() const { return Column; }

private:
  std::string_view Source;
  size_t Offset = 0;
  size_t Line = 1;
  size_t Column = 1;
};

TokKind keywordKind(const std::string &Text) {
  if (Text == "fn")
    return TokKind::KwFn;
  if (Text == "let")
    return TokKind::KwLet;
  if (Text == "if")
    return TokKind::KwIf;
  if (Text == "else")
    return TokKind::KwElse;
  if (Text == "while")
    return TokKind::KwWhile;
  if (Text == "return")
    return TokKind::KwReturn;
  return TokKind::Identifier;
}

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentBody(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

} // namespace

Expected<std::vector<LexToken>> kast::lexProgram(std::string_view Source) {
  using Result = Expected<std::vector<LexToken>>;
  std::vector<LexToken> Tokens;
  Cursor C(Source);

  while (!C.atEnd()) {
    // Skip whitespace and line comments.
    char Ch = C.peek();
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      C.advance();
      continue;
    }
    if (Ch == '/' && C.peek(1) == '/') {
      while (!C.atEnd() && C.peek() != '\n')
        C.advance();
      continue;
    }

    LexToken Tok;
    Tok.Line = C.line();
    Tok.Column = C.column();

    if (isIdentStart(Ch)) {
      while (!C.atEnd() && isIdentBody(C.peek()))
        Tok.Text += C.advance();
      Tok.Kind = keywordKind(Tok.Text);
      Tokens.push_back(std::move(Tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      while (!C.atEnd() && std::isdigit(static_cast<unsigned char>(C.peek())))
        Tok.Text += C.advance();
      Tok.Kind = TokKind::Number;
      Tokens.push_back(std::move(Tok));
      continue;
    }

    switch (Ch) {
    case '(':
      Tok.Kind = TokKind::LParen;
      break;
    case ')':
      Tok.Kind = TokKind::RParen;
      break;
    case '{':
      Tok.Kind = TokKind::LBrace;
      break;
    case '}':
      Tok.Kind = TokKind::RBrace;
      break;
    case ',':
      Tok.Kind = TokKind::Comma;
      break;
    case ';':
      Tok.Kind = TokKind::Semicolon;
      break;
    case '+':
    case '-':
    case '*':
    case '/':
    case '%':
      Tok.Kind = TokKind::Operator;
      break;
    case '<':
    case '>':
    case '=':
    case '!':
      Tok.Kind = TokKind::Operator;
      break;
    case '&':
    case '|':
      if (C.peek(1) != Ch)
        return Result::error("stray '" + std::string(1, Ch) + "' at " +
                             std::to_string(C.line()) + ":" +
                             std::to_string(C.column()));
      Tok.Kind = TokKind::Operator;
      break;
    default:
      return Result::error("unexpected character '" + std::string(1, Ch) +
                           "' at " + std::to_string(C.line()) + ":" +
                           std::to_string(C.column()));
    }

    // Build the operator spelling (possibly two characters).
    Tok.Text += C.advance();
    if (Tok.Kind == TokKind::Operator) {
      char First = Tok.Text[0];
      char Next = C.peek();
      bool TwoChar = (Next == '=' && (First == '<' || First == '>' ||
                                      First == '=' || First == '!')) ||
                     (First == '&' && Next == '&') ||
                     (First == '|' && Next == '|');
      if (TwoChar)
        Tok.Text += C.advance();
      // Lone '=' is assignment; the parser distinguishes by spelling.
    }
    Tokens.push_back(std::move(Tok));
  }

  LexToken Eof;
  Eof.Kind = TokKind::EndOfFile;
  Eof.Line = C.line();
  Eof.Column = C.column();
  Tokens.push_back(std::move(Eof));
  return Tokens;
}
