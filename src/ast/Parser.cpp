//===- ast/Parser.cpp - Mini-language parser --------------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"
#include "ast/Lexer.h"

using namespace kast;

namespace {

/// Binding power of a binary operator spelling; 0 = not binary.
int precedenceOf(const std::string &Op) {
  if (Op == "||")
    return 1;
  if (Op == "&&")
    return 2;
  if (Op == "==" || Op == "!=")
    return 3;
  if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=")
    return 4;
  if (Op == "+" || Op == "-")
    return 5;
  if (Op == "*" || Op == "/" || Op == "%")
    return 6;
  return 0;
}

/// The recursive-descent parser proper. Errors are returned through
/// the Failed flag + Message to keep signatures simple; the entry
/// point converts them to Expected.
class Parser {
public:
  explicit Parser(std::vector<LexToken> Tokens)
      : Tokens(std::move(Tokens)) {}

  Expected<Ast> run() {
    while (!Failed && !at(TokKind::EndOfFile))
      parseFunction(Tree.root());
    if (Failed)
      return Expected<Ast>::error(Message);
    return std::move(Tree);
  }

private:
  const LexToken &peek(size_t Ahead = 0) const {
    size_t I = std::min(Position + Ahead, Tokens.size() - 1);
    return Tokens[I];
  }
  bool at(TokKind Kind) const { return peek().Kind == Kind; }
  bool atOperator(const char *Spelling) const {
    return peek().Kind == TokKind::Operator && peek().Text == Spelling;
  }
  const LexToken &advance() {
    const LexToken &Tok = Tokens[Position];
    if (Position + 1 < Tokens.size())
      ++Position;
    return Tok;
  }

  void fail(const std::string &What) {
    if (Failed)
      return;
    Failed = true;
    Message = "expected " + What + " but found " +
              tokKindName(peek().Kind) +
              (peek().Text.empty() ? "" : " '" + peek().Text + "'") +
              " at " + std::to_string(peek().Line) + ":" +
              std::to_string(peek().Column);
  }

  /// Consumes a token of \p Kind or fails.
  bool expect(TokKind Kind) {
    if (at(Kind)) {
      advance();
      return true;
    }
    fail(tokKindName(Kind));
    return false;
  }

  void parseFunction(AstNodeId Parent) {
    if (!expect(TokKind::KwFn))
      return;
    if (!at(TokKind::Identifier))
      return fail("function name");
    AstNodeId Fn =
        Tree.addNode(Parent, AstKind::Function, advance().Text);
    if (!expect(TokKind::LParen))
      return;
    if (!at(TokKind::RParen)) {
      do {
        if (!at(TokKind::Identifier))
          return fail("parameter name");
        Tree.addNode(Fn, AstKind::Param, advance().Text);
      } while (at(TokKind::Comma) && (advance(), true));
    }
    if (!expect(TokKind::RParen))
      return;
    parseBlock(Fn);
  }

  void parseBlock(AstNodeId Parent) {
    if (!expect(TokKind::LBrace))
      return;
    AstNodeId Block = Tree.addNode(Parent, AstKind::Block);
    while (!Failed && !at(TokKind::RBrace) && !at(TokKind::EndOfFile))
      parseStatement(Block);
    expect(TokKind::RBrace);
  }

  void parseStatement(AstNodeId Parent) {
    if (at(TokKind::KwLet)) {
      advance();
      if (!at(TokKind::Identifier))
        return fail("variable name after 'let'");
      AstNodeId Let = Tree.addNode(Parent, AstKind::Let, advance().Text);
      if (!atOperator("="))
        return fail("'='");
      advance();
      parseExpression(Let);
      expect(TokKind::Semicolon);
      return;
    }
    if (at(TokKind::KwIf)) {
      parseIf(Parent);
      return;
    }
    if (at(TokKind::KwWhile)) {
      advance();
      AstNodeId While = Tree.addNode(Parent, AstKind::While);
      if (!expect(TokKind::LParen))
        return;
      parseExpression(While);
      if (!expect(TokKind::RParen))
        return;
      parseBlock(While);
      return;
    }
    if (at(TokKind::KwReturn)) {
      advance();
      AstNodeId Ret = Tree.addNode(Parent, AstKind::Return);
      if (!at(TokKind::Semicolon))
        parseExpression(Ret);
      expect(TokKind::Semicolon);
      return;
    }
    if (at(TokKind::LBrace)) {
      parseBlock(Parent);
      return;
    }
    // Assignment ("x = e;") or expression statement.
    if (at(TokKind::Identifier) && peek(1).Kind == TokKind::Operator &&
        peek(1).Text == "=") {
      AstNodeId Assign =
          Tree.addNode(Parent, AstKind::Assign, advance().Text);
      advance(); // '='
      parseExpression(Assign);
      expect(TokKind::Semicolon);
      return;
    }
    AstNodeId Stmt = Tree.addNode(Parent, AstKind::ExprStmt);
    parseExpression(Stmt);
    expect(TokKind::Semicolon);
  }

  void parseIf(AstNodeId Parent) {
    advance(); // 'if'
    AstNodeId If = Tree.addNode(Parent, AstKind::If);
    if (!expect(TokKind::LParen))
      return;
    parseExpression(If);
    if (!expect(TokKind::RParen))
      return;
    parseBlock(If);
    if (at(TokKind::KwElse)) {
      advance();
      if (at(TokKind::KwIf))
        parseIf(If); // else-if chains nest in the else slot.
      else
        parseBlock(If);
    }
  }

  void parseExpression(AstNodeId Parent) {
    AstNodeId Expr = parseUnaryAndClimb(1);
    if (!Failed)
      attach(Expr, Parent);
  }

  /// Precedence climbing over detached nodes; left-associative.
  AstNodeId parseUnaryAndClimb(int MinPrecedence) {
    AstNodeId Lhs = parseUnary();
    while (!Failed) {
      int Precedence = peek().Kind == TokKind::Operator
                           ? precedenceOf(peek().Text)
                           : 0;
      if (Precedence < MinPrecedence)
        break;
      std::string Op = advance().Text;
      AstNodeId Rhs = parseUnaryAndClimb(Precedence + 1);
      if (Failed)
        break;
      AstNodeId Bin = makeDetached(AstKind::Binary, Op);
      reparent(Lhs, Bin);
      reparent(Rhs, Bin);
      Lhs = Bin;
    }
    return Lhs;
  }

  /// Parses a unary expression, detached from any parent.
  AstNodeId parseUnary() {
    if (atOperator("!") || atOperator("-")) {
      std::string Op = advance().Text;
      AstNodeId Un = makeDetached(AstKind::Unary, Op);
      AstNodeId Operand = parseUnary();
      if (!Failed)
        reparent(Operand, Un);
      return Un;
    }
    return parsePrimary();
  }

  AstNodeId parsePrimary() {
    if (at(TokKind::Number))
      return makeDetached(AstKind::Number, advance().Text);
    if (at(TokKind::Identifier)) {
      std::string Name = advance().Text;
      if (!at(TokKind::LParen))
        return makeDetached(AstKind::Var, Name);
      advance(); // '('
      AstNodeId Call = makeDetached(AstKind::Call, Name);
      if (!at(TokKind::RParen)) {
        do {
          AstNodeId Arg = parseUnaryAndClimb(1);
          if (Failed)
            return Call;
          reparent(Arg, Call);
        } while (at(TokKind::Comma) && (advance(), true));
      }
      expect(TokKind::RParen);
      return Call;
    }
    if (at(TokKind::LParen)) {
      advance();
      // Parenthesized expressions do not produce a node; the detached
      // chain from the climb is the result.
      AstNodeId Inner = parseUnaryAndClimb(1);
      expect(TokKind::RParen);
      return Inner;
    }
    fail("an expression");
    return makeDetached(AstKind::Number, "0"); // Error placeholder.
  }

  /// Creates a node with no parent (attached later).
  AstNodeId makeDetached(AstKind Kind, std::string Text = "") {
    AstNodeId Id = Tree.addNode(Tree.root(), Kind, std::move(Text));
    Tree.node(Tree.root()).Children.pop_back();
    Tree.node(Id).Parent = InvalidAstNodeId;
    return Id;
  }

  /// Attaches a detached node under \p Parent.
  void attach(AstNodeId Id, AstNodeId Parent) {
    assert(Tree.node(Id).Parent == InvalidAstNodeId &&
           "node already attached");
    Tree.node(Id).Parent = Parent;
    Tree.node(Parent).Children.push_back(Id);
  }

  /// Moves \p Id (detached) under \p NewParent.
  void reparent(AstNodeId Id, AstNodeId NewParent) { attach(Id, NewParent); }

  std::vector<LexToken> Tokens;
  size_t Position = 0;
  Ast Tree;
  bool Failed = false;
  std::string Message;
};

} // namespace

Expected<Ast> kast::parseProgram(std::string_view Source) {
  Expected<std::vector<LexToken>> Tokens = lexProgram(Source);
  if (!Tokens)
    return Expected<Ast>::error(Tokens.message());
  Parser P(Tokens.take());
  return P.run();
}
