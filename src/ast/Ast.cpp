//===- ast/Ast.cpp - Mini-language abstract syntax trees --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Ast.h"

using namespace kast;

const char *kast::astKindName(AstKind Kind) {
  switch (Kind) {
  case AstKind::Module:
    return "module";
  case AstKind::Function:
    return "function";
  case AstKind::Param:
    return "param";
  case AstKind::Block:
    return "block";
  case AstKind::Let:
    return "let";
  case AstKind::Assign:
    return "assign";
  case AstKind::If:
    return "if";
  case AstKind::While:
    return "while";
  case AstKind::Return:
    return "return";
  case AstKind::ExprStmt:
    return "exprstmt";
  case AstKind::Binary:
    return "binary";
  case AstKind::Unary:
    return "unary";
  case AstKind::Call:
    return "call";
  case AstKind::Number:
    return "number";
  case AstKind::Var:
    return "var";
  }
  return "?";
}

Ast::Ast() {
  AstNode Root;
  Root.Kind = AstKind::Module;
  Nodes.push_back(std::move(Root));
}

AstNodeId Ast::addNode(AstNodeId Parent, AstKind Kind, std::string Text) {
  assert(Parent < Nodes.size() && "parent id out of range");
  AstNodeId Id = static_cast<AstNodeId>(Nodes.size());
  AstNode N;
  N.Kind = Kind;
  N.Text = std::move(Text);
  N.Parent = Parent;
  Nodes.push_back(std::move(N));
  Nodes[Parent].Children.push_back(Id);
  return Id;
}

size_t Ast::depth(AstNodeId Id) const {
  size_t D = 0;
  while (Nodes[Id].Parent != InvalidAstNodeId) {
    Id = Nodes[Id].Parent;
    ++D;
  }
  return D;
}

std::vector<AstNodeId> Ast::preorder() const {
  std::vector<AstNodeId> Order;
  Order.reserve(Nodes.size());
  std::vector<AstNodeId> Stack = {root()};
  while (!Stack.empty()) {
    AstNodeId Id = Stack.back();
    Stack.pop_back();
    Order.push_back(Id);
    const std::vector<AstNodeId> &Kids = Nodes[Id].Children;
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.push_back(*It);
  }
  return Order;
}

size_t Ast::subtreeSize(AstNodeId Id) const {
  size_t Count = 1;
  for (AstNodeId Child : Nodes[Id].Children)
    Count += subtreeSize(Child);
  return Count;
}

bool Ast::subtreesEqual(AstNodeId A, AstNodeId B) const {
  const AstNode &NA = Nodes[A];
  const AstNode &NB = Nodes[B];
  if (NA.Kind != NB.Kind || NA.Text != NB.Text ||
      NA.Children.size() != NB.Children.size())
    return false;
  for (size_t I = 0; I < NA.Children.size(); ++I)
    if (!subtreesEqual(NA.Children[I], NB.Children[I]))
      return false;
  return true;
}

std::string Ast::dump() const {
  std::string Out;
  for (AstNodeId Id : preorder()) {
    Out.append(2 * depth(Id), ' ');
    Out += astKindName(Nodes[Id].Kind);
    if (!Nodes[Id].Text.empty()) {
      Out += ' ';
      Out += Nodes[Id].Text;
    }
    Out += '\n';
  }
  return Out;
}
