//===- ast/Lexer.h - Mini-language lexer -----------------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for Mini, the small imperative language the ast library uses
/// to demonstrate the paper's stated future work: applying the
/// weighted-string representation and the Kast Spectrum Kernel to
/// "more complex structures like Abstract Syntax Trees" (§3.1) and
/// compiler intermediate representations (§6).
///
/// Mini is a C-like subset:
///
///   fn gcd(a, b) {
///     while (b != 0) { let t = b; b = a % b; a = t; }
///     return a;
///   }
///
//===----------------------------------------------------------------------===//

#ifndef KAST_AST_LEXER_H
#define KAST_AST_LEXER_H

#include "util/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kast {

/// Lexical token kinds of Mini.
enum class TokKind : uint8_t {
  Identifier,
  Number,
  KwFn,
  KwLet,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semicolon,
  Operator, ///< One of + - * / % < <= > >= == != && || ! =
  EndOfFile,
};

/// \returns a human-readable kind name ("identifier", "'{'", ...).
const char *tokKindName(TokKind Kind);

/// One lexical token with its source position (1-based).
struct LexToken {
  TokKind Kind = TokKind::EndOfFile;
  std::string Text;
  size_t Line = 1;
  size_t Column = 1;
};

/// Lexes a whole Mini program; the result always ends with an
/// EndOfFile token. Comments run from "//" to end of line. Errors
/// (stray characters) carry line:column positions.
Expected<std::vector<LexToken>> lexProgram(std::string_view Source);

} // namespace kast

#endif // KAST_AST_LEXER_H
