//===- ast/Interpreter.cpp - Mini-language evaluator ------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Interpreter.h"

#include <map>

using namespace kast;

namespace {

/// Signals that a return statement fired.
struct ControlState {
  bool Returned = false;
  int64_t ReturnValue = 0;
};

/// The evaluator; uses the Failed/Message pattern internally.
class Interpreter {
public:
  Interpreter(const Ast &Tree, const InterpreterLimits &Limits)
      : Tree(Tree), Limits(Limits) {
    for (AstNodeId Fn : Tree.node(Tree.root()).Children)
      Functions[Tree.node(Fn).Text] = Fn;
  }

  Expected<int64_t> call(const std::string &Name,
                         const std::vector<int64_t> &Arguments) {
    int64_t Value = callFunction(Name, Arguments);
    if (Failed)
      return Expected<int64_t>::error(Message);
    return Value;
  }

private:
  using Scope = std::map<std::string, int64_t>;

  void fail(const std::string &What) {
    if (!Failed) {
      Failed = true;
      Message = What;
    }
  }

  bool tick() {
    if (++Steps > Limits.MaxSteps) {
      fail("step limit exceeded");
      return false;
    }
    return true;
  }

  int64_t callFunction(const std::string &Name,
                       const std::vector<int64_t> &Arguments) {
    auto It = Functions.find(Name);
    if (It == Functions.end()) {
      fail("unknown function '" + Name + "'");
      return 0;
    }
    if (++CallDepth > Limits.MaxCallDepth) {
      fail("call depth limit exceeded in '" + Name + "'");
      return 0;
    }
    const AstNode &Fn = Tree.node(It->second);

    // Children: params then the body block.
    size_t NumParams = Fn.Children.size() - 1;
    if (Arguments.size() != NumParams) {
      fail("function '" + Name + "' expects " +
           std::to_string(NumParams) + " arguments, got " +
           std::to_string(Arguments.size()));
      --CallDepth;
      return 0;
    }
    Scope Locals;
    for (size_t I = 0; I < NumParams; ++I)
      Locals[Tree.node(Fn.Children[I]).Text] = Arguments[I];

    ControlState Control;
    execBlock(Fn.Children.back(), Locals, Control);
    --CallDepth;
    return Control.ReturnValue; // 0 when execution fell off the end.
  }

  void execBlock(AstNodeId Block, Scope &Locals, ControlState &Control) {
    for (AstNodeId Stmt : Tree.node(Block).Children) {
      if (Failed || Control.Returned)
        return;
      execStatement(Stmt, Locals, Control);
    }
  }

  void execStatement(AstNodeId Id, Scope &Locals, ControlState &Control) {
    if (!tick())
      return;
    const AstNode &Node = Tree.node(Id);
    switch (Node.Kind) {
    case AstKind::Let:
      Locals[Node.Text] = eval(Node.Children[0], Locals);
      return;
    case AstKind::Assign: {
      auto It = Locals.find(Node.Text);
      if (It == Locals.end())
        return fail("assignment to undeclared variable '" + Node.Text +
                    "'");
      It->second = eval(Node.Children[0], Locals);
      return;
    }
    case AstKind::If: {
      int64_t Cond = eval(Node.Children[0], Locals);
      if (Failed)
        return;
      if (Cond != 0)
        execStatement(Node.Children[1], Locals, Control);
      else if (Node.Children.size() > 2)
        execStatement(Node.Children[2], Locals, Control);
      return;
    }
    case AstKind::While:
      while (!Failed && !Control.Returned) {
        if (!tick())
          return;
        int64_t Cond = eval(Node.Children[0], Locals);
        if (Failed || Cond == 0)
          return;
        execStatement(Node.Children[1], Locals, Control);
      }
      return;
    case AstKind::Return:
      Control.Returned = true;
      Control.ReturnValue =
          Node.Children.empty() ? 0 : eval(Node.Children[0], Locals);
      return;
    case AstKind::ExprStmt:
      eval(Node.Children[0], Locals);
      return;
    case AstKind::Block: {
      execBlock(Id, Locals, Control);
      return;
    }
    default:
      return fail(std::string("cannot execute node kind ") +
                  astKindName(Node.Kind));
    }
  }

  int64_t eval(AstNodeId Id, Scope &Locals) {
    if (!tick())
      return 0;
    const AstNode &Node = Tree.node(Id);
    switch (Node.Kind) {
    case AstKind::Number:
      return std::stoll(Node.Text);
    case AstKind::Var: {
      auto It = Locals.find(Node.Text);
      if (It == Locals.end()) {
        fail("unknown variable '" + Node.Text + "'");
        return 0;
      }
      return It->second;
    }
    case AstKind::Unary: {
      int64_t V = eval(Node.Children[0], Locals);
      if (Node.Text == "-")
        return -V;
      if (Node.Text == "!")
        return V == 0 ? 1 : 0;
      fail("unknown unary operator '" + Node.Text + "'");
      return 0;
    }
    case AstKind::Binary:
      return evalBinary(Node, Locals);
    case AstKind::Call: {
      std::vector<int64_t> Arguments;
      Arguments.reserve(Node.Children.size());
      for (AstNodeId Arg : Node.Children) {
        Arguments.push_back(eval(Arg, Locals));
        if (Failed)
          return 0;
      }
      return callFunction(Node.Text, Arguments);
    }
    default:
      fail(std::string("cannot evaluate node kind ") +
           astKindName(Node.Kind));
      return 0;
    }
  }

  int64_t evalBinary(const AstNode &Node, Scope &Locals) {
    // Short-circuit forms first.
    if (Node.Text == "&&") {
      int64_t L = eval(Node.Children[0], Locals);
      if (Failed || L == 0)
        return 0;
      return eval(Node.Children[1], Locals) != 0 ? 1 : 0;
    }
    if (Node.Text == "||") {
      int64_t L = eval(Node.Children[0], Locals);
      if (Failed)
        return 0;
      if (L != 0)
        return 1;
      return eval(Node.Children[1], Locals) != 0 ? 1 : 0;
    }

    int64_t L = eval(Node.Children[0], Locals);
    int64_t R = eval(Node.Children[1], Locals);
    if (Failed)
      return 0;
    if (Node.Text == "+")
      return L + R;
    if (Node.Text == "-")
      return L - R;
    if (Node.Text == "*")
      return L * R;
    if (Node.Text == "/" || Node.Text == "%") {
      if (R == 0) {
        fail("division by zero");
        return 0;
      }
      return Node.Text == "/" ? L / R : L % R;
    }
    if (Node.Text == "==")
      return L == R;
    if (Node.Text == "!=")
      return L != R;
    if (Node.Text == "<")
      return L < R;
    if (Node.Text == "<=")
      return L <= R;
    if (Node.Text == ">")
      return L > R;
    if (Node.Text == ">=")
      return L >= R;
    fail("unknown binary operator '" + Node.Text + "'");
    return 0;
  }

  const Ast &Tree;
  InterpreterLimits Limits;
  std::map<std::string, AstNodeId> Functions;
  size_t CallDepth = 0;
  size_t Steps = 0;
  bool Failed = false;
  std::string Message;
};

} // namespace

Expected<int64_t> kast::runProgram(const Ast &Tree, const std::string &Name,
                                   const std::vector<int64_t> &Arguments,
                                   const InterpreterLimits &Limits) {
  Interpreter I(Tree, Limits);
  return I.call(Name, Arguments);
}
