//===- ast/Parser.h - Mini-language parser ---------------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for Mini with precedence-climbing
/// expressions. Grammar:
///
///   program  := function*
///   function := 'fn' ident '(' params? ')' block
///   params   := ident (',' ident)*
///   block    := '{' stmt* '}'
///   stmt     := 'let' ident '=' expr ';'
///             | ident '=' expr ';'
///             | 'if' '(' expr ')' block ('else' (block | ifstmt))?
///             | 'while' '(' expr ')' block
///             | 'return' expr? ';'
///             | block
///             | expr ';'
///   expr     := binary operators by precedence:
///               || < && < == != < < <= > >= < + - < * / % < unary ! -
///   primary  := number | ident | ident '(' args? ')' | '(' expr ')'
///
/// Errors carry line:column positions and the expected construct.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_AST_PARSER_H
#define KAST_AST_PARSER_H

#include "ast/Ast.h"
#include "util/Error.h"

#include <string_view>

namespace kast {

/// Parses a whole Mini program.
Expected<Ast> parseProgram(std::string_view Source);

} // namespace kast

#endif // KAST_AST_PARSER_H
