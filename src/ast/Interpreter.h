//===- ast/Interpreter.h - Mini-language evaluator -------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small tree-walking interpreter for Mini. It exists so the
/// code-similarity tests can assert *behavioral* facts alongside
/// structural ones — e.g. that the iterative and recursive gcd
/// variants compute the same function even though the Kast kernel
/// (correctly) scores them as structurally different.
///
/// Semantics: 64-bit signed integers; 0 is false, everything else
/// true; && and || are short-circuiting and yield 0/1; division and
/// modulo by zero are runtime errors; a function returns 0 if it falls
/// off the end. Recursion depth and step count are bounded so tests
/// cannot hang.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_AST_INTERPRETER_H
#define KAST_AST_INTERPRETER_H

#include "ast/Ast.h"
#include "util/Error.h"

#include <cstdint>
#include <vector>

namespace kast {

/// Execution limits.
struct InterpreterLimits {
  size_t MaxCallDepth = 256;
  size_t MaxSteps = 1000000;
};

/// Calls function \p Name of the program in \p Tree with \p Arguments.
///
/// \returns the return value, or a diagnostic (unknown function, arity
/// mismatch, unknown variable, division by zero, limits exceeded).
Expected<int64_t> runProgram(const Ast &Tree, const std::string &Name,
                             const std::vector<int64_t> &Arguments,
                             const InterpreterLimits &Limits = {});

} // namespace kast

#endif // KAST_AST_INTERPRETER_H
