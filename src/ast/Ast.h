//===- ast/Ast.h - Mini-language abstract syntax trees ---------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arena-allocated ASTs for Mini programs. The shape mirrors
/// tree/PatternTree (dense ids, pre-order helpers) so the same
/// weighted-string machinery applies; AstEncoder.h performs the
/// conversion.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_AST_AST_H
#define KAST_AST_AST_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace kast {

/// Dense AST node index.
using AstNodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr AstNodeId InvalidAstNodeId = ~static_cast<AstNodeId>(0);

/// Node kinds of the Mini AST.
enum class AstKind : uint8_t {
  Module,   ///< Root; children are functions.
  Function, ///< Text = name; children: params then one Block.
  Param,    ///< Text = name.
  Block,    ///< Children are statements.
  Let,      ///< Text = name; child: initializer.
  Assign,   ///< Text = name; child: value.
  If,       ///< Children: condition, then-Block [, else node].
  While,    ///< Children: condition, body Block.
  Return,   ///< Optional child: value.
  ExprStmt, ///< Child: expression.
  Binary,   ///< Text = operator; children: lhs, rhs.
  Unary,    ///< Text = operator; child: operand.
  Call,     ///< Text = callee; children: arguments.
  Number,   ///< Text = literal spelling.
  Var,      ///< Text = name.
};

/// \returns "module", "function", "binary", ...
const char *astKindName(AstKind Kind);

/// One AST node.
struct AstNode {
  AstKind Kind = AstKind::Module;
  /// Identifier, operator spelling or number literal (kind-dependent).
  std::string Text;
  AstNodeId Parent = InvalidAstNodeId;
  std::vector<AstNodeId> Children;
};

/// An AST; owns its node arena. The Module root always exists.
class Ast {
public:
  Ast();

  AstNodeId root() const { return 0; }

  const AstNode &node(AstNodeId Id) const {
    assert(Id < Nodes.size() && "ast node id out of range");
    return Nodes[Id];
  }
  AstNode &node(AstNodeId Id) {
    assert(Id < Nodes.size() && "ast node id out of range");
    return Nodes[Id];
  }

  size_t size() const { return Nodes.size(); }

  /// Creates a node of \p Kind with \p Text under \p Parent.
  AstNodeId addNode(AstNodeId Parent, AstKind Kind, std::string Text = "");

  /// Depth of \p Id (root is 0).
  size_t depth(AstNodeId Id) const;

  /// Pre-order node ids from the root.
  std::vector<AstNodeId> preorder() const;

  /// Number of nodes in the subtree rooted at \p Id (inclusive).
  size_t subtreeSize(AstNodeId Id) const;

  /// Structural equality of two subtrees (kinds, texts, shape).
  bool subtreesEqual(AstNodeId A, AstNodeId B) const;

  /// Indented multi-line rendering, for tests and tools.
  std::string dump() const;

private:
  std::vector<AstNode> Nodes;
};

} // namespace kast

#endif // KAST_AST_AST_H
