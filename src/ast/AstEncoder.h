//===- ast/AstEncoder.h - AST to weighted string ---------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes Mini ASTs as the paper's weighted strings so the Kast
/// Spectrum Kernel (and the baselines) can compare programs — the
/// future-work direction the paper names in §3.1 and §6 (comparing
/// ASTs and compiler IR with this representation).
///
/// Mapping:
///  * every node becomes a token; structural kinds use bare literals
///    ("module", "block", "if", ...) while payload-bearing kinds embed
///    the payload ("binary[+]", "call[gcd]", "var[x]");
///  * identifier and literal payloads can be *abstracted* — var[x]
///    becomes var[] — mirroring the trace representation's
///    byte-ignoring mode (names, like byte counts, are incidental to
///    the pattern); abstraction is the default;
///  * runs of structurally identical sibling subtrees collapse into a
///    single subtree whose root token carries the repetition count as
///    its weight — the analog of compression rule 1 for unrolled or
///    copy-pasted statements;
///  * [LEVEL_UP] tokens encode ascents exactly as in §3.1 (shared
///    implementation: core/PreorderEncoder.h).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_AST_ASTENCODER_H
#define KAST_AST_ASTENCODER_H

#include "ast/Ast.h"
#include "core/Token.h"

#include <memory>

namespace kast {

/// Options for AST encoding.
struct AstEncodeOptions {
  /// Replace identifier payloads (variable, parameter, function and
  /// callee names) with the empty payload.
  bool AbstractIdentifiers = true;
  /// Replace number literals with the empty payload.
  bool AbstractLiterals = true;
  /// Collapse runs of identical sibling subtrees into one weighted
  /// occurrence.
  bool CollapseSiblingRuns = true;
};

/// Token literal an AST node encodes to under \p Options.
std::string astTokenLiteral(const Ast &Tree, AstNodeId Id,
                            const AstEncodeOptions &Options);

/// Encodes \p Tree over \p Table.
WeightedString encodeAst(const Ast &Tree,
                         const std::shared_ptr<TokenTable> &Table,
                         const AstEncodeOptions &Options = {});

} // namespace kast

#endif // KAST_AST_ASTENCODER_H
