//===- kernels/GapWeightedKernel.h - Gap-weighted subsequences -*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gap-weighted subsequences kernel of Lodhi et al. / Shawe-Taylor
/// & Cristianini [4] (ch. 11), adapted to token strings: features are
/// *non-contiguous* subsequences u of length p, and an occurrence
/// spanning l tokens contributes lambda^l, penalizing gaps. Computed
/// with the standard O(p * |s| * |t|) dynamic program.
///
/// This baseline is not part of the paper's evaluation — §2.2 only
/// surveys it via [4] — but it is the natural next step up from the
/// blended spectrum kernel, and tab1's classic baselines put it in
/// context: allowing gaps does not rescue count-based kernels on this
/// problem.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_KERNELS_GAPWEIGHTEDKERNEL_H
#define KAST_KERNELS_GAPWEIGHTEDKERNEL_H

#include "core/StringKernel.h"

namespace kast {

/// Gap-weighted subsequences kernel of order p.
class GapWeightedKernel : public StringKernel {
public:
  /// \param P      subsequence length (>= 1)
  /// \param Lambda gap decay in (0, 1]
  explicit GapWeightedKernel(size_t P = 3, double Lambda = 0.5);

  double evaluate(const WeightedString &A,
                  const WeightedString &B) const override;

  /// Explicit pass-through of the precomputation seam: the Lodhi DP is
  /// inherently pairwise — its K' tables depend on both strings — so
  /// there is no per-string state to derive once, and Gram builds pay
  /// O(N² · dp) on this kernel by nature, not by omission. Returns
  /// nullptr; evaluatePrepared (inherited) degrades to evaluate, which
  /// keeps this kernel observationally identical through both paths of
  /// computeKernelMatrix.
  std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const override;

  std::string name() const override;

private:
  size_t P;
  double Lambda;
};

} // namespace kast

#endif // KAST_KERNELS_GAPWEIGHTEDKERNEL_H
