//===- kernels/SpectrumKernels.cpp - Baseline string kernels ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/SpectrumKernels.h"
#include "util/Hashing.h"

#include <cassert>
#include <cmath>

using namespace kast;

SpectrumFamilyKernel::SpectrumFamilyKernel(SpectrumOptions Options)
    : Options(Options) {
  assert(Options.MinLength >= 1 && Options.MinLength <= Options.MaxLength &&
         "bad spectrum length range");
}

KernelProfile SpectrumFamilyKernel::profile(const WeightedString &X) const {
  KernelProfile P;
  const std::vector<uint32_t> &Ids = X.literalIds();
  const size_t N = Ids.size();
  if (N < Options.MinLength)
    return P;

  // lambda^l per length; dotting two profiles yields lambda^(2l).
  std::vector<double> Decay(Options.MaxLength + 1, 1.0);
  if (Options.Lambda != 1.0)
    for (size_t L = 1; L <= Options.MaxLength; ++L)
      Decay[L] = Decay[L - 1] * Options.Lambda;

  const size_t Lengths =
      std::min(Options.MaxLength, N) - Options.MinLength + 1;
  P.reserve(N * Lengths);
  for (size_t I = 0; I < N; ++I) {
    NgramHasher H;
    const size_t Limit = std::min(Options.MaxLength, N - I);
    for (size_t L = 1; L <= Limit; ++L) {
      H.append(Ids[I + L - 1]);
      if (L < Options.MinLength)
        continue;
      double Contribution = 1.0;
      if (Options.Weighted) {
        uint64_t W = X.rangeWeight(I, I + L);
        if (W < Options.CutWeight)
          continue;
        Contribution = static_cast<double>(W);
      }
      P.add(H.value(), Decay[L] * Contribution);
    }
  }
  P.finalize();
  return P;
}

std::string SpectrumFamilyKernel::name() const {
  return "spectrum-family(" + std::to_string(Options.MinLength) + ".." +
         std::to_string(Options.MaxLength) + ")";
}

KSpectrumKernel::KSpectrumKernel(size_t K, bool Weighted, uint64_t CutWeight)
    : SpectrumFamilyKernel(
          {/*MinLength=*/K, /*MaxLength=*/K, /*Lambda=*/1.0,
           /*Weighted=*/Weighted, /*CutWeight=*/CutWeight}) {}

std::string KSpectrumKernel::name() const {
  return "k-spectrum(k=" + std::to_string(Options.MaxLength) +
         (Options.Weighted ? ",weighted" : "") + ")";
}

BlendedSpectrumKernel::BlendedSpectrumKernel(size_t K, double Lambda,
                                             bool Weighted,
                                             uint64_t CutWeight)
    : SpectrumFamilyKernel({/*MinLength=*/1, /*MaxLength=*/K, Lambda,
                            Weighted, CutWeight}) {}

std::string BlendedSpectrumKernel::name() const {
  return "blended-spectrum(k=" + std::to_string(Options.MaxLength) +
         (Options.Weighted
              ? ",weighted,cut=" + std::to_string(Options.CutWeight)
              : "") +
         ")";
}

BagOfTokensKernel::BagOfTokensKernel(bool Weighted, uint64_t CutWeight)
    : SpectrumFamilyKernel({/*MinLength=*/1, /*MaxLength=*/1,
                            /*Lambda=*/1.0, Weighted, CutWeight}) {}

std::string BagOfTokensKernel::name() const { return "bag-of-tokens"; }
