//===- kernels/SpectrumKernels.cpp - Baseline string kernels ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/SpectrumKernels.h"

#include <cassert>
#include <cmath>
#include <map>

using namespace kast;

SpectrumFamilyKernel::SpectrumFamilyKernel(SpectrumOptions Options)
    : Options(Options) {
  assert(Options.MinLength >= 1 && Options.MinLength <= Options.MaxLength &&
         "bad spectrum length range");
}

/// Aggregated value of every l-gram of \p X for one length.
static std::map<std::vector<uint32_t>, double>
gramValues(const WeightedString &X, size_t Length,
           const SpectrumOptions &Options) {
  std::map<std::vector<uint32_t>, double> Values;
  const std::vector<uint32_t> &Ids = X.literalIds();
  if (Length > Ids.size())
    return Values;
  for (size_t I = 0; I + Length <= Ids.size(); ++I) {
    double Contribution = 1.0;
    if (Options.Weighted) {
      uint64_t W = X.rangeWeight(I, I + Length);
      if (W < Options.CutWeight)
        continue;
      Contribution = static_cast<double>(W);
    }
    std::vector<uint32_t> Key(Ids.begin() + I, Ids.begin() + I + Length);
    Values[std::move(Key)] += Contribution;
  }
  return Values;
}

double SpectrumFamilyKernel::evaluate(const WeightedString &A,
                                      const WeightedString &B) const {
  assert((A.empty() || B.empty() ||
          A.table().get() == B.table().get()) &&
         "kernel arguments must share one token table");
  double Sum = 0.0;
  for (size_t L = Options.MinLength; L <= Options.MaxLength; ++L) {
    std::map<std::vector<uint32_t>, double> InA = gramValues(A, L, Options);
    if (InA.empty())
      continue;
    std::map<std::vector<uint32_t>, double> InB = gramValues(B, L, Options);
    double LengthSum = 0.0;
    // Iterate the smaller map, probe the larger.
    const auto &Small = InA.size() <= InB.size() ? InA : InB;
    const auto &Large = InA.size() <= InB.size() ? InB : InA;
    for (const auto &[Key, Value] : Small) {
      auto It = Large.find(Key);
      if (It != Large.end())
        LengthSum += Value * It->second;
    }
    double Decay = std::pow(Options.Lambda, 2.0 * static_cast<double>(L));
    Sum += Decay * LengthSum;
  }
  return Sum;
}

std::string SpectrumFamilyKernel::name() const {
  return "spectrum-family(" + std::to_string(Options.MinLength) + ".." +
         std::to_string(Options.MaxLength) + ")";
}

KSpectrumKernel::KSpectrumKernel(size_t K, bool Weighted, uint64_t CutWeight)
    : SpectrumFamilyKernel(
          {/*MinLength=*/K, /*MaxLength=*/K, /*Lambda=*/1.0,
           /*Weighted=*/Weighted, /*CutWeight=*/CutWeight}) {}

std::string KSpectrumKernel::name() const {
  return "k-spectrum(k=" + std::to_string(Options.MaxLength) +
         (Options.Weighted ? ",weighted" : "") + ")";
}

BlendedSpectrumKernel::BlendedSpectrumKernel(size_t K, double Lambda,
                                             bool Weighted,
                                             uint64_t CutWeight)
    : SpectrumFamilyKernel({/*MinLength=*/1, /*MaxLength=*/K, Lambda,
                            Weighted, CutWeight}) {}

std::string BlendedSpectrumKernel::name() const {
  return "blended-spectrum(k=" + std::to_string(Options.MaxLength) +
         (Options.Weighted
              ? ",weighted,cut=" + std::to_string(Options.CutWeight)
              : "") +
         ")";
}

BagOfTokensKernel::BagOfTokensKernel(bool Weighted, uint64_t CutWeight)
    : SpectrumFamilyKernel({/*MinLength=*/1, /*MaxLength=*/1,
                            /*Lambda=*/1.0, Weighted, CutWeight}) {}

std::string BagOfTokensKernel::name() const { return "bag-of-tokens"; }
