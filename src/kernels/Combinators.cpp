//===- kernels/Combinators.cpp - Kernel algebra -----------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/Combinators.h"

#include <cassert>

using namespace kast;

SumKernel::SumKernel(std::vector<std::shared_ptr<StringKernel>> Parts)
    : Parts(std::move(Parts)), Weights(this->Parts.size(), 1.0) {
  assert(!this->Parts.empty() && "sum of zero kernels");
}

SumKernel::SumKernel(std::vector<std::shared_ptr<StringKernel>> Parts,
                     std::vector<double> Weights)
    : Parts(std::move(Parts)), Weights(std::move(Weights)) {
  assert(!this->Parts.empty() && "sum of zero kernels");
  assert(this->Parts.size() == this->Weights.size() &&
         "weight count mismatch");
  for ([[maybe_unused]] double W : this->Weights)
    assert(W >= 0.0 && "negative kernel weight breaks PSD-ness");
}

double SumKernel::evaluate(const WeightedString &A,
                           const WeightedString &B) const {
  double Sum = 0.0;
  for (size_t I = 0; I < Parts.size(); ++I)
    Sum += Weights[I] * Parts[I]->evaluate(A, B);
  return Sum;
}

std::string SumKernel::name() const {
  std::string Out = "sum(";
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += " + ";
    Out += Parts[I]->name();
  }
  return Out + ")";
}

ProductKernel::ProductKernel(
    std::vector<std::shared_ptr<StringKernel>> Parts)
    : Parts(std::move(Parts)) {
  assert(!this->Parts.empty() && "product of zero kernels");
}

double ProductKernel::evaluate(const WeightedString &A,
                               const WeightedString &B) const {
  double Product = 1.0;
  for (const std::shared_ptr<StringKernel> &Part : Parts)
    Product *= Part->evaluate(A, B);
  return Product;
}

std::string ProductKernel::name() const {
  std::string Out = "product(";
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += " * ";
    Out += Parts[I]->name();
  }
  return Out + ")";
}

NormalizedKernel::NormalizedKernel(std::shared_ptr<StringKernel> Inner)
    : Inner(std::move(Inner)) {
  assert(this->Inner && "normalizing a null kernel");
}

double NormalizedKernel::evaluate(const WeightedString &A,
                                  const WeightedString &B) const {
  return Inner->evaluateNormalized(A, B);
}

std::string NormalizedKernel::name() const {
  return "normalized(" + Inner->name() + ")";
}
