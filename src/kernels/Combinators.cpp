//===- kernels/Combinators.cpp - Kernel algebra -----------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/Combinators.h"

#include <cassert>
#include <cmath>

using namespace kast;

namespace {

/// One precomputation handle per component kernel. Entries may be
/// nullptr when a part has nothing to precompute.
struct CombinedPrecomputation final : KernelPrecomputation {
  std::vector<std::unique_ptr<KernelPrecomputation>> Parts;
};

/// Inner handle plus the cached self-kernel k(x, x).
struct NormalizedPrecomputation final : KernelPrecomputation {
  std::unique_ptr<KernelPrecomputation> Inner;
  double SelfKernel = 0.0;
};

/// Part I of a combined handle, or nullptr when \p Prep is absent.
const KernelPrecomputation *part(const KernelPrecomputation *Prep, size_t I) {
  if (!Prep)
    return nullptr;
  return static_cast<const CombinedPrecomputation *>(Prep)->Parts[I].get();
}

std::unique_ptr<KernelPrecomputation>
precomputeParts(const std::vector<std::shared_ptr<StringKernel>> &Kernels,
                const WeightedString &X) {
  auto Prep = std::make_unique<CombinedPrecomputation>();
  Prep->Parts.reserve(Kernels.size());
  for (const std::shared_ptr<StringKernel> &K : Kernels)
    Prep->Parts.push_back(K->precompute(X));
  return Prep;
}

} // namespace

SumKernel::SumKernel(std::vector<std::shared_ptr<StringKernel>> Parts)
    : Parts(std::move(Parts)), Weights(this->Parts.size(), 1.0) {
  assert(!this->Parts.empty() && "sum of zero kernels");
}

SumKernel::SumKernel(std::vector<std::shared_ptr<StringKernel>> Parts,
                     std::vector<double> Weights)
    : Parts(std::move(Parts)), Weights(std::move(Weights)) {
  assert(!this->Parts.empty() && "sum of zero kernels");
  assert(this->Parts.size() == this->Weights.size() &&
         "weight count mismatch");
  for ([[maybe_unused]] double W : this->Weights)
    assert(W >= 0.0 && "negative kernel weight breaks PSD-ness");
}

double SumKernel::evaluate(const WeightedString &A,
                           const WeightedString &B) const {
  return evaluatePrepared(A, nullptr, B, nullptr);
}

std::unique_ptr<KernelPrecomputation>
SumKernel::precompute(const WeightedString &X) const {
  return precomputeParts(Parts, X);
}

double SumKernel::evaluatePrepared(const WeightedString &A,
                                   const KernelPrecomputation *PrepA,
                                   const WeightedString &B,
                                   const KernelPrecomputation *PrepB) const {
  double Sum = 0.0;
  for (size_t I = 0; I < Parts.size(); ++I)
    Sum += Weights[I] * Parts[I]->evaluatePrepared(A, part(PrepA, I), B,
                                                   part(PrepB, I));
  return Sum;
}

std::string SumKernel::name() const {
  std::string Out = "sum(";
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += " + ";
    Out += Parts[I]->name();
  }
  return Out + ")";
}

ProductKernel::ProductKernel(
    std::vector<std::shared_ptr<StringKernel>> Parts)
    : Parts(std::move(Parts)) {
  assert(!this->Parts.empty() && "product of zero kernels");
}

double ProductKernel::evaluate(const WeightedString &A,
                               const WeightedString &B) const {
  return evaluatePrepared(A, nullptr, B, nullptr);
}

std::unique_ptr<KernelPrecomputation>
ProductKernel::precompute(const WeightedString &X) const {
  return precomputeParts(Parts, X);
}

double ProductKernel::evaluatePrepared(
    const WeightedString &A, const KernelPrecomputation *PrepA,
    const WeightedString &B, const KernelPrecomputation *PrepB) const {
  double Product = 1.0;
  for (size_t I = 0; I < Parts.size(); ++I)
    Product *= Parts[I]->evaluatePrepared(A, part(PrepA, I), B,
                                          part(PrepB, I));
  return Product;
}

std::string ProductKernel::name() const {
  std::string Out = "product(";
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += " * ";
    Out += Parts[I]->name();
  }
  return Out + ")";
}

NormalizedKernel::NormalizedKernel(std::shared_ptr<StringKernel> Inner)
    : Inner(std::move(Inner)) {
  assert(this->Inner && "normalizing a null kernel");
}

double NormalizedKernel::evaluate(const WeightedString &A,
                                  const WeightedString &B) const {
  return Inner->evaluateNormalized(A, B);
}

std::unique_ptr<KernelPrecomputation>
NormalizedKernel::precompute(const WeightedString &X) const {
  auto Prep = std::make_unique<NormalizedPrecomputation>();
  Prep->Inner = Inner->precompute(X);
  Prep->SelfKernel =
      Inner->evaluatePrepared(X, Prep->Inner.get(), X, Prep->Inner.get());
  return Prep;
}

double NormalizedKernel::evaluatePrepared(
    const WeightedString &A, const KernelPrecomputation *PrepA,
    const WeightedString &B, const KernelPrecomputation *PrepB) const {
  if (!PrepA || !PrepB)
    return evaluate(A, B);
  const auto *CachedA = static_cast<const NormalizedPrecomputation *>(PrepA);
  const auto *CachedB = static_cast<const NormalizedPrecomputation *>(PrepB);
  if (CachedA->SelfKernel <= 0.0 || CachedB->SelfKernel <= 0.0)
    return 0.0;
  double Kab = Inner->evaluatePrepared(A, CachedA->Inner.get(), B,
                                       CachedB->Inner.get());
  return Kab / std::sqrt(CachedA->SelfKernel * CachedB->SelfKernel);
}

std::string NormalizedKernel::name() const {
  return "normalized(" + Inner->name() + ")";
}
