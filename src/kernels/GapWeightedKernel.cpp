//===- kernels/GapWeightedKernel.cpp - Gap-weighted subsequences -----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/GapWeightedKernel.h"

#include <cassert>
#include <vector>

using namespace kast;

GapWeightedKernel::GapWeightedKernel(size_t P, double Lambda)
    : P(P), Lambda(Lambda) {
  assert(P >= 1 && "subsequence length must be positive");
  assert(Lambda > 0.0 && Lambda <= 1.0 && "lambda must be in (0, 1]");
}

std::unique_ptr<KernelPrecomputation>
GapWeightedKernel::precompute(const WeightedString &) const {
  // Deliberate pass-through (see header): the DP has no per-string
  // half, so the seam contract is "nothing to cache" rather than the
  // base class's silent default.
  return nullptr;
}

std::string GapWeightedKernel::name() const {
  return "gap-weighted(p=" + std::to_string(P) + ")";
}

double GapWeightedKernel::evaluate(const WeightedString &A,
                                   const WeightedString &B) const {
  const std::vector<uint32_t> &S = A.literalIds();
  const std::vector<uint32_t> &T = B.literalIds();
  const size_t N = S.size(), M = T.size();
  if (N < P || M < P)
    return 0.0;

  // Lodhi et al. (2002) O(p n m) recursion. KPrime holds
  // K'_{l}(s[..i], t[..j]); level 0 is the all-ones table. For each
  // level:
  //   K''_l(i, j) = lambda K''_l(i, j-1)
  //               + [s_i == t_j] lambda^2 K'_{l-1}(i-1, j-1)
  //   K'_l(i, j)  = lambda K'_l(i-1, j) + K''_l(i, j)
  // and finally
  //   K_p = sum over matches (i, j) of lambda^2 K'_{p-1}(i-1, j-1).
  const double L = Lambda;
  const double L2 = L * L;
  const size_t Stride = M + 1;

  std::vector<double> KPrime((N + 1) * Stride, 1.0);
  std::vector<double> KNext((N + 1) * Stride, 0.0);
  std::vector<double> Kpp(Stride, 0.0); // One row, rolled over i.

  for (size_t Level = 1; Level < P; ++Level) {
    std::fill(KNext.begin(), KNext.end(), 0.0);
    for (size_t I = 1; I <= N; ++I) {
      std::fill(Kpp.begin(), Kpp.end(), 0.0);
      for (size_t J = 1; J <= M; ++J) {
        double Match = S[I - 1] == T[J - 1]
                           ? L2 * KPrime[(I - 1) * Stride + (J - 1)]
                           : 0.0;
        Kpp[J] = L * Kpp[J - 1] + Match;
        KNext[I * Stride + J] =
            L * KNext[(I - 1) * Stride + J] + Kpp[J];
      }
    }
    std::swap(KPrime, KNext);
    // Zero the borders that level-0 initialization left at 1: for
    // l >= 1, K'_l is 0 whenever i or j is 0 — already true because
    // KNext rows/columns 0 stay 0 through the recursion.
  }

  double Result = 0.0;
  for (size_t I = 1; I <= N; ++I)
    for (size_t J = 1; J <= M; ++J)
      if (S[I - 1] == T[J - 1])
        Result += L2 * KPrime[(I - 1) * Stride + (J - 1)];
  return Result;
}
