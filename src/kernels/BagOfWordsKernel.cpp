//===- kernels/BagOfWordsKernel.cpp - Bag-of-words baseline ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/BagOfWordsKernel.h"
#include "util/Hashing.h"

#include <cassert>

using namespace kast;

BagOfWordsKernel::BagOfWordsKernel(bool Weighted) : Weighted(Weighted) {}

/// \returns true for the structural delimiters.
static bool isStructural(const std::string &Literal) {
  return Literal == RootLiteral || Literal == HandleLiteral ||
         Literal == BlockLiteral || Literal == LevelUpLiteral;
}

KernelProfile BagOfWordsKernel::profile(const WeightedString &X) const {
  KernelProfile P;
  NgramHasher H;
  size_t WordLength = 0;
  double Weight = 0.0;
  auto Flush = [&] {
    if (WordLength > 0)
      P.add(H.value(), Weighted ? Weight : 1.0);
    H.reset();
    WordLength = 0;
    Weight = 0.0;
  };
  for (size_t I = 0; I < X.size(); ++I) {
    if (isStructural(X.literal(I))) {
      Flush();
      continue;
    }
    H.append(X.literalId(I));
    ++WordLength;
    Weight += static_cast<double>(X.weight(I));
  }
  Flush();
  P.finalize();
  return P;
}

std::string BagOfWordsKernel::name() const {
  return Weighted ? "bag-of-words(weighted)" : "bag-of-words";
}
