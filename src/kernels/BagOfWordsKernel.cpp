//===- kernels/BagOfWordsKernel.cpp - Bag-of-words baseline ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "kernels/BagOfWordsKernel.h"

#include <cassert>
#include <map>

using namespace kast;

BagOfWordsKernel::BagOfWordsKernel(bool Weighted) : Weighted(Weighted) {}

/// \returns true for the structural delimiters.
static bool isStructural(const std::string &Literal) {
  return Literal == RootLiteral || Literal == HandleLiteral ||
         Literal == BlockLiteral || Literal == LevelUpLiteral;
}

/// Word multiset of \p X: values keyed by the literal-id sequence of
/// each maximal non-structural run.
static std::map<std::vector<uint32_t>, double>
wordValues(const WeightedString &X, bool Weighted) {
  std::map<std::vector<uint32_t>, double> Values;
  std::vector<uint32_t> Word;
  double Weight = 0.0;
  auto Flush = [&] {
    if (!Word.empty())
      Values[Word] += Weighted ? Weight : 1.0;
    Word.clear();
    Weight = 0.0;
  };
  for (size_t I = 0; I < X.size(); ++I) {
    if (isStructural(X.literal(I))) {
      Flush();
      continue;
    }
    Word.push_back(X.literalId(I));
    Weight += static_cast<double>(X.weight(I));
  }
  Flush();
  return Values;
}

double BagOfWordsKernel::evaluate(const WeightedString &A,
                                  const WeightedString &B) const {
  assert((A.empty() || B.empty() ||
          A.table().get() == B.table().get()) &&
         "kernel arguments must share one token table");
  std::map<std::vector<uint32_t>, double> InA = wordValues(A, Weighted);
  std::map<std::vector<uint32_t>, double> InB = wordValues(B, Weighted);
  double Sum = 0.0;
  const auto &Small = InA.size() <= InB.size() ? InA : InB;
  const auto &Large = InA.size() <= InB.size() ? InB : InA;
  for (const auto &[Key, Value] : Small) {
    auto It = Large.find(Key);
    if (It != Large.end())
      Sum += Value * It->second;
  }
  return Sum;
}

std::string BagOfWordsKernel::name() const {
  return Weighted ? "bag-of-words(weighted)" : "bag-of-words";
}
