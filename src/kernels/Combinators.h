//===- kernels/Combinators.h - Kernel algebra ------------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closure-property combinators over string kernels (Shawe-Taylor &
/// Cristianini [4], ch. 3): non-negative weighted sums, products and
/// positive scalings of kernels are kernels. Useful for mixing the
/// Kast kernel with baselines (e.g. adding a bag-of-tokens floor so
/// strings sharing no long substring still get vocabulary credit) and
/// for the composite-kernel experiments in the test suite.
///
/// Components are held by shared_ptr so combinators compose freely.
///
/// All three combinators forward the per-string precomputation seam to
/// their components (each part precomputes its own state — a profile
/// for profiled parts, a suffix automaton for the Kast kernel), so a
/// composite kernel still takes the O(N·build + N²·combine) Gram fast
/// path of KernelMatrix. NormalizedKernel additionally caches the
/// self-kernel k(x,x) per string, which the unprepared path recomputes
/// for every pair.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_KERNELS_COMBINATORS_H
#define KAST_KERNELS_COMBINATORS_H

#include "core/StringKernel.h"

#include <memory>
#include <vector>

namespace kast {

/// Weighted sum: k(x,y) = sum_i w_i * k_i(x,y), w_i >= 0.
class SumKernel : public StringKernel {
public:
  /// Unit weights.
  explicit SumKernel(std::vector<std::shared_ptr<StringKernel>> Parts);
  SumKernel(std::vector<std::shared_ptr<StringKernel>> Parts,
            std::vector<double> Weights);

  double evaluate(const WeightedString &A,
                  const WeightedString &B) const override;
  std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const override;
  double evaluatePrepared(const WeightedString &A,
                          const KernelPrecomputation *PrepA,
                          const WeightedString &B,
                          const KernelPrecomputation *PrepB) const override;
  std::string name() const override;

private:
  std::vector<std::shared_ptr<StringKernel>> Parts;
  std::vector<double> Weights;
};

/// Product: k(x,y) = prod_i k_i(x,y).
class ProductKernel : public StringKernel {
public:
  explicit ProductKernel(
      std::vector<std::shared_ptr<StringKernel>> Parts);

  double evaluate(const WeightedString &A,
                  const WeightedString &B) const override;
  std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const override;
  double evaluatePrepared(const WeightedString &A,
                          const KernelPrecomputation *PrepA,
                          const WeightedString &B,
                          const KernelPrecomputation *PrepB) const override;
  std::string name() const override;

private:
  std::vector<std::shared_ptr<StringKernel>> Parts;
};

/// Cosine-normalizing wrapper: k(x,y) = k0(x,y)/sqrt(k0(x,x)k0(y,y)).
/// Useful when mixing kernels of different magnitudes in a SumKernel.
class NormalizedKernel : public StringKernel {
public:
  explicit NormalizedKernel(std::shared_ptr<StringKernel> Inner);

  double evaluate(const WeightedString &A,
                  const WeightedString &B) const override;
  std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const override;
  double evaluatePrepared(const WeightedString &A,
                          const KernelPrecomputation *PrepA,
                          const WeightedString &B,
                          const KernelPrecomputation *PrepB) const override;
  std::string name() const override;

private:
  std::shared_ptr<StringKernel> Inner;
};

} // namespace kast

#endif // KAST_KERNELS_COMBINATORS_H
