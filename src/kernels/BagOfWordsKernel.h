//===- kernels/BagOfWordsKernel.h - Bag-of-words baseline ------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bag-of-words kernel (§2.2: "searches for shared words among
/// strings"), adapted to weighted token strings: a *word* is a maximal
/// run of operation tokens between structural tokens ([ROOT],
/// [HANDLE], [BLOCK], [LEVEL_UP]) — i.e. the operation body of one
/// block fragment. The kernel counts shared words. The paper discards
/// this baseline a priori ("a group of subsequent tokens can encode
/// more meaningful information than a single one"); it is implemented
/// so the tab1 sweep can demonstrate that.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_KERNELS_BAGOFWORDSKERNEL_H
#define KAST_KERNELS_BAGOFWORDSKERNEL_H

#include "core/StringKernel.h"

namespace kast {

/// Bag-of-words kernel over structural-token-delimited runs.
///
/// Profiled: one feature per distinct word (hashed literal-id run),
/// valued by occurrence count or summed weight, so Gram matrices take
/// the KernelMatrix fast path.
class BagOfWordsKernel : public ProfiledStringKernel {
public:
  /// \param Weighted count words by summed token weight instead of 1.
  explicit BagOfWordsKernel(bool Weighted = false);

  KernelProfile profile(const WeightedString &X) const override;
  std::string name() const override;

private:
  bool Weighted;
};

} // namespace kast

#endif // KAST_KERNELS_BAGOFWORDSKERNEL_H
