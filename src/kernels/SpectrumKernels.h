//===- kernels/SpectrumKernels.h - Baseline string kernels -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline kernels the paper evaluates against (§2.2, §4.3), all
/// instances of one engine over contiguous token subsequences
/// ("p-grams") of lengths MinLength..MaxLength:
///
///   k(x, y) = sum over lengths l of lambda^(2l) *
///             sum over distinct l-grams g of v_g(x) * v_g(y)
///
/// where v_g(x) is either the occurrence count of g in x (the classic
/// symbol-counting form) or, in weighted mode, the summed token weight
/// of the occurrences of g whose weight reaches the cut weight — the
/// form the paper's figure captions parameterize with "cut weight = 2"
/// when running the Blended Spectrum Kernel on weighted strings.
///
/// Instantiations:
///   * KSpectrumKernel        — l = k exactly (Leslie et al. [12])
///   * BlendedSpectrumKernel  — l = 1..k with decay (Shawe-Taylor &
///                              Cristianini [4])
///   * BagOfTokensKernel      — l = 1, the bag-of-characters analog
///
//===----------------------------------------------------------------------===//

#ifndef KAST_KERNELS_SPECTRUMKERNELS_H
#define KAST_KERNELS_SPECTRUMKERNELS_H

#include "core/StringKernel.h"

#include <cstdint>

namespace kast {

/// Shared configuration of the spectrum family.
struct SpectrumOptions {
  size_t MinLength = 1;
  size_t MaxLength = 3;
  /// Per-length decay lambda; contribution scales with lambda^(2l).
  double Lambda = 1.0;
  /// Weighted mode: occurrences contribute their token-weight sum and
  /// occurrences lighter than CutWeight are ignored.
  bool Weighted = false;
  uint64_t CutWeight = 0;
};

/// Engine shared by the concrete baselines below.
///
/// Profiled: the embedding of a string is one feature per distinct
/// l-gram (l = MinLength..MaxLength) valued lambda^l * v_g(x), so the
/// profile dot reproduces the lambda^(2l)-decayed sum above and Gram
/// matrices take the O(N·build + N²·dot) fast path of KernelMatrix.
class SpectrumFamilyKernel : public ProfiledStringKernel {
public:
  explicit SpectrumFamilyKernel(SpectrumOptions Options);

  KernelProfile profile(const WeightedString &X) const override;
  std::string name() const override;

  const SpectrumOptions &options() const { return Options; }

protected:
  SpectrumOptions Options;
};

/// The k-spectrum kernel: only substrings of length exactly k.
class KSpectrumKernel : public SpectrumFamilyKernel {
public:
  explicit KSpectrumKernel(size_t K = 3, bool Weighted = false,
                           uint64_t CutWeight = 0);
  std::string name() const override;
};

/// The blended spectrum kernel: substrings of length <= k.
class BlendedSpectrumKernel : public SpectrumFamilyKernel {
public:
  explicit BlendedSpectrumKernel(size_t K = 3, double Lambda = 1.0,
                                 bool Weighted = false,
                                 uint64_t CutWeight = 0);
  std::string name() const override;
};

/// The bag-of-characters analog: single tokens only.
class BagOfTokensKernel : public SpectrumFamilyKernel {
public:
  explicit BagOfTokensKernel(bool Weighted = false, uint64_t CutWeight = 0);
  std::string name() const override;
};

} // namespace kast

#endif // KAST_KERNELS_SPECTRUMKERNELS_H
