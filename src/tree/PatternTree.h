//===- tree/PatternTree.h - ROOT/HANDLE/BLOCK/op trees ---------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree representation of an I/O access pattern (paper §3.1,
/// Fig. 1). Four levels:
///
///   ROOT     — one imaginary node per access pattern file
///   HANDLE   — one imaginary node per file handle
///   BLOCK    — one imaginary node per open..close span
///   op       — one leaf per (possibly compressed) operation
///
/// open/close themselves produce no leaves; the BLOCK node is the
/// delimiter. Compressed leaves carry a *name signature* (operation
/// names merged by rules 3/4, rendered "read+write") and a *byte
/// signature* (byte counts merged by rule 2, rendered "2+4"), plus a
/// repetition count equal to the number of primitive operations the
/// leaf stands for.
///
/// Nodes live in an arena owned by the tree and are addressed by dense
/// NodeId indices, so trees are cheap to copy and structurally
/// comparable.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TREE_PATTERNTREE_H
#define KAST_TREE_PATTERNTREE_H

#include <cstdint>
#include <string>
#include <vector>

namespace kast {

/// Dense node index within a PatternTree.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId InvalidNodeId = ~static_cast<NodeId>(0);

/// Level of a tree node.
enum class NodeKind : uint8_t {
  Root,
  Handle,
  Block,
  Op,
};

/// \returns "ROOT", "HANDLE", "BLOCK" or "op".
const char *nodeKindName(NodeKind Kind);

/// One node of a PatternTree.
struct PatternNode {
  NodeKind Kind = NodeKind::Op;

  /// Operation names merged into this leaf, in merge order. Imaginary
  /// nodes have an empty signature.
  std::vector<std::string> NameSig;

  /// Byte counts merged into this leaf, in merge order. A plain leaf
  /// has exactly one element (possibly 0). Imaginary nodes: empty.
  std::vector<uint64_t> ByteSig;

  /// Number of primitive trace operations this leaf stands for; the
  /// weight of the token the leaf becomes. Imaginary nodes keep 1
  /// (their token weight is always 1, §3.1).
  uint64_t Reps = 1;

  /// For HANDLE nodes: the file handle. Unused otherwise.
  uint64_t Handle = 0;

  NodeId Parent = InvalidNodeId;
  std::vector<NodeId> Children;

  /// "read", "read+write", ... (leaves only).
  std::string nameLabel() const;

  /// "0", "1024", "2+4", ... (leaves only).
  std::string byteLabel() const;

  /// \returns true if every merged byte count is zero.
  bool isZeroBytes() const;
};

/// An access-pattern tree; owns its node arena. The root always exists.
class PatternTree {
public:
  PatternTree();

  NodeId root() const { return 0; }

  const PatternNode &node(NodeId Id) const;
  PatternNode &node(NodeId Id);

  size_t size() const { return Nodes.size(); }

  /// Creates a node of \p Kind under \p Parent and returns its id.
  NodeId addChild(NodeId Parent, NodeKind Kind);

  /// Creates an op leaf under \p Parent.
  NodeId addOp(NodeId Parent, std::string Name, uint64_t Bytes,
               uint64_t Reps = 1);

  /// Replaces the children list of \p Parent (used by the compressor;
  /// does not reclaim orphaned arena nodes).
  void setChildren(NodeId Parent, std::vector<NodeId> Children);

  /// Depth of \p Id (root is 0).
  size_t depth(NodeId Id) const;

  /// Pre-order node ids reachable from the root.
  std::vector<NodeId> preorder() const;

  /// Number of op leaves reachable from the root.
  size_t numLeaves() const;

  /// Sum of Reps over reachable op leaves — the primitive operation
  /// count, which compression must conserve.
  uint64_t totalReps() const;

  /// Structural equality on the reachable tree (kinds, signatures,
  /// repetition counts, and shape). Handle numbers are deliberately
  /// not compared: the string representation abstracts them away
  /// (every handle becomes the same [HANDLE] token), so this is
  /// equality at the representation's level of detail.
  bool equalsStructurally(const PatternTree &Rhs) const;

private:
  std::vector<PatternNode> Nodes;
};

} // namespace kast

#endif // KAST_TREE_PATTERNTREE_H
