//===- tree/TreeCompressor.cpp - The four merge rules ----------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tree/TreeCompressor.h"

#include <cassert>

using namespace kast;

/// Concatenates two signatures (order preserving, as in "a 2-bytes
/// integer and a 4-bytes integer" becoming the combined value 2+4).
template <typename T>
static std::vector<T> concatSig(const std::vector<T> &A,
                                const std::vector<T> &B) {
  std::vector<T> Out = A;
  Out.insert(Out.end(), B.begin(), B.end());
  return Out;
}

std::optional<PatternNode> kast::tryMergeRule(int Rule, const PatternNode &A,
                                              const PatternNode &B) {
  assert(Rule >= 1 && Rule <= 4 && "rule index out of range");
  if (A.Kind != NodeKind::Op || B.Kind != NodeKind::Op)
    return std::nullopt;

  const bool SameName = A.NameSig == B.NameSig;
  const bool SameBytes = A.ByteSig == B.ByteSig;

  PatternNode Merged;
  Merged.Kind = NodeKind::Op;
  Merged.Reps = A.Reps + B.Reps;

  switch (Rule) {
  case 1:
    // Same name, same bytes: a loop repeating one operation.
    if (!SameName || !SameBytes)
      return std::nullopt;
    Merged.NameSig = A.NameSig;
    Merged.ByteSig = A.ByteSig;
    return Merged;
  case 2:
    // Same name, different bytes: e.g. a struct read field by field.
    if (!SameName || SameBytes)
      return std::nullopt;
    Merged.NameSig = A.NameSig;
    Merged.ByteSig = concatSig(A.ByteSig, B.ByteSig);
    return Merged;
  case 3:
    // Different name, same bytes: e.g. interlaced read/write = copy.
    if (SameName || !SameBytes)
      return std::nullopt;
    Merged.NameSig = concatSig(A.NameSig, B.NameSig);
    Merged.ByteSig = A.ByteSig;
    return Merged;
  case 4: {
    // Different name, different bytes, exactly one side all-zero:
    // e.g. lseek (0 bytes) + write (n bytes).
    if (SameName || SameBytes)
      return std::nullopt;
    const bool AZero = A.isZeroBytes();
    const bool BZero = B.isZeroBytes();
    if (AZero == BZero)
      return std::nullopt;
    Merged.NameSig = concatSig(A.NameSig, B.NameSig);
    Merged.ByteSig = AZero ? B.ByteSig : A.ByteSig;
    return Merged;
  }
  default:
    return std::nullopt;
  }
}

namespace {

/// Applies one rule's sweep over a block's child list.
class BlockSweeper {
public:
  BlockSweeper(PatternTree &Tree, CompressionStats &Stats)
      : Tree(Tree), Stats(Stats) {}

  /// Sweeps \p Children left to right with \p Rule. Rule 1 keeps the
  /// merged node as the left operand (run collapse); rules 2-4 advance
  /// past it (disjoint pairs). Returns the new child list.
  std::vector<NodeId> sweep(int Rule, const std::vector<NodeId> &Children) {
    std::vector<NodeId> Out;
    Out.reserve(Children.size());
    size_t I = 0;
    while (I < Children.size()) {
      NodeId Current = Children[I];
      size_t J = I + 1;
      while (J < Children.size()) {
        std::optional<PatternNode> Merged =
            tryMergeRule(Rule, Tree.node(Current), Tree.node(Children[J]));
        if (!Merged)
          break;
        ++Stats.MergesByRule[Rule - 1];
        Current = materialize(std::move(*Merged));
        ++J;
        if (Rule != 1)
          break; // Disjoint pairs: stop after one merge.
      }
      Out.push_back(Current);
      I = J;
    }
    return Out;
  }

private:
  /// Adds a merged node to the arena (detached; parent set later).
  NodeId materialize(PatternNode Node) {
    // addChild wants a parent; attach under root temporarily and strip
    // the back-pointer, setChildren will fix it up.
    NodeId Id = Tree.addChild(Tree.root(), NodeKind::Op);
    // Remove from root's child list again (it was appended last).
    PatternNode &Root = Tree.node(Tree.root());
    assert(Root.Children.back() == Id && "unexpected arena state");
    Root.Children.pop_back();
    PatternNode &Slot = Tree.node(Id);
    Node.Parent = InvalidNodeId;
    Node.Children.clear();
    Slot = std::move(Node);
    return Id;
  }

  PatternTree &Tree;
  CompressionStats &Stats;
};

} // namespace

CompressionStats kast::compressTree(PatternTree &Tree,
                                    const CompressorOptions &Options) {
  CompressionStats Stats;
  Stats.LeavesBefore = Tree.numLeaves();

  // Collect the BLOCK nodes once; compression never adds blocks.
  std::vector<NodeId> Blocks;
  for (NodeId Id : Tree.preorder())
    if (Tree.node(Id).Kind == NodeKind::Block)
      Blocks.push_back(Id);

  const bool Enabled[4] = {Options.EnableRule1, Options.EnableRule2,
                           Options.EnableRule3, Options.EnableRule4};

  BlockSweeper Sweeper(Tree, Stats);
  for (size_t Pass = 0; Pass < Options.Passes; ++Pass) {
    for (NodeId Block : Blocks) {
      std::vector<NodeId> Children = Tree.node(Block).Children;
      for (int Rule = 1; Rule <= 4; ++Rule)
        if (Enabled[Rule - 1])
          Children = Sweeper.sweep(Rule, Children);
      Tree.setChildren(Block, std::move(Children));
    }
  }

  Stats.LeavesAfter = Tree.numLeaves();
  return Stats;
}
