//===- tree/TreeDump.cpp - Tree pretty printing ----------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tree/TreeDump.h"

using namespace kast;

std::string kast::nodeLabel(const PatternNode &Node) {
  switch (Node.Kind) {
  case NodeKind::Root:
    return "ROOT";
  case NodeKind::Handle:
    return "HANDLE " + std::to_string(Node.Handle);
  case NodeKind::Block:
    return "BLOCK";
  case NodeKind::Op: {
    std::string Label = Node.nameLabel() + "[" + Node.byteLabel() + "]";
    if (Node.Reps != 1)
      Label += " x" + std::to_string(Node.Reps);
    return Label;
  }
  }
  return "?";
}

std::string kast::dumpTreeAscii(const PatternTree &Tree) {
  std::string Out;
  for (NodeId Id : Tree.preorder()) {
    Out.append(2 * Tree.depth(Id), ' ');
    Out += nodeLabel(Tree.node(Id));
    Out += '\n';
  }
  return Out;
}

std::string kast::dumpTreeDot(const PatternTree &Tree,
                              const std::string &GraphName) {
  std::string Out = "digraph " + GraphName + " {\n";
  Out += "  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId Id : Tree.preorder()) {
    Out += "  n" + std::to_string(Id) + " [label=\"" +
           nodeLabel(Tree.node(Id)) + "\"];\n";
    for (NodeId Child : Tree.node(Id).Children)
      Out += "  n" + std::to_string(Id) + " -> n" + std::to_string(Child) +
             ";\n";
  }
  Out += "}\n";
  return Out;
}
