//===- tree/PatternTree.cpp - ROOT/HANDLE/BLOCK/op trees -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tree/PatternTree.h"

#include <cassert>

using namespace kast;

const char *kast::nodeKindName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Root:
    return "ROOT";
  case NodeKind::Handle:
    return "HANDLE";
  case NodeKind::Block:
    return "BLOCK";
  case NodeKind::Op:
    return "op";
  }
  return "op";
}

std::string PatternNode::nameLabel() const {
  std::string Label;
  for (size_t I = 0; I < NameSig.size(); ++I) {
    if (I != 0)
      Label += '+';
    Label += NameSig[I];
  }
  return Label;
}

std::string PatternNode::byteLabel() const {
  std::string Label;
  for (size_t I = 0; I < ByteSig.size(); ++I) {
    if (I != 0)
      Label += '+';
    Label += std::to_string(ByteSig[I]);
  }
  return Label;
}

bool PatternNode::isZeroBytes() const {
  for (uint64_t B : ByteSig)
    if (B != 0)
      return false;
  return true;
}

PatternTree::PatternTree() {
  PatternNode Root;
  Root.Kind = NodeKind::Root;
  Nodes.push_back(std::move(Root));
}

const PatternNode &PatternTree::node(NodeId Id) const {
  assert(Id < Nodes.size() && "node id out of range");
  return Nodes[Id];
}

PatternNode &PatternTree::node(NodeId Id) {
  assert(Id < Nodes.size() && "node id out of range");
  return Nodes[Id];
}

NodeId PatternTree::addChild(NodeId Parent, NodeKind Kind) {
  assert(Parent < Nodes.size() && "parent id out of range");
  assert(Kind != NodeKind::Root && "a tree has exactly one root");
  NodeId Id = static_cast<NodeId>(Nodes.size());
  PatternNode N;
  N.Kind = Kind;
  N.Parent = Parent;
  Nodes.push_back(std::move(N));
  Nodes[Parent].Children.push_back(Id);
  return Id;
}

NodeId PatternTree::addOp(NodeId Parent, std::string Name, uint64_t Bytes,
                          uint64_t Reps) {
  NodeId Id = addChild(Parent, NodeKind::Op);
  PatternNode &N = Nodes[Id];
  N.NameSig.push_back(std::move(Name));
  N.ByteSig.push_back(Bytes);
  N.Reps = Reps;
  return Id;
}

void PatternTree::setChildren(NodeId Parent, std::vector<NodeId> Children) {
  assert(Parent < Nodes.size() && "parent id out of range");
  for (NodeId C : Children) {
    assert(C < Nodes.size() && "child id out of range");
    Nodes[C].Parent = Parent;
  }
  Nodes[Parent].Children = std::move(Children);
}

size_t PatternTree::depth(NodeId Id) const {
  size_t D = 0;
  while (Nodes[Id].Parent != InvalidNodeId) {
    Id = Nodes[Id].Parent;
    ++D;
  }
  return D;
}

std::vector<NodeId> PatternTree::preorder() const {
  std::vector<NodeId> Order;
  Order.reserve(Nodes.size());
  std::vector<NodeId> Stack = {root()};
  while (!Stack.empty()) {
    NodeId Id = Stack.back();
    Stack.pop_back();
    Order.push_back(Id);
    const std::vector<NodeId> &Kids = Nodes[Id].Children;
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.push_back(*It);
  }
  return Order;
}

size_t PatternTree::numLeaves() const {
  size_t Count = 0;
  for (NodeId Id : preorder())
    if (Nodes[Id].Kind == NodeKind::Op)
      ++Count;
  return Count;
}

uint64_t PatternTree::totalReps() const {
  uint64_t Total = 0;
  for (NodeId Id : preorder())
    if (Nodes[Id].Kind == NodeKind::Op)
      Total += Nodes[Id].Reps;
  return Total;
}

bool PatternTree::equalsStructurally(const PatternTree &Rhs) const {
  std::vector<NodeId> A = preorder();
  std::vector<NodeId> B = Rhs.preorder();
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I) {
    const PatternNode &NA = node(A[I]);
    const PatternNode &NB = Rhs.node(B[I]);
    if (NA.Kind != NB.Kind || NA.NameSig != NB.NameSig ||
        NA.ByteSig != NB.ByteSig || NA.Reps != NB.Reps ||
        NA.Children.size() != NB.Children.size())
      return false;
  }
  return true;
}
