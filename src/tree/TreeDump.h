//===- tree/TreeDump.h - Tree pretty printing ------------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable renderings of PatternTrees: an indented ASCII form
/// (used by examples/trace_explorer and test diagnostics) and Graphviz
/// DOT output for the paper's Figure 1/2 style drawings.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TREE_TREEDUMP_H
#define KAST_TREE_TREEDUMP_H

#include "tree/PatternTree.h"

#include <string>

namespace kast {

/// Indented one-node-per-line rendering, e.g.
///   ROOT
///     HANDLE 3
///       BLOCK
///         read[1024] x5
std::string dumpTreeAscii(const PatternTree &Tree);

/// Graphviz DOT rendering.
std::string dumpTreeDot(const PatternTree &Tree,
                        const std::string &GraphName = "pattern");

/// One-node label used by both renderers, e.g. "read+write[64] x3".
std::string nodeLabel(const PatternNode &Node);

} // namespace kast

#endif // KAST_TREE_TREEDUMP_H
