//===- tree/TreeBuilder.h - Trace to tree conversion -----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First stage of the paper's two-stage conversion (§3.1): a trace is
/// reorganized into containment form. Operations interleaved across
/// file handles in the chronological trace are regrouped under one
/// HANDLE node each ("it is not always possible that all the
/// operations belonging to the same file handle could have been
/// written contiguously"), and within a handle each open..close span
/// becomes a BLOCK.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TREE_TREEBUILDER_H
#define KAST_TREE_TREEBUILDER_H

#include "trace/Trace.h"
#include "tree/PatternTree.h"

#include <set>

namespace kast {

/// Options controlling trace-to-tree conversion.
struct TreeBuilderOptions {
  /// Operation names dropped before conversion. Defaults to the
  /// paper's negligible set {fileno, mmap, fscanf}.
  std::set<std::string> NegligibleOps = Trace::defaultNegligibleOps();

  /// Force all byte counts to zero — produces the paper's second
  /// string representation (§3.1).
  bool IgnoreBytes = false;
};

/// Converts \p T into its tree form.
///
/// Grouping rules beyond the paper's description (which assumes
/// well-formed traces):
///  * an operation on a handle with no open block opens an implicit
///    BLOCK;
///  * `open` always starts a fresh BLOCK (an unclosed previous block on
///    the same handle simply ends);
///  * `close` without a matching open is ignored;
///  * blocks left open at end-of-trace are treated as closed.
/// `open`/`close` contribute no leaves (§3.1: "the BLOCK node already
/// plays the role of a delimiter").
PatternTree buildTree(const Trace &T, const TreeBuilderOptions &Options = {});

} // namespace kast

#endif // KAST_TREE_TREEBUILDER_H
