//===- tree/TreeBuilder.cpp - Trace to tree conversion ---------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tree/TreeBuilder.h"

#include <map>

using namespace kast;

PatternTree kast::buildTree(const Trace &T,
                            const TreeBuilderOptions &Options) {
  PatternTree Tree;

  // Per-handle state: the HANDLE node and the currently open BLOCK.
  struct HandleState {
    NodeId HandleNode = InvalidNodeId;
    NodeId OpenBlock = InvalidNodeId;
  };
  std::map<uint64_t, HandleState> States;

  auto GetHandle = [&](uint64_t Handle) -> HandleState & {
    auto It = States.find(Handle);
    if (It != States.end())
      return It->second;
    HandleState S;
    S.HandleNode = Tree.addChild(Tree.root(), NodeKind::Handle);
    Tree.node(S.HandleNode).Handle = Handle;
    return States.emplace(Handle, S).first->second;
  };

  for (const TraceEvent &Event : T.events()) {
    if (Options.NegligibleOps.count(Event.Op))
      continue;

    HandleState &S = GetHandle(Event.Handle);
    if (Event.isOpen()) {
      // A fresh span starts; any unclosed block on this handle ends.
      S.OpenBlock = Tree.addChild(S.HandleNode, NodeKind::Block);
      continue;
    }
    if (Event.isClose()) {
      S.OpenBlock = InvalidNodeId;
      continue;
    }
    if (S.OpenBlock == InvalidNodeId) // Implicit block (no open seen).
      S.OpenBlock = Tree.addChild(S.HandleNode, NodeKind::Block);

    uint64_t Bytes = Options.IgnoreBytes ? 0 : Event.Bytes;
    Tree.addOp(S.OpenBlock, Event.Op, Bytes);
  }
  return Tree;
}
