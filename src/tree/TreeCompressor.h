//===- tree/TreeCompressor.h - The four merge rules ------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compression of consecutive sibling op leaves inside a BLOCK, per
/// §3.1 of the paper ("a set of consecutive operation nodes on the same
/// block can be expressed as a single node when they present some
/// simple patterns"). Four transformations, "performed in the given
/// order":
///
///   1. same name, same bytes      -> one node, same information
///   2. same name, different bytes -> one node, combined byte value
///   3. different name, same bytes -> one node, combined name
///   4. different name, different bytes, one side zero bytes
///                                 -> combined name, non-zero bytes
///
/// and "the previous steps are repeated once again to capture higher
/// level patterns" — i.e. two passes by default.
///
/// KAST pins down the parts the paper leaves informal:
///
///  * Each rule sweeps a block's sibling list left to right before the
///    next rule runs. Rule 1 is *run-collapsing*: after a merge the
///    merged node is compared against the next sibling again, so a run
///    of n identical operations becomes one node in a single sweep
///    (the paper's canonical example, "a read operation inside a
///    loop"). Rules 2-4 merge *disjoint pairs*: after a merge the sweep
///    advances past the merged node. This preserves alternation
///    structure — read[2] read[4] read[2] read[4] becomes
///    read[2+4] read[2+4] under rule 2, which the next pass's rule 1
///    then collapses to (read[2+4] x2), instead of greedily swallowing
///    the whole block into one token.
///  * A merged node's repetition count is the sum of both inputs, so
///    leaf weights always count primitive operations (conserved by
///    compression; asserted in tests).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_TREE_TREECOMPRESSOR_H
#define KAST_TREE_TREECOMPRESSOR_H

#include "tree/PatternTree.h"

#include <optional>

namespace kast {

/// Options controlling compression.
struct CompressorOptions {
  /// Number of times the four-rule sequence runs. The paper applies it
  /// twice. 0 disables compression.
  size_t Passes = 2;

  /// Individual rule switches (for ablation).
  bool EnableRule1 = true; ///< same name, same bytes
  bool EnableRule2 = true; ///< same name, different bytes
  bool EnableRule3 = true; ///< different name, same bytes
  bool EnableRule4 = true; ///< different name, one side zero bytes
};

/// Statistics of one compression run.
struct CompressionStats {
  size_t LeavesBefore = 0;
  size_t LeavesAfter = 0;
  size_t MergesByRule[4] = {0, 0, 0, 0};

  /// leaves removed / leaves before (0 for empty trees).
  double ratio() const {
    if (LeavesBefore == 0)
      return 0.0;
    return 1.0 - static_cast<double>(LeavesAfter) /
                     static_cast<double>(LeavesBefore);
  }
};

/// Compresses \p Tree in place; returns merge statistics.
CompressionStats compressTree(PatternTree &Tree,
                              const CompressorOptions &Options = {});

/// Attempts to merge two op nodes under rule \p Rule (1-4). Exposed for
/// unit testing. \returns the merged node, or nullopt if the rule does
/// not apply.
std::optional<PatternNode> tryMergeRule(int Rule, const PatternNode &A,
                                        const PatternNode &B);

} // namespace kast

#endif // KAST_TREE_TREECOMPRESSOR_H
