//===- util/SimdDot.h - Vectorized sparse dot-product kernels --*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one hot loop of the whole system — the merge-join inner product
/// over two hash-sorted sparse vectors — restructured for vector
/// hardware. Every layer bottoms out here: Gram tiles
/// (core/KernelMatrix), exact retrieval scans (index/ProfileIndex,
/// index/IndexService), centroid routing (index/ClusterRouter), and
/// the quantized scan tier all call through this dispatch layer.
///
/// Three implementations of the same contract:
///
///   - scalar: the reference two-pointer merge join (what the system
///     shipped with through PR 6).
///   - AVX2:   blocked intersection — 4x4 all-pairs hash compares per
///     step via cmpeq + lane rotations, advancing whichever block's
///     maximum is smaller (Schlegel/Katsogridakis-style block merge).
///   - NEON:   the same scheme at 2-lane width (aarch64 baseline).
///
/// The selection is made once per process: compile-time availability
/// (the AVX2 translation unit is built only when the compiler supports
/// -mavx2), a runtime CPUID check, and the KAST_FORCE_SCALAR
/// environment escape hatch (any non-empty value other than "0"
/// forces the reference scalar merge join — the differential-testing
/// knob CI exercises across the full suite).
///
/// THE EXACTNESS CONTRACT: every implementation — scalar, galloping,
/// and blocked-SIMD — discovers the matching hash pairs in ascending
/// hash order and accumulates their products one double-precision
/// addition at a time, in that order. Vectorization accelerates only
/// the hash-compare phase; the floating-point reduction is the same
/// sequence of operations in the same order as the scalar merge join.
/// Results are therefore bit-identical across implementations (pinned
/// by tests/SimdDotTest.cpp), and every consumer that promised
/// bit-reproducibility — Gram tiles, exhaustive-mode retrieval, the
/// k-means fit — keeps that promise on top of any kernel.
///
/// Skew handling: when one side is much smaller than the other
/// (query-vs-centroid, query-vs-posting-segment), a galloping
/// (exponential-probe + binary-search) intersection over the smaller
/// side replaces the linear merge. The strategy switch is a pure
/// performance decision — order of matches, and hence the sum, is
/// unchanged.
///
/// The quantized variants implement the scan tier's asymmetric dot
/// (ADC): the stored side is int8 with one f64 scale per profile, the
/// query side stays f64. dotQuantized returns
///     Scale * sum over matches of (queryValue * int8Value)
/// with the inner sum accumulated in f64 match order, so the quantized
/// kernels are bit-identical across implementations too; only the
/// quantization itself (value -> int8) approximates, with per-pair
/// error bounded by Scale/2 * l1(query restricted to matches) — see
/// core/ProfileStore.h's QuantizedStore.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_SIMDDOT_H
#define KAST_UTIL_SIMDDOT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kast {
namespace simd {

/// Which dot-product implementation the process selected.
enum class DotKernel { Scalar, Avx2, Neon };

/// Human-readable kernel name ("scalar", "avx2", "neon") for bench
/// counters and diagnostics.
const char *kernelName(DotKernel K);

/// The uncached selection: compile-time availability, runtime CPU
/// support, and the KAST_FORCE_SCALAR environment override, evaluated
/// now. Exposed so tests can pin the override's behavior after
/// setenv(); production code goes through activeKernel().
DotKernel detectKernel();

/// The process-wide selection, made once on first use.
DotKernel activeKernel();

/// True when KAST_FORCE_SCALAR pinned the process to the reference
/// scalar merge join (which also disables the galloping strategy, so
/// the forced path is exactly the pre-SIMD code shape).
bool scalarForced();

/// Exact merge-join inner product of two hash-sorted sparse vectors,
/// dispatched to the selected kernel. Bit-identical to dotScalar for
/// all inputs.
double dotExact(const uint64_t *AHashes, const double *AValues, size_t ASize,
                const uint64_t *BHashes, const double *BValues, size_t BSize);

/// The reference two-pointer scalar merge join (always available;
/// differential baseline and forced-scalar path).
double dotScalar(const uint64_t *AHashes, const double *AValues, size_t ASize,
                 const uint64_t *BHashes, const double *BValues, size_t BSize);

/// Quantized (asymmetric) inner product: f64 query side against an
/// int8 stored side with one scale. Returns
/// Scale * sum(QValues[i] * SValues[j]) over hash matches, inner sum
/// in f64 match order. Dispatched like dotExact; bit-identical to
/// dotQuantizedScalar for all inputs.
double dotQuantized(const uint64_t *QHashes, const double *QValues,
                    size_t QSize, const uint64_t *SHashes,
                    const int8_t *SValues, size_t SSize, double Scale);

/// Reference scalar implementation of dotQuantized.
double dotQuantizedScalar(const uint64_t *QHashes, const double *QValues,
                          size_t QSize, const uint64_t *SHashes,
                          const int8_t *SValues, size_t SSize, double Scale);

/// One-query-against-many exact scan: the query's features go into a
/// bucketized probe table once, then each stored profile's dot costs
/// one branchless table probe per *stored* element — no query-side
/// iteration, no data-dependent branches for the predictor to miss on,
/// unlike the merge join whose advance direction flips per element.
///
/// Buckets are addressed by the hashes' top bits (feature hashes are
/// uniformly distributed) and hold four slots, padded with hashes that
/// cannot reach the bucket, so a probe is: load four candidate hashes,
/// compare against the stored hash, fold the mask. Each matched
/// product is appended to a match buffer with a branchless conditional
/// advance, then the buffer is summed serially.
///
/// Exactness: stored hashes are strictly increasing, so products land
/// in the match buffer in ascending stored-hash order — exactly the
/// merge join's discovery order — and the serial summation performs
/// the identical f64 addition sequence (f64 multiplication is
/// commutative bit-for-bit). dot() is therefore bit-identical to
/// dotScalar(query, stored) for all inputs, probe table or not.
///
/// Falls back to dotExact when the table could not be built (tiny or
/// pathologically clustered query, KAST_FORCE_SCALAR) and for stored
/// sides so much larger than the query that galloping beats probing.
/// Not thread-safe: one ExactScan per scanning thread.
class ExactScan {
public:
  /// Rebuilds the probe table for a new query, reusing capacity. The
  /// query arrays must stay alive and unchanged until the next
  /// assign() — dot() reads them on the fallback paths.
  void assign(const uint64_t *QHashes, const double *QValues, size_t QSize);

  /// Exact inner product of the assigned query with one stored
  /// profile; bit-identical to dotScalar for all inputs.
  double dot(const uint64_t *SHashes, const double *SValues, size_t SSize);

  /// Whether the probe table is live (false: every dot() takes the
  /// dotExact fallback). Exposed for tests and bench labels.
  bool usingTable() const { return TableOk; }

private:
  const uint64_t *QHashes = nullptr;
  const double *QValues = nullptr;
  size_t QSize = 0;
  /// Four slots per bucket, hashes and values in parallel arrays.
  std::vector<uint64_t> BucketHashes;
  std::vector<double> BucketValues;
  /// Matched products in discovery order; one extra slot absorbs the
  /// speculative write of a non-matching probe.
  std::vector<double> Matches;
  /// hash >> Shift is the bucket index.
  int Shift = 64;
  bool TableOk = false;
};

} // namespace simd
} // namespace kast

#endif // KAST_UTIL_SIMDDOT_H
