//===- util/AsciiPlot.h - Terminal scatter plots ---------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASCII scatter-plot rendering. The benches that regenerate the
/// paper's Kernel PCA figures (Figs. 6 and 8) draw the projected
/// examples into a character grid, one glyph per category, so the
/// cluster geometry is visible directly in the bench output.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_ASCIIPLOT_H
#define KAST_UTIL_ASCIIPLOT_H

#include <string>
#include <vector>

namespace kast {

/// A labelled 2-D point.
struct PlotPoint {
  double X = 0.0;
  double Y = 0.0;
  char Glyph = '*';
};

/// Renders labelled points into a fixed-size character grid.
class AsciiScatter {
public:
  /// \param Width  grid width in characters (>= 8)
  /// \param Height grid height in characters (>= 4)
  AsciiScatter(size_t Width = 72, size_t Height = 24);

  /// Adds one point.
  void addPoint(double X, double Y, char Glyph);

  /// Renders the grid with a border and axis ranges. When several
  /// points land on one cell the glyph added last wins unless the
  /// glyphs differ, in which case '+' marks the collision.
  std::string render() const;

private:
  size_t Width;
  size_t Height;
  std::vector<PlotPoint> Points;
};

} // namespace kast

#endif // KAST_UTIL_ASCIIPLOT_H
