//===- util/Hashing.h - 64-bit feature hashing -----------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hashing primitives for the profiled-kernel fast path: a SplitMix64
/// finalizer and an incremental polynomial hasher over token-symbol
/// sequences. Kernel profiles identify an n-gram (or word) feature by
/// the 64-bit hash of its literal-id sequence instead of by the
/// sequence itself, so profiles are flat arrays of (hash, value) pairs
/// rather than tree maps keyed by vectors.
///
/// Collision model: each appended symbol is passed through the
/// SplitMix64 finalizer before entering the polynomial, so two distinct
/// sequences collide with probability ~2^-64 — negligible against the
/// ~1e12 feature pairs of the largest Gram matrices here, and far below
/// the 1e-9 relative tolerance the equivalence tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_HASHING_H
#define KAST_UTIL_HASHING_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace kast {

/// SplitMix64 finalizer (Steele et al.): bijective avalanche mix of a
/// 64-bit value.
inline uint64_t mixHash64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// 64-bit content checksum of a byte range: FNV-1a over 8-byte
/// little-endian lanes (the tail zero-padded to a lane), length folded
/// into the seed, SplitMix64-finalized. Defined over the *byte*
/// sequence — the same bytes checksum identically on any host — which
/// is what the flat-image cache format (core/FlatImage) stores per
/// section: a fast corruption detector, not a cryptographic digest.
inline uint64_t checksumBytes(const void *Data, size_t Size) {
  constexpr uint64_t Prime = 0x100000001B3ULL;
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t H = 0xCBF29CE484222325ULL ^
               (static_cast<uint64_t>(Size) * 0x9E3779B97F4A7C15ULL);
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t Lane;
    std::memcpy(&Lane, Bytes + I, 8);
    if constexpr (std::endian::native != std::endian::little) {
      uint64_t Swapped = 0;
      for (int B = 0; B < 8; ++B)
        Swapped |= ((Lane >> (8 * (7 - B))) & 0xFF) << (8 * B);
      Lane = Swapped;
    }
    H = (H ^ Lane) * Prime;
  }
  if (I < Size) {
    uint64_t Lane = 0;
    for (size_t B = 0; I + B < Size; ++B)
      Lane |= static_cast<uint64_t>(Bytes[I + B]) << (8 * B);
    H = (H ^ Lane) * Prime;
  }
  return mixHash64(H);
}

/// Incremental polynomial hash over a symbol sequence. Appending symbol
/// s folds mixHash64(s + 1) into H = (H + mix) * M, so the hash of a
/// sequence is a Horner evaluation with pseudorandom coefficients:
/// prefixes of the same start index extend in O(1), which is what lets
/// the spectrum family hash all n-grams of lengths 1..k in one pass.
class NgramHasher {
public:
  /// Folds one symbol into the running hash.
  void append(uint32_t Symbol) {
    Hash = (Hash + mixHash64(static_cast<uint64_t>(Symbol) + 1)) *
           0xD6E8FEB86659FD93ULL;
  }

  /// \returns the hash of the sequence appended so far. Sequences of
  /// different lengths land in disjoint slices of the hash space with
  /// the same ~2^-64 collision probability as equal-length ones.
  uint64_t value() const { return Hash; }

  /// Resets to the empty-sequence state.
  void reset() { Hash = Seed; }

private:
  static constexpr uint64_t Seed = 0x9E3779B97F4A7C15ULL;
  uint64_t Hash = Seed;
};

} // namespace kast

#endif // KAST_UTIL_HASHING_H
