//===- util/StringUtil.cpp - Small string helpers -------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/StringUtil.h"

#include <cctype>

using namespace kast;

static bool isSpace(char C) {
  return std::isspace(static_cast<unsigned char>(C)) != 0;
}

std::string_view kast::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && isSpace(S[Begin]))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && isSpace(S[End - 1]))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string_view> kast::split(std::string_view S, char Sep) {
  std::vector<std::string_view> Fields;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == Sep) {
      Fields.push_back(S.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Fields;
}

std::vector<std::string_view> kast::splitWhitespace(std::string_view S) {
  std::vector<std::string_view> Fields;
  size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && isSpace(S[I]))
      ++I;
    size_t Start = I;
    while (I < S.size() && !isSpace(S[I]))
      ++I;
    if (I > Start)
      Fields.push_back(S.substr(Start, I - Start));
  }
  return Fields;
}

std::string kast::join(const std::vector<std::string> &Parts,
                       std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out.append(Sep);
    Out.append(Parts[I]);
  }
  return Out;
}

std::optional<uint64_t> kast::parseUnsigned(std::string_view S) {
  if (S.empty())
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (~0ULL - Digit) / 10)
      return std::nullopt; // Overflow.
    Value = Value * 10 + Digit;
  }
  return Value;
}

std::optional<uint64_t> kast::parseHex(std::string_view S) {
  if (startsWith(S, "0x") || startsWith(S, "0X"))
    S.remove_prefix(2);
  if (S.empty() || S.size() > 16)
    return std::nullopt;
  uint64_t Value = 0;
  for (char C : S) {
    uint64_t Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<uint64_t>(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = static_cast<uint64_t>(C - 'A') + 10;
    else
      return std::nullopt;
    Value = (Value << 4) | Digit;
  }
  return Value;
}

bool kast::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool kast::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string kast::toLower(std::string_view S) {
  std::string Out(S);
  for (char &C : Out)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}
