//===- util/SimdDotAvx2.cpp - AVX2 blocked hash intersection -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The AVX2 kernels behind util/SimdDot.h — the only translation unit
// compiled with -mavx2 (CMake adds it to kast_util, and defines
// KAST_SIMD_AVX2 for the dispatcher, only when the compiler takes the
// flag). Callers reach these through simd::dotExact / dotQuantized,
// which have already verified AVX2 support via cpuid, so no runtime
// check is repeated here.
//
// Algorithm: 4x4 all-pairs block intersection. Load four u64 hashes
// from each side, compare the A block against the B block and its
// three lane rotations (one cmpeq + movemask per rotation), then walk
// the A lanes in ascending order resolving at most one match each —
// hashes within a profile are strictly increasing, so a lane cannot
// match two rotations. Advance whichever block's maximum is smaller
// (both on a tie): any pair involving a retired element has already
// been compared, so no match is missed. Tails shorter than a block
// fall back to the scalar two-pointer merge.
//
// Exactness: lanes are resolved in ascending A order and blocks retire
// in ascending hash order, so products are accumulated one f64 add at
// a time in exactly the scalar merge join's order — the results are
// bit-identical, which tests/SimdDotTest.cpp pins differentially.
//
//===----------------------------------------------------------------------===//

#include "util/SimdDot.h"

#include <immintrin.h>

namespace kast {
namespace simd {
namespace detail {

namespace {

/// Scalar two-pointer merge for the sub-block tails. Continues the
/// block phase's running \p Sum — a separate accumulator folded in at
/// the end would change the addition order (f64 addition is not
/// associative) and break bit-identity with simd::dotScalar.
double mergeTail(double Sum, const uint64_t *AHashes, const double *AValues,
                 size_t ASize, const uint64_t *BHashes, const double *BValues,
                 size_t BSize) {
  size_t I = 0, J = 0;
  while (I < ASize && J < BSize) {
    const uint64_t HA = AHashes[I], HB = BHashes[J];
    if (HA < HB)
      ++I;
    else if (HB < HA)
      ++J;
    else {
      Sum += AValues[I] * BValues[J];
      ++I;
      ++J;
    }
  }
  return Sum;
}

double mergeTailQuantized(double Sum, const uint64_t *QHashes,
                          const double *QValues, size_t QSize,
                          const uint64_t *SHashes, const int8_t *SValues,
                          size_t SSize) {
  size_t I = 0, J = 0;
  while (I < QSize && J < SSize) {
    const uint64_t HQ = QHashes[I], HS = SHashes[J];
    if (HQ < HS)
      ++I;
    else if (HS < HQ)
      ++J;
    else {
      Sum += QValues[I] * static_cast<double>(SValues[J]);
      ++I;
      ++J;
    }
  }
  return Sum;
}

/// Rotation immediates: RotK places B lane (l + K) & 3 into lane l, so
/// mask bit l of compare-against-RotK means A[I+l] == B[J+((l+K)&3)].
constexpr int Rot1 = 0x39; // lanes {1,2,3,0}
constexpr int Rot2 = 0x4E; // lanes {2,3,0,1}
constexpr int Rot3 = 0x93; // lanes {3,0,1,2}

inline int eqMask(__m256i A, __m256i B) {
  return _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(A, B)));
}

/// Compares the two loaded blocks and packs the four rotations' masks
/// into one 16-bit word: bit (4*K + L) set means A lane L matches
/// B lane (L + K) & 3. Nibble-slicing the word recovers, per A lane,
/// which rotation fired without a search loop.
inline unsigned compareBlocks(__m256i VA, __m256i VB) {
  const unsigned M0 = static_cast<unsigned>(eqMask(VA, VB));
  const unsigned M1 =
      static_cast<unsigned>(eqMask(VA, _mm256_permute4x64_epi64(VB, Rot1)));
  const unsigned M2 =
      static_cast<unsigned>(eqMask(VA, _mm256_permute4x64_epi64(VB, Rot2)));
  const unsigned M3 =
      static_cast<unsigned>(eqMask(VA, _mm256_permute4x64_epi64(VB, Rot3)));
  return M0 | (M1 << 4) | (M2 << 8) | (M3 << 12);
}

} // namespace

double dotExactAvx2(const uint64_t *AHashes, const double *AValues,
                    size_t ASize, const uint64_t *BHashes,
                    const double *BValues, size_t BSize) {
  double Sum = 0.0;
  size_t I = 0, J = 0;
  while (I + 4 <= ASize && J + 4 <= BSize) {
    const __m256i VA =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(AHashes + I));
    const __m256i VB =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(BHashes + J));
    const unsigned Eq = compareBlocks(VA, VB);
    // Hashes within a block are strictly increasing, so each A lane
    // matches at most one rotation: OR-folding the nibbles gives the
    // set of matching lanes, and ctz walks them in ascending lane —
    // hence ascending hash — order, keeping the accumulation sequence
    // identical to the scalar merge.
    unsigned Lanes = (Eq | (Eq >> 4) | (Eq >> 8) | (Eq >> 12)) & 0xF;
    while (Lanes) {
      const unsigned L = static_cast<unsigned>(__builtin_ctz(Lanes));
      Lanes &= Lanes - 1;
      const unsigned K =
          static_cast<unsigned>(__builtin_ctz((Eq >> L) & 0x1111u)) >> 2;
      Sum += AValues[I + L] * BValues[J + ((L + K) & 3)];
    }
    const uint64_t AMax = AHashes[I + 3], BMax = BHashes[J + 3];
    // Branchless advance: mispredicting which side retires costs more
    // than both comparisons.
    I += static_cast<size_t>(AMax <= BMax) * 4;
    J += static_cast<size_t>(BMax <= AMax) * 4;
  }
  return mergeTail(Sum, AHashes + I, AValues + I, ASize - I, BHashes + J,
                   BValues + J, BSize - J);
}

double dotQuantizedAvx2(const uint64_t *QHashes, const double *QValues,
                        size_t QSize, const uint64_t *SHashes,
                        const int8_t *SValues, size_t SSize, double Scale) {
  double Sum = 0.0;
  size_t I = 0, J = 0;
  while (I + 4 <= QSize && J + 4 <= SSize) {
    const __m256i VQ =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(QHashes + I));
    const __m256i VS =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(SHashes + J));
    const unsigned Eq = compareBlocks(VQ, VS);
    unsigned Lanes = (Eq | (Eq >> 4) | (Eq >> 8) | (Eq >> 12)) & 0xF;
    while (Lanes) {
      const unsigned L = static_cast<unsigned>(__builtin_ctz(Lanes));
      Lanes &= Lanes - 1;
      const unsigned K =
          static_cast<unsigned>(__builtin_ctz((Eq >> L) & 0x1111u)) >> 2;
      Sum += QValues[I + L] * static_cast<double>(SValues[J + ((L + K) & 3)]);
    }
    const uint64_t QMax = QHashes[I + 3], SMax = SHashes[J + 3];
    I += static_cast<size_t>(QMax <= SMax) * 4;
    J += static_cast<size_t>(SMax <= QMax) * 4;
  }
  Sum = mergeTailQuantized(Sum, QHashes + I, QValues + I, QSize - I,
                           SHashes + J, SValues + J, SSize - J);
  return Scale * Sum;
}

double dotScanAvx2(const uint64_t *BucketHashes, const double *BucketValues,
                   int Shift, double *Matches, const uint64_t *SHashes,
                   const double *SValues, size_t SSize) {
  size_t N = 0;
  for (size_t J = 0; J < SSize; ++J) {
    const uint64_t H = SHashes[J];
    const size_t B = static_cast<size_t>(H >> Shift);
    const __m256i VH = _mm256_set1_epi64x(static_cast<long long>(H));
    const __m256i VB = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(BucketHashes + B * 4));
    const unsigned M = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(VH, VB))));
    // On a miss M == 0: Lane folds to 0 and the product lands in the
    // one-slot overhang of the match buffer, overwritten by the next
    // probe — a speculative write instead of a branch.
    const unsigned Lane = static_cast<unsigned>(__builtin_ctz(M | 0x10u)) & 3u;
    Matches[N] = BucketValues[B * 4 + Lane] * SValues[J];
    N += (M != 0);
  }
  // Stored hashes are strictly increasing, so Matches holds the
  // products in the merge join's discovery order; this serial sum is
  // its exact f64 addition sequence.
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I)
    Sum += Matches[I];
  return Sum;
}

} // namespace detail
} // namespace simd
} // namespace kast
