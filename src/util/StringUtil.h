//===- util/StringUtil.h - Small string helpers ----------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting, trimming, joining, and integer parsing helpers
/// shared by the trace parser and the serializers.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_STRINGUTIL_H
#define KAST_UTIL_STRINGUTIL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace kast {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep; empty fields are kept.
std::vector<std::string_view> split(std::string_view S, char Sep);

/// Splits \p S on runs of ASCII whitespace; no empty fields.
std::vector<std::string_view> splitWhitespace(std::string_view S);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Parses a non-negative decimal integer; rejects junk and overflow.
std::optional<uint64_t> parseUnsigned(std::string_view S);

/// Parses a hexadecimal integer with optional 0x prefix.
std::optional<uint64_t> parseHex(std::string_view S);

/// \returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// \returns true if \p S ends with \p Suffix.
bool endsWith(std::string_view S, std::string_view Suffix);

/// Lowercases ASCII characters.
std::string toLower(std::string_view S);

} // namespace kast

#endif // KAST_UTIL_STRINGUTIL_H
