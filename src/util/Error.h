//===- util/Error.h - Lightweight status and expected types ----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal error-handling vocabulary used across KAST. The library does
/// not use exceptions; fallible operations return Status or Expected<T>
/// carrying a human-readable message ("lowercase start, no trailing
/// period" per the diagnostic style of the LLVM coding standards).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_ERROR_H
#define KAST_UTIL_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace kast {

/// Result of an operation that can fail but returns no value.
///
/// A default-constructed Status is success. Failure carries a message.
class Status {
public:
  Status() = default;

  /// Creates a failed status with the given diagnostic message.
  static Status error(std::string Message) {
    Status S;
    S.Message = std::move(Message);
    return S;
  }

  /// \returns true if the operation succeeded.
  bool ok() const { return !Message.has_value(); }

  /// \returns the diagnostic message; only valid when !ok().
  const std::string &message() const {
    assert(!ok() && "no message on a success status");
    return *Message;
  }

  explicit operator bool() const { return ok(); }

private:
  std::optional<std::string> Message;
};

/// Result of an operation that yields a T or a diagnostic message.
///
/// Mirrors the shape of llvm::Expected without the unchecked-error
/// discipline: callers test with hasValue()/operator bool and then
/// dereference.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}

  /// Builds the failure state; use via Expected<T>::error(...).
  static Expected error(std::string Message) {
    Expected E;
    E.Message = std::move(Message);
    return E;
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  const T &operator*() const {
    assert(hasValue() && "dereferencing an errored Expected");
    return *Value;
  }
  T &operator*() {
    assert(hasValue() && "dereferencing an errored Expected");
    return *Value;
  }
  const T *operator->() const { return &**this; }
  T *operator->() { return &**this; }

  /// Moves the contained value out; only valid when hasValue().
  T take() {
    assert(hasValue() && "taking from an errored Expected");
    return std::move(*Value);
  }

  /// \returns the diagnostic message; only valid when !hasValue().
  const std::string &message() const {
    assert(!hasValue() && "no message on a success value");
    return *Message;
  }

private:
  Expected() = default;

  std::optional<T> Value;
  std::optional<std::string> Message;
};

} // namespace kast

#endif // KAST_UTIL_ERROR_H
