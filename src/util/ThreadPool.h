//===- util/ThreadPool.h - Persistent worker pool --------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one parallelism primitive of the library: a persistent worker
/// pool with a submit/wait API, plus the fork-join parallelFor the
/// compute layers (KernelMatrix tiles, index scans, shard fan-out) are
/// written against. parallelFor used to spawn and join fresh threads
/// per call; a serving loop answering thousands of queries per second
/// cannot afford a pthread_create per query, so the free function is
/// now a shim over one shared process-wide pool.
///
/// Deadlock-freedom under nesting: a parallelFor caller always
/// participates in its own loop, and while waiting for stragglers it
/// helps drain the pool's task queue. A pool worker that itself calls
/// parallelFor therefore never blocks on a task only it could run —
/// in the worst case (every worker busy) the nested call degrades to
/// inline execution, never to a deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_THREADPOOL_H
#define KAST_UTIL_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kast {

/// A fixed-size persistent worker pool.
///
/// Tasks submitted through submit() run on the pool's threads in FIFO
/// order (subject to concurrent helpers stealing from the front);
/// wait() blocks until every submitted task has finished, helping to
/// drain the queue while it waits. parallelFor() is the structured
/// fork-join entry point layered on the same queue.
///
/// The destructor drains the queue (every submitted task runs) and
/// joins all workers. Submitting from inside a task is allowed;
/// submitting after destruction begins is not.
class ThreadPool {
public:
  /// Creates \p NumThreads workers. 0 sizes the pool to complement a
  /// participating caller: max(1, hardware_concurrency() - 1), so a
  /// parallelFor at default width uses exactly the hardware
  /// concurrency (pool workers + the calling thread).
  explicit ThreadPool(size_t NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t threadCount() const { return Workers.size(); }

  /// Enqueues \p Task for execution on a pool thread. Never blocks on
  /// task execution (only on the queue mutex).
  void submit(std::function<void()> Task);

  /// Blocks until all tasks submitted so far (queued or running) have
  /// finished. Helps execute queued tasks while waiting, so a task
  /// may call wait() on its own pool without deadlocking.
  void wait();

  /// Runs Body(I) for I in [0, Count) across up to \p MaxWorkers
  /// participants (0 = threadCount() + 1, i.e. the pool plus the
  /// caller), the caller included. Work is distributed by an atomic
  /// counter so uneven per-item cost balances automatically; with one
  /// effective worker the loop runs inline in index order. Body must
  /// be thread-safe for distinct indices.
  ///
  /// If Body throws, the first exception is captured and rethrown on
  /// the caller after every participant has stopped; remaining
  /// indices may be skipped. Nested calls (Body itself calling
  /// parallelFor on the same pool) are safe.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body,
                   size_t MaxWorkers = 0);

  /// The process-wide pool behind the free parallelFor and the serving
  /// runtime's batch executor. Constructed on first use.
  static ThreadPool &shared();

private:
  /// Pops and runs one queued task. Returns false if the queue was
  /// empty. Used by workers, wait() helpers, and parallelFor callers.
  bool runOneTask();

  void workerLoop();

  mutable std::mutex QueueMutex;
  std::condition_variable WorkAvailable; ///< Workers park here.
  std::condition_variable AllDone;       ///< wait() parks here.
  std::deque<std::function<void()>> Queue;
  size_t Unfinished = 0; ///< Queued + currently running tasks.
  bool Stopping = false;
  std::vector<std::thread> Workers;
};

/// Runs Body(I) for I in [0, Count) on up to \p NumThreads workers
/// through ThreadPool::shared(). \p NumThreads == 0 selects the
/// hardware concurrency; \p NumThreads == 1 runs inline on the calling
/// thread, which keeps single-threaded determinism for tests. Body
/// must be thread-safe for distinct indices. Kept as a free function
/// so the pre-pool call sites (core/KernelMatrix, index/ProfileIndex,
/// index/IndexService, workloads/CorpusIO) compile unchanged.
void parallelFor(size_t Count, const std::function<void(size_t)> &Body,
                 size_t NumThreads = 0);

} // namespace kast

#endif // KAST_UTIL_THREADPOOL_H
