//===- util/ThreadPool.h - Tiny fork-join helper ---------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal fork-join parallel-for used to fill kernel matrices. The
/// 110x110 Gram matrices of the paper are cheap, but the property-test
/// sweeps and the perf benches compute thousands of pairwise kernels,
/// where parallelism pays.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_THREADPOOL_H
#define KAST_UTIL_THREADPOOL_H

#include <cstddef>
#include <functional>

namespace kast {

/// Runs Body(I) for I in [0, Count) on up to \p NumThreads threads.
///
/// Work is distributed by an atomic counter, so uneven per-item cost
/// (typical for pairwise kernel evaluations over a triangular index
/// space) balances automatically. \p NumThreads == 0 selects the
/// hardware concurrency; \p NumThreads == 1 runs inline, which keeps
/// single-threaded determinism for tests. Body must be thread-safe for
/// distinct indices.
void parallelFor(size_t Count, const std::function<void(size_t)> &Body,
                 size_t NumThreads = 0);

} // namespace kast

#endif // KAST_UTIL_THREADPOOL_H
