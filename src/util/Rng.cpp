//===- util/Rng.cpp - Deterministic pseudo-random generators -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/Rng.h"

using namespace kast;

uint64_t kast::splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::uniformInt(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "empty range");
  const uint64_t Span = Hi - Lo + 1;
  if (Span == 0) // Full 64-bit range: Hi - Lo + 1 wrapped to zero.
    return next();
  // Rejection sampling to avoid modulo bias.
  const uint64_t Limit = (~0ULL) - (~0ULL) % Span;
  uint64_t Draw;
  do {
    Draw = next();
  } while (Draw >= Limit);
  return Lo + Draw % Span;
}

double Rng::uniformReal() {
  // 53 top bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::flip(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniformReal() < P;
}

size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative weight");
    Total += W;
  }
  assert(Total > 0.0 && "all weights are zero");
  double Point = uniformReal() * Total;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Point -= Weights[I];
    if (Point < 0.0)
      return I;
  }
  return Weights.size() - 1; // Rounding fell off the end.
}

Rng Rng::split() { return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL); }
