//===- util/Rng.h - Deterministic pseudo-random generators -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seedable, reproducible random number generation. KAST never uses
/// std::random_device or unseeded engines: every experiment in the
/// paper reproduction is a pure function of its seed so that benches
/// and tests are bit-stable across runs and platforms.
///
/// Rng is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
/// the recommended initialization procedure.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_RNG_H
#define KAST_UTIL_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kast {

/// SplitMix64 step; used for seeding and as a cheap hash finalizer.
uint64_t splitMix64(uint64_t &State);

/// Deterministic xoshiro256** generator.
class Rng {
public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from \p Seed via SplitMix64.
  explicit Rng(uint64_t Seed = 0xBADC0FFEE0DDF00DULL);

  /// \returns the next raw 64-bit output.
  uint64_t next();

  /// \returns a uniform integer in the inclusive range [Lo, Hi].
  uint64_t uniformInt(uint64_t Lo, uint64_t Hi);

  /// \returns a uniform double in [0, 1).
  double uniformReal();

  /// \returns true with probability \p P (clamped to [0, 1]).
  bool flip(double P);

  /// \returns an index in [0, Weights.size()) drawn proportionally to
  /// the (non-negative) weights; at least one weight must be positive.
  size_t pickWeighted(const std::vector<double> &Weights);

  /// Picks a uniformly random element of \p Items.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    assert(!Items.empty() && "picking from an empty vector");
    return Items[uniformInt(0, Items.size() - 1)];
  }

  /// Fisher-Yates shuffle of \p Items.
  template <typename T> void shuffle(std::vector<T> &Items) {
    if (Items.size() < 2)
      return;
    for (size_t I = Items.size() - 1; I > 0; --I)
      std::swap(Items[I], Items[uniformInt(0, I)]);
  }

  /// Spawns an independent child generator; used to give each dataset
  /// example its own stream so insertions do not perturb neighbours.
  Rng split();

  // UniformRandomBitGenerator interface.
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return next(); }

private:
  uint64_t State[4];
};

} // namespace kast

#endif // KAST_UTIL_RNG_H
