//===- util/MappedImage.h - Read-only file mapping -------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII wrapper around a read-only file mapping — the zero-copy
/// substrate of the v3 flat-image cache format (core/FlatImage). The
/// file is mapped `PROT_READ, MAP_SHARED`, so every process mapping the
/// same image shares one set of clean page-cache pages: N server
/// processes over one corpus cost one resident copy, and pages the
/// query stream never touches are never read at all.
///
/// The mapping survives unlink of the underlying path (POSIX mmap
/// semantics), so the atomic rename/sweep dance of sharded saves never
/// invalidates a live image. Consumers tie the image's lifetime to
/// whatever aliases it — e.g. an IndexService sealed segment holds the
/// `shared_ptr<const MappedImage>` as its backing, and the mapping is
/// released with the last snapshot that references the segment.
///
/// Fallback: when mmap is unavailable (exotic filesystems, non-POSIX
/// hosts) or disabled via `KAST_FORCE_BUFFERED=1`, open() reads the
/// whole file into an owned heap buffer behind the same interface.
/// isMapped() reports which path was taken; the buffered path trades
/// the O(1) open and page sharing away but changes no observable bytes.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_MAPPEDIMAGE_H
#define KAST_UTIL_MAPPEDIMAGE_H

#include "util/Error.h"

#include <cstddef>
#include <memory>
#include <string>

namespace kast {

class MappedImage {
public:
  /// Opens and maps \p Path read-only. With \p ForceBuffered (or the
  /// KAST_FORCE_BUFFERED=1 environment variable, or when mmap itself
  /// fails), falls back to reading the file into an owned buffer.
  /// Returns shared ownership because images are designed to be
  /// aliased: every structure viewing into the bytes keeps the pointer.
  static Expected<std::shared_ptr<const MappedImage>>
  open(const std::string &Path, bool ForceBuffered = false);

  ~MappedImage();
  MappedImage(const MappedImage &) = delete;
  MappedImage &operator=(const MappedImage &) = delete;

  const unsigned char *data() const { return Data; }
  size_t size() const { return Size; }

  /// True when the bytes are a kernel mapping (shared pages, lazy
  /// faulting); false on the buffered fallback (private heap copy).
  bool isMapped() const { return Mapped; }

  /// Advises the kernel about the expected access pattern; no-ops on
  /// the buffered fallback or where madvise is unavailable. Random is
  /// the serving default (point queries fault arbitrary pages);
  /// Sequential suits one-pass validation sweeps.
  void adviseRandom() const;
  void adviseSequential() const;

private:
  MappedImage() = default;

  unsigned char *Data = nullptr;
  size_t Size = 0;
  bool Mapped = false;
};

} // namespace kast

#endif // KAST_UTIL_MAPPEDIMAGE_H
