//===- util/TextTable.h - Fixed-width table rendering ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width ASCII table rendering used by the bench harnesses to
/// print the rows the paper's evaluation reports.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_TEXTTABLE_H
#define KAST_UTIL_TEXTTABLE_H

#include <string>
#include <vector>

namespace kast {

/// Accumulates rows of string cells and renders them column-aligned.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row; rows may have differing lengths.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// \returns the rendered table, each row newline-terminated.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

/// Formats a double with \p Precision fractional digits.
std::string formatDouble(double Value, int Precision = 4);

} // namespace kast

#endif // KAST_UTIL_TEXTTABLE_H
