//===- util/SimdDot.cpp - Kernel dispatch, scalar + gallop paths ---------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Hosts everything that does not need special compile flags: kernel
// selection (compile-time availability x runtime CPU support x
// KAST_FORCE_SCALAR), the reference scalar merge join, the galloping
// intersection for skewed operand sizes, and the NEON block kernel
// (NEON is baseline on aarch64, so it needs no separate translation
// unit). The AVX2 block kernels live in SimdDotAvx2.cpp, compiled
// with -mavx2 only when the toolchain supports it; this file calls
// them through the detail:: declarations below.
//
//===----------------------------------------------------------------------===//

#include "util/SimdDot.h"

#include <cstdlib>

#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace kast {
namespace simd {

#if defined(KAST_SIMD_AVX2)
namespace detail {
// Defined in SimdDotAvx2.cpp (the only TU built with -mavx2).
double dotExactAvx2(const uint64_t *AHashes, const double *AValues,
                    size_t ASize, const uint64_t *BHashes,
                    const double *BValues, size_t BSize);
double dotQuantizedAvx2(const uint64_t *QHashes, const double *QValues,
                        size_t QSize, const uint64_t *SHashes,
                        const int8_t *SValues, size_t SSize, double Scale);
double dotScanAvx2(const uint64_t *BucketHashes, const double *BucketValues,
                   int Shift, double *Matches, const uint64_t *SHashes,
                   const double *SValues, size_t SSize);
} // namespace detail
#endif

namespace {

/// Two-pointer merge intersection: finds every (I, J) with
/// AHashes[I] == BHashes[J] in ascending hash order and feeds the pair
/// of values to \p Match, which accumulates one f64 addition per pair.
/// Every other strategy in this file must produce this exact addition
/// sequence. \p Sum is the accumulator's starting value: the SIMD
/// block kernels pass their running sum so the scalar tail continues
/// it (folding a separately-accumulated tail in afterwards would
/// change the addition order and break bit-identity).
template <typename AValueT, typename BValueT, typename MatchFn>
double mergeIntersect(const uint64_t *AHashes, const AValueT *AValues,
                      size_t ASize, const uint64_t *BHashes,
                      const BValueT *BValues, size_t BSize, MatchFn Match,
                      double Sum = 0.0) {
  size_t I = 0, J = 0;
  while (I < ASize && J < BSize) {
    const uint64_t HA = AHashes[I], HB = BHashes[J];
    if (HA < HB) {
      ++I;
    } else if (HB < HA) {
      ++J;
    } else {
      Sum += Match(AValues[I], BValues[J]);
      ++I;
      ++J;
    }
  }
  return Sum;
}

/// Exponential probe + binary search: the position in
/// [Hashes + Lo, Hashes + Size) of the first hash >= Key. The probe
/// doubles from the current cursor, so a full intersection pass costs
/// O(small * log(gap)) instead of O(large).
size_t gallopLowerBound(const uint64_t *Hashes, size_t Lo, size_t Size,
                        uint64_t Key) {
  size_t Step = 1;
  size_t Hi = Lo;
  while (Hi < Size && Hashes[Hi] < Key) {
    Lo = Hi + 1;
    Hi += Step;
    Step <<= 1;
  }
  if (Hi > Size)
    Hi = Size;
  // Invariant: Hashes[Lo - 1] < Key (or Lo is the original start) and
  // Hashes[Hi] >= Key (or Hi == Size).
  while (Lo < Hi) {
    const size_t Mid = Lo + (Hi - Lo) / 2;
    if (Hashes[Mid] < Key)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

/// Skewed intersection: walk the small side in order, gallop the large
/// side forward to each key. Matches are discovered in ascending hash
/// order of the small side — which is ascending hash order outright —
/// so the accumulation sequence equals mergeIntersect's.
template <typename SValueT, typename LValueT, typename MatchFn>
double gallopIntersect(const uint64_t *SmallHashes, const SValueT *SmallValues,
                       size_t SmallSize, const uint64_t *LargeHashes,
                       const LValueT *LargeValues, size_t LargeSize,
                       MatchFn Match) {
  double Sum = 0.0;
  size_t J = 0;
  for (size_t I = 0; I < SmallSize; ++I) {
    const uint64_t Key = SmallHashes[I];
    J = gallopLowerBound(LargeHashes, J, LargeSize, Key);
    if (J == LargeSize)
      break;
    if (LargeHashes[J] == Key) {
      Sum += Match(SmallValues[I], LargeValues[J]);
      ++J;
    }
  }
  return Sum;
}

/// Gallop pays off when one side is much shorter than the other and
/// the long side is long enough for the probe's log factor to beat a
/// linear sweep. Ratio 16 with a floor of 128 measured best on the
/// BM_DotThroughput skew sweep (query-vs-centroid and
/// query-vs-posting-segment shapes).
constexpr size_t GallopRatio = 16;
constexpr size_t GallopMinLarge = 128;

bool shouldGallop(size_t ASize, size_t BSize) {
  const size_t Small = ASize < BSize ? ASize : BSize;
  const size_t Large = ASize < BSize ? BSize : ASize;
  return Large >= GallopMinLarge && Small * GallopRatio <= Large;
}

#if defined(__aarch64__)

/// 2x2 block intersection at NEON width: compare the A pair against
/// the B pair and its swap, resolve matches lane-by-lane in ascending
/// hash order, advance whichever block's maximum is smaller. The
/// scalar merge finishes the tails.
double dotExactNeon(const uint64_t *AHashes, const double *AValues,
                    size_t ASize, const uint64_t *BHashes,
                    const double *BValues, size_t BSize) {
  double Sum = 0.0;
  size_t I = 0, J = 0;
  while (I + 2 <= ASize && J + 2 <= BSize) {
    const uint64x2_t VA = vld1q_u64(AHashes + I);
    const uint64x2_t VB = vld1q_u64(BHashes + J);
    const uint64x2_t VBSwap = vextq_u64(VB, VB, 1);
    const uint64x2_t Eq0 = vceqq_u64(VA, VB);
    const uint64x2_t Eq1 = vceqq_u64(VA, VBSwap);
    // Lane L of Eq0 means A[I+L] == B[J+L]; lane L of Eq1 means
    // A[I+L] == B[J+((L+1)&1)]. Hashes inside a block are distinct, so
    // at most one of the two fires per lane; lanes in ascending order
    // keep the match sequence ascending.
    for (int L = 0; L < 2; ++L) {
      const uint64_t M0 = L == 0 ? vgetq_lane_u64(Eq0, 0) : vgetq_lane_u64(Eq0, 1);
      const uint64_t M1 = L == 0 ? vgetq_lane_u64(Eq1, 0) : vgetq_lane_u64(Eq1, 1);
      if (M0)
        Sum += AValues[I + L] * BValues[J + L];
      else if (M1)
        Sum += AValues[I + L] * BValues[J + ((L + 1) & 1)];
    }
    const uint64_t AMax = AHashes[I + 1], BMax = BHashes[J + 1];
    if (AMax <= BMax)
      I += 2;
    if (BMax <= AMax)
      J += 2;
  }
  return mergeIntersect(AHashes + I, AValues + I, ASize - I, BHashes + J,
                        BValues + J, BSize - J,
                        [](double A, double B) { return A * B; }, Sum);
}

double dotQuantizedNeon(const uint64_t *QHashes, const double *QValues,
                        size_t QSize, const uint64_t *SHashes,
                        const int8_t *SValues, size_t SSize, double Scale) {
  double Sum = 0.0;
  size_t I = 0, J = 0;
  while (I + 2 <= QSize && J + 2 <= SSize) {
    const uint64x2_t VA = vld1q_u64(QHashes + I);
    const uint64x2_t VB = vld1q_u64(SHashes + J);
    const uint64x2_t VBSwap = vextq_u64(VB, VB, 1);
    const uint64x2_t Eq0 = vceqq_u64(VA, VB);
    const uint64x2_t Eq1 = vceqq_u64(VA, VBSwap);
    for (int L = 0; L < 2; ++L) {
      const uint64_t M0 = L == 0 ? vgetq_lane_u64(Eq0, 0) : vgetq_lane_u64(Eq0, 1);
      const uint64_t M1 = L == 0 ? vgetq_lane_u64(Eq1, 0) : vgetq_lane_u64(Eq1, 1);
      if (M0)
        Sum += QValues[I + L] * static_cast<double>(SValues[J + L]);
      else if (M1)
        Sum += QValues[I + L] * static_cast<double>(SValues[J + ((L + 1) & 1)]);
    }
    const uint64_t AMax = QHashes[I + 1], BMax = SHashes[J + 1];
    if (AMax <= BMax)
      I += 2;
    if (BMax <= AMax)
      J += 2;
  }
  Sum = mergeIntersect(
      QHashes + I, QValues + I, QSize - I, SHashes + J, SValues + J, SSize - J,
      [](double Q, int8_t S) { return Q * static_cast<double>(S); }, Sum);
  return Scale * Sum;
}

#endif // __aarch64__

/// Portable probe loop of ExactScan::dot — branchless four-slot bucket
/// compare without vector intrinsics (the fallback when no SIMD kernel
/// is compiled in or selected). Same discovery order, same speculative
/// match-buffer write as the AVX2 version.
double dotScanGeneric(const uint64_t *BucketHashes, const double *BucketValues,
                      int Shift, double *Matches, const uint64_t *SHashes,
                      const double *SValues, size_t SSize) {
  size_t N = 0;
  for (size_t J = 0; J < SSize; ++J) {
    const uint64_t H = SHashes[J];
    const uint64_t *Slot = BucketHashes + (H >> Shift) * 4;
    const unsigned M =
        static_cast<unsigned>(Slot[0] == H) |
        (static_cast<unsigned>(Slot[1] == H) << 1) |
        (static_cast<unsigned>(Slot[2] == H) << 2) |
        (static_cast<unsigned>(Slot[3] == H) << 3);
    const unsigned Lane =
        static_cast<unsigned>(__builtin_ctz(M | 0x10u)) & 3u;
    Matches[N] = BucketValues[(H >> Shift) * 4 + Lane] * SValues[J];
    N += (M != 0);
  }
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I)
    Sum += Matches[I];
  return Sum;
}

bool envForcesScalar() {
  const char *Env = std::getenv("KAST_FORCE_SCALAR");
  // Unset, empty, and "0" all mean "not forced"; anything else forces.
  return Env && Env[0] != '\0' && !(Env[0] == '0' && Env[1] == '\0');
}

} // namespace

const char *kernelName(DotKernel K) {
  switch (K) {
  case DotKernel::Avx2:
    return "avx2";
  case DotKernel::Neon:
    return "neon";
  case DotKernel::Scalar:
    return "scalar";
  }
  return "scalar";
}

DotKernel detectKernel() {
  if (envForcesScalar())
    return DotKernel::Scalar;
#if defined(KAST_SIMD_AVX2)
  if (__builtin_cpu_supports("avx2"))
    return DotKernel::Avx2;
#endif
#if defined(__aarch64__)
  return DotKernel::Neon;
#endif
  return DotKernel::Scalar;
}

DotKernel activeKernel() {
  static const DotKernel K = detectKernel();
  return K;
}

bool scalarForced() {
  static const bool Forced = envForcesScalar();
  return Forced;
}

double dotScalar(const uint64_t *AHashes, const double *AValues, size_t ASize,
                 const uint64_t *BHashes, const double *BValues, size_t BSize) {
  return mergeIntersect(AHashes, AValues, ASize, BHashes, BValues, BSize,
                        [](double A, double B) { return A * B; });
}

double dotExact(const uint64_t *AHashes, const double *AValues, size_t ASize,
                const uint64_t *BHashes, const double *BValues, size_t BSize) {
  if (scalarForced())
    return dotScalar(AHashes, AValues, ASize, BHashes, BValues, BSize);
  if (shouldGallop(ASize, BSize)) {
    if (ASize <= BSize)
      return gallopIntersect(AHashes, AValues, ASize, BHashes, BValues, BSize,
                             [](double A, double B) { return A * B; });
    return gallopIntersect(BHashes, BValues, BSize, AHashes, AValues, ASize,
                           [](double B, double A) { return B * A; });
  }
  switch (activeKernel()) {
#if defined(KAST_SIMD_AVX2)
  case DotKernel::Avx2:
    return detail::dotExactAvx2(AHashes, AValues, ASize, BHashes, BValues,
                                BSize);
#endif
#if defined(__aarch64__)
  case DotKernel::Neon:
    return dotExactNeon(AHashes, AValues, ASize, BHashes, BValues, BSize);
#endif
  default:
    return dotScalar(AHashes, AValues, ASize, BHashes, BValues, BSize);
  }
}

double dotQuantizedScalar(const uint64_t *QHashes, const double *QValues,
                          size_t QSize, const uint64_t *SHashes,
                          const int8_t *SValues, size_t SSize, double Scale) {
  return Scale * mergeIntersect(QHashes, QValues, QSize, SHashes, SValues,
                                SSize, [](double Q, int8_t S) {
                                  return Q * static_cast<double>(S);
                                });
}

double dotQuantized(const uint64_t *QHashes, const double *QValues,
                    size_t QSize, const uint64_t *SHashes,
                    const int8_t *SValues, size_t SSize, double Scale) {
  if (scalarForced())
    return dotQuantizedScalar(QHashes, QValues, QSize, SHashes, SValues, SSize,
                              Scale);
  if (shouldGallop(QSize, SSize)) {
    if (QSize <= SSize)
      return Scale * gallopIntersect(QHashes, QValues, QSize, SHashes, SValues,
                                     SSize, [](double Q, int8_t S) {
                                       return Q * static_cast<double>(S);
                                     });
    return Scale * gallopIntersect(SHashes, SValues, SSize, QHashes, QValues,
                                   QSize, [](int8_t S, double Q) {
                                     return Q * static_cast<double>(S);
                                   });
  }
  switch (activeKernel()) {
#if defined(KAST_SIMD_AVX2)
  case DotKernel::Avx2:
    return detail::dotQuantizedAvx2(QHashes, QValues, QSize, SHashes, SValues,
                                    SSize, Scale);
#endif
#if defined(__aarch64__)
  case DotKernel::Neon:
    return dotQuantizedNeon(QHashes, QValues, QSize, SHashes, SValues, SSize,
                            Scale);
#endif
  default:
    return dotQuantizedScalar(QHashes, QValues, QSize, SHashes, SValues, SSize,
                              Scale);
  }
}

void ExactScan::assign(const uint64_t *Hashes, const double *Values,
                       size_t Size) {
  QHashes = Hashes;
  QValues = Values;
  QSize = Size;
  TableOk = false;
  // Tiny queries: the merge join is already cheap and the build cost
  // would never amortize. Forced-scalar mode keeps the exact pre-SIMD
  // code shape, so the table stays off there too.
  if (scalarForced() || Size < 16)
    return;
  // Power-of-two bucket count at load factor <= 1/2. Feature hashes
  // are uniformly distributed, so four slots per bucket almost always
  // suffice; a doubling retry absorbs unlucky clustering, and a query
  // that still overflows (adversarial top bits) just keeps the
  // merge-join fallback.
  size_t Buckets = 2;
  while (Buckets < Size)
    Buckets <<= 1;
  Buckets <<= 1;
  for (int Attempt = 0; Attempt < 3; ++Attempt, Buckets <<= 1) {
    int ShiftTry = 64;
    for (size_t B = Buckets; B > 1; B >>= 1)
      --ShiftTry;
    BucketHashes.assign(Buckets * 4, 0);
    BucketValues.assign(Buckets * 4, 0.0);
    // Every slot starts as a pad hash addressed to the *neighboring*
    // bucket: a probe of bucket B compares only hashes whose top bits
    // equal B, so a pad (top bits B ^ 1) can never produce a false
    // match — and no query hash equals its own bucket's pad for the
    // same reason, which is what makes pad slots recognizably free
    // during insertion.
    for (size_t B = 0; B < Buckets; ++B) {
      const uint64_t Pad = static_cast<uint64_t>(B ^ 1) << ShiftTry;
      for (size_t L = 0; L < 4; ++L)
        BucketHashes[B * 4 + L] = Pad;
    }
    bool Overflow = false;
    for (size_t I = 0; I < Size; ++I) {
      const size_t B = static_cast<size_t>(Hashes[I] >> ShiftTry);
      const uint64_t Pad = static_cast<uint64_t>(B ^ 1) << ShiftTry;
      size_t L = 0;
      while (L < 4 && BucketHashes[B * 4 + L] != Pad)
        ++L;
      if (L == 4) {
        Overflow = true;
        break;
      }
      BucketHashes[B * 4 + L] = Hashes[I];
      BucketValues[B * 4 + L] = Values[I];
    }
    if (!Overflow) {
      Shift = ShiftTry;
      Matches.resize(Size + 1);
      TableOk = true;
      return;
    }
  }
}

double ExactScan::dot(const uint64_t *SHashes, const double *SValues,
                      size_t SSize) {
  // No table, or a stored side so much larger than the query that
  // galloping over the query beats SSize probes: delegate to the
  // shape-dispatched exact kernel.
  if (!TableOk || (SSize >= GallopMinLarge && QSize * GallopRatio <= SSize))
    return dotExact(QHashes, QValues, QSize, SHashes, SValues, SSize);
  switch (activeKernel()) {
#if defined(KAST_SIMD_AVX2)
  case DotKernel::Avx2:
    return detail::dotScanAvx2(BucketHashes.data(), BucketValues.data(), Shift,
                               Matches.data(), SHashes, SValues, SSize);
#endif
  default:
    return dotScanGeneric(BucketHashes.data(), BucketValues.data(), Shift,
                          Matches.data(), SHashes, SValues, SSize);
  }
}

} // namespace simd
} // namespace kast
