//===- util/MappedImage.cpp - Read-only file mapping -----------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/MappedImage.h"

#include <cstdlib>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define KAST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace kast;

namespace {

bool forceBufferedEnv() {
  const char *Env = std::getenv("KAST_FORCE_BUFFERED");
  return Env && Env[0] == '1' && Env[1] == '\0';
}

} // namespace

Expected<std::shared_ptr<const MappedImage>>
MappedImage::open(const std::string &Path, bool ForceBuffered) {
  using Result = Expected<std::shared_ptr<const MappedImage>>;
  std::shared_ptr<MappedImage> Image(new MappedImage());

  const bool Buffered = ForceBuffered || forceBufferedEnv();
#ifdef KAST_HAVE_MMAP
  if (!Buffered) {
    const int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd < 0)
      return Result::error("cannot open '" + Path + "'");
    struct stat St;
    if (::fstat(Fd, &St) != 0) {
      ::close(Fd);
      return Result::error("cannot stat '" + Path + "'");
    }
    const size_t Size = static_cast<size_t>(St.st_size);
    if (Size == 0) {
      // mmap of length 0 is an error; an empty file is a valid (if
      // doomed-to-fail-validation) image, served as an empty buffer.
      ::close(Fd);
      Image->Data = nullptr;
      Image->Size = 0;
      Image->Mapped = false;
      return std::shared_ptr<const MappedImage>(std::move(Image));
    }
    void *Addr = ::mmap(nullptr, Size, PROT_READ, MAP_SHARED, Fd, 0);
    // The mapping holds its own reference to the file; the descriptor
    // is not needed past mmap (and closing it keeps the fd table flat
    // for servers mapping many shards).
    ::close(Fd);
    if (Addr != MAP_FAILED) {
      Image->Data = static_cast<unsigned char *>(Addr);
      Image->Size = Size;
      Image->Mapped = true;
      return std::shared_ptr<const MappedImage>(std::move(Image));
    }
    // mmap refused (e.g. a filesystem without mmap support): fall
    // through to the buffered read rather than failing the load.
  }
#else
  (void)Buffered;
#endif

  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  if (!In)
    return Result::error("cannot open '" + Path + "'");
  const std::streamoff End = In.tellg();
  if (End < 0)
    return Result::error("cannot size '" + Path + "'");
  In.seekg(0);
  const size_t Size = static_cast<size_t>(End);
  unsigned char *Buffer = Size > 0 ? new unsigned char[Size] : nullptr;
  if (Size > 0 &&
      !In.read(reinterpret_cast<char *>(Buffer),
               static_cast<std::streamsize>(Size))) {
    delete[] Buffer;
    return Result::error("cannot read '" + Path + "'");
  }
  Image->Data = Buffer;
  Image->Size = Size;
  Image->Mapped = false;
  return std::shared_ptr<const MappedImage>(std::move(Image));
}

MappedImage::~MappedImage() {
#ifdef KAST_HAVE_MMAP
  if (Mapped) {
    ::munmap(Data, Size);
    return;
  }
#endif
  delete[] Data;
}

void MappedImage::adviseRandom() const {
#ifdef KAST_HAVE_MMAP
  if (Mapped && Size > 0)
    ::madvise(Data, Size, MADV_RANDOM);
#endif
}

void MappedImage::adviseSequential() const {
#ifdef KAST_HAVE_MMAP
  if (Mapped && Size > 0)
    ::madvise(Data, Size, MADV_SEQUENTIAL);
#endif
}
