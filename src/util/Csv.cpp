//===- util/Csv.cpp - Minimal CSV writer ----------------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/Csv.h"

#include <fstream>

using namespace kast;

static bool needsQuoting(const std::string &Cell) {
  return Cell.find_first_of(",\"\n\r") != std::string::npos;
}

void CsvWriter::addRow(const std::vector<std::string> &Cells) {
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (I != 0)
      Buffer += ',';
    if (!needsQuoting(Cells[I])) {
      Buffer += Cells[I];
      continue;
    }
    Buffer += '"';
    for (char C : Cells[I]) {
      if (C == '"')
        Buffer += '"';
      Buffer += C;
    }
    Buffer += '"';
  }
  Buffer += '\n';
}

bool CsvWriter::writeFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Buffer;
  return static_cast<bool>(Out);
}
