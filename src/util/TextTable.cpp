//===- util/TextTable.cpp - Fixed-width table rendering -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/TextTable.h"

#include <algorithm>
#include <cstdio>

using namespace kast;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*IsSeparator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*IsSeparator=*/true}); }

std::string TextTable::render() const {
  // Compute per-column widths over the header and all rows.
  std::vector<size_t> Widths;
  auto Widen = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Widen(Header);
  for (const Row &R : Rows)
    if (!R.IsSeparator)
      Widen(R.Cells);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      Out += Cells[I];
      if (I + 1 != Cells.size())
        Out.append(Widths[I] - Cells[I].size() + 2, ' ');
    }
    Out += '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    Out.append(TotalWidth, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsSeparator) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    Emit(R.Cells);
  }
  return Out;
}

std::string kast::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}
