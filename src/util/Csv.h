//===- util/Csv.h - Minimal CSV writer -------------------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small CSV writer with RFC-4180 quoting, used by the benches to
/// dump figure series (Kernel PCA coordinates, dendrogram merges) for
/// external plotting.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_UTIL_CSV_H
#define KAST_UTIL_CSV_H

#include <string>
#include <vector>

namespace kast {

/// Accumulates rows and renders RFC-4180 CSV text.
class CsvWriter {
public:
  /// Appends one row; cells are quoted as needed.
  void addRow(const std::vector<std::string> &Cells);

  /// \returns the CSV document.
  const std::string &str() const { return Buffer; }

  /// Writes the document to \p Path. \returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  std::string Buffer;
};

} // namespace kast

#endif // KAST_UTIL_CSV_H
