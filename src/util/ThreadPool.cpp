//===- util/ThreadPool.cpp - Persistent worker pool -----------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/ThreadPool.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <exception>
#include <memory>

using namespace kast;

//===----------------------------------------------------------------------===//
// Pool lifecycle and task queue
//===----------------------------------------------------------------------===//

ThreadPool::ThreadPool(size_t NumThreads) {
  if (NumThreads == 0) {
    const size_t Hardware = std::thread::hardware_concurrency();
    NumThreads = Hardware > 1 ? Hardware - 1 : 1;
  }
  Workers.reserve(NumThreads);
  for (size_t T = 0; T < NumThreads; ++T)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  // Workers drain the queue before honoring Stopping, so every task
  // submitted before destruction still runs.
  WorkAvailable.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    assert(!Stopping && "submit() after the pool started shutting down");
    Queue.push_back(std::move(Task));
    ++Unfinished;
  }
  WorkAvailable.notify_one();
  // Helpers blocked in wait() can steal queued tasks; wake them too so
  // a busy pool still makes progress through its waiters.
  AllDone.notify_all();
}

bool ThreadPool::runOneTask() {
  std::function<void()> Task;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Queue.empty())
      return false;
    Task = std::move(Queue.front());
    Queue.pop_front();
  }
  Task();
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    --Unfinished;
    if (Unfinished == 0)
      AllDone.notify_all();
  }
  return true;
}

void ThreadPool::wait() {
  for (;;) {
    if (runOneTask())
      continue;
    std::unique_lock<std::mutex> Lock(QueueMutex);
    if (Unfinished == 0)
      return;
    // Wake on either completion or new work to steal (a running task
    // may submit more); loop re-checks both.
    AllDone.wait(Lock, [this] { return Unfinished == 0 || !Queue.empty(); });
    if (Unfinished == 0)
      return;
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and fully drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(QueueMutex);
      --Unfinished;
      if (Unfinished == 0)
        AllDone.notify_all();
    }
  }
}

ThreadPool &ThreadPool::shared() {
  static ThreadPool Pool;
  return Pool;
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

namespace {

/// Shared state of one parallelFor invocation. Loop tasks hold it by
/// shared_ptr; the caller blocks until ActiveLoops hits zero, so the
/// Body reference inside stays valid for as long as any loop runs.
struct ParallelForState {
  std::atomic<size_t> Next{0};
  size_t Count = 0;
  const std::function<void(size_t)> *Body = nullptr;

  std::atomic<bool> Failed{false};
  std::mutex Mutex;
  std::condition_variable Done;
  size_t ActiveLoops = 0; ///< Participants still inside their claim loop.
  std::exception_ptr FirstError;

  /// One participant's claim loop: pull indices until exhausted or a
  /// failure elsewhere, capturing the first exception.
  void runLoop() {
    for (;;) {
      if (Failed.load(std::memory_order_relaxed))
        break;
      const size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        break;
      try {
        (*Body)(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(Mutex);
        if (!FirstError)
          FirstError = std::current_exception();
        Failed.store(true, std::memory_order_relaxed);
      }
    }
    std::lock_guard<std::mutex> Lock(Mutex);
    if (--ActiveLoops == 0)
      Done.notify_all();
  }
};

} // namespace

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body,
                             size_t MaxWorkers) {
  if (Count == 0)
    return;
  size_t Total = MaxWorkers != 0 ? MaxWorkers : threadCount() + 1;
  Total = std::min(Total, Count);
  if (Total <= 1) {
    // Inline in index order — the single-threaded determinism the
    // tests and the NumThreads == 1 contract rely on.
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }

  auto State = std::make_shared<ParallelForState>();
  State->Count = Count;
  State->Body = &Body;
  State->ActiveLoops = Total;
  for (size_t T = 1; T < Total; ++T)
    submit([State] { State->runLoop(); });
  State->runLoop();

  // Wait for the submitted loops, stealing unrelated queued tasks
  // while they run — on a saturated pool the stragglers may be parked
  // behind other work, and helping is what keeps nesting live. The
  // timed wait covers the benign race between an empty queue check
  // and the final notify.
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(State->Mutex);
      if (State->ActiveLoops == 0)
        break;
    }
    if (runOneTask())
      continue;
    std::unique_lock<std::mutex> Lock(State->Mutex);
    State->Done.wait_for(Lock, std::chrono::microseconds(200),
                         [&] { return State->ActiveLoops == 0; });
    if (State->ActiveLoops == 0)
      break;
  }
  if (State->FirstError)
    std::rethrow_exception(State->FirstError);
}

void kast::parallelFor(size_t Count, const std::function<void(size_t)> &Body,
                       size_t NumThreads) {
  if (Count == 0)
    return;
  if (NumThreads == 1 || Count == 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }
  ThreadPool::shared().parallelFor(Count, Body, NumThreads);
}
