//===- util/ThreadPool.cpp - Tiny fork-join helper ------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/ThreadPool.h"

#include <atomic>
#include <thread>
#include <vector>

using namespace kast;

void kast::parallelFor(size_t Count,
                       const std::function<void(size_t)> &Body,
                       size_t NumThreads) {
  if (Count == 0)
    return;
  if (NumThreads == 0) {
    NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
  }
  NumThreads = std::min(NumThreads, Count);
  if (NumThreads == 1) {
    for (size_t I = 0; I < Count; ++I)
      Body(I);
    return;
  }

  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    for (;;) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Count)
        return;
      Body(I);
    }
  };
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads - 1);
  for (size_t T = 1; T < NumThreads; ++T)
    Threads.emplace_back(Worker);
  Worker();
  for (std::thread &T : Threads)
    T.join();
}
