//===- util/AsciiPlot.cpp - Terminal scatter plots ------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "util/AsciiPlot.h"
#include "util/TextTable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace kast;

AsciiScatter::AsciiScatter(size_t Width, size_t Height)
    : Width(std::max<size_t>(Width, 8)), Height(std::max<size_t>(Height, 4)) {}

void AsciiScatter::addPoint(double X, double Y, char Glyph) {
  Points.push_back({X, Y, Glyph});
}

std::string AsciiScatter::render() const {
  if (Points.empty())
    return "(empty plot)\n";

  double MinX = Points[0].X, MaxX = Points[0].X;
  double MinY = Points[0].Y, MaxY = Points[0].Y;
  for (const PlotPoint &P : Points) {
    MinX = std::min(MinX, P.X);
    MaxX = std::max(MaxX, P.X);
    MinY = std::min(MinY, P.Y);
    MaxY = std::max(MaxY, P.Y);
  }
  // Degenerate ranges still need a nonzero span to map onto the grid.
  double SpanX = MaxX - MinX;
  double SpanY = MaxY - MinY;
  if (SpanX <= 0.0)
    SpanX = 1.0;
  if (SpanY <= 0.0)
    SpanY = 1.0;

  std::vector<std::string> Grid(Height, std::string(Width, ' '));
  for (const PlotPoint &P : Points) {
    size_t Col = static_cast<size_t>(
        std::lround((P.X - MinX) / SpanX * static_cast<double>(Width - 1)));
    size_t RowFromBottom = static_cast<size_t>(
        std::lround((P.Y - MinY) / SpanY * static_cast<double>(Height - 1)));
    size_t Row = Height - 1 - RowFromBottom;
    assert(Row < Height && Col < Width && "point mapped off-grid");
    char &Cell = Grid[Row][Col];
    if (Cell == ' ' || Cell == P.Glyph)
      Cell = P.Glyph;
    else
      Cell = '+'; // Collision of two different categories.
  }

  std::string Out;
  Out += '+';
  Out.append(Width, '-');
  Out += "+\n";
  for (const std::string &RowText : Grid) {
    Out += '|';
    Out += RowText;
    Out += "|\n";
  }
  Out += '+';
  Out.append(Width, '-');
  Out += "+\n";
  Out += "x: [" + formatDouble(MinX) + ", " + formatDouble(MaxX) + "]  y: [" +
         formatDouble(MinY) + ", " + formatDouble(MaxY) + "]\n";
  return Out;
}
