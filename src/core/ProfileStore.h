//===- core/ProfileStore.h - Arena-backed profile storage ------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contiguous structure-of-arrays storage for a whole corpus of kernel
/// profiles. A KernelProfile is the per-string *staging* type — built
/// feature by feature, then finalized — but storing N of them keeps N
/// separately heap-allocated vectors of interleaved (hash, value)
/// pairs: every merge-join loads the value it almost never needs into
/// the same cache line as the hash it always compares, and a
/// million-trace corpus fragments into a million allocations.
///
/// A ProfileStore flattens all N profiles into one arena of three
/// parallel arrays:
///
///     Hashes:  [ h00 h01 h02 | h10 h11 | h20 h21 h22 h23 | ... ]
///     Values:  [ v00 v01 v02 | v10 v11 | v20 v21 v22 v23 | ... ]
///     Offsets: [ 0, 3, 5, 9, ... ]          (CSR; size() + 1 entries)
///
/// plus cached per-profile self-dots and norms. Profile I spans
/// [Offsets[I], Offsets[I+1]) of Hashes/Values. Consumers address
/// profiles through ProfileView — a non-owning (hash span, value span,
/// cached self-norm) triple — and the merge-join dot over two views
/// streams the dense hash arrays, touching values only on a hash
/// match. This is the storage behind the Gram fast path
/// (core/KernelMatrix), retrieval (index/ProfileIndex), and the cache
/// formats (core/ProfileSerializer, core/FlatImage).
///
/// Backing modes. Internally every array is addressed through a span
/// (pointer + count), and the spans aim at one of two places:
///
///  - *owned*: the store's own vectors — the result of append/adopt,
///    mutable, exactly the pre-v3 behavior;
///  - *mapped*: an externally owned byte image (fromMapped), typically
///    a v3 flat-image file mapped read-only by core/FlatImage. The
///    store holds a `shared_ptr<const void>` keep-alive to the backing,
///    so the mapping lives as long as any store (or copy of it) views
///    into it. Restore is O(1): no arena allocation, no entry copies.
///
/// The first mutation of a mapped store (append/appendFrom/reserve)
/// promotes it: the mapped spans are copied into owned vectors, the
/// backing reference is dropped, and the mutation proceeds against the
/// private copy — copy-on-write at store granularity. The mapping
/// itself is never written through (it is PROT_READ anyway).
///
/// Views are invalidated by append (the arena may reallocate); indices
/// are stable forever.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_PROFILESTORE_H
#define KAST_CORE_PROFILESTORE_H

#include "core/KernelProfile.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace kast {

/// Minimal read-only array view: the return type of the store's raw
/// accessors, pointing either into the store's own vectors or into a
/// mapped image. Iterable and element-comparable like the vector it
/// replaced; does not own and does not outlive its store's next
/// mutation.
template <typename T> class ArrayView {
public:
  ArrayView() = default;
  ArrayView(const T *Data, size_t Size) : Ptr(Data), Count(Size) {}
  /*implicit*/ ArrayView(const std::vector<T> &V)
      : Ptr(V.data()), Count(V.size()) {}

  const T *data() const { return Ptr; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  const T *begin() const { return Ptr; }
  const T *end() const { return Ptr + Count; }
  const T &operator[](size_t I) const { return Ptr[I]; }
  const T &front() const { return Ptr[0]; }
  const T &back() const { return Ptr[Count - 1]; }

  friend bool operator==(const ArrayView &A, const ArrayView &B) {
    if (A.Count != B.Count)
      return false;
    for (size_t I = 0; I < A.Count; ++I)
      if (!(A.Ptr[I] == B.Ptr[I]))
        return false;
    return true;
  }

private:
  const T *Ptr = nullptr;
  size_t Count = 0;
};

/// Non-owning window onto one profile in a ProfileStore: parallel
/// hash/value spans plus the cached self-dot and norm. Cheap to copy;
/// valid until the next append to the owning store.
struct ProfileView {
  const uint64_t *Hashes = nullptr;
  const double *Values = nullptr;
  size_t Size = 0;
  /// Raw self-kernel dot(p, p), cached at append.
  double SelfDot = 0.0;
  /// sqrt(SelfDot), cached at append (cosine denominators).
  double Norm = 0.0;

  bool empty() const { return Size == 0; }
};

/// Merge-join inner product of two views. The hash-compare phase
/// streams the two dense hash arrays; values are loaded only on a
/// match. Bit-identical to KernelProfile::dot over the same features.
double dot(const ProfileView &A, const ProfileView &B);

/// Merge-join inner product of a view against a staged (finalized)
/// KernelProfile — the one-off query side of index retrieval, where
/// the query never enters the arena.
double dot(const ProfileView &A, const KernelProfile &B);

/// A finalized KernelProfile flattened into dense parallel hash/value
/// arrays — the vectorizable shape of a one-off query. The staged type
/// is an array-of-structs (interleaved ProfileEntry pairs), which no
/// SIMD hash-compare can stream; retrieval layers flatten the query
/// once per query and dot it against thousands of candidate views.
struct FlatProfile {
  std::vector<uint64_t> Hashes;
  std::vector<double> Values;
  /// sqrt(selfDot), summed in entry order — bit-identical to
  /// KernelProfile::norm() on the source profile.
  double Norm = 0.0;
  /// Sum of |value|, accumulated in entry order. The quantized scan's
  /// error bound is Scale/2 * L1 (see QuantizedStore), so the bound is
  /// one multiply away wherever a flattened query travels.
  double L1 = 0.0;

  FlatProfile() = default;
  explicit FlatProfile(const KernelProfile &P) { assign(P); }

  /// Re-flattens \p P into this object, reusing capacity (scratch
  /// reuse across a query batch).
  void assign(const KernelProfile &P);

  size_t size() const { return Hashes.size(); }
  bool empty() const { return Hashes.empty(); }
};

/// Merge-join inner product of a stored view against a flattened
/// query. Bit-identical to dot(A, KernelProfile) over the same
/// features — flattening only changes the layout.
double dot(const ProfileView &A, const FlatProfile &B);

class ProfileStore;

/// Optional int8 sidecar for a ProfileStore: the cheap scan tier.
///
/// Each profile's values are quantized independently with a symmetric
/// per-profile scale (Scale = maxAbs / 127, Q = round(V / Scale), so
/// |V - Scale*Q| <= Scale/2). The hashes are NOT copied — a quantized
/// view shares the parent store's hash span, and the sidecar mirrors
/// the parent's CSR layout at build time, so it must be rebuilt (not
/// patched) after any append. Scales and the exact f64 self-dots stay
/// in the parent store; the sidecar only adds the 8x-smaller value
/// arrays the approximate scan streams.
///
/// Like the parent store, a sidecar is either owned (build) or a view
/// over a mapped image (fromMapped — the v3 format persists the codes
/// and scales so a quantized index restores without the O(entries)
/// rebuild). A sidecar is immutable after construction, so it needs no
/// promotion machinery; the parent drops it on append either way.
///
/// Error bound: for a query q and stored profile p,
///     |dot(q, p) - dotQuantized(q, p)| <= Scale/2 * sum_matches |q_i|
///                                      <= Scale/2 * L1(q),
/// since each matched stored value is off by at most Scale/2. The
/// bound is tested in SimdDotTest and justifies the shortlist margin
/// in the retrieval layers, which always re-rank survivors with the
/// exact f64 kernel before anything becomes user-visible.
class QuantizedStore {
public:
  /// One profile's quantized values; pair with the parent store's
  /// ProfileView::Hashes (same indices, same CSR layout).
  struct View {
    const int8_t *Values = nullptr;
    size_t Size = 0;
    double Scale = 0.0;
  };

  QuantizedStore() { syncOwned(); }
  QuantizedStore(const QuantizedStore &Other);
  QuantizedStore &operator=(const QuantizedStore &Other);
  QuantizedStore(QuantizedStore &&Other) noexcept;
  QuantizedStore &operator=(QuantizedStore &&Other) noexcept;

  /// Quantizes every profile of \p Store. Deterministic: the sidecar
  /// is a pure function of the store's contents, so it can always be
  /// rebuilt instead of persisted.
  static QuantizedStore build(const ProfileStore &Store);

  /// Non-owning construction over externally owned arrays (a mapped v3
  /// image); \p Backing keeps the bytes alive. The arrays must mirror
  /// the parent store's CSR layout — the flat-image reader validates
  /// this before calling in.
  static QuantizedStore fromMapped(const int8_t *Values,
                                   const uint64_t *Offsets,
                                   const double *Scales, size_t Profiles,
                                   size_t Entries,
                                   std::shared_ptr<const void> Backing);

  size_t size() const { return NumProfiles; }

  /// Total quantized entries (== the parent store's entryCount()).
  size_t entryCount() const { return NumEntries; }

  View view(size_t I) const {
    const size_t Begin = static_cast<size_t>(OffsetsP[I]);
    return {ValuesP + Begin, static_cast<size_t>(OffsetsP[I + 1]) - Begin,
            ScalesP[I]};
  }

  double scale(size_t I) const { return ScalesP[I]; }

  // Raw access for image serialization (core/FlatImage).
  ArrayView<int8_t> values() const { return {ValuesP, NumEntries}; }
  ArrayView<double> scales() const { return {ScalesP, NumProfiles}; }

private:
  void syncOwned();

  std::vector<int8_t> ValuesOwned;
  std::vector<uint64_t> OffsetsOwned = {0};
  std::vector<double> ScalesOwned;
  const int8_t *ValuesP = nullptr;
  const uint64_t *OffsetsP = nullptr;
  const double *ScalesP = nullptr;
  size_t NumProfiles = 0;
  size_t NumEntries = 0;
  /// Non-null iff the spans view an external mapping.
  std::shared_ptr<const void> Backing;
};

/// Arena of N profiles as structure-of-arrays with CSR offsets, either
/// owning its arrays or viewing a mapped image (see file comment).
class ProfileStore {
public:
  ProfileStore() { syncOwned(); }
  ProfileStore(const ProfileStore &Other);
  ProfileStore &operator=(const ProfileStore &Other);
  ProfileStore(ProfileStore &&Other) noexcept;
  ProfileStore &operator=(ProfileStore &&Other) noexcept;

  /// Copies a finalized profile into the arena and caches its
  /// self-dot/norm. \returns the new profile's index.
  size_t append(const KernelProfile &Profile);

  /// Appends a whole batch, encoding the arena's sizing policy once
  /// for every bulk-build call site: an empty store is exact-size
  /// reserved for the batch; a non-empty store grows geometrically
  /// (an exact reserve per batch would force a full arena copy on
  /// every append).
  void appendAll(const std::vector<KernelProfile> &Profiles);

  /// Copies profile \p I of \p Other straight into this arena — two
  /// contiguous range inserts plus the cached self-dot/norm, no
  /// KernelProfile materialization. This is the rebuild primitive for
  /// arena-to-arena movement (shard distribution, tombstone-dropping
  /// compaction in index/IndexService, sharded cache export).
  /// \p Other must not be this store (asserted): self-append would
  /// read from an arena mid-reallocation. \returns the new profile's
  /// index.
  size_t appendFrom(const ProfileStore &Other, size_t I);

  /// Bulk variant of append: adopts entry arrays wholesale (e.g. the
  /// blobs of a v2 cache file). Entries of each profile must be sorted
  /// by strictly increasing hash — the finalize() invariant; use
  /// isFinalized() to validate untrusted input first. \p Offsets must
  /// be a CSR offset array: size N+1, leading 0, non-decreasing, last
  /// element == Hashes.size() == Values.size().
  static ProfileStore adopt(std::vector<uint64_t> Hashes,
                            std::vector<double> Values,
                            std::vector<uint64_t> Offsets);

  /// Non-owning construction over externally owned arrays — the v3
  /// flat-image restore path (core/FlatImage). All five arrays view
  /// \p Backing, which stays alive as long as this store or any copy
  /// of it does. The caller has already validated the CSR shape and
  /// section checksums; self-dots and norms come from the image, not
  /// from an O(entries) recompute. The first mutation promotes to
  /// owned arrays (see isMapped()).
  static ProfileStore fromMapped(const uint64_t *Offsets,
                                 const uint64_t *Hashes,
                                 const double *Values, const double *SelfDots,
                                 const double *Norms, size_t Profiles,
                                 size_t Entries,
                                 std::shared_ptr<const void> Backing);

  /// True while the arrays view an external mapping; false once owned
  /// (initially, or after the copy-on-write promotion a mutation
  /// triggers).
  bool isMapped() const { return Backing != nullptr; }

  /// Number of profiles stored.
  size_t size() const { return NumProfiles; }
  bool empty() const { return size() == 0; }

  /// Total (hash, value) entries across all profiles.
  size_t entryCount() const { return NumEntries; }

  /// The view of profile \p I; invalidated by the next append.
  ProfileView view(size_t I) const {
    const size_t Begin = static_cast<size_t>(OffsetsP[I]);
    return {HashesP + Begin, ValuesP + Begin,
            static_cast<size_t>(OffsetsP[I + 1]) - Begin, SelfDotsP[I],
            NormsP[I]};
  }

  /// Raw self-kernel dot(p, p) of profile \p I.
  double selfDot(size_t I) const { return SelfDotsP[I]; }

  /// sqrt(selfDot(I)).
  double norm(size_t I) const { return NormsP[I]; }

  /// Pre-sizes the arena for \p Profiles profiles totaling \p Entries
  /// features, so a bulk build appends without reallocation. Counts as
  /// a mutation: promotes a mapped store.
  void reserve(size_t Profiles, size_t Entries);

  /// Copies profile \p I back out as a staging-type KernelProfile
  /// (compatibility paths: v1 serialization, record-wise caches).
  KernelProfile materialize(size_t I) const;

  /// Checks the finalize() invariant (strictly increasing hashes) for
  /// every profile — the validation gate for adopt() on file input.
  bool isFinalized() const;

  /// Builds (or rebuilds) the int8 quantized sidecar from the current
  /// contents. Like views, the sidecar is invalidated — dropped — by
  /// the next append; call again once the store is settled. No-op if a
  /// sidecar for the current contents already exists.
  void buildQuantized();

  /// Installs an externally built sidecar — the v3 restore path, where
  /// the image carries the int8 codes and scales and rebuilding them
  /// would forfeit the O(1) open. \p Q must mirror this store's CSR
  /// layout (asserted on the counts).
  void adoptQuantized(std::shared_ptr<const QuantizedStore> Q);

  /// The quantized sidecar, or nullptr if none has been built (or an
  /// append invalidated it).
  const QuantizedStore *quantized() const { return Quant.get(); }

  /// Shared ownership of the sidecar, so snapshot/routing structures
  /// can outlive this store's next mutation.
  std::shared_ptr<const QuantizedStore> quantizedShared() const {
    return Quant;
  }

  // Raw arena access for block serialization; offsets() has size()+1
  // elements with offsets()[0] == 0. Offsets are kept as u64 — the
  // cache wire width — so save/load move the blob wholesale with no
  // widen/narrow copy. The views follow the active backing (owned
  // vectors or mapped image) and are invalidated like ProfileViews.
  ArrayView<uint64_t> hashes() const { return {HashesP, NumEntries}; }
  ArrayView<double> values() const { return {ValuesP, NumEntries}; }
  ArrayView<uint64_t> offsets() const { return {OffsetsP, NumProfiles + 1}; }
  ArrayView<double> selfDots() const { return {SelfDotsP, NumProfiles}; }
  ArrayView<double> norms() const { return {NormsP, NumProfiles}; }

private:
  /// Re-aims the spans at the owned vectors and refreshes the counts
  /// from them; called after every owned-mode mutation (push_back may
  /// reallocate) and by construction/assignment.
  void syncOwned();

  /// Copy-on-write promotion: copies mapped spans into the owned
  /// vectors and drops the backing. No-op when already owned.
  void promote();

  void moveFrom(ProfileStore &&Other) noexcept;

  // Owned arenas; unused (kept empty/trivial) while Backing is set.
  std::vector<uint64_t> HashesOwned;
  std::vector<double> ValuesOwned;
  std::vector<uint64_t> OffsetsOwned = {0};
  std::vector<double> SelfDotsOwned;
  std::vector<double> NormsOwned;

  // Active spans: into the owned vectors, or into Backing.
  const uint64_t *HashesP = nullptr;
  const double *ValuesP = nullptr;
  const uint64_t *OffsetsP = nullptr;
  const double *SelfDotsP = nullptr;
  const double *NormsP = nullptr;
  size_t NumProfiles = 0;
  size_t NumEntries = 0;

  /// Keep-alive for the mapped image; non-null iff in mapped mode.
  std::shared_ptr<const void> Backing;

  /// Lazily built by buildQuantized(); reset by any append (the
  /// sidecar mirrors the CSR layout, which appends change).
  std::shared_ptr<const QuantizedStore> Quant;
};

} // namespace kast

#endif // KAST_CORE_PROFILESTORE_H
