//===- core/ProfileStore.h - Arena-backed profile storage ------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contiguous structure-of-arrays storage for a whole corpus of kernel
/// profiles. A KernelProfile is the per-string *staging* type — built
/// feature by feature, then finalized — but storing N of them keeps N
/// separately heap-allocated vectors of interleaved (hash, value)
/// pairs: every merge-join loads the value it almost never needs into
/// the same cache line as the hash it always compares, and a
/// million-trace corpus fragments into a million allocations.
///
/// A ProfileStore flattens all N profiles into one arena of three
/// parallel arrays:
///
///     Hashes:  [ h00 h01 h02 | h10 h11 | h20 h21 h22 h23 | ... ]
///     Values:  [ v00 v01 v02 | v10 v11 | v20 v21 v22 v23 | ... ]
///     Offsets: [ 0, 3, 5, 9, ... ]          (CSR; size() + 1 entries)
///
/// plus cached per-profile self-dots and norms. Profile I spans
/// [Offsets[I], Offsets[I+1]) of Hashes/Values. Consumers address
/// profiles through ProfileView — a non-owning (hash span, value span,
/// cached self-norm) triple — and the merge-join dot over two views
/// streams the dense hash arrays, touching values only on a hash
/// match. This is the storage behind the Gram fast path
/// (core/KernelMatrix), retrieval (index/ProfileIndex), and the v2
/// block cache format (core/ProfileSerializer), which writes the three
/// arrays as single contiguous blobs.
///
/// Views are invalidated by append (the arena may reallocate); indices
/// are stable forever.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_PROFILESTORE_H
#define KAST_CORE_PROFILESTORE_H

#include "core/KernelProfile.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace kast {

/// Non-owning window onto one profile in a ProfileStore: parallel
/// hash/value spans plus the cached self-dot and norm. Cheap to copy;
/// valid until the next append to the owning store.
struct ProfileView {
  const uint64_t *Hashes = nullptr;
  const double *Values = nullptr;
  size_t Size = 0;
  /// Raw self-kernel dot(p, p), cached at append.
  double SelfDot = 0.0;
  /// sqrt(SelfDot), cached at append (cosine denominators).
  double Norm = 0.0;

  bool empty() const { return Size == 0; }
};

/// Merge-join inner product of two views. The hash-compare phase
/// streams the two dense hash arrays; values are loaded only on a
/// match. Bit-identical to KernelProfile::dot over the same features.
double dot(const ProfileView &A, const ProfileView &B);

/// Merge-join inner product of a view against a staged (finalized)
/// KernelProfile — the one-off query side of index retrieval, where
/// the query never enters the arena.
double dot(const ProfileView &A, const KernelProfile &B);

/// A finalized KernelProfile flattened into dense parallel hash/value
/// arrays — the vectorizable shape of a one-off query. The staged type
/// is an array-of-structs (interleaved ProfileEntry pairs), which no
/// SIMD hash-compare can stream; retrieval layers flatten the query
/// once per query and dot it against thousands of candidate views.
struct FlatProfile {
  std::vector<uint64_t> Hashes;
  std::vector<double> Values;
  /// sqrt(selfDot), summed in entry order — bit-identical to
  /// KernelProfile::norm() on the source profile.
  double Norm = 0.0;
  /// Sum of |value|, accumulated in entry order. The quantized scan's
  /// error bound is Scale/2 * L1 (see QuantizedStore), so the bound is
  /// one multiply away wherever a flattened query travels.
  double L1 = 0.0;

  FlatProfile() = default;
  explicit FlatProfile(const KernelProfile &P) { assign(P); }

  /// Re-flattens \p P into this object, reusing capacity (scratch
  /// reuse across a query batch).
  void assign(const KernelProfile &P);

  size_t size() const { return Hashes.size(); }
  bool empty() const { return Hashes.empty(); }
};

/// Merge-join inner product of a stored view against a flattened
/// query. Bit-identical to dot(A, KernelProfile) over the same
/// features — flattening only changes the layout.
double dot(const ProfileView &A, const FlatProfile &B);

class ProfileStore;

/// Optional int8 sidecar for a ProfileStore: the cheap scan tier.
///
/// Each profile's values are quantized independently with a symmetric
/// per-profile scale (Scale = maxAbs / 127, Q = round(V / Scale), so
/// |V - Scale*Q| <= Scale/2). The hashes are NOT copied — a quantized
/// view shares the parent store's hash span, and the sidecar mirrors
/// the parent's CSR layout at build time, so it must be rebuilt (not
/// patched) after any append. Scales and the exact f64 self-dots stay
/// in the parent store; the sidecar only adds the 8x-smaller value
/// arrays the approximate scan streams.
///
/// Error bound: for a query q and stored profile p,
///     |dot(q, p) - dotQuantized(q, p)| <= Scale/2 * sum_matches |q_i|
///                                      <= Scale/2 * L1(q),
/// since each matched stored value is off by at most Scale/2. The
/// bound is tested in SimdDotTest and justifies the shortlist margin
/// in the retrieval layers, which always re-rank survivors with the
/// exact f64 kernel before anything becomes user-visible.
class QuantizedStore {
public:
  /// One profile's quantized values; pair with the parent store's
  /// ProfileView::Hashes (same indices, same CSR layout).
  struct View {
    const int8_t *Values = nullptr;
    size_t Size = 0;
    double Scale = 0.0;
  };

  /// Quantizes every profile of \p Store. Deterministic: the sidecar
  /// is a pure function of the store's contents, so it can always be
  /// rebuilt instead of persisted.
  static QuantizedStore build(const ProfileStore &Store);

  size_t size() const { return Scales.size(); }

  View view(size_t I) const {
    const size_t Begin = static_cast<size_t>(Offsets[I]);
    return {Values.data() + Begin,
            static_cast<size_t>(Offsets[I + 1]) - Begin, Scales[I]};
  }

  double scale(size_t I) const { return Scales[I]; }

private:
  std::vector<int8_t> Values;
  std::vector<uint64_t> Offsets = {0};
  std::vector<double> Scales;
};

/// Arena of N profiles as structure-of-arrays with CSR offsets.
class ProfileStore {
public:
  /// Copies a finalized profile into the arena and caches its
  /// self-dot/norm. \returns the new profile's index.
  size_t append(const KernelProfile &Profile);

  /// Appends a whole batch, encoding the arena's sizing policy once
  /// for every bulk-build call site: an empty store is exact-size
  /// reserved for the batch; a non-empty store grows geometrically
  /// (an exact reserve per batch would force a full arena copy on
  /// every append).
  void appendAll(const std::vector<KernelProfile> &Profiles);

  /// Copies profile \p I of \p Other straight into this arena — two
  /// contiguous range inserts plus the cached self-dot/norm, no
  /// KernelProfile materialization. This is the rebuild primitive for
  /// arena-to-arena movement (shard distribution, tombstone-dropping
  /// compaction in index/IndexService, sharded cache export).
  /// \p Other must not be this store (asserted): self-append would
  /// read from an arena mid-reallocation. \returns the new profile's
  /// index.
  size_t appendFrom(const ProfileStore &Other, size_t I);

  /// Bulk variant of append: adopts entry arrays wholesale (e.g. the
  /// blobs of a v2 cache file). Entries of each profile must be sorted
  /// by strictly increasing hash — the finalize() invariant; use
  /// isFinalized() to validate untrusted input first. \p Offsets must
  /// be a CSR offset array: size N+1, leading 0, non-decreasing, last
  /// element == Hashes.size() == Values.size().
  static ProfileStore adopt(std::vector<uint64_t> Hashes,
                            std::vector<double> Values,
                            std::vector<uint64_t> Offsets);

  /// Number of profiles stored.
  size_t size() const { return Offsets.size() - 1; }
  bool empty() const { return size() == 0; }

  /// Total (hash, value) entries across all profiles.
  size_t entryCount() const { return Hashes.size(); }

  /// The view of profile \p I; invalidated by the next append.
  ProfileView view(size_t I) const {
    const size_t Begin = static_cast<size_t>(Offsets[I]);
    return {Hashes.data() + Begin, Values.data() + Begin,
            static_cast<size_t>(Offsets[I + 1]) - Begin, SelfDots[I],
            Norms[I]};
  }

  /// Raw self-kernel dot(p, p) of profile \p I.
  double selfDot(size_t I) const { return SelfDots[I]; }

  /// sqrt(selfDot(I)).
  double norm(size_t I) const { return Norms[I]; }

  /// Pre-sizes the arena for \p Profiles profiles totaling \p Entries
  /// features, so a bulk build appends without reallocation.
  void reserve(size_t Profiles, size_t Entries);

  /// Copies profile \p I back out as a staging-type KernelProfile
  /// (compatibility paths: v1 serialization, record-wise caches).
  KernelProfile materialize(size_t I) const;

  /// Checks the finalize() invariant (strictly increasing hashes) for
  /// every profile — the validation gate for adopt() on file input.
  bool isFinalized() const;

  /// Builds (or rebuilds) the int8 quantized sidecar from the current
  /// contents. Like views, the sidecar is invalidated — dropped — by
  /// the next append; call again once the store is settled. No-op if a
  /// sidecar for the current contents already exists.
  void buildQuantized();

  /// The quantized sidecar, or nullptr if none has been built (or an
  /// append invalidated it).
  const QuantizedStore *quantized() const { return Quant.get(); }

  /// Shared ownership of the sidecar, so snapshot/routing structures
  /// can outlive this store's next mutation.
  std::shared_ptr<const QuantizedStore> quantizedShared() const {
    return Quant;
  }

  // Raw arena access for block serialization; Offsets has size()+1
  // elements with Offsets[0] == 0. Offsets are kept as u64 — the v2
  // wire width — so save/load move the blob wholesale with no
  // widen/narrow copy.
  const std::vector<uint64_t> &hashes() const { return Hashes; }
  const std::vector<double> &values() const { return Values; }
  const std::vector<uint64_t> &offsets() const { return Offsets; }

private:
  std::vector<uint64_t> Hashes;
  std::vector<double> Values;
  std::vector<uint64_t> Offsets = {0};
  std::vector<double> SelfDots;
  std::vector<double> Norms;
  /// Lazily built by buildQuantized(); reset by any append (the
  /// sidecar mirrors the CSR layout, which appends change).
  std::shared_ptr<const QuantizedStore> Quant;
};

} // namespace kast

#endif // KAST_CORE_PROFILESTORE_H
