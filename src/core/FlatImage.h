//===- core/FlatImage.h - v3 flat-image profile cache ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The v3 "flat image" cache format: a ProfileStore serialized so that
/// the on-disk layout *is* the in-memory layout. Where the v2 block
/// format (core/ProfileSerializer) is read-then-own — three bulk reads
/// into freshly allocated arenas, O(entries) load time and a private
/// resident copy per process — a flat image is mmap-then-view: the
/// reader maps the file read-only, validates the header and metadata
/// sections, and hands back a ProfileStore whose arrays alias the
/// mapping (ProfileStore::fromMapped). Restart cost is validation plus
/// first-page faults, independent of entry count; every process
/// serving the same image shares one set of clean page-cache pages;
/// and corpora larger than RAM are served by letting the kernel page.
///
/// Wire layout (all integers little-endian; doubles as IEEE-754 bit
/// patterns; byte offsets from the start of the file):
///
///   0    magic          8 bytes  "KASTFLAT"
///   8    version        u32      3
///   12   sectionCount   u32
///   16   kernelHash     u64      checksumBytes(kernel name bytes)
///   24   profileCount   u64      N
///   32   entryCount     u64      total entries across all profiles
///   40   tableOffset    u64      64
///   48   headerSum      u64      checksumBytes(bytes [0,48) ++ table)
///   56   reserved       u64      0
///   64   section table  sectionCount x 32 bytes:
///          id u32, reserved u32, offset u64, byteSize u64, checksum u64
///   ...  sections, each aligned to FlatImageAlignment, zero-padded
///        between — aligned so u64/f64 views into the mapping are
///        well-aligned and each section starts on its own page.
///
/// Sections (ids in FlatSectionId; M* = mandatory):
///
///   M KERNELNAME  raw bytes of the producing kernel's name()
///   M OFFSETS     (N+1) x u64   CSR offsets (leading 0, last == total)
///   M HASHES      total x u64   feature hashes, one blob
///   M VALUES      total x f64   feature values
///   M SELFDOTS    N x f64       cached self-dots (dot(p, p))
///   M NORMS       N x f64       cached norms (sqrt of self-dot)
///   M NAMES       (N+1) x u64 string offsets, then the byte blob
///   M LABELS      same shape as NAMES
///     QVALUES     total x i8    QuantizedStore codes (sidecar)
///     QSCALES     N x f64       QuantizedStore per-profile scales
///     ROUTE       opaque "KASTRTNG" routing-sidecar bytes (v3 legacy:
///                 restoring from it still rebuilds posting lists)
///
/// Version 4 adds the routing tier as first-class flat arenas — the
/// canonical in-memory CSR layout of index/ClusterRouter and
/// index/InvertedIndex serialized directly, so a routed restore is
/// validate-and-view like the store itself (no k-means refit, no
/// posting rebuild). All twelve sections appear together or not at
/// all; a writer emits version 4 iff they are present, so unrouted
/// images remain bit-identical to v3:
///
///     RMETA       128 bytes     "KASTIVIX": the routing options and
///                               arena counts (layout in FlatImage.cpp)
///     RASSIGN     covered x u32 per-profile centroid assignment
///     COFFSETS    (C+1) x u64   centroid CSR offsets
///     CHASHES     ce x u64      centroid feature hashes
///     CVALUES     ce x f64      centroid feature values
///     CSELFDOTS   C x f64       centroid self-dots
///     CNORMS      C x f64       centroid norms
///     PCLUSTERS   (C+1) x u64   posting CSR: cluster -> feature range
///     PFEATURES   F x u64       surviving feature hashes
///     PBEGIN      (F+1) x u64   posting CSR: feature -> posting range
///     PIDS        P x u32       posting profile ids
///     PVALUES     P x f64       posting values (impact-ordered)
///
/// SELFDOTS and NORMS ride in the image because recomputing them is
/// the O(entries) pass that makes the v2 load linear; QVALUES/QSCALES
/// (present iff the store had a built sidecar at write time) and the
/// routing sections let a routed, quantized index restore with no
/// rebuild at all.
///
/// Validation. Opening always verifies the header checksum (which
/// covers the section table), section bounds and alignment, the
/// kernel-name hash, the CSR offset invariants (the shared
/// validateCsrOffsets seam with the v2 reader), and the checksums of
/// every metadata-sized section (everything O(N): offsets, self-dots,
/// norms, names, labels, scales, route, and the routing meta /
/// assignment / CSR-offset sections). The entry-sized sections
/// (HASHES/VALUES/QVALUES and the routing payload arrays
/// CHASHES/CVALUES/PFEATURES/PIDS/PVALUES) are checksummed only under
/// FlatImageReadOptions::DeepValidate — verifying them eagerly would
/// fault every page and reintroduce the O(entries) open the format
/// exists to avoid. The buffered fallback (no mmap, or
/// KAST_FORCE_BUFFERED=1) always deep-validates: it has already paid
/// for every byte.
///
/// Lifetime. The returned cache's Store holds the MappedImage via
/// shared_ptr; whoever ends up owning the store (e.g. an IndexService
/// sealed segment) keeps the mapping alive, and the mapping survives
/// unlink/rename of the path. The first mutation of the store promotes
/// it to owned arrays and drops the image reference (see
/// core/ProfileStore.h).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_FLATIMAGE_H
#define KAST_CORE_FLATIMAGE_H

#include "core/ProfileSerializer.h"
#include "util/Error.h"

#include <string>
#include <vector>

namespace kast {

/// Section alignment (and the x86-64/aarch64 page size): sections
/// start page-aligned so each is independently mappable/advisable and
/// any 8-byte element view into it is well-aligned.
inline constexpr uint64_t FlatImageAlignment = 4096;

/// Section identifiers. Values are wire constants; ids above Route are
/// the version-4 routing arenas and are rejected in version-3 files
/// (version skew), so a v3-era reader and a v4 file fail loudly in
/// both directions.
enum class FlatSectionId : uint32_t {
  KernelName = 1,
  Offsets = 2,
  Hashes = 3,
  Values = 4,
  SelfDots = 5,
  Norms = 6,
  Names = 7,
  Labels = 8,
  QuantValues = 9,
  QuantScales = 10,
  Route = 11,
  // v4 routing arenas (all-or-nothing):
  RouteMeta = 12,
  RouteAssignments = 13,
  CentroidOffsets = 14,
  CentroidHashes = 15,
  CentroidValues = 16,
  CentroidSelfDots = 17,
  CentroidNorms = 18,
  PostingClusterBegin = 19,
  PostingFeatures = 20,
  PostingBegin = 21,
  PostingIds = 22,
  PostingValues = 23,
};

struct FlatImageReadOptions {
  /// Also verify the checksums of the entry-sized sections (hashes,
  /// values, quantized codes) — an O(entries) sweep that faults every
  /// page. Tests and integrity audits want it; serving restarts do
  /// not. Implied on the buffered fallback path.
  bool DeepValidate = false;
  /// Skip mmap and read the file into an owned buffer (equivalent to
  /// KAST_FORCE_BUFFERED=1 for this one call).
  bool ForceBuffered = false;
};

/// Writes \p Store (with its names/labels, its quantized sidecar if
/// one is built, and \p RouteBlob if non-empty) as a v3 flat image at
/// \p Path. The writer emits little-endian bytes on any host; the
/// zero-copy *reader* additionally requires a little-endian host.
Status writeProfileStoreImageFile(const std::string &KernelName,
                                  const std::vector<std::string> &Names,
                                  const std::vector<std::string> &Labels,
                                  const ProfileStore &Store,
                                  const std::string &Path,
                                  const std::string &RouteBlob = {});

/// Struct form: uses Cache.Store's sidecar, and embeds the routing
/// tier. Cache.Routing (arena sections, version 4) takes precedence;
/// a legacy Cache.RouteBlob without arenas still writes a v3 ROUTE
/// section.
Status writeProfileStoreImageFile(const ProfileStoreCache &Cache,
                                  const std::string &Path);

/// Opens, validates, and views a v3/v4 flat image. On success the
/// returned cache's Store (and quantized sidecar, when the image
/// carries one) alias the mapping, Names/Labels are lazily decoded
/// section-backed columns (core/StringColumn), and — for a v4 image —
/// Cache.Routing views the routing arenas in place. Rejects v1/v2
/// caches with a pointer at the right reader, and any structural or
/// checksum violation with a diagnostic naming the section.
Expected<ProfileStoreCache>
readProfileStoreImageFile(const std::string &Path,
                          const FlatImageReadOptions &Options = {});

} // namespace kast

#endif // KAST_CORE_FLATIMAGE_H
