//===- core/StringSerializer.cpp - Weighted string text form ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/StringSerializer.h"
#include "util/StringUtil.h"

using namespace kast;

std::string kast::formatWeightedString(const WeightedString &S) {
  std::string Out;
  for (size_t I = 0; I < S.size(); ++I) {
    if (I != 0)
      Out += ' ';
    Out += S.literal(I);
    Out += ':';
    Out += std::to_string(S.weight(I));
  }
  return Out;
}

Expected<WeightedString>
kast::parseWeightedString(std::string_view Text,
                          const std::shared_ptr<TokenTable> &Table,
                          std::string Name) {
  using Result = Expected<WeightedString>;
  WeightedString Out(Table, std::move(Name));
  for (std::string_view Piece : splitWhitespace(Text)) {
    size_t Colon = Piece.rfind(':');
    std::string_view Literal = Piece;
    uint64_t Weight = 1;
    if (Colon != std::string_view::npos && Colon + 1 < Piece.size()) {
      std::optional<uint64_t> Parsed = parseUnsigned(Piece.substr(Colon + 1));
      if (Parsed) {
        Literal = Piece.substr(0, Colon);
        Weight = *Parsed;
      }
    }
    if (Literal.empty())
      return Result::error("empty token literal in '" + std::string(Piece) +
                           "'");
    if (Weight == 0)
      return Result::error("zero weight in '" + std::string(Piece) + "'");
    Out.append(std::string(Literal), Weight);
  }
  return Out;
}
