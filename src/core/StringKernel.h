//===- core/StringKernel.h - Kernel function interface ---------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel-function abstraction shared by the Kast Spectrum Kernel
/// (core) and the baseline string kernels (src/kernels). A kernel maps
/// two weighted strings to the inner product of their implicit feature
/// vectors; learning algorithms only ever consume the resulting Gram
/// matrix (§2.2: "the learning algorithms ... need only the kernel
/// matrix").
///
/// Because the Gram matrix evaluates every string against N-1 partners,
/// the interface exposes a per-string precomputation seam: precompute()
/// returns an opaque handle (a feature profile, a suffix automaton,
/// ...) that evaluatePrepared() reuses for every pair the string
/// participates in. Kernels with an explicit per-string embedding
/// implement the stronger ProfiledStringKernel contract, where the
/// handle is a KernelProfile and pairwise evaluation is a sparse dot
/// product — the O(N·build + N²·dot) fast path of computeKernelMatrix.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_STRINGKERNEL_H
#define KAST_CORE_STRINGKERNEL_H

#include "core/KernelProfile.h"
#include "core/Token.h"

#include <memory>
#include <string>

namespace kast {

/// Opaque per-string state a kernel derives once and reuses across all
/// pairwise evaluations involving that string (e.g. a feature profile
/// or a suffix automaton). Lifetime is managed by the caller; handles
/// are immutable after construction and safe to share across threads.
class KernelPrecomputation {
public:
  virtual ~KernelPrecomputation();
};

/// Abstract kernel function over weighted strings.
class StringKernel {
public:
  virtual ~StringKernel();

  /// Unnormalized kernel value k(A, B).
  virtual double evaluate(const WeightedString &A,
                          const WeightedString &B) const = 0;

  /// Derives the reusable per-string state for \p X, or nullptr when
  /// this kernel has nothing to precompute (the default).
  virtual std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const;

  /// k(A, B) given the strings' precomputation handles. Either handle
  /// may be nullptr (then the kernel recomputes what it needs); when
  /// non-null, a handle must come from precompute() on the same string
  /// of the same kernel instance. Default: plain evaluate().
  virtual double evaluatePrepared(const WeightedString &A,
                                  const KernelPrecomputation *PrepA,
                                  const WeightedString &B,
                                  const KernelPrecomputation *PrepB) const;

  /// Human-readable kernel name (for bench/table output).
  virtual std::string name() const = 0;

  /// Cosine-normalized value k(A,B)/sqrt(k(A,A)k(B,B)); 0 when either
  /// self-kernel vanishes (and 1 when A and B coincide token-wise).
  /// For the Kast kernel this reproduces the paper's Eq. (12)
  /// normalization by weight(A) * weight(B); see KastKernel.h.
  double evaluateNormalized(const WeightedString &A,
                            const WeightedString &B) const;
};

/// A kernel with an explicit per-string embedding: k(A, B) equals the
/// inner product of two independently computed sparse feature vectors.
/// Subclasses implement profile(); evaluate() and the precomputation
/// seam come for free, and computeKernelMatrix amortizes profile
/// construction across the whole Gram matrix.
class ProfiledStringKernel : public StringKernel {
public:
  /// The explicit (hashed) feature embedding of \p X, finalized.
  virtual KernelProfile profile(const WeightedString &X) const = 0;

  /// Inner product of two profiles. Deliberately non-virtual: the
  /// ProfiledStringKernel contract is that k(A, B) *is* the plain
  /// merge-join dot of the two profiles — the arena fast paths
  /// (KernelMatrix's tiled fill, ProfileIndex retrieval) dot stored
  /// ProfileViews directly without consulting the kernel, so a kernel
  /// whose value is not the plain dot must not be profiled; fold the
  /// transform into profile() instead.
  double dot(const KernelProfile &A, const KernelProfile &B) const;

  /// k(A, B) = dot(profile(A), profile(B)).
  double evaluate(const WeightedString &A,
                  const WeightedString &B) const override;

  /// Wraps profile(X) in a precomputation handle.
  std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const override;

  /// Dots the cached profiles, recomputing any missing side.
  double evaluatePrepared(const WeightedString &A,
                          const KernelPrecomputation *PrepA,
                          const WeightedString &B,
                          const KernelPrecomputation *PrepB) const override;
};

/// The handle ProfiledStringKernel::precompute returns; exposed so
/// combinators can unwrap nested profiles.
class ProfilePrecomputation final : public KernelPrecomputation {
public:
  explicit ProfilePrecomputation(KernelProfile P) : Profile(std::move(P)) {}
  const KernelProfile &profile() const { return Profile; }

private:
  KernelProfile Profile;
};

} // namespace kast

#endif // KAST_CORE_STRINGKERNEL_H
