//===- core/StringKernel.h - Kernel function interface ---------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel-function abstraction shared by the Kast Spectrum Kernel
/// (core) and the baseline string kernels (src/kernels). A kernel maps
/// two weighted strings to the inner product of their implicit feature
/// vectors; learning algorithms only ever consume the resulting Gram
/// matrix (§2.2: "the learning algorithms ... need only the kernel
/// matrix").
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_STRINGKERNEL_H
#define KAST_CORE_STRINGKERNEL_H

#include "core/Token.h"

#include <string>

namespace kast {

/// Abstract kernel function over weighted strings.
class StringKernel {
public:
  virtual ~StringKernel();

  /// Unnormalized kernel value k(A, B).
  virtual double evaluate(const WeightedString &A,
                          const WeightedString &B) const = 0;

  /// Human-readable kernel name (for bench/table output).
  virtual std::string name() const = 0;

  /// Cosine-normalized value k(A,B)/sqrt(k(A,A)k(B,B)); 0 when either
  /// self-kernel vanishes (and 1 when A and B coincide token-wise).
  /// For the Kast kernel this reproduces the paper's Eq. (12)
  /// normalization by weight(A) * weight(B); see KastKernel.h.
  double evaluateNormalized(const WeightedString &A,
                            const WeightedString &B) const;
};

} // namespace kast

#endif // KAST_CORE_STRINGKERNEL_H
