//===- core/Token.cpp - Weighted tokens and strings ------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Token.h"

using namespace kast;

LiteralId TokenTable::intern(const std::string &Literal) {
  auto It = Index.find(Literal);
  if (It != Index.end())
    return It->second;
  LiteralId Id = static_cast<LiteralId>(Literals.size());
  Literals.push_back(Literal);
  Index.emplace(Literal, Id);
  return Id;
}

LiteralId TokenTable::lookup(const std::string &Literal) const {
  auto It = Index.find(Literal);
  return It == Index.end() ? ~static_cast<LiteralId>(0) : It->second;
}

void WeightedString::append(const std::string &Literal, uint64_t Weight) {
  assert(Table && "appending to a string with no token table");
  append(Table->intern(Literal), Weight);
}

void WeightedString::append(LiteralId Id, uint64_t Weight) {
  Ids.push_back(Id);
  Weights.push_back(Weight);
  invalidateCache();
}

void WeightedString::ensurePrefixWeights() const {
  if (PrefixWeight.size() == Weights.size() + 1)
    return;
  PrefixWeight.resize(Weights.size() + 1);
  PrefixWeight[0] = 0;
  for (size_t I = 0; I < Weights.size(); ++I)
    PrefixWeight[I + 1] = PrefixWeight[I] + Weights[I];
}

uint64_t WeightedString::totalWeight() const {
  return rangeWeight(0, size());
}

uint64_t WeightedString::rangeWeight(size_t Begin, size_t End) const {
  assert(Begin <= End && End <= size() && "bad token range");
  ensurePrefixWeights();
  return PrefixWeight[End] - PrefixWeight[Begin];
}

uint64_t WeightedString::filteredWeight(uint64_t MinWeight) const {
  uint64_t Sum = 0;
  for (uint64_t W : Weights)
    if (W >= MinWeight)
      Sum += W;
  return Sum;
}
