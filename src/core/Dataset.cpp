//===- core/Dataset.cpp - Labeled string corpora ---------------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Dataset.h"

#include <algorithm>

using namespace kast;

void LabeledDataset::add(WeightedString String, std::string Label) {
  Strings.push_back(std::move(String));
  Labels.push_back(std::move(Label));
}

std::vector<std::string> LabeledDataset::labelSet() const {
  std::vector<std::string> Set;
  for (const std::string &L : Labels)
    if (std::find(Set.begin(), Set.end(), L) == Set.end())
      Set.push_back(L);
  return Set;
}

std::vector<size_t> LabeledDataset::indicesOf(const std::string &Label) const {
  std::vector<size_t> Indices;
  for (size_t I = 0; I < Labels.size(); ++I)
    if (Labels[I] == Label)
      Indices.push_back(I);
  return Indices;
}

std::map<std::string, size_t> LabeledDataset::labelCounts() const {
  std::map<std::string, size_t> Counts;
  for (const std::string &L : Labels)
    ++Counts[L];
  return Counts;
}
