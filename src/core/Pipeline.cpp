//===- core/Pipeline.cpp - Trace to weighted string pipeline ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

using namespace kast;

Pipeline::Pipeline(PipelineOptions Options)
    : Opts(std::move(Options)), Table(TokenTable::create()) {}

Pipeline Pipeline::withBytes() { return Pipeline(); }

Pipeline Pipeline::withoutBytes() {
  PipelineOptions Options;
  Options.Builder.IgnoreBytes = true;
  return Pipeline(std::move(Options));
}

WeightedString Pipeline::convert(const Trace &T) const {
  return convertDetailed(T).String;
}

std::vector<WeightedString>
Pipeline::convertAll(const std::vector<Trace> &Ts) const {
  std::vector<WeightedString> Strings;
  Strings.reserve(Ts.size());
  for (const Trace &T : Ts)
    Strings.push_back(convert(T));
  return Strings;
}

PipelineResult Pipeline::convertDetailed(const Trace &T) const {
  PipelineResult Result;
  Result.Tree = buildTree(T, Opts.Builder);
  Result.Stats = compressTree(Result.Tree, Opts.Compressor);
  Result.String = flattenTree(Result.Tree, Table, Opts.Flatten);
  Result.String.setName(T.name());
  return Result;
}
