//===- core/KastKernel.cpp - The Kast Spectrum Kernel ----------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/KastKernel.h"
#include "core/Matcher.h"

#include <cassert>
#include <map>

using namespace kast;

KastSpectrumKernel::KastSpectrumKernel(KastKernelOptions Options)
    : Options(Options) {}

std::string KastSpectrumKernel::name() const {
  return "kast-spectrum(cut=" + std::to_string(Options.CutWeight) + ")";
}

namespace {

/// Per-string precomputation: the suffix automaton of the reversed
/// literal sequence, i.e. the partner index findMaximalMatches needs.
struct KastPrecomputation final : KernelPrecomputation {
  explicit KastPrecomputation(const WeightedString &X)
      : ReversedSam(reversed(X.literalIds())) {}

  SuffixAutomaton ReversedSam;
};

} // namespace

/// Collects the distinct literal sequences of all maximal match
/// occurrences in both directions. \p RevA / \p RevB are optional
/// cached automata of the reversed sequences.
static std::map<std::vector<uint32_t>, KastFeature>
collectCandidates(const WeightedString &A, const WeightedString &B,
                  bool UseReferenceMatcher, const SuffixAutomaton *RevA,
                  const SuffixAutomaton *RevB) {
  const std::vector<uint32_t> &IdsA = A.literalIds();
  const std::vector<uint32_t> &IdsB = B.literalIds();

  std::vector<MaximalMatch> InA, InB;
  if (UseReferenceMatcher) {
    InA = findMaximalMatchesDP(IdsA, IdsB);
    InB = findMaximalMatchesDP(IdsB, IdsA);
  } else {
    std::unique_ptr<SuffixAutomaton> OwnedRevA, OwnedRevB;
    if (!RevB) {
      OwnedRevB = std::make_unique<SuffixAutomaton>(reversed(IdsB));
      RevB = OwnedRevB.get();
    }
    if (!RevA) {
      OwnedRevA = std::make_unique<SuffixAutomaton>(reversed(IdsA));
      RevA = OwnedRevA.get();
    }
    InA = findMaximalMatches(IdsA, *RevB);
    InB = findMaximalMatches(IdsB, *RevA);
  }

  std::map<std::vector<uint32_t>, KastFeature> Candidates;
  auto Insert = [&Candidates](const std::vector<uint32_t> &Ids,
                              const MaximalMatch &M) {
    std::vector<uint32_t> Key(Ids.begin() + M.Begin, Ids.begin() + M.End);
    auto It = Candidates.find(Key);
    if (It == Candidates.end()) {
      KastFeature F;
      F.Literals = Key;
      Candidates.emplace(std::move(Key), std::move(F));
    }
  };
  for (const MaximalMatch &M : InA)
    Insert(IdsA, M);
  for (const MaximalMatch &M : InB)
    Insert(IdsB, M);
  return Candidates;
}

/// Accumulates qualifying occurrences of \p Feature in \p X under the
/// cut policy; \returns {summed weight, count}.
static std::pair<uint64_t, size_t>
scoreOccurrences(const WeightedString &X,
                 const std::vector<uint32_t> &Pattern, uint64_t CutWeight,
                 CutPolicy Policy) {
  uint64_t Sum = 0;
  size_t Count = 0;
  for (size_t Begin : findOccurrences(X.literalIds(), Pattern)) {
    uint64_t W = X.rangeWeight(Begin, Begin + Pattern.size());
    if (Policy == CutPolicy::PerOccurrence && W < CutWeight)
      continue;
    Sum += W;
    ++Count;
  }
  return {Sum, Count};
}

std::vector<KastFeature>
KastSpectrumKernel::featuresImpl(const WeightedString &A,
                                 const WeightedString &B,
                                 const SuffixAutomaton *RevA,
                                 const SuffixAutomaton *RevB) const {
  std::vector<KastFeature> Result;
  if (A.empty() || B.empty())
    return Result;
  assert(A.table().get() == B.table().get() &&
         "kernel arguments must share one token table");
  // §3.2: strings lighter than the cut weight are ignored entirely.
  if (A.totalWeight() < Options.CutWeight ||
      B.totalWeight() < Options.CutWeight)
    return Result;

  std::map<std::vector<uint32_t>, KastFeature> Candidates =
      collectCandidates(A, B, Options.UseReferenceMatcher, RevA, RevB);

  for (auto &[Key, Feature] : Candidates) {
    auto [WeightA, CountA] =
        scoreOccurrences(A, Key, Options.CutWeight, Options.Policy);
    auto [WeightB, CountB] =
        scoreOccurrences(B, Key, Options.CutWeight, Options.Policy);
    if (Options.Policy == CutPolicy::PerOccurrence) {
      if (CountA == 0 || CountB == 0)
        continue;
    } else {
      if (WeightA < Options.CutWeight || WeightB < Options.CutWeight)
        continue;
    }
    Feature.WeightInA = WeightA;
    Feature.WeightInB = WeightB;
    Feature.CountInA = CountA;
    Feature.CountInB = CountB;
    Result.push_back(std::move(Feature));
  }
  return Result;
}

std::vector<KastFeature>
KastSpectrumKernel::features(const WeightedString &A,
                             const WeightedString &B) const {
  return featuresImpl(A, B, nullptr, nullptr);
}

std::unique_ptr<KernelPrecomputation>
KastSpectrumKernel::precompute(const WeightedString &X) const {
  // The reference matcher never consults the automaton.
  if (Options.UseReferenceMatcher)
    return nullptr;
  return std::make_unique<KastPrecomputation>(X);
}

static double innerProduct(const std::vector<KastFeature> &Features) {
  double Sum = 0.0;
  for (const KastFeature &F : Features)
    Sum += static_cast<double>(F.WeightInA) *
           static_cast<double>(F.WeightInB);
  return Sum;
}

double KastSpectrumKernel::evaluate(const WeightedString &A,
                                    const WeightedString &B) const {
  return innerProduct(featuresImpl(A, B, nullptr, nullptr));
}

double KastSpectrumKernel::evaluatePrepared(
    const WeightedString &A, const KernelPrecomputation *PrepA,
    const WeightedString &B, const KernelPrecomputation *PrepB) const {
  const auto *CachedA = static_cast<const KastPrecomputation *>(PrepA);
  const auto *CachedB = static_cast<const KastPrecomputation *>(PrepB);
  return innerProduct(featuresImpl(A, B,
                                   CachedA ? &CachedA->ReversedSam : nullptr,
                                   CachedB ? &CachedB->ReversedSam : nullptr));
}
