//===- core/KernelProfile.cpp - Sparse feature profiles --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/KernelProfile.h"

#include <algorithm>

using namespace kast;

void KernelProfile::finalize() {
  std::sort(Entries.begin(), Entries.end(),
            [](const ProfileEntry &L, const ProfileEntry &R) {
              return L.Hash < R.Hash;
            });
  size_t Out = 0;
  for (size_t In = 0; In < Entries.size();) {
    uint64_t Hash = Entries[In].Hash;
    double Value = 0.0;
    while (In < Entries.size() && Entries[In].Hash == Hash)
      Value += Entries[In++].Value;
    if (Value != 0.0)
      Entries[Out++] = {Hash, Value};
  }
  Entries.resize(Out);
  // Build-time adds over-reserve (duplicates, growth doubling); a
  // finalized profile is long-lived corpus state, so give the slack
  // back rather than pinning it N-profiles-wide.
  Entries.shrink_to_fit();
}

double KernelProfile::dot(const KernelProfile &Rhs) const {
  const std::vector<ProfileEntry> &A = Entries;
  const std::vector<ProfileEntry> &B = Rhs.Entries;
  return detail::mergeJoinDot(
      A.size(), [&](size_t I) { return A[I].Hash; },
      [&](size_t I) { return A[I].Value; }, B.size(),
      [&](size_t J) { return B[J].Hash; },
      [&](size_t J) { return B[J].Value; });
}

