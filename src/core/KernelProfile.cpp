//===- core/KernelProfile.cpp - Sparse feature profiles --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/KernelProfile.h"

#include <algorithm>

using namespace kast;

void KernelProfile::finalize() {
  std::sort(Entries.begin(), Entries.end(),
            [](const ProfileEntry &L, const ProfileEntry &R) {
              return L.Hash < R.Hash;
            });
  size_t Out = 0;
  for (size_t In = 0; In < Entries.size();) {
    uint64_t Hash = Entries[In].Hash;
    double Value = 0.0;
    while (In < Entries.size() && Entries[In].Hash == Hash)
      Value += Entries[In++].Value;
    if (Value != 0.0)
      Entries[Out++] = {Hash, Value};
  }
  Entries.resize(Out);
}

double KernelProfile::dot(const KernelProfile &Rhs) const {
  double Sum = 0.0;
  size_t I = 0, J = 0;
  const std::vector<ProfileEntry> &A = Entries;
  const std::vector<ProfileEntry> &B = Rhs.Entries;
  while (I < A.size() && J < B.size()) {
    if (A[I].Hash < B[J].Hash)
      ++I;
    else if (B[J].Hash < A[I].Hash)
      ++J;
    else
      Sum += A[I++].Value * B[J++].Value;
  }
  return Sum;
}

