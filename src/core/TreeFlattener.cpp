//===- core/TreeFlattener.cpp - Tree to weighted string --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/TreeFlattener.h"
#include "core/PreorderEncoder.h"
#include "util/StringUtil.h"

using namespace kast;

/// Token literal for a leaf: "name[byteSig]".
static std::string leafLiteral(const PatternNode &Node) {
  return Node.nameLabel() + "[" + Node.byteLabel() + "]";
}

WeightedString kast::flattenTree(const PatternTree &Tree,
                                 const std::shared_ptr<TokenTable> &Table,
                                 const FlattenOptions &Options) {
  std::vector<PreorderItem> Items;
  Items.reserve(Tree.size());
  for (NodeId Id : Tree.preorder()) {
    const PatternNode &Node = Tree.node(Id);
    PreorderItem Item;
    Item.Depth = Tree.depth(Id);
    switch (Node.Kind) {
    case NodeKind::Root:
      Item.Literal = RootLiteral;
      break;
    case NodeKind::Handle:
      Item.Literal = HandleLiteral;
      break;
    case NodeKind::Block:
      Item.Literal = BlockLiteral;
      break;
    case NodeKind::Op:
      Item.Literal = leafLiteral(Node);
      Item.Weight = Node.Reps;
      break;
    }
    Items.push_back(std::move(Item));
  }
  PreorderEncodeOptions EncodeOptions;
  EncodeOptions.EmitTrailingLevelUp = Options.EmitTrailingLevelUp;
  return encodePreorder(Items, Table, EncodeOptions);
}

/// Splits "name[bytes]" into signatures; returns false on mismatch.
static bool parseLeafLiteral(const std::string &Literal, PatternNode &Node) {
  size_t Open = Literal.find('[');
  if (Open == std::string::npos || Literal.back() != ']' || Open == 0)
    return false;
  std::string Names = Literal.substr(0, Open);
  std::string Bytes = Literal.substr(Open + 1, Literal.size() - Open - 2);
  for (std::string_view Part : split(Names, '+')) {
    if (Part.empty())
      return false;
    Node.NameSig.emplace_back(Part);
  }
  for (std::string_view Part : split(Bytes, '+')) {
    std::optional<uint64_t> Value = parseUnsigned(Part);
    if (!Value)
      return false;
    Node.ByteSig.push_back(*Value);
  }
  return !Node.NameSig.empty() && !Node.ByteSig.empty();
}

Expected<PatternTree> kast::unflattenString(const WeightedString &S) {
  using Result = Expected<PatternTree>;
  if (S.empty())
    return Result::error("empty string has no tree");
  if (S.literal(0) != RootLiteral)
    return Result::error("string must start with [ROOT]");

  PatternTree Tree;
  NodeId Current = Tree.root(); // Last materialized node.
  uint64_t HandleCounter = 0;

  for (size_t I = 1; I < S.size(); ++I) {
    const std::string &Literal = S.literal(I);
    uint64_t Weight = S.weight(I);

    if (Literal == LevelUpLiteral) {
      if (I + 1 >= S.size())
        return Result::error("trailing [LEVEL_UP] token");
      // Ascend Weight levels; adjacency with the following token then
      // descends one level, so the next node's parent is Weight levels
      // above Current.
      for (uint64_t Step = 0; Step < Weight; ++Step) {
        if (Tree.node(Current).Parent == InvalidNodeId)
          return Result::error("[LEVEL_UP] ascends past the root at token " +
                               std::to_string(I));
        Current = Tree.node(Current).Parent;
      }
      continue;
    }

    // Any non-LEVEL_UP token is a child of Current.
    NodeId Parent = Current;
    if (Literal == RootLiteral)
      return Result::error("[ROOT] not at string start");
    if (Literal == HandleLiteral) {
      if (Tree.node(Parent).Kind != NodeKind::Root)
        return Result::error("[HANDLE] not under [ROOT] at token " +
                             std::to_string(I));
      Current = Tree.addChild(Parent, NodeKind::Handle);
      Tree.node(Current).Handle = HandleCounter++;
      continue;
    }
    if (Literal == BlockLiteral) {
      if (Tree.node(Parent).Kind != NodeKind::Handle)
        return Result::error("[BLOCK] not under [HANDLE] at token " +
                             std::to_string(I));
      Current = Tree.addChild(Parent, NodeKind::Block);
      continue;
    }
    // Leaf.
    if (Tree.node(Parent).Kind != NodeKind::Block)
      return Result::error("operation token outside a [BLOCK] at token " +
                           std::to_string(I));
    PatternNode Leaf;
    if (!parseLeafLiteral(Literal, Leaf))
      return Result::error("malformed leaf literal '" + Literal + "'");
    Current = Tree.addOp(Parent, "", 0);
    PatternNode &Slot = Tree.node(Current);
    Slot.NameSig = std::move(Leaf.NameSig);
    Slot.ByteSig = std::move(Leaf.ByteSig);
    Slot.Reps = Weight;
  }
  return Tree;
}
