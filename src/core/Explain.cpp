//===- core/Explain.cpp - Human-readable kernel explanations ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Explain.h"
#include "util/TextTable.h"

#include <algorithm>

using namespace kast;

KernelExplanation kast::explainKernel(const KastSpectrumKernel &Kernel,
                                      const WeightedString &A,
                                      const WeightedString &B) {
  KernelExplanation Out;
  Out.WeightA = A.totalWeight();
  Out.WeightB = B.totalWeight();

  const std::shared_ptr<TokenTable> &Table = A.table();
  for (const KastFeature &F : Kernel.features(A, B)) {
    FeatureContribution C;
    for (size_t I = 0; I < F.Literals.size(); ++I) {
      if (I != 0)
        C.Substring += ' ';
      C.Substring += Table->literal(F.Literals[I]);
    }
    C.Length = F.Literals.size();
    C.WeightInA = F.WeightInA;
    C.WeightInB = F.WeightInB;
    C.CountInA = F.CountInA;
    C.CountInB = F.CountInB;
    C.Contribution = static_cast<double>(F.WeightInA) *
                     static_cast<double>(F.WeightInB);
    Out.KernelValue += C.Contribution;
    Out.Features.push_back(std::move(C));
  }
  for (FeatureContribution &C : Out.Features)
    C.Share = Out.KernelValue > 0.0 ? C.Contribution / Out.KernelValue : 0.0;
  std::sort(Out.Features.begin(), Out.Features.end(),
            [](const FeatureContribution &L, const FeatureContribution &R) {
              if (L.Contribution != R.Contribution)
                return L.Contribution > R.Contribution;
              return L.Substring < R.Substring;
            });
  Out.NormalizedValue = Kernel.evaluateNormalized(A, B);
  return Out;
}

std::string kast::formatExplanation(const KernelExplanation &Explanation,
                                    size_t MaxRows) {
  TextTable Table;
  Table.setHeader({"shared substring", "len", "w(A)", "w(B)", "occ A",
                   "occ B", "contribution", "share"});
  size_t Rows = 0;
  for (const FeatureContribution &C : Explanation.Features) {
    if (MaxRows != 0 && Rows++ >= MaxRows) {
      Table.addRow({"... (" +
                        std::to_string(Explanation.Features.size() -
                                       MaxRows) +
                        " more)",
                    "", "", "", "", "", "", ""});
      break;
    }
    Table.addRow({C.Substring, std::to_string(C.Length),
                  std::to_string(C.WeightInA), std::to_string(C.WeightInB),
                  std::to_string(C.CountInA), std::to_string(C.CountInB),
                  formatDouble(C.Contribution, 1),
                  formatDouble(100.0 * C.Share, 1) + "%"});
  }
  std::string Out = Table.render();
  Out += "kernel value " + formatDouble(Explanation.KernelValue, 1) +
         ", normalized " + formatDouble(Explanation.NormalizedValue) +
         " (weights " + std::to_string(Explanation.WeightA) + " / " +
         std::to_string(Explanation.WeightB) + ")\n";
  return Out;
}
