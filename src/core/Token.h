//===- core/Token.h - Weighted tokens and strings --------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weighted-string representation at the heart of the paper
/// (§3.1-3.2): "A weighted string is a set of consecutive weighted
/// tokens"; a token has a literal part and a weight. Literals are
/// interned in a TokenTable shared across a corpus so that kernel
/// computations compare 32-bit symbols rather than text.
///
/// Conventions (see TreeFlattener):
///   [ROOT] [HANDLE] [BLOCK]   structural tokens, weight 1
///   name[bytes]               leaf token, weight = repetitions
///   [LEVEL_UP]                ascent marker, weight = levels jumped
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_TOKEN_H
#define KAST_CORE_TOKEN_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace kast {

/// Interned literal identifier.
using LiteralId = uint32_t;

/// Spellings of the structural literals.
inline constexpr const char *RootLiteral = "[ROOT]";
inline constexpr const char *HandleLiteral = "[HANDLE]";
inline constexpr const char *BlockLiteral = "[BLOCK]";
inline constexpr const char *LevelUpLiteral = "[LEVEL_UP]";

/// Bidirectional literal <-> id interning table.
///
/// One table is shared (via shared_ptr) by every WeightedString of a
/// corpus; ids are only comparable within one table.
class TokenTable {
public:
  /// \returns the id for \p Literal, interning it if new.
  LiteralId intern(const std::string &Literal);

  /// \returns the id if already interned, or ~0u.
  LiteralId lookup(const std::string &Literal) const;

  /// \returns the literal spelling of \p Id.
  const std::string &literal(LiteralId Id) const {
    assert(Id < Literals.size() && "literal id out of range");
    return Literals[Id];
  }

  size_t size() const { return Literals.size(); }

  /// Creates a fresh shared table.
  static std::shared_ptr<TokenTable> create() {
    return std::make_shared<TokenTable>();
  }

private:
  std::vector<std::string> Literals;
  std::unordered_map<std::string, LiteralId> Index;
};

/// One weighted token (id + weight) as a value pair.
struct Token {
  LiteralId Literal = 0;
  uint64_t Weight = 1;

  bool operator==(const Token &Rhs) const = default;
};

/// A sequence of weighted tokens over a shared TokenTable.
///
/// Storage is struct-of-arrays: the matcher walks the literal ids
/// alone, and occurrence weights are O(1) via a prefix-sum table that
/// is built lazily on first use and invalidated by mutation.
class WeightedString {
public:
  WeightedString() = default;
  explicit WeightedString(std::shared_ptr<TokenTable> Table,
                          std::string Name = "")
      : Table(std::move(Table)), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  const std::shared_ptr<TokenTable> &table() const { return Table; }

  size_t size() const { return Ids.size(); }
  bool empty() const { return Ids.empty(); }

  /// Appends a token by literal spelling.
  void append(const std::string &Literal, uint64_t Weight);

  /// Appends a token by pre-interned id.
  void append(LiteralId Id, uint64_t Weight);

  LiteralId literalId(size_t I) const {
    assert(I < Ids.size() && "token index out of range");
    return Ids[I];
  }
  const std::string &literal(size_t I) const {
    assert(Table && "string has no token table");
    return Table->literal(literalId(I));
  }
  uint64_t weight(size_t I) const {
    assert(I < Weights.size() && "token index out of range");
    return Weights[I];
  }
  Token token(size_t I) const { return {literalId(I), weight(I)}; }

  const std::vector<LiteralId> &literalIds() const { return Ids; }
  const std::vector<uint64_t> &weights() const { return Weights; }

  /// Total weight of the string — "the summation of the weights of its
  /// tokens" (§3.2).
  uint64_t totalWeight() const;

  /// Sum of token weights over [Begin, End).
  uint64_t rangeWeight(size_t Begin, size_t End) const;

  /// Paper §3.2 weight_{w>=n}: sum of the weights of the tokens whose
  /// individual weight is >= \p MinWeight.
  uint64_t filteredWeight(uint64_t MinWeight) const;

  /// Token-wise equality (same table assumed).
  bool operator==(const WeightedString &Rhs) const {
    return Ids == Rhs.Ids && Weights == Rhs.Weights;
  }

private:
  std::shared_ptr<TokenTable> Table;
  std::string Name;
  std::vector<LiteralId> Ids;
  std::vector<uint64_t> Weights;
  /// PrefixWeight[i] = sum of Weights[0..i); size = size()+1.
  mutable std::vector<uint64_t> PrefixWeight;

  void invalidateCache() { PrefixWeight.clear(); }
  void ensurePrefixWeights() const;
};

} // namespace kast

#endif // KAST_CORE_TOKEN_H
