//===- core/ProfileSerializer.h - Profile cache on disk --------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary, versioned serialization for kernel-profile collections —
/// the on-disk half of the retrieval pipeline: per-string profiles are
/// computed once, cached, and reloaded bit-exactly, so Gram growth
/// (KernelMatrix::appendRows) and index queries (index/ProfileIndex)
/// never rebuild a profile the corpus already paid for.
///
/// Two format versions share the magic (all integers little-endian,
/// doubles as IEEE-754 bit patterns — round-trips are bit-exact by
/// construction; `string` is a u32 byte length followed by the bytes):
///
/// v1 — record-wise (writeProfileCache; readers keep full support):
///
///   magic   8 bytes   "KASTPROF"
///   version u32       1
///   kernel  string    name() of the producing kernel
///   count   u64       number of records
///   record: name string, label string, nnz u64,
///           nnz × (hash u64, value-bits u64)
///
/// v2 — block layout mirroring core/ProfileStore's structure-of-arrays
/// arena (writeProfileStoreCache): the three arrays are single
/// contiguous blobs, so loading is three bulk reads straight into the
/// arena instead of count × nnz per-entry copies:
///
///   magic   8 bytes   "KASTPROF"
///   version u32       2
///   kernel  string
///   count   u64       number of profiles N
///   total   u64       total entries across all profiles
///   names   N × string
///   labels  N × string
///   offsets (N+1) × u64   CSR offsets (leading 0, last == total)
///   hashes  total × u64   one blob
///   values  total × u64   value bit patterns, one blob
///
/// Readers of either entry point accept both versions (a v1 file loads
/// into a store, a v2 file loads into records) and reject bad magic,
/// unknown versions, and truncated or inconsistent input with a
/// diagnostic Expected error.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_PROFILESERIALIZER_H
#define KAST_CORE_PROFILESERIALIZER_H

#include "core/KernelProfile.h"
#include "core/ProfileStore.h"
#include "core/StringColumn.h"
#include "util/Error.h"

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace kast {

/// The on-disk magic and the supported format versions.
inline constexpr char ProfileCacheMagic[8] = {'K', 'A', 'S', 'T',
                                              'P', 'R', 'O', 'F'};
inline constexpr uint32_t ProfileCacheVersion = 1;
inline constexpr uint32_t ProfileCacheVersionV2 = 2;

/// The v3 flat-image format (core/FlatImage) has its own magic so the
/// two readers can tell each other's files apart and point the caller
/// at the right entry point instead of reporting generic corruption.
/// Version 4 is version 3 plus the optional routing-arena sections
/// (assignments, centroid arrays, posting CSR); a writer emits 4 only
/// when those sections are present, so unrouted images stay
/// bit-identical to v3 and v3-only readers never see sections they
/// cannot name.
inline constexpr char FlatImageMagic[8] = {'K', 'A', 'S', 'T',
                                           'F', 'L', 'A', 'T'};
inline constexpr uint32_t FlatImageVersion = 3;
inline constexpr uint32_t FlatImageVersionRouted = 4;

/// Shared CSR validation seam for the v2 and v3 readers: \p Offsets
/// must hold \p Count elements (profile count + 1) with a leading 0,
/// non-decreasing values, and a final element equal to \p Total (the
/// entry count the header promised). Runs *before* any entry blob is
/// adopted or aliased, so a corrupt offset array can never become an
/// out-of-bounds profile view. Returns a corruption diagnostic naming
/// the first violation.
Status validateCsrOffsets(const uint64_t *Offsets, size_t Count,
                          uint64_t Total);

/// One cached profile with its provenance.
struct ProfileRecord {
  std::string Name;      ///< String/trace name ("A3.2").
  std::string Label;     ///< Category label ("A"); may be empty.
  KernelProfile Profile; ///< Finalized sparse feature vector.
};

/// A profile collection in the record-wise (v1-shaped) in-memory form.
struct ProfileCache {
  /// name() of the kernel that produced the profiles; profiles from
  /// different kernels are not comparable, so loaders verify this.
  std::string KernelName;
  std::vector<ProfileRecord> Records;
};

/// The routing tier flattened into serialization-neutral CSR arenas —
/// the canonical interchange form between the index layer (which fits
/// and queries routing) and the v4 flat image (which maps it). Every
/// array is an ArrayView aiming either into index-layer owned vectors
/// (export: kept alive by Backing aliasing the live routing object) or
/// into a mapped image (restore: kept alive by Backing holding the
/// MappedImage). core carries and serializes this struct; only
/// index/IndexService interprets it.
struct RoutingArenas {
  // Routing options, flattened to scalars (the "KASTIVIX" meta).
  double MaxDocFrequency = 1.0;
  uint64_t RerankBudget = 0;
  uint64_t DefaultNProbe = 0;
  bool QuantizedShortlist = true;
  uint64_t ClusterNumCentroids = 0;
  uint64_t ClusterMaxIterations = 8;
  uint64_t ClusterTrainingSample = 0;
  uint64_t ClusterSeed = 0;

  /// Profiles covered by the routing (== Assignments.size()); always
  /// the full store for embedded exports.
  uint64_t Covered = 0;
  /// Distinct features dropped by the df threshold at build time
  /// (diagnostic; rides along so a restored index reports it).
  uint64_t PrunedFeatures = 0;

  /// Cluster id per covered profile, values < Centroids.size().
  ArrayView<uint32_t> Assignments;
  /// Unit-norm sparse centroids (a small ProfileStore, owned or
  /// mapped).
  ProfileStore Centroids;

  // The inverted-index posting CSR (see index/InvertedIndex):
  /// Surviving feature hashes, cluster-major, sorted per cluster.
  ArrayView<uint64_t> FeatureHashes;
  /// Cluster C's features span FeatureHashes[ClusterBegin[C],
  /// ClusterBegin[C+1]); size Centroids.size() + 1.
  ArrayView<uint64_t> ClusterBegin;
  /// Feature F's postings span [PostingBegin[F], PostingBegin[F+1]);
  /// size FeatureHashes.size() + 1.
  ArrayView<uint64_t> PostingBegin;
  ArrayView<uint32_t> PostingIds;
  ArrayView<double> PostingValues;

  /// Keep-alive for whatever the views aim into.
  std::shared_ptr<const void> Backing;
};

/// A profile collection in the arena (v2-shaped) in-memory form:
/// per-profile names/labels alongside one ProfileStore.
struct ProfileStoreCache {
  std::string KernelName;
  StringColumn Names;  ///< size() == Store.size()
  StringColumn Labels; ///< size() == Store.size()
  ProfileStore Store;
  /// Opaque routing-sidecar bytes (the "KASTRTNG" wire format of
  /// index/InvertedIndex) carried through the v3 flat image so a
  /// routed shard restores by rebuilding posting lists from persisted
  /// assignments. core treats this as payload only —
  /// IndexService::fromShardCaches interprets it. Empty when the shard
  /// has no routing (always empty from the v1/v2 readers, which
  /// predate the field), and superseded by Routing when a v4 image
  /// carries full arenas.
  std::string RouteBlob;
  /// The routing tier as flat arenas — the v4 rebuild-free carrier.
  /// Null when the shard has no routing or the image predates the
  /// sections (the caller then falls back to RouteBlob, then to
  /// unrouted).
  std::shared_ptr<const RoutingArenas> Routing;
};

/// Writes one finalized profile (nnz + entries) to \p Out.
void writeProfile(const KernelProfile &P, std::ostream &Out);

/// Reads one profile written by writeProfile.
Expected<KernelProfile> readProfile(std::istream &In);

/// Writes the record-wise v1 format (magic, version, kernel name,
/// records) — kept for compatibility fixtures and differential tests;
/// new caches should use writeProfileStoreCache.
Status writeProfileCache(const ProfileCache &Cache, std::ostream &Out);

/// Reads a v1 or v2 cache into records, validating magic and version.
Expected<ProfileCache> readProfileCache(std::istream &In);

/// Writes the v2 block format: names, labels, then the store's three
/// arrays as contiguous blobs.
Status writeProfileStoreCache(const ProfileStoreCache &Cache,
                              std::ostream &Out);

/// Component-wise v2 writer — same bytes as the struct form, but the
/// caller keeps ownership (no arena copy to assemble a cache struct).
Status writeProfileStoreCache(const std::string &KernelName,
                              const std::vector<std::string> &Names,
                              const std::vector<std::string> &Labels,
                              const ProfileStore &Store, std::ostream &Out);

/// Reads a v1 or v2 cache into an arena. v2 loads the offset, hash and
/// value blobs with three bulk reads; v1 falls back to per-record
/// reads appended profile by profile.
Expected<ProfileStoreCache> readProfileStoreCache(std::istream &In);

/// File convenience wrappers over the stream forms.
Status writeProfileCacheFile(const ProfileCache &Cache,
                             const std::string &Path);
Expected<ProfileCache> readProfileCacheFile(const std::string &Path);
Status writeProfileStoreCacheFile(const ProfileStoreCache &Cache,
                                  const std::string &Path);
Status writeProfileStoreCacheFile(const std::string &KernelName,
                                  const std::vector<std::string> &Names,
                                  const std::vector<std::string> &Labels,
                                  const ProfileStore &Store,
                                  const std::string &Path);
Expected<ProfileStoreCache>
readProfileStoreCacheFile(const std::string &Path);

} // namespace kast

#endif // KAST_CORE_PROFILESERIALIZER_H
