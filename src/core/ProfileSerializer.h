//===- core/ProfileSerializer.h - Profile cache on disk --------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary, versioned serialization for KernelProfile and labeled
/// profile collections — the on-disk half of the retrieval pipeline:
/// per-string profiles are computed once, cached, and reloaded
/// bit-exactly, so Gram growth (KernelMatrix::appendRows) and index
/// queries (index/ProfileIndex) never rebuild a profile the corpus
/// already paid for.
///
/// File layout (all integers little-endian, doubles as IEEE-754 bit
/// patterns — round-trips are bit-exact by construction):
///
///   magic   8 bytes   "KASTPROF"
///   version u32       1
///   kernel  string    name() of the producing kernel
///   count   u64       number of records
///   record: name string, label string, nnz u64,
///           nnz × (hash u64, value-bits u64)
///
/// where `string` is a u32 byte length followed by the bytes. Readers
/// reject bad magic, unknown versions, and truncated input with a
/// diagnostic Expected error.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_PROFILESERIALIZER_H
#define KAST_CORE_PROFILESERIALIZER_H

#include "core/KernelProfile.h"
#include "util/Error.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace kast {

/// The on-disk magic and the current (only) format version.
inline constexpr char ProfileCacheMagic[8] = {'K', 'A', 'S', 'T',
                                              'P', 'R', 'O', 'F'};
inline constexpr uint32_t ProfileCacheVersion = 1;

/// One cached profile with its provenance.
struct ProfileRecord {
  std::string Name;      ///< String/trace name ("A3.2").
  std::string Label;     ///< Category label ("A"); may be empty.
  KernelProfile Profile; ///< Finalized sparse feature vector.
};

/// A profile collection as stored on disk.
struct ProfileCache {
  /// name() of the kernel that produced the profiles; profiles from
  /// different kernels are not comparable, so loaders verify this.
  std::string KernelName;
  std::vector<ProfileRecord> Records;
};

/// Writes one finalized profile (nnz + entries) to \p Out.
void writeProfile(const KernelProfile &P, std::ostream &Out);

/// Reads one profile written by writeProfile.
Expected<KernelProfile> readProfile(std::istream &In);

/// Writes the full cache (magic, version, kernel name, records).
Status writeProfileCache(const ProfileCache &Cache, std::ostream &Out);

/// Reads a cache, validating magic and version.
Expected<ProfileCache> readProfileCache(std::istream &In);

/// File convenience wrappers over the stream forms.
Status writeProfileCacheFile(const ProfileCache &Cache,
                             const std::string &Path);
Expected<ProfileCache> readProfileCacheFile(const std::string &Path);

} // namespace kast

#endif // KAST_CORE_PROFILESERIALIZER_H
