//===- core/ProfileSerializer.h - Profile cache on disk --------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary, versioned serialization for kernel-profile collections —
/// the on-disk half of the retrieval pipeline: per-string profiles are
/// computed once, cached, and reloaded bit-exactly, so Gram growth
/// (KernelMatrix::appendRows) and index queries (index/ProfileIndex)
/// never rebuild a profile the corpus already paid for.
///
/// Two format versions share the magic (all integers little-endian,
/// doubles as IEEE-754 bit patterns — round-trips are bit-exact by
/// construction; `string` is a u32 byte length followed by the bytes):
///
/// v1 — record-wise (writeProfileCache; readers keep full support):
///
///   magic   8 bytes   "KASTPROF"
///   version u32       1
///   kernel  string    name() of the producing kernel
///   count   u64       number of records
///   record: name string, label string, nnz u64,
///           nnz × (hash u64, value-bits u64)
///
/// v2 — block layout mirroring core/ProfileStore's structure-of-arrays
/// arena (writeProfileStoreCache): the three arrays are single
/// contiguous blobs, so loading is three bulk reads straight into the
/// arena instead of count × nnz per-entry copies:
///
///   magic   8 bytes   "KASTPROF"
///   version u32       2
///   kernel  string
///   count   u64       number of profiles N
///   total   u64       total entries across all profiles
///   names   N × string
///   labels  N × string
///   offsets (N+1) × u64   CSR offsets (leading 0, last == total)
///   hashes  total × u64   one blob
///   values  total × u64   value bit patterns, one blob
///
/// Readers of either entry point accept both versions (a v1 file loads
/// into a store, a v2 file loads into records) and reject bad magic,
/// unknown versions, and truncated or inconsistent input with a
/// diagnostic Expected error.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_PROFILESERIALIZER_H
#define KAST_CORE_PROFILESERIALIZER_H

#include "core/KernelProfile.h"
#include "core/ProfileStore.h"
#include "util/Error.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace kast {

/// The on-disk magic and the supported format versions.
inline constexpr char ProfileCacheMagic[8] = {'K', 'A', 'S', 'T',
                                              'P', 'R', 'O', 'F'};
inline constexpr uint32_t ProfileCacheVersion = 1;
inline constexpr uint32_t ProfileCacheVersionV2 = 2;

/// The v3 flat-image format (core/FlatImage) has its own magic so the
/// two readers can tell each other's files apart and point the caller
/// at the right entry point instead of reporting generic corruption.
inline constexpr char FlatImageMagic[8] = {'K', 'A', 'S', 'T',
                                           'F', 'L', 'A', 'T'};
inline constexpr uint32_t FlatImageVersion = 3;

/// Shared CSR validation seam for the v2 and v3 readers: \p Offsets
/// must hold \p Count elements (profile count + 1) with a leading 0,
/// non-decreasing values, and a final element equal to \p Total (the
/// entry count the header promised). Runs *before* any entry blob is
/// adopted or aliased, so a corrupt offset array can never become an
/// out-of-bounds profile view. Returns a corruption diagnostic naming
/// the first violation.
Status validateCsrOffsets(const uint64_t *Offsets, size_t Count,
                          uint64_t Total);

/// One cached profile with its provenance.
struct ProfileRecord {
  std::string Name;      ///< String/trace name ("A3.2").
  std::string Label;     ///< Category label ("A"); may be empty.
  KernelProfile Profile; ///< Finalized sparse feature vector.
};

/// A profile collection in the record-wise (v1-shaped) in-memory form.
struct ProfileCache {
  /// name() of the kernel that produced the profiles; profiles from
  /// different kernels are not comparable, so loaders verify this.
  std::string KernelName;
  std::vector<ProfileRecord> Records;
};

/// A profile collection in the arena (v2-shaped) in-memory form:
/// per-profile names/labels alongside one ProfileStore.
struct ProfileStoreCache {
  std::string KernelName;
  std::vector<std::string> Names;  ///< size() == Store.size()
  std::vector<std::string> Labels; ///< size() == Store.size()
  ProfileStore Store;
  /// Opaque routing-sidecar bytes (the "KASTRTNG" wire format of
  /// index/InvertedIndex) carried through the v3 flat image so a
  /// routed shard restores without a rebuild. core treats this as
  /// payload only — IndexService::fromShardCaches interprets it.
  /// Empty when the shard has no routing (always empty from the v1/v2
  /// readers, which predate the field).
  std::string RouteBlob;
};

/// Writes one finalized profile (nnz + entries) to \p Out.
void writeProfile(const KernelProfile &P, std::ostream &Out);

/// Reads one profile written by writeProfile.
Expected<KernelProfile> readProfile(std::istream &In);

/// Writes the record-wise v1 format (magic, version, kernel name,
/// records) — kept for compatibility fixtures and differential tests;
/// new caches should use writeProfileStoreCache.
Status writeProfileCache(const ProfileCache &Cache, std::ostream &Out);

/// Reads a v1 or v2 cache into records, validating magic and version.
Expected<ProfileCache> readProfileCache(std::istream &In);

/// Writes the v2 block format: names, labels, then the store's three
/// arrays as contiguous blobs.
Status writeProfileStoreCache(const ProfileStoreCache &Cache,
                              std::ostream &Out);

/// Component-wise v2 writer — same bytes as the struct form, but the
/// caller keeps ownership (no arena copy to assemble a cache struct).
Status writeProfileStoreCache(const std::string &KernelName,
                              const std::vector<std::string> &Names,
                              const std::vector<std::string> &Labels,
                              const ProfileStore &Store, std::ostream &Out);

/// Reads a v1 or v2 cache into an arena. v2 loads the offset, hash and
/// value blobs with three bulk reads; v1 falls back to per-record
/// reads appended profile by profile.
Expected<ProfileStoreCache> readProfileStoreCache(std::istream &In);

/// File convenience wrappers over the stream forms.
Status writeProfileCacheFile(const ProfileCache &Cache,
                             const std::string &Path);
Expected<ProfileCache> readProfileCacheFile(const std::string &Path);
Status writeProfileStoreCacheFile(const ProfileStoreCache &Cache,
                                  const std::string &Path);
Status writeProfileStoreCacheFile(const std::string &KernelName,
                                  const std::vector<std::string> &Names,
                                  const std::vector<std::string> &Labels,
                                  const ProfileStore &Store,
                                  const std::string &Path);
Expected<ProfileStoreCache>
readProfileStoreCacheFile(const std::string &Path);

} // namespace kast

#endif // KAST_CORE_PROFILESERIALIZER_H
