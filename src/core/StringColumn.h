//===- core/StringColumn.h - Dual-mode string storage ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A column of N strings (the per-profile names and labels of a
/// ProfileStoreCache) in the same two backing modes as ProfileStore:
///
///  - *owned*: a vector of std::strings — the result of push_back,
///    mutable, exactly the pre-v4 behavior;
///  - *mapped*: a CSR view over an externally owned byte image — the
///    (N+1) u64 offset table and character blob of a flat image's
///    NAMES/LABELS section, kept alive through a shared_ptr backing.
///
/// The mapped mode is what makes flat-image opens lazy about strings:
/// the reader validates the offset table once and hands back views;
/// no std::string is materialized until someone actually reads a name
/// (operator[] returns a string_view straight into the mapping).
/// For a service restart that answers queries, that is the difference
/// between O(N) small allocations at open and zero.
///
/// The first mutation (push_back) of a mapped column promotes it to
/// owned strings, mirroring ProfileStore's copy-on-write promotion;
/// the mapping itself is never written through.
///
/// std::hash<std::string_view> and std::hash<std::string> are
/// guaranteed to agree on equal character sequences, so name-hash
/// routing (IndexService::shardOf) is stable across backing modes.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_STRINGCOLUMN_H
#define KAST_CORE_STRINGCOLUMN_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace kast {

class StringColumn {
public:
  StringColumn() = default;
  /*implicit*/ StringColumn(std::vector<std::string> Strings)
      : Owned(std::move(Strings)), Count(Owned.size()) {}

  /// Non-owning construction over a validated string table: \p Offsets
  /// is (Count+1) u64s (leading 0, non-decreasing), \p Blob the
  /// concatenated bytes, both alive through \p Backing. The flat-image
  /// reader validates the table before calling in.
  static StringColumn fromMapped(const uint64_t *Offsets, const char *Blob,
                                 size_t Count,
                                 std::shared_ptr<const void> Backing) {
    StringColumn C;
    C.OffsetsP = Offsets;
    C.BlobP = Blob;
    C.Count = Count;
    C.Backing = std::move(Backing);
    return C;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// True while the column views an external mapping; false once owned
  /// (initially, or after the promotion a push_back triggers).
  bool isMapped() const { return Backing != nullptr; }

  /// The string at \p I, decoded on access: a view into the mapping
  /// (mapped mode) or into the owned std::string (owned mode). Valid
  /// until the next mutation of this column.
  std::string_view operator[](size_t I) const {
    if (Backing) {
      const size_t Begin = static_cast<size_t>(OffsetsP[I]);
      return {BlobP + Begin, static_cast<size_t>(OffsetsP[I + 1]) - Begin};
    }
    return Owned[I];
  }

  /// Materialized copy of the string at \p I.
  std::string str(size_t I) const { return std::string((*this)[I]); }

  /// Appends a string; promotes a mapped column to owned first.
  void push_back(std::string_view S) {
    promote();
    Owned.emplace_back(S);
    Count = Owned.size();
  }

  /// Drops the last string; promotes a mapped column to owned first.
  void pop_back() {
    promote();
    Owned.pop_back();
    Count = Owned.size();
  }

  void clear() {
    Owned.clear();
    OffsetsP = nullptr;
    BlobP = nullptr;
    Count = 0;
    Backing.reset();
  }

  void reserve(size_t N) {
    promote();
    Owned.reserve(N);
  }

  /// All strings materialized — the compatibility seam for callers
  /// that still hold vector<std::string> (ProfileIndex).
  std::vector<std::string> toVector() const {
    std::vector<std::string> Out;
    Out.reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      Out.emplace_back((*this)[I]);
    return Out;
  }

  /// toVector() that moves owned strings out instead of copying
  /// (mapped columns still materialize); the column is left empty.
  std::vector<std::string> takeVector() {
    promote();
    std::vector<std::string> Out = std::move(Owned);
    clear();
    return Out;
  }

  friend bool operator==(const StringColumn &A, const StringColumn &B) {
    if (A.Count != B.Count)
      return false;
    for (size_t I = 0; I < A.Count; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }

  friend bool operator==(const StringColumn &A,
                         const std::vector<std::string> &B) {
    if (A.Count != B.size())
      return false;
    for (size_t I = 0; I < A.Count; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  }
  friend bool operator==(const std::vector<std::string> &A,
                         const StringColumn &B) {
    return B == A;
  }

private:
  /// Copy-on-write promotion: materializes mapped strings into owned
  /// std::strings and drops the backing. No-op when already owned.
  void promote() {
    if (!Backing)
      return;
    Owned.reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      Owned.emplace_back((*this)[I]);
    OffsetsP = nullptr;
    BlobP = nullptr;
    Backing.reset();
  }

  // Owned strings; unused (kept empty) while Backing is set.
  std::vector<std::string> Owned;
  // Mapped view: CSR offsets + character blob into Backing.
  const uint64_t *OffsetsP = nullptr;
  const char *BlobP = nullptr;
  size_t Count = 0;
  /// Non-null iff the views aim at an external mapping.
  std::shared_ptr<const void> Backing;
};

} // namespace kast

#endif // KAST_CORE_STRINGCOLUMN_H
