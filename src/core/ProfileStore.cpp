//===- core/ProfileStore.cpp - Arena-backed profile storage ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileStore.h"

#include "util/SimdDot.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace kast;

double kast::dot(const ProfileView &A, const ProfileView &B) {
  // Dense contiguous spans on both sides: this is the shape the
  // vectorized kernels exist for. simd::dotExact is bit-identical to
  // the scalar mergeJoinDot (pinned by tests/SimdDotTest.cpp), so the
  // Gram/retrieval bit-exactness contracts are unaffected.
  return simd::dotExact(A.Hashes, A.Values, A.Size, B.Hashes, B.Values,
                        B.Size);
}

double kast::dot(const ProfileView &A, const FlatProfile &B) {
  return simd::dotExact(A.Hashes, A.Values, A.Size, B.Hashes.data(),
                        B.Values.data(), B.Hashes.size());
}

double kast::dot(const ProfileView &A, const KernelProfile &B) {
  const std::vector<ProfileEntry> &Rhs = B.entries();
  return detail::mergeJoinDot(
      A.Size, [&](size_t I) { return A.Hashes[I]; },
      [&](size_t I) { return A.Values[I]; }, Rhs.size(),
      [&](size_t J) { return Rhs[J].Hash; },
      [&](size_t J) { return Rhs[J].Value; });
}

void FlatProfile::assign(const KernelProfile &P) {
  const std::vector<ProfileEntry> &Entries = P.entries();
  Hashes.resize(Entries.size());
  Values.resize(Entries.size());
  double SelfDot = 0.0;
  double AbsSum = 0.0;
  // Entry order, like KernelProfile::norm(), so Norm is bit-identical
  // to the staged profile's — both retrieval layers divide by it.
  for (size_t I = 0; I < Entries.size(); ++I) {
    Hashes[I] = Entries[I].Hash;
    Values[I] = Entries[I].Value;
    SelfDot += Entries[I].Value * Entries[I].Value;
    AbsSum += std::abs(Entries[I].Value);
  }
  Norm = std::sqrt(SelfDot);
  L1 = AbsSum;
}

QuantizedStore QuantizedStore::build(const ProfileStore &Store) {
  QuantizedStore Q;
  const std::vector<double> &Values = Store.values();
  const std::vector<uint64_t> &Offsets = Store.offsets();
  const size_t N = Store.size();
  Q.Values.resize(Values.size());
  Q.Offsets = Offsets;
  Q.Scales.resize(N);
  for (size_t I = 0; I < N; ++I) {
    const size_t Begin = static_cast<size_t>(Offsets[I]);
    const size_t End = static_cast<size_t>(Offsets[I + 1]);
    double MaxAbs = 0.0;
    for (size_t E = Begin; E < End; ++E)
      MaxAbs = std::max(MaxAbs, std::abs(Values[E]));
    // All-zero (or empty) profile: scale 0, all codes 0 — the
    // quantized dot is exactly 0, matching the exact dot.
    const double Scale = MaxAbs > 0.0 ? MaxAbs / 127.0 : 0.0;
    Q.Scales[I] = Scale;
    const double Inv = Scale > 0.0 ? 1.0 / Scale : 0.0;
    for (size_t E = Begin; E < End; ++E) {
      // |v| <= MaxAbs, so v/Scale rounds into [-127, 127] — no clamp
      // needed.
      Q.Values[E] = static_cast<int8_t>(std::lround(Values[E] * Inv));
    }
  }
  return Q;
}

void ProfileStore::buildQuantized() {
  if (!Quant)
    Quant = std::make_shared<const QuantizedStore>(QuantizedStore::build(*this));
}

size_t ProfileStore::append(const KernelProfile &Profile) {
  const std::vector<ProfileEntry> &Entries = Profile.entries();
  double SelfDot = 0.0;
  // No per-append reserve: an exact-size reserve beats geometric
  // growth only once, then forces a full arena copy on every later
  // append. push_back's doubling keeps N appends amortized O(total).
  for (const ProfileEntry &E : Entries) {
    assert((Hashes.size() == Offsets.back() || Hashes.back() < E.Hash) &&
           "profile must be finalized (sorted, coalesced)");
    Hashes.push_back(E.Hash);
    Values.push_back(E.Value);
    SelfDot += E.Value * E.Value;
  }
  Offsets.push_back(Hashes.size());
  SelfDots.push_back(SelfDot);
  Norms.push_back(std::sqrt(SelfDot));
  Quant.reset(); // sidecar mirrors the CSR layout; stale after append
  return size() - 1;
}

void ProfileStore::appendAll(const std::vector<KernelProfile> &Profiles) {
  if (empty()) {
    size_t TotalEntries = 0;
    for (const KernelProfile &P : Profiles)
      TotalEntries += P.size();
    reserve(Profiles.size(), TotalEntries);
  }
  for (const KernelProfile &P : Profiles)
    append(P);
}

size_t ProfileStore::appendFrom(const ProfileStore &Other, size_t I) {
  // Self-append would insert from iterators into the vector being
  // grown — a reallocation mid-insert reads freed memory.
  assert(this != &Other && "appendFrom cannot copy a store into itself");
  const size_t Begin = static_cast<size_t>(Other.Offsets[I]);
  const size_t End = static_cast<size_t>(Other.Offsets[I + 1]);
  Hashes.insert(Hashes.end(), Other.Hashes.begin() + Begin,
                Other.Hashes.begin() + End);
  Values.insert(Values.end(), Other.Values.begin() + Begin,
                Other.Values.begin() + End);
  Offsets.push_back(Hashes.size());
  SelfDots.push_back(Other.SelfDots[I]);
  Norms.push_back(Other.Norms[I]);
  Quant.reset();
  return size() - 1;
}

ProfileStore ProfileStore::adopt(std::vector<uint64_t> Hashes,
                                 std::vector<double> Values,
                                 std::vector<uint64_t> Offsets) {
  assert(!Offsets.empty() && Offsets.front() == 0 &&
         Offsets.back() == Hashes.size() && Hashes.size() == Values.size() &&
         "malformed CSR offsets");
  ProfileStore Store;
  Store.Hashes = std::move(Hashes);
  Store.Values = std::move(Values);
  Store.Offsets = std::move(Offsets);
  const size_t N = Store.size();
  Store.SelfDots.resize(N);
  Store.Norms.resize(N);
  for (size_t I = 0; I < N; ++I) {
    double SelfDot = 0.0;
    for (size_t E = Store.Offsets[I]; E < Store.Offsets[I + 1]; ++E)
      SelfDot += Store.Values[E] * Store.Values[E];
    Store.SelfDots[I] = SelfDot;
    Store.Norms[I] = std::sqrt(SelfDot);
  }
  return Store;
}

void ProfileStore::reserve(size_t Profiles, size_t Entries) {
  Offsets.reserve(Profiles + 1);
  SelfDots.reserve(Profiles);
  Norms.reserve(Profiles);
  Hashes.reserve(Entries);
  Values.reserve(Entries);
}

KernelProfile ProfileStore::materialize(size_t I) const {
  KernelProfile P;
  P.reserve(Offsets[I + 1] - Offsets[I]);
  // The arena already holds finalized (sorted, coalesced) entries, so
  // plain adds reproduce the profile bit-exactly; no re-finalize.
  for (size_t E = Offsets[I]; E < Offsets[I + 1]; ++E)
    P.add(Hashes[E], Values[E]);
  return P;
}

bool ProfileStore::isFinalized() const {
  for (size_t I = 0; I < size(); ++I)
    for (size_t E = Offsets[I] + 1; E < Offsets[I + 1]; ++E)
      if (Hashes[E - 1] >= Hashes[E])
        return false;
  return true;
}
