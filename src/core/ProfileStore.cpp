//===- core/ProfileStore.cpp - Arena-backed profile storage ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileStore.h"

#include "util/SimdDot.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace kast;

double kast::dot(const ProfileView &A, const ProfileView &B) {
  // Dense contiguous spans on both sides: this is the shape the
  // vectorized kernels exist for. simd::dotExact is bit-identical to
  // the scalar mergeJoinDot (pinned by tests/SimdDotTest.cpp), so the
  // Gram/retrieval bit-exactness contracts are unaffected.
  return simd::dotExact(A.Hashes, A.Values, A.Size, B.Hashes, B.Values,
                        B.Size);
}

double kast::dot(const ProfileView &A, const FlatProfile &B) {
  return simd::dotExact(A.Hashes, A.Values, A.Size, B.Hashes.data(),
                        B.Values.data(), B.Hashes.size());
}

double kast::dot(const ProfileView &A, const KernelProfile &B) {
  const std::vector<ProfileEntry> &Rhs = B.entries();
  return detail::mergeJoinDot(
      A.Size, [&](size_t I) { return A.Hashes[I]; },
      [&](size_t I) { return A.Values[I]; }, Rhs.size(),
      [&](size_t J) { return Rhs[J].Hash; },
      [&](size_t J) { return Rhs[J].Value; });
}

void FlatProfile::assign(const KernelProfile &P) {
  const std::vector<ProfileEntry> &Entries = P.entries();
  Hashes.resize(Entries.size());
  Values.resize(Entries.size());
  double SelfDot = 0.0;
  double AbsSum = 0.0;
  // Entry order, like KernelProfile::norm(), so Norm is bit-identical
  // to the staged profile's — both retrieval layers divide by it.
  for (size_t I = 0; I < Entries.size(); ++I) {
    Hashes[I] = Entries[I].Hash;
    Values[I] = Entries[I].Value;
    SelfDot += Entries[I].Value * Entries[I].Value;
    AbsSum += std::abs(Entries[I].Value);
  }
  Norm = std::sqrt(SelfDot);
  L1 = AbsSum;
}

//===----------------------------------------------------------------------===//
// QuantizedStore
//===----------------------------------------------------------------------===//

void QuantizedStore::syncOwned() {
  ValuesP = ValuesOwned.data();
  OffsetsP = OffsetsOwned.data();
  ScalesP = ScalesOwned.data();
  NumProfiles = OffsetsOwned.size() - 1;
  NumEntries = ValuesOwned.size();
}

QuantizedStore::QuantizedStore(const QuantizedStore &Other)
    : ValuesOwned(Other.ValuesOwned), OffsetsOwned(Other.OffsetsOwned),
      ScalesOwned(Other.ScalesOwned), Backing(Other.Backing) {
  if (Backing) {
    // Mapped mode: share the external arrays (and their keep-alive)
    // instead of copying — copies of a mapped sidecar stay O(1).
    ValuesP = Other.ValuesP;
    OffsetsP = Other.OffsetsP;
    ScalesP = Other.ScalesP;
    NumProfiles = Other.NumProfiles;
    NumEntries = Other.NumEntries;
  } else {
    syncOwned();
  }
}

QuantizedStore &QuantizedStore::operator=(const QuantizedStore &Other) {
  if (this != &Other) {
    QuantizedStore Tmp(Other);
    *this = std::move(Tmp);
  }
  return *this;
}

QuantizedStore::QuantizedStore(QuantizedStore &&Other) noexcept
    : ValuesOwned(std::move(Other.ValuesOwned)),
      OffsetsOwned(std::move(Other.OffsetsOwned)),
      ScalesOwned(std::move(Other.ScalesOwned)),
      Backing(std::move(Other.Backing)) {
  if (Backing) {
    ValuesP = Other.ValuesP;
    OffsetsP = Other.OffsetsP;
    ScalesP = Other.ScalesP;
    NumProfiles = Other.NumProfiles;
    NumEntries = Other.NumEntries;
  } else {
    // Vector moves transfer the heap buffers, so re-aiming at our own
    // vectors lands on the same bytes the source pointed at.
    syncOwned();
  }
  Other.ValuesOwned.clear();
  Other.OffsetsOwned.assign(1, 0);
  Other.ScalesOwned.clear();
  Other.Backing.reset();
  Other.syncOwned();
}

QuantizedStore &QuantizedStore::operator=(QuantizedStore &&Other) noexcept {
  if (this != &Other) {
    ValuesOwned = std::move(Other.ValuesOwned);
    OffsetsOwned = std::move(Other.OffsetsOwned);
    ScalesOwned = std::move(Other.ScalesOwned);
    Backing = std::move(Other.Backing);
    if (Backing) {
      ValuesP = Other.ValuesP;
      OffsetsP = Other.OffsetsP;
      ScalesP = Other.ScalesP;
      NumProfiles = Other.NumProfiles;
      NumEntries = Other.NumEntries;
    } else {
      syncOwned();
    }
    Other.ValuesOwned.clear();
    Other.OffsetsOwned.assign(1, 0);
    Other.ScalesOwned.clear();
    Other.Backing.reset();
    Other.syncOwned();
  }
  return *this;
}

QuantizedStore QuantizedStore::build(const ProfileStore &Store) {
  QuantizedStore Q;
  const ArrayView<double> Values = Store.values();
  const ArrayView<uint64_t> Offsets = Store.offsets();
  const size_t N = Store.size();
  Q.ValuesOwned.resize(Values.size());
  Q.OffsetsOwned.assign(Offsets.begin(), Offsets.end());
  Q.ScalesOwned.resize(N);
  for (size_t I = 0; I < N; ++I) {
    const size_t Begin = static_cast<size_t>(Offsets[I]);
    const size_t End = static_cast<size_t>(Offsets[I + 1]);
    double MaxAbs = 0.0;
    for (size_t E = Begin; E < End; ++E)
      MaxAbs = std::max(MaxAbs, std::abs(Values[E]));
    // All-zero (or empty) profile: scale 0, all codes 0 — the
    // quantized dot is exactly 0, matching the exact dot.
    const double Scale = MaxAbs > 0.0 ? MaxAbs / 127.0 : 0.0;
    Q.ScalesOwned[I] = Scale;
    const double Inv = Scale > 0.0 ? 1.0 / Scale : 0.0;
    for (size_t E = Begin; E < End; ++E) {
      // |v| <= MaxAbs, so v/Scale rounds into [-127, 127] — no clamp
      // needed.
      Q.ValuesOwned[E] = static_cast<int8_t>(std::lround(Values[E] * Inv));
    }
  }
  Q.syncOwned();
  return Q;
}

QuantizedStore QuantizedStore::fromMapped(
    const int8_t *Values, const uint64_t *Offsets, const double *Scales,
    size_t Profiles, size_t Entries, std::shared_ptr<const void> Backing) {
  assert(Backing && "mapped sidecar needs a keep-alive");
  QuantizedStore Q;
  Q.ValuesP = Values;
  Q.OffsetsP = Offsets;
  Q.ScalesP = Scales;
  Q.NumProfiles = Profiles;
  Q.NumEntries = Entries;
  Q.Backing = std::move(Backing);
  return Q;
}

//===----------------------------------------------------------------------===//
// ProfileStore
//===----------------------------------------------------------------------===//

void ProfileStore::syncOwned() {
  HashesP = HashesOwned.data();
  ValuesP = ValuesOwned.data();
  OffsetsP = OffsetsOwned.data();
  SelfDotsP = SelfDotsOwned.data();
  NormsP = NormsOwned.data();
  NumProfiles = OffsetsOwned.size() - 1;
  NumEntries = HashesOwned.size();
}

void ProfileStore::promote() {
  if (!Backing)
    return;
  HashesOwned.assign(HashesP, HashesP + NumEntries);
  ValuesOwned.assign(ValuesP, ValuesP + NumEntries);
  OffsetsOwned.assign(OffsetsP, OffsetsP + NumProfiles + 1);
  SelfDotsOwned.assign(SelfDotsP, SelfDotsP + NumProfiles);
  NormsOwned.assign(NormsP, NormsP + NumProfiles);
  Backing.reset();
  syncOwned();
}

void ProfileStore::moveFrom(ProfileStore &&Other) noexcept {
  HashesOwned = std::move(Other.HashesOwned);
  ValuesOwned = std::move(Other.ValuesOwned);
  OffsetsOwned = std::move(Other.OffsetsOwned);
  SelfDotsOwned = std::move(Other.SelfDotsOwned);
  NormsOwned = std::move(Other.NormsOwned);
  Backing = std::move(Other.Backing);
  Quant = std::move(Other.Quant);
  if (Backing) {
    HashesP = Other.HashesP;
    ValuesP = Other.ValuesP;
    OffsetsP = Other.OffsetsP;
    SelfDotsP = Other.SelfDotsP;
    NormsP = Other.NormsP;
    NumProfiles = Other.NumProfiles;
    NumEntries = Other.NumEntries;
  } else {
    // Vector moves transfer the heap buffers wholesale; syncing to our
    // own (just-moved-into) vectors lands on the same bytes.
    syncOwned();
  }
  Other.HashesOwned.clear();
  Other.ValuesOwned.clear();
  Other.OffsetsOwned.assign(1, 0);
  Other.SelfDotsOwned.clear();
  Other.NormsOwned.clear();
  Other.Backing.reset();
  Other.Quant.reset();
  Other.syncOwned();
}

ProfileStore::ProfileStore(const ProfileStore &Other)
    : HashesOwned(Other.HashesOwned), ValuesOwned(Other.ValuesOwned),
      OffsetsOwned(Other.OffsetsOwned), SelfDotsOwned(Other.SelfDotsOwned),
      NormsOwned(Other.NormsOwned), Backing(Other.Backing),
      Quant(Other.Quant) {
  if (Backing) {
    // Mapped mode: the copy shares the mapping (and its keep-alive),
    // so copying a mapped store is O(1) — the property that makes
    // snapshot publication cheap over image-backed segments.
    HashesP = Other.HashesP;
    ValuesP = Other.ValuesP;
    OffsetsP = Other.OffsetsP;
    SelfDotsP = Other.SelfDotsP;
    NormsP = Other.NormsP;
    NumProfiles = Other.NumProfiles;
    NumEntries = Other.NumEntries;
  } else {
    syncOwned();
  }
}

ProfileStore &ProfileStore::operator=(const ProfileStore &Other) {
  if (this != &Other) {
    ProfileStore Tmp(Other);
    moveFrom(std::move(Tmp));
  }
  return *this;
}

ProfileStore::ProfileStore(ProfileStore &&Other) noexcept {
  moveFrom(std::move(Other));
}

ProfileStore &ProfileStore::operator=(ProfileStore &&Other) noexcept {
  if (this != &Other)
    moveFrom(std::move(Other));
  return *this;
}

void ProfileStore::buildQuantized() {
  if (!Quant)
    Quant = std::make_shared<const QuantizedStore>(QuantizedStore::build(*this));
}

void ProfileStore::adoptQuantized(std::shared_ptr<const QuantizedStore> Q) {
  assert(Q && Q->size() == size() && Q->entryCount() == entryCount() &&
         "quantized sidecar must mirror the store's CSR layout");
  Quant = std::move(Q);
}

size_t ProfileStore::append(const KernelProfile &Profile) {
  promote();
  const std::vector<ProfileEntry> &Entries = Profile.entries();
  double SelfDot = 0.0;
  // No per-append reserve: an exact-size reserve beats geometric
  // growth only once, then forces a full arena copy on every later
  // append. push_back's doubling keeps N appends amortized O(total).
  for (const ProfileEntry &E : Entries) {
    assert((HashesOwned.size() == OffsetsOwned.back() ||
            HashesOwned.back() < E.Hash) &&
           "profile must be finalized (sorted, coalesced)");
    HashesOwned.push_back(E.Hash);
    ValuesOwned.push_back(E.Value);
    SelfDot += E.Value * E.Value;
  }
  OffsetsOwned.push_back(HashesOwned.size());
  SelfDotsOwned.push_back(SelfDot);
  NormsOwned.push_back(std::sqrt(SelfDot));
  Quant.reset(); // sidecar mirrors the CSR layout; stale after append
  syncOwned();
  return size() - 1;
}

void ProfileStore::appendAll(const std::vector<KernelProfile> &Profiles) {
  if (empty()) {
    size_t TotalEntries = 0;
    for (const KernelProfile &P : Profiles)
      TotalEntries += P.size();
    reserve(Profiles.size(), TotalEntries);
  }
  for (const KernelProfile &P : Profiles)
    append(P);
}

size_t ProfileStore::appendFrom(const ProfileStore &Other, size_t I) {
  // Self-append would insert from iterators into the vector being
  // grown — a reallocation mid-insert reads freed memory.
  assert(this != &Other && "appendFrom cannot copy a store into itself");
  promote();
  const size_t Begin = static_cast<size_t>(Other.OffsetsP[I]);
  const size_t End = static_cast<size_t>(Other.OffsetsP[I + 1]);
  HashesOwned.insert(HashesOwned.end(), Other.HashesP + Begin,
                     Other.HashesP + End);
  ValuesOwned.insert(ValuesOwned.end(), Other.ValuesP + Begin,
                     Other.ValuesP + End);
  OffsetsOwned.push_back(HashesOwned.size());
  SelfDotsOwned.push_back(Other.SelfDotsP[I]);
  NormsOwned.push_back(Other.NormsP[I]);
  Quant.reset();
  syncOwned();
  return size() - 1;
}

ProfileStore ProfileStore::adopt(std::vector<uint64_t> Hashes,
                                 std::vector<double> Values,
                                 std::vector<uint64_t> Offsets) {
  assert(!Offsets.empty() && Offsets.front() == 0 &&
         Offsets.back() == Hashes.size() && Hashes.size() == Values.size() &&
         "malformed CSR offsets");
  ProfileStore Store;
  Store.HashesOwned = std::move(Hashes);
  Store.ValuesOwned = std::move(Values);
  Store.OffsetsOwned = std::move(Offsets);
  Store.syncOwned();
  const size_t N = Store.size();
  Store.SelfDotsOwned.resize(N);
  Store.NormsOwned.resize(N);
  for (size_t I = 0; I < N; ++I) {
    double SelfDot = 0.0;
    for (size_t E = Store.OffsetsOwned[I]; E < Store.OffsetsOwned[I + 1]; ++E)
      SelfDot += Store.ValuesOwned[E] * Store.ValuesOwned[E];
    Store.SelfDotsOwned[I] = SelfDot;
    Store.NormsOwned[I] = std::sqrt(SelfDot);
  }
  Store.syncOwned();
  return Store;
}

ProfileStore ProfileStore::fromMapped(const uint64_t *Offsets,
                                      const uint64_t *Hashes,
                                      const double *Values,
                                      const double *SelfDots,
                                      const double *Norms, size_t Profiles,
                                      size_t Entries,
                                      std::shared_ptr<const void> Backing) {
  assert(Backing && "mapped store needs a keep-alive");
  assert(Offsets && Offsets[0] == 0 && Offsets[Profiles] == Entries &&
         "malformed CSR offsets");
  ProfileStore Store;
  Store.OffsetsP = Offsets;
  Store.HashesP = Hashes;
  Store.ValuesP = Values;
  Store.SelfDotsP = SelfDots;
  Store.NormsP = Norms;
  Store.NumProfiles = Profiles;
  Store.NumEntries = Entries;
  Store.Backing = std::move(Backing);
  return Store;
}

void ProfileStore::reserve(size_t Profiles, size_t Entries) {
  promote();
  OffsetsOwned.reserve(Profiles + 1);
  SelfDotsOwned.reserve(Profiles);
  NormsOwned.reserve(Profiles);
  HashesOwned.reserve(Entries);
  ValuesOwned.reserve(Entries);
  syncOwned();
}

KernelProfile ProfileStore::materialize(size_t I) const {
  KernelProfile P;
  P.reserve(OffsetsP[I + 1] - OffsetsP[I]);
  // The arena already holds finalized (sorted, coalesced) entries, so
  // plain adds reproduce the profile bit-exactly; no re-finalize.
  for (size_t E = OffsetsP[I]; E < OffsetsP[I + 1]; ++E)
    P.add(HashesP[E], ValuesP[E]);
  return P;
}

bool ProfileStore::isFinalized() const {
  for (size_t I = 0; I < size(); ++I)
    for (size_t E = OffsetsP[I] + 1; E < OffsetsP[I + 1]; ++E)
      if (HashesP[E - 1] >= HashesP[E])
        return false;
  return true;
}
