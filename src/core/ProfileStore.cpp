//===- core/ProfileStore.cpp - Arena-backed profile storage ----------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileStore.h"

#include <cassert>
#include <cmath>

using namespace kast;

double kast::dot(const ProfileView &A, const ProfileView &B) {
  return detail::mergeJoinDot(
      A.Size, [&](size_t I) { return A.Hashes[I]; },
      [&](size_t I) { return A.Values[I]; }, B.Size,
      [&](size_t J) { return B.Hashes[J]; },
      [&](size_t J) { return B.Values[J]; });
}

double kast::dot(const ProfileView &A, const KernelProfile &B) {
  const std::vector<ProfileEntry> &Rhs = B.entries();
  return detail::mergeJoinDot(
      A.Size, [&](size_t I) { return A.Hashes[I]; },
      [&](size_t I) { return A.Values[I]; }, Rhs.size(),
      [&](size_t J) { return Rhs[J].Hash; },
      [&](size_t J) { return Rhs[J].Value; });
}

size_t ProfileStore::append(const KernelProfile &Profile) {
  const std::vector<ProfileEntry> &Entries = Profile.entries();
  double SelfDot = 0.0;
  // No per-append reserve: an exact-size reserve beats geometric
  // growth only once, then forces a full arena copy on every later
  // append. push_back's doubling keeps N appends amortized O(total).
  for (const ProfileEntry &E : Entries) {
    assert((Hashes.size() == Offsets.back() || Hashes.back() < E.Hash) &&
           "profile must be finalized (sorted, coalesced)");
    Hashes.push_back(E.Hash);
    Values.push_back(E.Value);
    SelfDot += E.Value * E.Value;
  }
  Offsets.push_back(Hashes.size());
  SelfDots.push_back(SelfDot);
  Norms.push_back(std::sqrt(SelfDot));
  return size() - 1;
}

void ProfileStore::appendAll(const std::vector<KernelProfile> &Profiles) {
  if (empty()) {
    size_t TotalEntries = 0;
    for (const KernelProfile &P : Profiles)
      TotalEntries += P.size();
    reserve(Profiles.size(), TotalEntries);
  }
  for (const KernelProfile &P : Profiles)
    append(P);
}

size_t ProfileStore::appendFrom(const ProfileStore &Other, size_t I) {
  // Self-append would insert from iterators into the vector being
  // grown — a reallocation mid-insert reads freed memory.
  assert(this != &Other && "appendFrom cannot copy a store into itself");
  const size_t Begin = static_cast<size_t>(Other.Offsets[I]);
  const size_t End = static_cast<size_t>(Other.Offsets[I + 1]);
  Hashes.insert(Hashes.end(), Other.Hashes.begin() + Begin,
                Other.Hashes.begin() + End);
  Values.insert(Values.end(), Other.Values.begin() + Begin,
                Other.Values.begin() + End);
  Offsets.push_back(Hashes.size());
  SelfDots.push_back(Other.SelfDots[I]);
  Norms.push_back(Other.Norms[I]);
  return size() - 1;
}

ProfileStore ProfileStore::adopt(std::vector<uint64_t> Hashes,
                                 std::vector<double> Values,
                                 std::vector<uint64_t> Offsets) {
  assert(!Offsets.empty() && Offsets.front() == 0 &&
         Offsets.back() == Hashes.size() && Hashes.size() == Values.size() &&
         "malformed CSR offsets");
  ProfileStore Store;
  Store.Hashes = std::move(Hashes);
  Store.Values = std::move(Values);
  Store.Offsets = std::move(Offsets);
  const size_t N = Store.size();
  Store.SelfDots.resize(N);
  Store.Norms.resize(N);
  for (size_t I = 0; I < N; ++I) {
    double SelfDot = 0.0;
    for (size_t E = Store.Offsets[I]; E < Store.Offsets[I + 1]; ++E)
      SelfDot += Store.Values[E] * Store.Values[E];
    Store.SelfDots[I] = SelfDot;
    Store.Norms[I] = std::sqrt(SelfDot);
  }
  return Store;
}

void ProfileStore::reserve(size_t Profiles, size_t Entries) {
  Offsets.reserve(Profiles + 1);
  SelfDots.reserve(Profiles);
  Norms.reserve(Profiles);
  Hashes.reserve(Entries);
  Values.reserve(Entries);
}

KernelProfile ProfileStore::materialize(size_t I) const {
  KernelProfile P;
  P.reserve(Offsets[I + 1] - Offsets[I]);
  // The arena already holds finalized (sorted, coalesced) entries, so
  // plain adds reproduce the profile bit-exactly; no re-finalize.
  for (size_t E = Offsets[I]; E < Offsets[I + 1]; ++E)
    P.add(Hashes[E], Values[E]);
  return P;
}

bool ProfileStore::isFinalized() const {
  for (size_t I = 0; I < size(); ++I)
    for (size_t E = Offsets[I] + 1; E < Offsets[I + 1]; ++E)
      if (Hashes[E - 1] >= Hashes[E])
        return false;
  return true;
}
