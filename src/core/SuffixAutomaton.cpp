//===- core/SuffixAutomaton.cpp - SAM over token symbols -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/SuffixAutomaton.h"

#include <algorithm>
#include <cassert>

using namespace kast;

int32_t SuffixAutomaton::transition(int32_t StateIdx, uint32_t Symbol) const {
  const std::vector<std::pair<uint32_t, int32_t>> &Next =
      States[StateIdx].Next;
  auto It = std::lower_bound(
      Next.begin(), Next.end(), Symbol,
      [](const std::pair<uint32_t, int32_t> &P, uint32_t S) {
        return P.first < S;
      });
  if (It != Next.end() && It->first == Symbol)
    return It->second;
  return -1;
}

void SuffixAutomaton::addTransition(int32_t From, uint32_t Symbol,
                                    int32_t To) {
  std::vector<std::pair<uint32_t, int32_t>> &Next = States[From].Next;
  auto It = std::lower_bound(
      Next.begin(), Next.end(), Symbol,
      [](const std::pair<uint32_t, int32_t> &P, uint32_t S) {
        return P.first < S;
      });
  assert((It == Next.end() || It->first != Symbol) && "duplicate transition");
  Next.insert(It, {Symbol, To});
}

void SuffixAutomaton::setTransition(int32_t From, uint32_t Symbol,
                                    int32_t To) {
  std::vector<std::pair<uint32_t, int32_t>> &Next = States[From].Next;
  auto It = std::lower_bound(
      Next.begin(), Next.end(), Symbol,
      [](const std::pair<uint32_t, int32_t> &P, uint32_t S) {
        return P.first < S;
      });
  assert(It != Next.end() && It->first == Symbol && "missing transition");
  It->second = To;
}

int32_t SuffixAutomaton::extend(int32_t Last, uint32_t Symbol) {
  int32_t Current = static_cast<int32_t>(States.size());
  States.emplace_back();
  States[Current].Len = States[Last].Len + 1;

  int32_t P = Last;
  while (P != -1 && transition(P, Symbol) == -1) {
    addTransition(P, Symbol, Current);
    P = States[P].Link;
  }
  if (P == -1) {
    States[Current].Link = 0;
    return Current;
  }
  int32_t Q = transition(P, Symbol);
  if (States[P].Len + 1 == static_cast<size_t>(States[Q].Len)) {
    States[Current].Link = Q;
    return Current;
  }
  // Clone q into a state of the right length.
  int32_t Clone = static_cast<int32_t>(States.size());
  States.push_back(States[Q]);
  States[Clone].Len = States[P].Len + 1;
  while (P != -1 && transition(P, Symbol) == Q) {
    setTransition(P, Symbol, Clone);
    P = States[P].Link;
  }
  States[Q].Link = Clone;
  States[Current].Link = Clone;
  return Current;
}

SuffixAutomaton::SuffixAutomaton(const std::vector<uint32_t> &Sequence) {
  States.reserve(2 * Sequence.size() + 2);
  States.emplace_back(); // Initial state.
  int32_t Last = 0;
  for (uint32_t Symbol : Sequence)
    Last = extend(Last, Symbol);
}

bool SuffixAutomaton::containsFactor(
    const std::vector<uint32_t> &Factor) const {
  int32_t State = 0;
  for (uint32_t Symbol : Factor) {
    State = transition(State, Symbol);
    if (State == -1)
      return false;
  }
  return true;
}

std::vector<size_t> SuffixAutomaton::matchingStatisticsEnds(
    const std::vector<uint32_t> &Query) const {
  std::vector<size_t> Stats(Query.size(), 0);
  int32_t State = 0;
  size_t Length = 0;
  for (size_t J = 0; J < Query.size(); ++J) {
    uint32_t Symbol = Query[J];
    // Follow suffix links until a transition on Symbol exists.
    while (State != 0 && transition(State, Symbol) == -1) {
      State = States[State].Link;
      Length = States[State].Len;
    }
    int32_t To = transition(State, Symbol);
    if (To == -1) {
      // Not even from the initial state: no suffix ending at J matches.
      State = 0;
      Length = 0;
    } else {
      State = To;
      ++Length;
    }
    Stats[J] = Length;
  }
  return Stats;
}
