//===- core/Explain.h - Human-readable kernel explanations -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the explicit embedding the Kast Spectrum Kernel builds for
/// a pair of strings — which shared substrings exist, their weights on
/// each side, and their contribution to the kernel value. This is the
/// introspection counterpart of the paper's worked example (§3.2,
/// Eq. 1-13), and what examples/explain_similarity prints.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_EXPLAIN_H
#define KAST_CORE_EXPLAIN_H

#include "core/KastKernel.h"

#include <string>

namespace kast {

/// One row of an explanation: a feature with its contribution.
struct FeatureContribution {
  /// The shared substring, rendered as its token literals.
  std::string Substring;
  size_t Length = 0;
  uint64_t WeightInA = 0;
  uint64_t WeightInB = 0;
  size_t CountInA = 0;
  size_t CountInB = 0;
  /// WeightInA * WeightInB.
  double Contribution = 0.0;
  /// Contribution / k(A, B).
  double Share = 0.0;
};

/// Full explanation of one kernel evaluation.
struct KernelExplanation {
  /// Features sorted by descending contribution.
  std::vector<FeatureContribution> Features;
  double KernelValue = 0.0;
  double NormalizedValue = 0.0;
  uint64_t WeightA = 0;
  uint64_t WeightB = 0;
};

/// Computes the explanation of Kernel(A, B).
KernelExplanation explainKernel(const KastSpectrumKernel &Kernel,
                                const WeightedString &A,
                                const WeightedString &B);

/// Renders an explanation as a fixed-width table; at most \p MaxRows
/// features (0 = all).
std::string formatExplanation(const KernelExplanation &Explanation,
                              size_t MaxRows = 10);

} // namespace kast

#endif // KAST_CORE_EXPLAIN_H
