//===- core/PreorderEncoder.cpp - Generic pre-order token encoding ---------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/PreorderEncoder.h"

#include <cassert>

using namespace kast;

WeightedString
kast::encodePreorder(const std::vector<PreorderItem> &Items,
                     const std::shared_ptr<TokenTable> &Table,
                     const PreorderEncodeOptions &Options) {
  WeightedString Out(Table);
  size_t PrevDepth = 0;
  bool First = true;
  for (const PreorderItem &Item : Items) {
    assert((First ? Item.Depth == 0 : Item.Depth <= PrevDepth + 1) &&
           "invalid pre-order depth contour");
    if (!First && Item.Depth <= PrevDepth)
      Out.append(LevelUpLiteral, PrevDepth - Item.Depth + 1);
    Out.append(Item.Literal, Item.Weight);
    PrevDepth = Item.Depth;
    First = false;
  }
  if (Options.EmitTrailingLevelUp && !First)
    Out.append(LevelUpLiteral, PrevDepth + 1);
  return Out;
}
