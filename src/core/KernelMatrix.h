//===- core/KernelMatrix.h - Gram matrix construction ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the similarity (Gram) matrix a kernel induces over a corpus,
/// with the post-processing the paper's evaluation applies: cosine
/// normalization (Eq. 12) and PSD repair by negative-eigenvalue
/// clipping (§4.1). Pairwise evaluations run in parallel.
///
/// Two entry points:
///
///   * computeKernelMatrix — one-shot: the whole corpus in, the
///     post-processed matrix out.
///   * KernelMatrix — stateful and incrementally growable: appendRows
///     extends an existing N×N Gram to (N+M)×(N+M) by evaluating only
///     the N·M + M(M+1)/2 entries the new strings introduce, reusing
///     the cached per-string precomputations for the old rows. This is
///     what lets a served corpus grow one batch of traces at a time
///     without the O(N²·dot) rebuild.
///
/// For ProfiledStringKernel instances (with UsePrecompute on) the
/// per-string state lives in a core/ProfileStore arena — one flat
/// structure-of-arrays for the whole corpus instead of one heap
/// vector per string — and the pair fill is cache-blocked: entries
/// are computed tile-by-tile over ProfileView pairs, so the hash
/// arrays of one row tile stay cache-resident while a column tile
/// sweeps past them. Other kernels (the Kast kernel's suffix
/// automata, plain pairwise kernels) keep the opaque
/// KernelPrecomputation handle path.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_KERNELMATRIX_H
#define KAST_CORE_KERNELMATRIX_H

#include "core/ProfileStore.h"
#include "core/StringKernel.h"
#include "linalg/Matrix.h"

#include <memory>
#include <vector>

namespace kast {

/// Options for Gram matrix construction.
struct KernelMatrixOptions {
  /// Divide entries by sqrt(k(i,i) k(j,j)); rows with vanishing
  /// self-kernel get zero off-diagonals and a unit diagonal.
  bool Normalize = true;
  /// Clip negative eigenvalues to zero and rebuild (§4.1). Only
  /// meaningful together with Normalize in the paper's pipeline, but
  /// honored either way.
  bool RepairPsd = false;
  /// Worker threads for pairwise evaluation; 0 = hardware concurrency,
  /// 1 = inline (deterministic execution order).
  size_t Threads = 0;
  /// Build every string's kernel precomputation (feature profile,
  /// suffix automaton, ...) once up front and reuse it for all N-1
  /// pairs — the O(N·build + N²·dot) fast path. Off = evaluate every
  /// pair from scratch (the differential-testing baseline).
  bool UsePrecompute = true;
};

/// A pair of string indices into a Gram matrix.
struct GramPair {
  size_t I = 0;
  size_t J = 0;

  bool operator==(const GramPair &Rhs) const = default;
};

/// Closed-form inversion of the flattened strict-upper-triangle index:
/// over N strings, pair P in [0, N(N-1)/2) maps to (I, J) with I < J
/// and P = I(2N-I-1)/2 + (J-I-1). One sqrt plus a ±1 nudge for the
/// float root; exposed so the randomized differential test can compare
/// it against a loop-based inversion.
GramPair invertTrianglePairIndex(size_t P, size_t N);

/// Closed-form inversion of the flattened append-fill index: with
/// \p OldN existing rows, new-pair P maps to (I, J) with I >= OldN,
/// J < I, and P = R·OldN + R(R-1)/2 + J where R = I - OldN. Covers
/// both the old-vs-new rectangle and the new-vs-new triangle in one
/// index space; exposed for the same differential test.
GramPair invertAppendPairIndex(size_t P, size_t OldN);

/// Incrementally grown Gram matrix over one kernel.
///
/// Owns the raw (unnormalized) symmetric kernel matrix of the strings
/// appended so far, plus each string's precomputation handle and
/// self-kernel value. Post-processing (normalization, PSD repair) is
/// applied by materialize() to a copy, so the raw state stays
/// growable. \p Kernel is captured by reference and must outlive the
/// KernelMatrix.
class KernelMatrix {
public:
  explicit KernelMatrix(const StringKernel &Kernel,
                        KernelMatrixOptions Options = {});

  /// Appends \p NewStrings, precomputing their per-string state and
  /// evaluating only the entries they introduce: M self-kernels, the
  /// old-N × M rectangle and the M(M-1)/2 new-pair triangle. No
  /// existing entry is re-evaluated.
  void appendRows(const std::vector<WeightedString> &NewStrings);

  /// Number of strings appended so far.
  size_t size() const { return Strings.size(); }

  /// The raw (unnormalized, un-repaired) symmetric kernel matrix.
  const Matrix &raw() const { return Raw; }

  /// Raw self-kernel values k(i, i) (the diagonal of raw()).
  const std::vector<double> &diagonal() const { return Diag; }

  /// The strings appended so far, in order.
  const std::vector<WeightedString> &strings() const { return Strings; }

  /// The profile arena backing the fast path, or nullptr when the
  /// kernel is not profiled (or UsePrecompute is off) and the opaque
  /// handle path is active instead.
  const ProfileStore *profileStore() const {
    return UseStore() ? &Store : nullptr;
  }

  /// A copy of raw() with the configured post-processing applied:
  /// cosine normalization (zero-self-kernel rows get zero
  /// off-diagonals and an exact unit diagonal) and PSD repair.
  Matrix materialize() const;

private:
  bool UseStore() const { return Profiled != nullptr; }
  void fillTiled(size_t OldN, size_t N);
  void fillPrepared(size_t OldN, size_t N);

  const StringKernel &Kernel;
  /// Non-null iff Kernel is a ProfiledStringKernel and UsePrecompute
  /// is on — then Store (not Prep) carries the per-string state.
  const ProfiledStringKernel *Profiled = nullptr;
  KernelMatrixOptions Options;
  std::vector<WeightedString> Strings;
  std::vector<std::unique_ptr<KernelPrecomputation>> Prep;
  ProfileStore Store;
  std::vector<double> Diag;
  Matrix Raw;
};

/// Computes the full symmetric Gram matrix of \p Kernel over
/// \p Strings (one-shot KernelMatrix build + materialize).
///
/// Per-string work is amortized through StringKernel::precompute: all N
/// precomputations are built in one parallelFor, then the N(N-1)/2
/// upper-triangle entries are filled with evaluatePrepared. For
/// ProfiledStringKernel instances the pair step is a sparse-profile dot
/// product, turning Gram construction from O(N²·build) into
/// O(N·build + N²·dot).
Matrix computeKernelMatrix(const StringKernel &Kernel,
                           const std::vector<WeightedString> &Strings,
                           const KernelMatrixOptions &Options = {});

} // namespace kast

#endif // KAST_CORE_KERNELMATRIX_H
