//===- core/KernelMatrix.h - Gram matrix construction ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the similarity (Gram) matrix a kernel induces over a corpus,
/// with the post-processing the paper's evaluation applies: cosine
/// normalization (Eq. 12) and PSD repair by negative-eigenvalue
/// clipping (§4.1). Pairwise evaluations run in parallel.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_KERNELMATRIX_H
#define KAST_CORE_KERNELMATRIX_H

#include "core/StringKernel.h"
#include "linalg/Matrix.h"

#include <vector>

namespace kast {

/// Options for Gram matrix construction.
struct KernelMatrixOptions {
  /// Divide entries by sqrt(k(i,i) k(j,j)); rows with vanishing
  /// self-kernel get zero off-diagonals and a unit diagonal.
  bool Normalize = true;
  /// Clip negative eigenvalues to zero and rebuild (§4.1). Only
  /// meaningful together with Normalize in the paper's pipeline, but
  /// honored either way.
  bool RepairPsd = false;
  /// Worker threads for pairwise evaluation; 0 = hardware concurrency,
  /// 1 = inline (deterministic execution order).
  size_t Threads = 0;
  /// Build every string's kernel precomputation (feature profile,
  /// suffix automaton, ...) once up front and reuse it for all N-1
  /// pairs — the O(N·build + N²·dot) fast path. Off = evaluate every
  /// pair from scratch (the differential-testing baseline).
  bool UsePrecompute = true;
};

/// Computes the full symmetric Gram matrix of \p Kernel over
/// \p Strings.
///
/// Per-string work is amortized through StringKernel::precompute: all N
/// precomputations are built in one parallelFor, then the N(N-1)/2
/// upper-triangle entries are filled with evaluatePrepared. For
/// ProfiledStringKernel instances the pair step is a sparse-profile dot
/// product, turning Gram construction from O(N²·build) into
/// O(N·build + N²·dot).
Matrix computeKernelMatrix(const StringKernel &Kernel,
                           const std::vector<WeightedString> &Strings,
                           const KernelMatrixOptions &Options = {});

} // namespace kast

#endif // KAST_CORE_KERNELMATRIX_H
