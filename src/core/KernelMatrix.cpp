//===- core/KernelMatrix.cpp - Gram matrix construction --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "linalg/Eigen.h"
#include "util/ThreadPool.h"

#include <cmath>

using namespace kast;

Matrix kast::computeKernelMatrix(const StringKernel &Kernel,
                                 const std::vector<WeightedString> &Strings,
                                 const KernelMatrixOptions &Options) {
  const size_t N = Strings.size();
  Matrix K(N, N, 0.0);

  // Diagonal first; needed for normalization anyway.
  std::vector<double> Diag(N, 0.0);
  parallelFor(
      N,
      [&](size_t I) {
        Diag[I] = Kernel.evaluate(Strings[I], Strings[I]);
        K.at(I, I) = Diag[I];
      },
      Options.Threads);

  // Strict upper triangle, flattened: pair p -> (i, j).
  const size_t NumPairs = N < 2 ? 0 : N * (N - 1) / 2;
  parallelFor(
      NumPairs,
      [&](size_t P) {
        // Invert p = i*N - i(i+1)/2 + (j - i - 1) by scanning rows;
        // cheap relative to a kernel evaluation.
        size_t I = 0;
        size_t RowLen = N - 1;
        size_t Offset = P;
        while (Offset >= RowLen) {
          Offset -= RowLen;
          ++I;
          --RowLen;
        }
        size_t J = I + 1 + Offset;
        double V = Kernel.evaluate(Strings[I], Strings[J]);
        K.at(I, J) = V;
        K.at(J, I) = V;
      },
      Options.Threads);

  if (Options.Normalize) {
    for (size_t I = 0; I < N; ++I) {
      for (size_t J = 0; J < N; ++J) {
        if (I == J)
          continue;
        double D = Diag[I] * Diag[J];
        K.at(I, J) = D > 0.0 ? K.at(I, J) / std::sqrt(D) : 0.0;
      }
    }
    for (size_t I = 0; I < N; ++I)
      K.at(I, I) = 1.0;
  }

  if (Options.RepairPsd && N > 0 && minEigenvalue(K) < 0.0)
    K = projectToPsd(K);
  return K;
}
