//===- core/KernelMatrix.cpp - Gram matrix construction --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "linalg/Eigen.h"
#include "util/SimdDot.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace kast;

GramPair kast::invertTrianglePairIndex(size_t P, size_t N) {
  assert(N >= 2 && P < N * (N - 1) / 2 && "pair index out of range");
  // rowStart(i) = i*(2N - i - 1)/2; the largest i with
  // rowStart(i) <= p solves i² - (2N-1)i + 2p = 0. The float root can
  // be off by one, so nudge it exact.
  auto RowStart = [N](size_t I) { return I * (2 * N - I - 1) / 2; };
  double Disc =
      (2.0 * N - 1.0) * (2.0 * N - 1.0) - 8.0 * static_cast<double>(P);
  size_t I = static_cast<size_t>(
      (2.0 * N - 1.0 - std::sqrt(Disc > 0.0 ? Disc : 0.0)) / 2.0);
  if (I >= N - 1)
    I = N - 2;
  while (I > 0 && RowStart(I) > P)
    --I;
  while (I + 1 < N - 1 && RowStart(I + 1) <= P)
    ++I;
  return {I, I + 1 + (P - RowStart(I))};
}

GramPair kast::invertAppendPairIndex(size_t P, size_t OldN) {
  // New row OldN + R pairs with every earlier string (old and new), so
  // its pairs start at offset(R) = R*OldN + R(R-1)/2. The largest R
  // with offset(R) <= p solves R² + (2*OldN - 1)R - 2p = 0; same
  // float-root nudge as above.
  auto Offset = [OldN](size_t R) { return R * OldN + R * (R - 1) / 2; };
  double B = 2.0 * static_cast<double>(OldN) - 1.0;
  double Root =
      (std::sqrt(B * B + 8.0 * static_cast<double>(P)) - B) / 2.0;
  size_t R = Root > 0.0 ? static_cast<size_t>(Root) : 0;
  while (R > 0 && Offset(R) > P)
    --R;
  while (Offset(R + 1) <= P)
    ++R;
  return {OldN + R, P - Offset(R)};
}

KernelMatrix::KernelMatrix(const StringKernel &Kernel,
                           KernelMatrixOptions Options)
    : Kernel(Kernel), Options(Options) {
  // Profiled kernels get the arena-backed tiled path; their per-string
  // state is a flat sparse vector, which the store lays out as
  // structure-of-arrays for the whole corpus. (The fast path dots
  // views directly — the documented ProfiledStringKernel contract that
  // k(A, B) is the plain merge-join dot of the two profiles, the same
  // assumption index/ProfileIndex retrieval already makes.)
  if (Options.UsePrecompute)
    Profiled = dynamic_cast<const ProfiledStringKernel *>(&Kernel);
}

/// Row-tile edge for the cache-blocked fill: tile pairs of up to
/// 64×64 view dots reuse each loaded hash array ~64 times while it is
/// cache-resident, and one tile pair is a chunky enough work item for
/// the pool's atomic-counter scheduling.
static constexpr size_t GramTileRows = 64;

/// Cache-blocked fill of the entries the new rows introduce: every
/// (I, J) with I < J and J >= OldN, visited tile-by-tile. Row tiles
/// cover [0, N), column tiles only the new rows [OldN, N); each tile
/// pair is one parallel work item, and each (I, J) belongs to exactly
/// one tile pair, so writes never race.
void KernelMatrix::fillTiled(size_t OldN, size_t N) {
  const size_t RowTiles = (N + GramTileRows - 1) / GramTileRows;
  const size_t ColTiles = (N - OldN + GramTileRows - 1) / GramTileRows;
  parallelFor(
      RowTiles * ColTiles,
      [&](size_t T) {
        const size_t IBegin = (T / ColTiles) * GramTileRows;
        const size_t IEnd = std::min(N, IBegin + GramTileRows);
        const size_t JBegin = OldN + (T % ColTiles) * GramTileRows;
        const size_t JEnd = std::min(N, JBegin + GramTileRows);
        if (IBegin + 1 >= JEnd)
          return; // Entirely on or below the diagonal.
        // Row I plays the one-vs-many query: its probe table is built
        // once and amortized over the tile's column dots. Bit-identical
        // to the pairwise merge-join dot (simd::ExactScan's contract),
        // so the Gram's reproducibility guarantee is untouched.
        simd::ExactScan Scan;
        for (size_t I = IBegin; I < IEnd; ++I) {
          const ProfileView Vi = Store.view(I);
          Scan.assign(Vi.Hashes, Vi.Values, Vi.Size);
          for (size_t J = std::max(JBegin, I + 1); J < JEnd; ++J) {
            const ProfileView Vj = Store.view(J);
            double V = Scan.dot(Vj.Hashes, Vj.Values, Vj.Size);
            Raw.at(I, J) = V;
            Raw.at(J, I) = V;
          }
        }
      },
      Options.Threads);
}

/// The opaque-handle fill: evaluatePrepared over the flattened pair
/// index space (the pre-store path, still used by the Kast kernel's
/// suffix automata and by UsePrecompute=off differential baselines).
void KernelMatrix::fillPrepared(size_t OldN, size_t N) {
  auto Fill = [&](size_t I, size_t J) {
    double V = Kernel.evaluatePrepared(Strings[I], Prep[I].get(), Strings[J],
                                       Prep[J].get());
    Raw.at(I, J) = V;
    Raw.at(J, I) = V;
  };
  // The initial build (OldN == 0) is the plain strict upper triangle
  // and keeps the seed's flattened enumeration order.
  if (OldN == 0) {
    const size_t NumPairs = N < 2 ? 0 : N * (N - 1) / 2;
    parallelFor(
        NumPairs,
        [&](size_t P) {
          GramPair Pair = invertTrianglePairIndex(P, N);
          Fill(Pair.I, Pair.J);
        },
        Options.Threads);
  } else {
    const size_t M = N - OldN;
    const size_t NumNewPairs = OldN * M + M * (M - 1) / 2;
    parallelFor(
        NumNewPairs,
        [&](size_t P) {
          GramPair Pair = invertAppendPairIndex(P, OldN);
          Fill(Pair.I, Pair.J);
        },
        Options.Threads);
  }
}

void KernelMatrix::appendRows(const std::vector<WeightedString> &NewStrings) {
  const size_t OldN = Strings.size();
  const size_t M = NewStrings.size();
  if (M == 0)
    return;
  const size_t N = OldN + M;

  Strings.insert(Strings.end(), NewStrings.begin(), NewStrings.end());

  // Per-string state for the new rows only, amortized across every
  // pair each new string participates in. Profiled kernels stage their
  // profiles in parallel, then append them to the arena (a flat copy);
  // other kernels keep opaque handles (the Kast kernel its reversed
  // suffix automata, plain kernels nullptr at zero cost). The old rows
  // keep the state built when they were appended.
  if (UseStore()) {
    std::vector<KernelProfile> Staged(M);
    parallelFor(
        M,
        [&](size_t I) { Staged[I] = Profiled->profile(Strings[OldN + I]); },
        Options.Threads);
    Store.appendAll(Staged);
  } else {
    Prep.resize(N);
    if (Options.UsePrecompute)
      parallelFor(
          M,
          [&](size_t I) {
            Prep[OldN + I] = Kernel.precompute(Strings[OldN + I]);
          },
          Options.Threads);
  }

  // Grow the raw matrix by copying the existing block row-wise — a
  // memory move, never a kernel re-evaluation.
  Matrix Grown(N, N, 0.0);
  for (size_t I = 0; I < OldN; ++I)
    std::copy(Raw.data().begin() + static_cast<ptrdiff_t>(I * OldN),
              Raw.data().begin() + static_cast<ptrdiff_t>((I + 1) * OldN),
              Grown.data().begin() + static_cast<ptrdiff_t>(I * N));
  Raw = std::move(Grown);

  // New diagonal entries; needed for normalization anyway. The store
  // caches every profile's self-dot at append (bit-identical to the
  // merge-join dot of the profile with itself).
  Diag.resize(N, 0.0);
  if (UseStore()) {
    for (size_t Row = OldN; Row < N; ++Row) {
      Diag[Row] = Store.selfDot(Row);
      Raw.at(Row, Row) = Diag[Row];
    }
  } else {
    parallelFor(
        M,
        [&](size_t I) {
          const size_t Row = OldN + I;
          Diag[Row] = Kernel.evaluatePrepared(Strings[Row], Prep[Row].get(),
                                              Strings[Row], Prep[Row].get());
          Raw.at(Row, Row) = Diag[Row];
        },
        Options.Threads);
  }

  // The entries the new strings introduce: the OldN × M rectangle plus
  // the M(M-1)/2 new-pair triangle.
  if (UseStore())
    fillTiled(OldN, N);
  else
    fillPrepared(OldN, N);
}

Matrix KernelMatrix::materialize() const {
  const size_t N = Strings.size();
  Matrix K = Raw;

  if (Options.Normalize) {
    parallelFor(
        N,
        [&](size_t I) {
          for (size_t J = 0; J < N; ++J) {
            if (I == J)
              continue;
            double D = Diag[I] * Diag[J];
            K.at(I, J) = D > 0.0 ? K.at(I, J) / std::sqrt(D) : 0.0;
          }
          K.at(I, I) = 1.0;
        },
        Options.Threads);
  }

  if (Options.RepairPsd && N > 0)
    K = projectToPsdIfNeeded(K);
  return K;
}

Matrix kast::computeKernelMatrix(const StringKernel &Kernel,
                                 const std::vector<WeightedString> &Strings,
                                 const KernelMatrixOptions &Options) {
  KernelMatrix Gram(Kernel, Options);
  Gram.appendRows(Strings);
  return Gram.materialize();
}
