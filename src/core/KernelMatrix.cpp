//===- core/KernelMatrix.cpp - Gram matrix construction --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/KernelMatrix.h"
#include "linalg/Eigen.h"
#include "util/ThreadPool.h"

#include <cmath>
#include <memory>

using namespace kast;

Matrix kast::computeKernelMatrix(const StringKernel &Kernel,
                                 const std::vector<WeightedString> &Strings,
                                 const KernelMatrixOptions &Options) {
  const size_t N = Strings.size();
  Matrix K(N, N, 0.0);

  // Per-string precomputation, amortized across the N-1 pairs each
  // string participates in: profiled kernels build their feature
  // profile here (making the fill below O(N·build + N²·dot) instead of
  // O(N²·build)), the Kast kernel builds its reversed suffix automata,
  // and plain kernels return nullptr at zero cost.
  std::vector<std::unique_ptr<KernelPrecomputation>> Prep(N);
  if (Options.UsePrecompute)
    parallelFor(
        N, [&](size_t I) { Prep[I] = Kernel.precompute(Strings[I]); },
        Options.Threads);

  // Diagonal first; needed for normalization anyway.
  std::vector<double> Diag(N, 0.0);
  parallelFor(
      N,
      [&](size_t I) {
        Diag[I] = Kernel.evaluatePrepared(Strings[I], Prep[I].get(),
                                          Strings[I], Prep[I].get());
        K.at(I, I) = Diag[I];
      },
      Options.Threads);

  // Strict upper triangle, flattened: pair p -> (i, j) with
  // p = rowStart(i) + (j - i - 1) and rowStart(i) = i*(2N - i - 1)/2.
  const size_t NumPairs = N < 2 ? 0 : N * (N - 1) / 2;
  auto RowStart = [N](size_t I) { return I * (2 * N - I - 1) / 2; };
  parallelFor(
      NumPairs,
      [&](size_t P) {
        // Closed-form triangular-number inversion: the largest i with
        // rowStart(i) <= p solves i² - (2N-1)i + 2p = 0. The float
        // root can be off by one, so nudge it exact.
        double Disc = (2.0 * N - 1.0) * (2.0 * N - 1.0) -
                      8.0 * static_cast<double>(P);
        size_t I = static_cast<size_t>(
            (2.0 * N - 1.0 - std::sqrt(Disc)) / 2.0);
        if (I >= N - 1)
          I = N - 2;
        while (I > 0 && RowStart(I) > P)
          --I;
        while (I + 1 < N - 1 && RowStart(I + 1) <= P)
          ++I;
        size_t J = I + 1 + (P - RowStart(I));
        double V = Kernel.evaluatePrepared(Strings[I], Prep[I].get(),
                                           Strings[J], Prep[J].get());
        K.at(I, J) = V;
        K.at(J, I) = V;
      },
      Options.Threads);

  if (Options.Normalize) {
    parallelFor(
        N,
        [&](size_t I) {
          for (size_t J = 0; J < N; ++J) {
            if (I == J)
              continue;
            double D = Diag[I] * Diag[J];
            K.at(I, J) = D > 0.0 ? K.at(I, J) / std::sqrt(D) : 0.0;
          }
          K.at(I, I) = 1.0;
        },
        Options.Threads);
  }

  if (Options.RepairPsd && N > 0)
    K = projectToPsdIfNeeded(K);
  return K;
}
