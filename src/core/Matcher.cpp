//===- core/Matcher.cpp - Maximal common substring discovery ---------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Matcher.h"

#include <algorithm>
#include <cassert>

using namespace kast;

std::vector<uint32_t> kast::reversed(const std::vector<uint32_t> &Sequence) {
  return std::vector<uint32_t>(Sequence.rbegin(), Sequence.rend());
}

std::vector<size_t>
kast::matchingStatisticsStarts(const std::vector<uint32_t> &Subject,
                               const SuffixAutomaton &PartnerOfReversed) {
  // The longest prefix of Subject[i..] occurring in Partner equals the
  // longest suffix of reverse(Subject)[.. n-1-i] occurring in
  // reverse(Partner): run end-based statistics on the reversal.
  std::vector<uint32_t> Rev = reversed(Subject);
  std::vector<size_t> Ends = PartnerOfReversed.matchingStatisticsEnds(Rev);
  std::vector<size_t> Starts(Subject.size());
  for (size_t I = 0; I < Subject.size(); ++I)
    Starts[I] = Ends[Subject.size() - 1 - I];
  return Starts;
}

/// Shared tail: converts start-based matching statistics into maximal
/// match occurrences. [i, i + MS[i]) is right-maximal by construction;
/// it is left-maximal iff i == 0 or MS[i-1] <= MS[i] (otherwise
/// [i-1, i-1 + MS[i-1]) covers it with one more token on the left).
static std::vector<MaximalMatch>
maximalFromStatistics(const std::vector<size_t> &MS) {
  std::vector<MaximalMatch> Matches;
  for (size_t I = 0; I < MS.size(); ++I) {
    if (MS[I] == 0)
      continue;
    if (I > 0 && MS[I - 1] > MS[I])
      continue; // Contained in the previous start's window.
    Matches.push_back({I, I + MS[I]});
  }
  return Matches;
}

std::vector<MaximalMatch>
kast::findMaximalMatches(const std::vector<uint32_t> &Subject,
                         const SuffixAutomaton &PartnerOfReversed) {
  return maximalFromStatistics(
      matchingStatisticsStarts(Subject, PartnerOfReversed));
}

std::vector<MaximalMatch>
kast::findMaximalMatchesDP(const std::vector<uint32_t> &Subject,
                           const std::vector<uint32_t> &Partner) {
  const size_t N = Subject.size();
  const size_t M = Partner.size();
  // LCP[j] during row i holds the length of the longest common prefix
  // of Subject[i..] and Partner[j..]; filled bottom-up over i.
  std::vector<size_t> LCP(M + 1, 0), NextLCP(M + 1, 0);
  std::vector<size_t> MS(N, 0);
  for (size_t I = N; I-- > 0;) {
    for (size_t J = M; J-- > 0;) {
      NextLCP[J] =
          Subject[I] == Partner[J] ? LCP[J + 1] + 1 : 0;
      MS[I] = std::max(MS[I], NextLCP[J]);
    }
    std::swap(LCP, NextLCP);
  }
  return maximalFromStatistics(MS);
}

std::vector<size_t>
kast::findOccurrences(const std::vector<uint32_t> &Text,
                      const std::vector<uint32_t> &Pattern) {
  std::vector<size_t> Begins;
  if (Pattern.empty() || Pattern.size() > Text.size())
    return Begins;
  for (size_t I = 0; I + Pattern.size() <= Text.size(); ++I)
    if (std::equal(Pattern.begin(), Pattern.end(), Text.begin() + I))
      Begins.push_back(I);
  return Begins;
}
