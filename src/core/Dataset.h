//===- core/Dataset.h - Labeled string corpora -----------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A corpus of weighted strings with category labels — the object the
/// paper's evaluation operates on (110 examples over categories
/// A/B/C/D). Labels are free-form strings; ml/ClusterMetrics compares
/// clusterings against them.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_DATASET_H
#define KAST_CORE_DATASET_H

#include "core/Token.h"

#include <map>
#include <string>
#include <vector>

namespace kast {

/// Parallel arrays of strings and labels.
class LabeledDataset {
public:
  /// Appends one example.
  void add(WeightedString String, std::string Label);

  size_t size() const { return Strings.size(); }
  bool empty() const { return Strings.empty(); }

  const std::vector<WeightedString> &strings() const { return Strings; }
  const std::vector<std::string> &labels() const { return Labels; }

  const WeightedString &string(size_t I) const { return Strings[I]; }
  const std::string &label(size_t I) const { return Labels[I]; }

  /// Distinct labels in order of first appearance.
  std::vector<std::string> labelSet() const;

  /// Example indices carrying \p Label.
  std::vector<size_t> indicesOf(const std::string &Label) const;

  /// Count per label.
  std::map<std::string, size_t> labelCounts() const;

private:
  std::vector<WeightedString> Strings;
  std::vector<std::string> Labels;
};

} // namespace kast

#endif // KAST_CORE_DATASET_H
