//===- core/KastKernel.h - The Kast Spectrum Kernel ------------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's novel kernel function (§3.2). For strings A, B and a
/// *cut weight* n, the embedding has one feature per literal sequence s
/// such that
///
///   * s occurs in both strings; occurrences are literal matches, so
///     "the weight of a target substring might be different in each
///     string";
///   * s has at least one qualifying occurrence in each string, where
///     an occurrence qualifies if its token-weight sum is >= n (see
///     CutPolicy for the alternative reading);
///   * s has, in at least one string, an occurrence that is not a
///     sub-interval of an occurrence of a longer shared substring —
///     realized as maximal match occurrences, see Matcher.h.
///
/// The feature value f_s(X) is the summed weight of the qualifying
/// occurrences of s in X ("the summation of the weights of all the
/// substring appearances"), and k(A,B) = sum_s f_s(A) * f_s(B).
///
/// Strings whose total weight is below the cut weight are ignored
/// (k = 0, per §3.2 "Strings with a weight value that is smaller than
/// the cut weight are ignored").
///
/// Under these semantics the only maximal self-match of A is A itself,
/// so k(A,A) = weight(A)^2 and cosine normalization reproduces the
/// paper's Eq. (12) normalization by weight(A) * weight(B); the §3.2
/// worked example (feature vectors {19,13,15} and {35,11,14}, kernel
/// value 1018, normalized 1018/3328) is a unit test.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_KASTKERNEL_H
#define KAST_CORE_KASTKERNEL_H

#include "core/StringKernel.h"

#include <cstdint>
#include <vector>

namespace kast {

class SuffixAutomaton;

/// How the cut weight filters candidate features.
enum class CutPolicy {
  /// An occurrence qualifies iff its weight >= cut; a feature needs a
  /// qualifying occurrence in both strings and sums only qualifying
  /// occurrences. (Default; matches the worked example.)
  PerOccurrence,
  /// All occurrences count; a feature qualifies iff its summed weight
  /// is >= cut in both strings.
  PerFeatureTotal,
};

/// Tuning knobs for the Kast Spectrum Kernel.
struct KastKernelOptions {
  /// The minimum weight parameter of §3.2.
  uint64_t CutWeight = 2;
  /// Cut interpretation; see CutPolicy.
  CutPolicy Policy = CutPolicy::PerOccurrence;
  /// Use the quadratic reference matcher instead of the suffix
  /// automaton (for differential testing and the ablation bench).
  bool UseReferenceMatcher = false;
};

/// One feature of the induced embedding, exposed for inspection,
/// debugging and the worked-example tests.
struct KastFeature {
  /// The literal-id sequence of the shared substring.
  std::vector<uint32_t> Literals;
  /// Summed qualifying-occurrence weight in A / in B.
  uint64_t WeightInA = 0;
  uint64_t WeightInB = 0;
  /// Number of qualifying occurrences in A / in B.
  size_t CountInA = 0;
  size_t CountInB = 0;
};

/// The Kast Spectrum Kernel.
///
/// The kernel's features are pair-dependent (maximal matches of A
/// *relative to B*), so it has no per-string profile; instead
/// precompute() caches the suffix automaton of the reversed literal
/// sequence — the partner index the matcher consults — which a Gram
/// matrix build would otherwise reconstruct N-1 times per string.
class KastSpectrumKernel : public StringKernel {
public:
  explicit KastSpectrumKernel(KastKernelOptions Options = {});

  double evaluate(const WeightedString &A,
                  const WeightedString &B) const override;
  std::unique_ptr<KernelPrecomputation>
  precompute(const WeightedString &X) const override;
  double evaluatePrepared(const WeightedString &A,
                          const KernelPrecomputation *PrepA,
                          const WeightedString &B,
                          const KernelPrecomputation *PrepB) const override;
  std::string name() const override;

  /// Computes the explicit shared-feature embedding of (A, B); the
  /// kernel value is the inner product of the two weight columns.
  std::vector<KastFeature> features(const WeightedString &A,
                                    const WeightedString &B) const;

  const KastKernelOptions &options() const { return Options; }

private:
  /// Shared implementation; \p RevA / \p RevB are optional cached
  /// suffix automata of the reversed literal sequences.
  std::vector<KastFeature> featuresImpl(const WeightedString &A,
                                        const WeightedString &B,
                                        const SuffixAutomaton *RevA,
                                        const SuffixAutomaton *RevB) const;

  KastKernelOptions Options;
};

} // namespace kast

#endif // KAST_CORE_KASTKERNEL_H
