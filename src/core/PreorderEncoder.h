//===- core/PreorderEncoder.h - Generic pre-order token encoding *- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree-to-string encoding of §3.1 factored out of PatternTree so
/// any tree-shaped structure can be turned into a weighted string with
/// identical [LEVEL_UP] semantics. The paper designed the
/// representation for this generality: "The rational of this design
/// corresponds to the future application of this representation in
/// more complex structures like Abstract Syntax Trees". The ast
/// library (src/ast) uses this encoder for exactly that purpose.
///
/// Input is the pre-order sequence of (literal, weight, depth)
/// triples; between consecutive items the encoder inserts [LEVEL_UP]
/// with weight d1 - d2 + 1 whenever that is positive (descent is
/// implicit in adjacency; siblings get weight 1).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_PREORDERENCODER_H
#define KAST_CORE_PREORDERENCODER_H

#include "core/Token.h"

#include <string>
#include <vector>

namespace kast {

/// One pre-order node to encode.
struct PreorderItem {
  std::string Literal;
  uint64_t Weight = 1;
  size_t Depth = 0;
};

/// Options shared with the tree flattener.
struct PreorderEncodeOptions {
  /// Emit a final [LEVEL_UP] for the ascent after the last node.
  bool EmitTrailingLevelUp = false;
};

/// Encodes a pre-order node sequence as a weighted string.
///
/// \pre the depth sequence is a valid pre-order contour: the first
/// item has depth 0 and each item's depth is at most one greater than
/// its predecessor's (asserted).
WeightedString encodePreorder(const std::vector<PreorderItem> &Items,
                              const std::shared_ptr<TokenTable> &Table,
                              const PreorderEncodeOptions &Options = {});

} // namespace kast

#endif // KAST_CORE_PREORDERENCODER_H
