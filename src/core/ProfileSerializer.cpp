//===- core/ProfileSerializer.cpp - Profile cache on disk ------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileSerializer.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <optional>
#include <string_view>

using namespace kast;

namespace {

// Fixed-width little-endian encoding, independent of host endianness,
// so caches are portable across machines.

void writeU32(std::ostream &Out, uint32_t V) {
  char Bytes[4];
  for (int I = 0; I < 4; ++I)
    Bytes[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  Out.write(Bytes, sizeof(Bytes));
}

void writeU64(std::ostream &Out, uint64_t V) {
  char Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  Out.write(Bytes, sizeof(Bytes));
}

void writeStringField(std::ostream &Out, std::string_view S) {
  writeU32(Out, static_cast<uint32_t>(S.size()));
  Out.write(S.data(), static_cast<std::streamsize>(S.size()));
}

std::optional<uint32_t> readU32(std::istream &In) {
  unsigned char Bytes[4];
  if (!In.read(reinterpret_cast<char *>(Bytes), sizeof(Bytes)))
    return std::nullopt;
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Bytes[I]) << (8 * I);
  return V;
}

std::optional<uint64_t> readU64(std::istream &In) {
  unsigned char Bytes[8];
  if (!In.read(reinterpret_cast<char *>(Bytes), sizeof(Bytes)))
    return std::nullopt;
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
  return V;
}

/// Guards string-field allocations against corrupt length prefixes.
constexpr uint32_t MaxStringField = 1u << 24;

/// Guards count-driven reserve() against corrupt count fields: never
/// pre-reserve more than this many elements — larger (honest) counts
/// just grow through push_back, while a corrupt 2^60 count surfaces as
/// a truncation diagnostic on the first missing entry instead of as
/// std::bad_alloc.
constexpr uint64_t MaxReserve = 1u << 20;

std::optional<std::string> readStringField(std::istream &In) {
  std::optional<uint32_t> Size = readU32(In);
  if (!Size || *Size > MaxStringField)
    return std::nullopt;
  std::string S(*Size, '\0');
  if (*Size > 0 && !In.read(S.data(), static_cast<std::streamsize>(*Size)))
    return std::nullopt;
  return S;
}

/// Bytes left in the stream from the current position, or nullopt when
/// the stream is not seekable. Lets blob loads reject a corrupt
/// element count *before* sizing a buffer for it, so the diagnostic is
/// "truncated", never std::bad_alloc.
std::optional<uint64_t> remainingBytes(std::istream &In) {
  std::istream::pos_type Here = In.tellg();
  if (Here == std::istream::pos_type(-1))
    return std::nullopt;
  In.seekg(0, std::ios::end);
  std::istream::pos_type End = In.tellg();
  In.seekg(Here);
  if (End == std::istream::pos_type(-1) || !In)
    return std::nullopt;
  return static_cast<uint64_t>(End - Here);
}

/// One bulk read of \p Count little-endian 8-byte elements straight
/// into a pre-sized vector<uint64_t> or vector<double> — the v2 hot
/// path. The whole blob lands with a single In.read, then decodes in
/// place (through memcpy, never a typed u64 lvalue, so the double
/// variant stays aliasing-clean).
template <typename T>
std::optional<std::vector<T>> readBlob(std::istream &In, uint64_t Count) {
  static_assert(sizeof(T) == 8);
  if (std::optional<uint64_t> Left = remainingBytes(In)) {
    if (*Left / 8 < Count)
      return std::nullopt;
  } else if (Count > (uint64_t(1) << 28)) {
    // Non-seekable stream: no byte count to validate against, so at
    // least refuse to size a multi-gigabyte buffer from a corrupt
    // count field — surface it as truncation, not std::bad_alloc.
    return std::nullopt;
  }
  std::vector<T> Blob;
  Blob.resize(static_cast<size_t>(Count));
  if (Count == 0)
    return Blob;
  if (!In.read(reinterpret_cast<char *>(Blob.data()),
               static_cast<std::streamsize>(Count * 8)))
    return std::nullopt;
  if constexpr (std::endian::native != std::endian::little)
    for (T &V : Blob) {
      unsigned char Bytes[8];
      std::memcpy(Bytes, &V, 8);
      uint64_t Decoded = 0;
      for (int I = 0; I < 8; ++I)
        Decoded |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
      std::memcpy(&V, &Decoded, 8);
    }
  return Blob;
}

/// One bulk write of \p Count little-endian u64-wide elements.
/// \p Data may point at uint64_t or double storage (both are written
/// as their 8-byte patterns), so access goes through char/memcpy only
/// — never a typed uint64_t lvalue — keeping the big-endian branch
/// free of aliasing UB.
void writeU64Blob(std::ostream &Out, const void *Data, size_t Count) {
  if constexpr (std::endian::native == std::endian::little) {
    Out.write(static_cast<const char *>(Data),
              static_cast<std::streamsize>(Count * 8));
  } else {
    const char *Bytes = static_cast<const char *>(Data);
    for (size_t I = 0; I < Count; ++I) {
      uint64_t V;
      std::memcpy(&V, Bytes + I * 8, 8);
      writeU64(Out, V);
    }
  }
}

/// Shared v1/v2 header: magic, version, kernel name.
struct CacheHeader {
  uint32_t Version = 0;
  std::string KernelName;
};

Expected<CacheHeader> readCacheHeader(std::istream &In) {
  using Result = Expected<CacheHeader>;
  char Magic[sizeof(ProfileCacheMagic)];
  if (!In.read(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, ProfileCacheMagic, sizeof(Magic)) != 0) {
    if (In && std::memcmp(Magic, FlatImageMagic, sizeof(Magic)) == 0)
      return Result::error("this is a v3 flat-image cache; read it with "
                           "readProfileStoreImageFile (core/FlatImage)");
    return Result::error("not a profile cache (bad magic)");
  }
  std::optional<uint32_t> Version = readU32(In);
  if (!Version)
    return Result::error("truncated profile cache: missing version");
  if (*Version != ProfileCacheVersion && *Version != ProfileCacheVersionV2)
    return Result::error("unsupported profile cache version " +
                         std::to_string(*Version) + " (expected " +
                         std::to_string(ProfileCacheVersion) + " or " +
                         std::to_string(ProfileCacheVersionV2) + ")");
  std::optional<std::string> KernelName = readStringField(In);
  if (!KernelName)
    return Result::error("truncated profile cache: missing kernel name");
  CacheHeader Header;
  Header.Version = *Version;
  Header.KernelName = std::move(*KernelName);
  return Header;
}

/// v1 body: count, then per-record name/label/profile.
Expected<ProfileCache> readRecordsBody(std::istream &In,
                                       std::string KernelName) {
  using Result = Expected<ProfileCache>;
  std::optional<uint64_t> Count = readU64(In);
  if (!Count)
    return Result::error("truncated profile cache: missing record count");
  ProfileCache Cache;
  Cache.KernelName = std::move(KernelName);
  Cache.Records.reserve(static_cast<size_t>(std::min(*Count, MaxReserve)));
  for (uint64_t I = 0; I < *Count; ++I) {
    std::optional<std::string> Name = readStringField(In);
    std::optional<std::string> Label = readStringField(In);
    if (!Name || !Label)
      return Result::error("truncated profile cache: record " +
                           std::to_string(I) + " of " +
                           std::to_string(*Count));
    Expected<KernelProfile> P = readProfile(In);
    if (!P)
      return Result::error("record " + std::to_string(I) + " ('" + *Name +
                           "'): " + P.message());
    Cache.Records.push_back({std::move(*Name), std::move(*Label), P.take()});
  }
  return Cache;
}

/// v2 body: counts, names, labels, then three contiguous blobs.
Expected<ProfileStoreCache> readStoreBody(std::istream &In,
                                          std::string KernelName) {
  using Result = Expected<ProfileStoreCache>;
  std::optional<uint64_t> Count = readU64(In);
  std::optional<uint64_t> Total = readU64(In);
  if (!Count || !Total)
    return Result::error("truncated profile cache: missing counts");

  ProfileStoreCache Cache;
  Cache.KernelName = std::move(KernelName);
  Cache.Names.reserve(static_cast<size_t>(std::min(*Count, MaxReserve)));
  Cache.Labels.reserve(static_cast<size_t>(std::min(*Count, MaxReserve)));
  for (uint64_t I = 0; I < *Count; ++I) {
    std::optional<std::string> Name = readStringField(In);
    if (!Name)
      return Result::error("truncated profile cache: name " +
                           std::to_string(I) + " of " + std::to_string(*Count));
    Cache.Names.push_back(std::move(*Name));
  }
  for (uint64_t I = 0; I < *Count; ++I) {
    std::optional<std::string> Label = readStringField(In);
    if (!Label)
      return Result::error("truncated profile cache: label " +
                           std::to_string(I) + " of " + std::to_string(*Count));
    Cache.Labels.push_back(std::move(*Label));
  }

  std::optional<std::vector<uint64_t>> Offsets =
      readBlob<uint64_t>(In, *Count + 1);
  if (!Offsets)
    return Result::error("truncated profile cache: offset array");
  // Pre-validate the CSR shape before touching (or sizing) the entry
  // blobs: adopt() asserts this invariant, and the shared seam keeps
  // the v2 and v3 readers rejecting the same corruptions with the same
  // diagnostics.
  if (Status S = validateCsrOffsets(Offsets->data(), Offsets->size(), *Total);
      !S)
    return Result::error(S.message());
  std::optional<std::vector<uint64_t>> Hashes = readBlob<uint64_t>(In, *Total);
  if (!Hashes)
    return Result::error("truncated profile cache: hash array");
  // Value bit patterns land directly in the arena's double array —
  // the third and last bulk read, no intermediate integer copy.
  std::optional<std::vector<double>> Values = readBlob<double>(In, *Total);
  if (!Values)
    return Result::error("truncated profile cache: value array");

  Cache.Store = ProfileStore::adopt(std::move(*Hashes), std::move(*Values),
                                    std::move(*Offsets));
  if (!Cache.Store.isFinalized())
    return Result::error("corrupt profile cache: profile entries not "
                         "sorted by hash");
  return Cache;
}

ProfileStoreCache recordsToStore(ProfileCache Cache) {
  ProfileStoreCache Store;
  Store.KernelName = std::move(Cache.KernelName);
  Store.Names.reserve(Cache.Records.size());
  Store.Labels.reserve(Cache.Records.size());
  std::vector<KernelProfile> Profiles;
  Profiles.reserve(Cache.Records.size());
  for (ProfileRecord &R : Cache.Records) {
    Store.Names.push_back(std::move(R.Name));
    Store.Labels.push_back(std::move(R.Label));
    Profiles.push_back(std::move(R.Profile));
  }
  Store.Store.appendAll(Profiles);
  return Store;
}

ProfileCache storeToRecords(ProfileStoreCache Cache) {
  ProfileCache Records;
  Records.KernelName = std::move(Cache.KernelName);
  Records.Records.reserve(Cache.Store.size());
  for (size_t I = 0; I < Cache.Store.size(); ++I)
    Records.Records.push_back({Cache.Names.str(I), Cache.Labels.str(I),
                               Cache.Store.materialize(I)});
  return Records;
}

/// Shared file plumbing for both cache flavors: open/write/flush with
/// path-prefixed diagnostics (write) and open/read with the same
/// prefixing (read), so durability changes (fsync, atomic rename)
/// land in exactly one place.
template <typename WriteFn>
Status writeCacheFile(const std::string &Path, WriteFn Write) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return Status::error("cannot open '" + Path + "' for writing");
  Status S = Write(Out);
  if (!S)
    return Status::error("'" + Path + "': " + S.message());
  Out.close();
  if (!Out)
    return Status::error("cannot flush '" + Path + "'");
  return Status();
}

template <typename T, typename ReadFn>
Expected<T> readCacheFile(const std::string &Path, ReadFn Read) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<T>::error("cannot open '" + Path + "'");
  Expected<T> Cache = Read(In);
  if (!Cache)
    return Expected<T>::error("'" + Path + "': " + Cache.message());
  return Cache;
}

/// Shared v2 body writer over any string column shape —
/// vector<std::string> (component overload) or StringColumn (struct
/// overload, which may be lazily mapped); both expose size() and
/// operator[] convertible to string_view.
template <typename NamesT, typename LabelsT>
Status writeStoreBodyV2(const std::string &KernelName, const NamesT &Names,
                        const LabelsT &Labels, const ProfileStore &Store,
                        std::ostream &Out) {
  if (Names.size() != Store.size() || Labels.size() != Store.size())
    return Status::error("profile store cache has " +
                         std::to_string(Store.size()) + " profiles but " +
                         std::to_string(Names.size()) + " names / " +
                         std::to_string(Labels.size()) + " labels");
  Out.write(ProfileCacheMagic, sizeof(ProfileCacheMagic));
  writeU32(Out, ProfileCacheVersionV2);
  writeStringField(Out, KernelName);
  writeU64(Out, static_cast<uint64_t>(Store.size()));
  writeU64(Out, static_cast<uint64_t>(Store.entryCount()));
  for (size_t I = 0; I < Names.size(); ++I)
    writeStringField(Out, Names[I]);
  for (size_t I = 0; I < Labels.size(); ++I)
    writeStringField(Out, Labels[I]);

  // The three arena arrays as contiguous blobs, written wholesale —
  // the store already keeps offsets at the u64 wire width.
  writeU64Blob(Out, Store.offsets().data(), Store.offsets().size());
  writeU64Blob(Out, Store.hashes().data(), Store.hashes().size());
  static_assert(sizeof(double) == sizeof(uint64_t));
  writeU64Blob(Out, Store.values().data(), Store.values().size());
  if (!Out)
    return Status::error("profile cache write failed");
  return Status();
}

} // namespace

Status kast::validateCsrOffsets(const uint64_t *Offsets, size_t Count,
                                uint64_t Total) {
  if (Count == 0)
    return Status::error("corrupt profile cache: empty offset array");
  if (Offsets[0] != 0)
    return Status::error("corrupt profile cache: offsets must start at 0");
  for (size_t I = 1; I < Count; ++I)
    if (Offsets[I] < Offsets[I - 1])
      return Status::error("corrupt profile cache: offsets not monotonic");
  if (Offsets[Count - 1] != Total)
    return Status::error("corrupt profile cache: offsets disagree with "
                         "entry total");
  return Status();
}

void kast::writeProfile(const KernelProfile &P, std::ostream &Out) {
  writeU64(Out, static_cast<uint64_t>(P.size()));
  for (const ProfileEntry &E : P.entries()) {
    writeU64(Out, E.Hash);
    writeU64(Out, std::bit_cast<uint64_t>(E.Value));
  }
}

Expected<KernelProfile> kast::readProfile(std::istream &In) {
  using Result = Expected<KernelProfile>;
  std::optional<uint64_t> Count = readU64(In);
  if (!Count)
    return Result::error("truncated profile: missing entry count");
  KernelProfile P;
  P.reserve(static_cast<size_t>(std::min(*Count, MaxReserve)));
  for (uint64_t I = 0; I < *Count; ++I) {
    std::optional<uint64_t> Hash = readU64(In);
    std::optional<uint64_t> Bits = readU64(In);
    if (!Hash || !Bits)
      return Result::error("truncated profile: entry " + std::to_string(I) +
                           " of " + std::to_string(*Count));
    P.add(*Hash, std::bit_cast<double>(*Bits));
  }
  // Written profiles are finalized (sorted, coalesced, no zeros), so
  // this is a bit-exact no-op for well-formed input and a repair pass
  // for hand-edited or corrupt entry orderings.
  P.finalize();
  return P;
}

Status kast::writeProfileCache(const ProfileCache &Cache, std::ostream &Out) {
  Out.write(ProfileCacheMagic, sizeof(ProfileCacheMagic));
  writeU32(Out, ProfileCacheVersion);
  writeStringField(Out, Cache.KernelName);
  writeU64(Out, static_cast<uint64_t>(Cache.Records.size()));
  for (const ProfileRecord &R : Cache.Records) {
    writeStringField(Out, R.Name);
    writeStringField(Out, R.Label);
    writeProfile(R.Profile, Out);
  }
  if (!Out)
    return Status::error("profile cache write failed");
  return Status();
}

Expected<ProfileCache> kast::readProfileCache(std::istream &In) {
  Expected<CacheHeader> Header = readCacheHeader(In);
  if (!Header)
    return Expected<ProfileCache>::error(Header.message());
  if (Header->Version == ProfileCacheVersion)
    return readRecordsBody(In, std::move(Header->KernelName));
  Expected<ProfileStoreCache> Store =
      readStoreBody(In, std::move(Header->KernelName));
  if (!Store)
    return Expected<ProfileCache>::error(Store.message());
  return storeToRecords(Store.take());
}

Status kast::writeProfileStoreCache(const ProfileStoreCache &Cache,
                                    std::ostream &Out) {
  return writeStoreBodyV2(Cache.KernelName, Cache.Names, Cache.Labels,
                          Cache.Store, Out);
}

Status kast::writeProfileStoreCache(const std::string &KernelName,
                                    const std::vector<std::string> &Names,
                                    const std::vector<std::string> &Labels,
                                    const ProfileStore &Store,
                                    std::ostream &Out) {
  return writeStoreBodyV2(KernelName, Names, Labels, Store, Out);
}

Expected<ProfileStoreCache> kast::readProfileStoreCache(std::istream &In) {
  Expected<CacheHeader> Header = readCacheHeader(In);
  if (!Header)
    return Expected<ProfileStoreCache>::error(Header.message());
  if (Header->Version == ProfileCacheVersionV2)
    return readStoreBody(In, std::move(Header->KernelName));
  Expected<ProfileCache> Records =
      readRecordsBody(In, std::move(Header->KernelName));
  if (!Records)
    return Expected<ProfileStoreCache>::error(Records.message());
  return recordsToStore(Records.take());
}

Status kast::writeProfileCacheFile(const ProfileCache &Cache,
                                   const std::string &Path) {
  return writeCacheFile(
      Path, [&](std::ostream &Out) { return writeProfileCache(Cache, Out); });
}

Expected<ProfileCache> kast::readProfileCacheFile(const std::string &Path) {
  return readCacheFile<ProfileCache>(
      Path, [](std::istream &In) { return readProfileCache(In); });
}

Status kast::writeProfileStoreCacheFile(const ProfileStoreCache &Cache,
                                        const std::string &Path) {
  return writeCacheFile(Path, [&](std::ostream &Out) {
    return writeProfileStoreCache(Cache, Out);
  });
}

Status kast::writeProfileStoreCacheFile(const std::string &KernelName,
                                        const std::vector<std::string> &Names,
                                        const std::vector<std::string> &Labels,
                                        const ProfileStore &Store,
                                        const std::string &Path) {
  return writeCacheFile(Path, [&](std::ostream &Out) {
    return writeProfileStoreCache(KernelName, Names, Labels, Store, Out);
  });
}

Expected<ProfileStoreCache>
kast::readProfileStoreCacheFile(const std::string &Path) {
  return readCacheFile<ProfileStoreCache>(
      Path, [](std::istream &In) { return readProfileStoreCache(In); });
}
