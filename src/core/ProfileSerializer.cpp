//===- core/ProfileSerializer.cpp - Profile cache on disk ------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileSerializer.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <optional>

using namespace kast;

namespace {

// Fixed-width little-endian encoding, independent of host endianness,
// so caches are portable across machines.

void writeU32(std::ostream &Out, uint32_t V) {
  char Bytes[4];
  for (int I = 0; I < 4; ++I)
    Bytes[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  Out.write(Bytes, sizeof(Bytes));
}

void writeU64(std::ostream &Out, uint64_t V) {
  char Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  Out.write(Bytes, sizeof(Bytes));
}

void writeStringField(std::ostream &Out, const std::string &S) {
  writeU32(Out, static_cast<uint32_t>(S.size()));
  Out.write(S.data(), static_cast<std::streamsize>(S.size()));
}

std::optional<uint32_t> readU32(std::istream &In) {
  unsigned char Bytes[4];
  if (!In.read(reinterpret_cast<char *>(Bytes), sizeof(Bytes)))
    return std::nullopt;
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Bytes[I]) << (8 * I);
  return V;
}

std::optional<uint64_t> readU64(std::istream &In) {
  unsigned char Bytes[8];
  if (!In.read(reinterpret_cast<char *>(Bytes), sizeof(Bytes)))
    return std::nullopt;
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
  return V;
}

/// Guards string-field allocations against corrupt length prefixes.
constexpr uint32_t MaxStringField = 1u << 24;

/// Guards count-driven reserve() against corrupt count fields: never
/// pre-reserve more than this many elements — larger (honest) counts
/// just grow through push_back, while a corrupt 2^60 count surfaces as
/// a truncation diagnostic on the first missing entry instead of as
/// std::bad_alloc.
constexpr uint64_t MaxReserve = 1u << 20;

std::optional<std::string> readStringField(std::istream &In) {
  std::optional<uint32_t> Size = readU32(In);
  if (!Size || *Size > MaxStringField)
    return std::nullopt;
  std::string S(*Size, '\0');
  if (*Size > 0 && !In.read(S.data(), static_cast<std::streamsize>(*Size)))
    return std::nullopt;
  return S;
}

} // namespace

void kast::writeProfile(const KernelProfile &P, std::ostream &Out) {
  writeU64(Out, static_cast<uint64_t>(P.size()));
  for (const ProfileEntry &E : P.entries()) {
    writeU64(Out, E.Hash);
    writeU64(Out, std::bit_cast<uint64_t>(E.Value));
  }
}

Expected<KernelProfile> kast::readProfile(std::istream &In) {
  using Result = Expected<KernelProfile>;
  std::optional<uint64_t> Count = readU64(In);
  if (!Count)
    return Result::error("truncated profile: missing entry count");
  KernelProfile P;
  P.reserve(static_cast<size_t>(std::min(*Count, MaxReserve)));
  for (uint64_t I = 0; I < *Count; ++I) {
    std::optional<uint64_t> Hash = readU64(In);
    std::optional<uint64_t> Bits = readU64(In);
    if (!Hash || !Bits)
      return Result::error("truncated profile: entry " + std::to_string(I) +
                           " of " + std::to_string(*Count));
    P.add(*Hash, std::bit_cast<double>(*Bits));
  }
  // Written profiles are finalized (sorted, coalesced, no zeros), so
  // this is a bit-exact no-op for well-formed input and a repair pass
  // for hand-edited or corrupt entry orderings.
  P.finalize();
  return P;
}

Status kast::writeProfileCache(const ProfileCache &Cache, std::ostream &Out) {
  Out.write(ProfileCacheMagic, sizeof(ProfileCacheMagic));
  writeU32(Out, ProfileCacheVersion);
  writeStringField(Out, Cache.KernelName);
  writeU64(Out, static_cast<uint64_t>(Cache.Records.size()));
  for (const ProfileRecord &R : Cache.Records) {
    writeStringField(Out, R.Name);
    writeStringField(Out, R.Label);
    writeProfile(R.Profile, Out);
  }
  if (!Out)
    return Status::error("profile cache write failed");
  return Status();
}

Expected<ProfileCache> kast::readProfileCache(std::istream &In) {
  using Result = Expected<ProfileCache>;
  char Magic[sizeof(ProfileCacheMagic)];
  if (!In.read(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, ProfileCacheMagic, sizeof(Magic)) != 0)
    return Result::error("not a profile cache (bad magic)");
  std::optional<uint32_t> Version = readU32(In);
  if (!Version)
    return Result::error("truncated profile cache: missing version");
  if (*Version != ProfileCacheVersion)
    return Result::error("unsupported profile cache version " +
                         std::to_string(*Version) + " (expected " +
                         std::to_string(ProfileCacheVersion) + ")");
  std::optional<std::string> KernelName = readStringField(In);
  if (!KernelName)
    return Result::error("truncated profile cache: missing kernel name");
  std::optional<uint64_t> Count = readU64(In);
  if (!Count)
    return Result::error("truncated profile cache: missing record count");

  ProfileCache Cache;
  Cache.KernelName = std::move(*KernelName);
  Cache.Records.reserve(static_cast<size_t>(std::min(*Count, MaxReserve)));
  for (uint64_t I = 0; I < *Count; ++I) {
    std::optional<std::string> Name = readStringField(In);
    std::optional<std::string> Label = readStringField(In);
    if (!Name || !Label)
      return Result::error("truncated profile cache: record " +
                           std::to_string(I) + " of " +
                           std::to_string(*Count));
    Expected<KernelProfile> P = readProfile(In);
    if (!P)
      return Result::error("record " + std::to_string(I) + " ('" + *Name +
                           "'): " + P.message());
    Cache.Records.push_back(
        {std::move(*Name), std::move(*Label), P.take()});
  }
  return Cache;
}

Status kast::writeProfileCacheFile(const ProfileCache &Cache,
                                   const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return Status::error("cannot open '" + Path + "' for writing");
  Status S = writeProfileCache(Cache, Out);
  if (!S)
    return Status::error("'" + Path + "': " + S.message());
  Out.close();
  if (!Out)
    return Status::error("cannot flush '" + Path + "'");
  return Status();
}

Expected<ProfileCache> kast::readProfileCacheFile(const std::string &Path) {
  using Result = Expected<ProfileCache>;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Result::error("cannot open '" + Path + "'");
  Expected<ProfileCache> Cache = readProfileCache(In);
  if (!Cache)
    return Result::error("'" + Path + "': " + Cache.message());
  return Cache;
}
