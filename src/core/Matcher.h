//===- core/Matcher.h - Maximal common substring discovery -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Discovery of the substring features the Kast Spectrum Kernel embeds
/// (§3.2). The kernel's independence condition — "a target substring
/// must not be a substring of another matching substring in at least
/// one of the original strings" — is equivalent to: the feature has, in
/// at least one string, a *maximal match occurrence*: an interval whose
/// literal sequence occurs in the partner string but whose one-token
/// extension to the left or right does not. (Extending an occurrence
/// that stays common exhibits exactly the longer matching substring the
/// condition forbids; a non-extendable occurrence has no such
/// container.)
///
/// Two implementations with identical semantics:
///  * findMaximalMatches — matching statistics over a SuffixAutomaton,
///    O(|X| + |Y|) per direction (start-based statistics are obtained
///    by running end-based statistics on the reversed strings);
///  * findMaximalMatchesDP — an O(|X|·|Y|) dynamic program kept as the
///    differential-testing oracle.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_MATCHER_H
#define KAST_CORE_MATCHER_H

#include "core/SuffixAutomaton.h"
#include "core/Token.h"

#include <cstdint>
#include <vector>

namespace kast {

/// One maximal match occurrence in the subject string.
struct MaximalMatch {
  /// Start token index in the subject.
  size_t Begin = 0;
  /// One past the last token index.
  size_t End = 0;

  size_t length() const { return End - Begin; }
  bool operator==(const MaximalMatch &Rhs) const = default;
};

/// Start-based matching statistics: Result[i] = length of the longest
/// prefix of Subject[i..] occurring (anywhere) in the partner indexed
/// by \p PartnerOfReversed, which must be the SuffixAutomaton of the
/// *reversed* partner sequence.
std::vector<size_t>
matchingStatisticsStarts(const std::vector<uint32_t> &Subject,
                         const SuffixAutomaton &PartnerOfReversed);

/// Maximal match occurrences of \p Subject relative to \p Partner
/// (suffix-automaton path). \p PartnerOfReversed must index the
/// reversed partner. Results are sorted by Begin and unique.
std::vector<MaximalMatch>
findMaximalMatches(const std::vector<uint32_t> &Subject,
                   const SuffixAutomaton &PartnerOfReversed);

/// Reference implementation by quadratic dynamic programming.
std::vector<MaximalMatch>
findMaximalMatchesDP(const std::vector<uint32_t> &Subject,
                     const std::vector<uint32_t> &Partner);

/// All occurrences (begin indices) of \p Pattern in \p Text; naive
/// scan, O(|Text|·|Pattern|) worst case, linear in practice on token
/// alphabets. Overlapping occurrences are all reported.
std::vector<size_t> findOccurrences(const std::vector<uint32_t> &Text,
                                    const std::vector<uint32_t> &Pattern);

/// Convenience: reversed copy.
std::vector<uint32_t> reversed(const std::vector<uint32_t> &Sequence);

} // namespace kast

#endif // KAST_CORE_MATCHER_H
