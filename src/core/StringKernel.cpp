//===- core/StringKernel.cpp - Kernel function interface -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/StringKernel.h"

#include <cmath>

using namespace kast;

StringKernel::~StringKernel() = default;

double StringKernel::evaluateNormalized(const WeightedString &A,
                                        const WeightedString &B) const {
  double Kab = evaluate(A, B);
  double Kaa = evaluate(A, A);
  double Kbb = evaluate(B, B);
  if (Kaa <= 0.0 || Kbb <= 0.0)
    return 0.0;
  return Kab / std::sqrt(Kaa * Kbb);
}
