//===- core/StringKernel.cpp - Kernel function interface -------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/StringKernel.h"

#include <cassert>
#include <cmath>

using namespace kast;

KernelPrecomputation::~KernelPrecomputation() = default;

StringKernel::~StringKernel() = default;

std::unique_ptr<KernelPrecomputation>
StringKernel::precompute(const WeightedString &) const {
  return nullptr;
}

double StringKernel::evaluatePrepared(const WeightedString &A,
                                      const KernelPrecomputation *,
                                      const WeightedString &B,
                                      const KernelPrecomputation *) const {
  return evaluate(A, B);
}

double StringKernel::evaluateNormalized(const WeightedString &A,
                                        const WeightedString &B) const {
  double Kab = evaluate(A, B);
  double Kaa = evaluate(A, A);
  double Kbb = evaluate(B, B);
  if (Kaa <= 0.0 || Kbb <= 0.0)
    return 0.0;
  return Kab / std::sqrt(Kaa * Kbb);
}

double ProfiledStringKernel::dot(const KernelProfile &A,
                                 const KernelProfile &B) const {
  return A.dot(B);
}

double ProfiledStringKernel::evaluate(const WeightedString &A,
                                      const WeightedString &B) const {
  assert((A.empty() || B.empty() || A.table().get() == B.table().get()) &&
         "kernel arguments must share one token table");
  return dot(profile(A), profile(B));
}

std::unique_ptr<KernelPrecomputation>
ProfiledStringKernel::precompute(const WeightedString &X) const {
  return std::make_unique<ProfilePrecomputation>(profile(X));
}

double ProfiledStringKernel::evaluatePrepared(
    const WeightedString &A, const KernelPrecomputation *PrepA,
    const WeightedString &B, const KernelPrecomputation *PrepB) const {
  const auto *CachedA = static_cast<const ProfilePrecomputation *>(PrepA);
  const auto *CachedB = static_cast<const ProfilePrecomputation *>(PrepB);
  if (CachedA && CachedB)
    return dot(CachedA->profile(), CachedB->profile());
  // One side missing: rebuild it (the other stays cached).
  if (CachedA)
    return dot(CachedA->profile(), profile(B));
  if (CachedB)
    return dot(profile(A), CachedB->profile());
  return evaluate(A, B);
}
