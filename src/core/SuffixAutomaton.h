//===- core/SuffixAutomaton.h - SAM over token symbols ---------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A suffix automaton (Blumer et al.) over 32-bit token symbols. The
/// Kast Spectrum Kernel (§3.2) needs, for two strings A and B, every
/// *maximal match occurrence* — an interval of A whose literal sequence occurs
/// in B and cannot be extended left or right while still occurring in
/// B. The automaton of B answers "does this factor occur in B" in
/// amortized O(1) per symbol, giving linear-time matching statistics;
/// see Matcher.h for how those become maximal matches.
///
/// States are stored in a flat arena; transitions in small sorted
/// vectors (token alphabets here are tiny, typically < 100 symbols).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_SUFFIXAUTOMATON_H
#define KAST_CORE_SUFFIXAUTOMATON_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kast {

/// Suffix automaton of a symbol sequence.
class SuffixAutomaton {
public:
  /// Builds the automaton of \p Sequence.
  explicit SuffixAutomaton(const std::vector<uint32_t> &Sequence);

  /// \returns the number of states (at most 2n - 1 for n >= 2).
  size_t numStates() const { return States.size(); }

  /// \returns true if \p Factor occurs as a contiguous factor.
  bool containsFactor(const std::vector<uint32_t> &Factor) const;

  /// Matching statistics: Result[j] = length of the longest suffix of
  /// Query[0..j] that occurs in the indexed sequence (the standard
  /// end-based form).
  std::vector<size_t>
  matchingStatisticsEnds(const std::vector<uint32_t> &Query) const;

private:
  struct State {
    /// Length of the longest factor in this state's class.
    size_t Len = 0;
    /// Suffix link; -1 for the initial state.
    int32_t Link = -1;
    /// Sorted (symbol, target) transitions.
    std::vector<std::pair<uint32_t, int32_t>> Next;
  };

  int32_t transition(int32_t State, uint32_t Symbol) const;
  void addTransition(int32_t From, uint32_t Symbol, int32_t To);
  void setTransition(int32_t From, uint32_t Symbol, int32_t To);
  int32_t extend(int32_t Last, uint32_t Symbol);

  std::vector<State> States;
};

} // namespace kast

#endif // KAST_CORE_SUFFIXAUTOMATON_H
