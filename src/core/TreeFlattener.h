//===- core/TreeFlattener.h - Tree to weighted string ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Second stage of the paper's conversion (§3.1, Fig. 2): the compacted
/// tree is traversed in pre-order and each node becomes a token.
///
///  * ROOT/HANDLE/BLOCK nodes -> [ROOT]/[HANDLE]/[BLOCK], weight 1;
///  * a leaf -> "name[bytes]" (e.g. "read[1024]", "read+write[64]",
///    "read[2+4]"), weight = repetition count;
///  * between two consecutive emitted nodes the traversal may ascend;
///    that emits [LEVEL_UP] with weight = number of levels jumped.
///    Descent is never marked: "the number of levels jumped from a
///    parent to a child is always 1, which is implicitly expressed when
///    two tokens are written one after the other". Moving from a node
///    at depth d1 to the next pre-order node at depth d2 therefore
///    emits [LEVEL_UP] with weight d1 - d2 + 1 when that is positive
///    (siblings get weight 1), and nothing when d2 == d1 + 1.
///
/// Under this scheme the string determines the tree shape uniquely
/// (handle numbers excepted, which the representation abstracts away);
/// unflattenString inverts the mapping and is property-tested against
/// the flattener.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_TREEFLATTENER_H
#define KAST_CORE_TREEFLATTENER_H

#include "core/Token.h"
#include "tree/PatternTree.h"
#include "util/Error.h"

namespace kast {

/// Options controlling flattening.
struct FlattenOptions {
  /// Emit a final [LEVEL_UP] for the ascent back to (above) the root
  /// after the last node. The paper's definition ("until the next new
  /// node is found") implies no trailing token, the default.
  bool EmitTrailingLevelUp = false;
};

/// Flattens \p Tree into a weighted string over \p Table.
WeightedString flattenTree(const PatternTree &Tree,
                           const std::shared_ptr<TokenTable> &Table,
                           const FlattenOptions &Options = {});

/// Rebuilds a tree from a flattened string (inverse of flattenTree up
/// to handle numbering). Fails on malformed strings, e.g. [LEVEL_UP]
/// ascending past the root, structural tokens at impossible depths, or
/// leaf literals that do not parse as "name[bytes]".
Expected<PatternTree> unflattenString(const WeightedString &S);

} // namespace kast

#endif // KAST_CORE_TREEFLATTENER_H
