//===- core/FlatImage.cpp - v3 flat-image profile cache --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/FlatImage.h"

#include "util/Hashing.h"
#include "util/MappedImage.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string_view>

using namespace kast;

namespace {

constexpr uint64_t HeaderBytes = 64;
constexpr uint64_t TableEntryBytes = 32;
/// The checksummed prefix of the header: everything up to the
/// headerSum field itself.
constexpr uint64_t HeaderSumPrefix = 48;
constexpr uint32_t MaxSections = 64;
/// Counts past this are structurally impossible for a real corpus and
/// only arise from corruption; rejecting early keeps the (N+1)*8 size
/// arithmetic below overflow-free.
constexpr uint64_t MaxCount = uint64_t(1) << 48;

const char *sectionName(FlatSectionId Id) {
  switch (Id) {
  case FlatSectionId::KernelName:
    return "kernel-name";
  case FlatSectionId::Offsets:
    return "offsets";
  case FlatSectionId::Hashes:
    return "hashes";
  case FlatSectionId::Values:
    return "values";
  case FlatSectionId::SelfDots:
    return "self-dots";
  case FlatSectionId::Norms:
    return "norms";
  case FlatSectionId::Names:
    return "names";
  case FlatSectionId::Labels:
    return "labels";
  case FlatSectionId::QuantValues:
    return "quantized-values";
  case FlatSectionId::QuantScales:
    return "quantized-scales";
  case FlatSectionId::Route:
    return "route";
  case FlatSectionId::RouteMeta:
    return "routing-meta";
  case FlatSectionId::RouteAssignments:
    return "routing-assignments";
  case FlatSectionId::CentroidOffsets:
    return "centroid-offsets";
  case FlatSectionId::CentroidHashes:
    return "centroid-hashes";
  case FlatSectionId::CentroidValues:
    return "centroid-values";
  case FlatSectionId::CentroidSelfDots:
    return "centroid-self-dots";
  case FlatSectionId::CentroidNorms:
    return "centroid-norms";
  case FlatSectionId::PostingClusterBegin:
    return "posting-cluster-begin";
  case FlatSectionId::PostingFeatures:
    return "posting-features";
  case FlatSectionId::PostingBegin:
    return "posting-begin";
  case FlatSectionId::PostingIds:
    return "posting-ids";
  case FlatSectionId::PostingValues:
    return "posting-values";
  }
  return "unknown";
}

/// The "KASTIVIX" routing-meta section: a fixed 128-byte block holding
/// the flattened RoutingOptions and the arena counts every other
/// routing section's size is checked against. Layout (offsets in
/// bytes, little-endian):
///
///   0   magic           8  "KASTIVIX"
///   8   metaVersion     u32  1
///   12  flags           u32  bit 0: QuantizedShortlist
///   16  maxDocFrequency f64 bits
///   24  rerankBudget    u64
///   32  defaultNProbe   u64
///   40  numCentroids    u64  (the *option*; 0 = auto)
///   48  maxIterations   u64
///   56  trainingSample  u64
///   64  seed            u64
///   72  covered         u64  profiles covered (assignment count)
///   80  centroidCount   u64  fitted centroids C
///   88  centroidEntries u64  total centroid features ce
///   96  featureCount    u64  surviving posting features F
///   104 postingCount    u64  total postings P
///   112 prunedFeatures  u64
///   120 reserved        u64  0
constexpr char RouteMetaMagic[8] = {'K', 'A', 'S', 'T', 'I', 'V', 'I', 'X'};
constexpr uint32_t RouteMetaVersion = 1;
constexpr uint64_t RouteMetaBytes = 128;
constexpr uint32_t RouteMetaFlagQuantizedShortlist = 1u << 0;

void appendU32(std::vector<unsigned char> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<unsigned char>((V >> (8 * I)) & 0xFF));
}

void appendU64(std::vector<unsigned char> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<unsigned char>((V >> (8 * I)) & 0xFF));
}

uint64_t readU64At(const unsigned char *Data, uint64_t Offset) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Data[Offset + I]) << (8 * I);
  return V;
}

uint32_t readU32At(const unsigned char *Data, uint64_t Offset) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Data[Offset + I]) << (8 * I);
  return V;
}

uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }

/// One section staged for writing: id plus either a borrowed pointer
/// into live store memory (the zero-copy common case) or an owned
/// buffer built for the occasion (names/labels tables).
struct SectionOut {
  FlatSectionId Id;
  const unsigned char *Data = nullptr;
  uint64_t Size = 0;
  std::vector<unsigned char> Owned;
  uint64_t Offset = 0;

  static SectionOut borrowed(FlatSectionId Id, const void *Data,
                             uint64_t Size) {
    SectionOut S;
    S.Id = Id;
    S.Data = static_cast<const unsigned char *>(Data);
    S.Size = Size;
    return S;
  }

  static SectionOut owned(FlatSectionId Id, std::vector<unsigned char> Bytes) {
    SectionOut S;
    S.Id = Id;
    S.Owned = std::move(Bytes);
    S.Data = S.Owned.data();
    S.Size = S.Owned.size();
    return S;
  }
};

/// A string list as a self-contained section: (N+1) u64 offsets into
/// the byte blob that follows — the same CSR idea as the profile
/// arrays, so restore is a bounds-checked view, not a length-prefixed
/// parse. Works over vector<std::string> and StringColumn alike (both
/// expose size() and a string_view-convertible operator[]).
template <typename Column>
std::vector<unsigned char> buildStringTable(const Column &Strings) {
  std::vector<unsigned char> Out;
  uint64_t Total = 0;
  for (size_t I = 0; I < Strings.size(); ++I)
    Total += std::string_view(Strings[I]).size();
  Out.reserve((Strings.size() + 1) * 8 + Total);
  uint64_t Offset = 0;
  appendU64(Out, 0);
  for (size_t I = 0; I < Strings.size(); ++I) {
    Offset += std::string_view(Strings[I]).size();
    appendU64(Out, Offset);
  }
  for (size_t I = 0; I < Strings.size(); ++I) {
    const std::string_view S = Strings[I];
    Out.insert(Out.end(), S.begin(), S.end());
  }
  return Out;
}

/// Encodes \p R's scalars and counts as the 128-byte routing-meta
/// block (layout above).
std::vector<unsigned char> buildRouteMeta(const RoutingArenas &R) {
  std::vector<unsigned char> Out;
  Out.reserve(RouteMetaBytes);
  Out.insert(Out.end(), RouteMetaMagic, RouteMetaMagic + sizeof(RouteMetaMagic));
  appendU32(Out, RouteMetaVersion);
  appendU32(Out, R.QuantizedShortlist ? RouteMetaFlagQuantizedShortlist : 0);
  appendU64(Out, std::bit_cast<uint64_t>(R.MaxDocFrequency));
  appendU64(Out, R.RerankBudget);
  appendU64(Out, R.DefaultNProbe);
  appendU64(Out, R.ClusterNumCentroids);
  appendU64(Out, R.ClusterMaxIterations);
  appendU64(Out, R.ClusterTrainingSample);
  appendU64(Out, R.ClusterSeed);
  appendU64(Out, R.Covered);
  appendU64(Out, R.Centroids.size());
  appendU64(Out, R.Centroids.entryCount());
  appendU64(Out, R.FeatureHashes.size());
  appendU64(Out, R.PostingIds.size());
  appendU64(Out, R.PrunedFeatures);
  appendU64(Out, 0); // reserved
  return Out;
}

/// Parsed table entry on the read side.
struct SectionIn {
  uint64_t Offset = 0;
  uint64_t Size = 0;
  uint64_t Sum = 0;
  bool Present = false;
};

/// Validates a NAMES/LABELS section's offset table without
/// materializing a single string: (Count+1) u64 offsets with a leading
/// 0, non-decreasing, in bounds, final equal to the blob size. Once
/// this passes, the section is safe to hand to
/// StringColumn::fromMapped — every later operator[] is a view whose
/// bounds these offsets pin, so strings decode lazily on first access
/// instead of as O(N) allocations at open.
Status validateStringTable(const unsigned char *Data, uint64_t Size,
                           uint64_t Count, const char *What) {
  const uint64_t TableBytes = (Count + 1) * 8;
  if (Size < TableBytes)
    return Status::error(std::string("flat image ") + What +
                         " section too small for its offset table");
  const uint64_t BlobBytes = Size - TableBytes;
  uint64_t Prev = readU64At(Data, 0);
  if (Prev != 0)
    return Status::error(std::string("flat image ") + What +
                         " offsets must start at 0");
  for (uint64_t I = 0; I < Count; ++I) {
    const uint64_t Next = readU64At(Data, (I + 1) * 8);
    if (Next < Prev || Next > BlobBytes)
      return Status::error(std::string("flat image ") + What +
                           " offsets not monotonic or out of bounds");
    Prev = Next;
  }
  if (Prev != BlobBytes)
    return Status::error(std::string("flat image ") + What +
                         " offsets disagree with blob size");
  return Status();
}

/// The shared writer over either string-column shape
/// (vector<std::string> or StringColumn), optionally embedding routing
/// arenas — which is what flips the written version to 4.
template <typename Column>
Status writeImageImpl(const std::string &KernelName, const Column &Names,
                      const Column &Labels, const ProfileStore &Store,
                      const std::string &Path, const std::string &RouteBlob,
                      const RoutingArenas *Routing) {
  if constexpr (std::endian::native != std::endian::little)
    return Status::error("flat image writer requires a little-endian host; "
                         "use the v2 cache format");
  if (Names.size() != Store.size() || Labels.size() != Store.size())
    return Status::error("flat image has " + std::to_string(Store.size()) +
                         " profiles but " + std::to_string(Names.size()) +
                         " names / " + std::to_string(Labels.size()) +
                         " labels");
  // Empty routing (an unfitted or empty-corpus router) carries no
  // information a restore could use; write a plain v3 image and let
  // the restore path fall back.
  if (Routing && (Routing->Covered == 0 || Routing->Centroids.size() == 0))
    Routing = nullptr;
  if (Routing) {
    const RoutingArenas &R = *Routing;
    const uint64_t C = R.Centroids.size();
    const uint64_t F = R.FeatureHashes.size();
    if (R.Assignments.size() != R.Covered || R.Covered > Store.size() ||
        R.ClusterBegin.size() != C + 1 || R.PostingBegin.size() != F + 1 ||
        R.PostingIds.size() != R.PostingValues.size())
      return Status::error("flat image routing arenas are inconsistent with "
                           "their counts");
  }

  const uint64_t N = Store.size();
  const uint64_t Total = Store.entryCount();

  // On a little-endian host the in-memory arrays *are* the wire bytes,
  // so every array section is borrowed straight from the store — the
  // writer's only copies are the string tables.
  std::vector<SectionOut> Sections;
  Sections.push_back(SectionOut::borrowed(FlatSectionId::KernelName,
                                          KernelName.data(),
                                          KernelName.size()));
  Sections.push_back(SectionOut::borrowed(
      FlatSectionId::Offsets, Store.offsets().data(), (N + 1) * 8));
  Sections.push_back(SectionOut::borrowed(FlatSectionId::Hashes,
                                          Store.hashes().data(), Total * 8));
  static_assert(sizeof(double) == sizeof(uint64_t));
  Sections.push_back(SectionOut::borrowed(FlatSectionId::Values,
                                          Store.values().data(), Total * 8));
  Sections.push_back(SectionOut::borrowed(FlatSectionId::SelfDots,
                                          Store.selfDots().data(), N * 8));
  Sections.push_back(
      SectionOut::borrowed(FlatSectionId::Norms, Store.norms().data(), N * 8));
  Sections.push_back(
      SectionOut::owned(FlatSectionId::Names, buildStringTable(Names)));
  Sections.push_back(
      SectionOut::owned(FlatSectionId::Labels, buildStringTable(Labels)));
  if (const QuantizedStore *Quant = Store.quantized()) {
    Sections.push_back(SectionOut::borrowed(FlatSectionId::QuantValues,
                                            Quant->values().data(), Total));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::QuantScales,
                                            Quant->scales().data(), N * 8));
  }
  // The legacy opaque blob and the arena sections are exclusive: the
  // arenas carry strictly more (they restore without a rebuild), so a
  // v4 image never wastes pages on the blob form.
  if (!RouteBlob.empty() && !Routing)
    Sections.push_back(SectionOut::borrowed(FlatSectionId::Route,
                                            RouteBlob.data(),
                                            RouteBlob.size()));
  if (Routing) {
    const RoutingArenas &R = *Routing;
    const uint64_t C = R.Centroids.size();
    Sections.push_back(
        SectionOut::owned(FlatSectionId::RouteMeta, buildRouteMeta(R)));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::RouteAssignments,
                                            R.Assignments.data(),
                                            R.Assignments.size() * 4));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::CentroidOffsets,
                                            R.Centroids.offsets().data(),
                                            (C + 1) * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::CentroidHashes,
                                            R.Centroids.hashes().data(),
                                            R.Centroids.entryCount() * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::CentroidValues,
                                            R.Centroids.values().data(),
                                            R.Centroids.entryCount() * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::CentroidSelfDots,
                                            R.Centroids.selfDots().data(),
                                            C * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::CentroidNorms,
                                            R.Centroids.norms().data(),
                                            C * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::PostingClusterBegin,
                                            R.ClusterBegin.data(),
                                            R.ClusterBegin.size() * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::PostingFeatures,
                                            R.FeatureHashes.data(),
                                            R.FeatureHashes.size() * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::PostingBegin,
                                            R.PostingBegin.data(),
                                            R.PostingBegin.size() * 8));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::PostingIds,
                                            R.PostingIds.data(),
                                            R.PostingIds.size() * 4));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::PostingValues,
                                            R.PostingValues.data(),
                                            R.PostingValues.size() * 8));
  }

  // Lay the sections out page-aligned after the header + table.
  uint64_t Cursor =
      HeaderBytes + Sections.size() * TableEntryBytes;
  for (SectionOut &S : Sections) {
    S.Offset = alignUp(Cursor, FlatImageAlignment);
    Cursor = S.Offset + S.Size;
  }

  // Header prefix [0, 48) and the table, checksummed together.
  std::vector<unsigned char> Prelude;
  Prelude.reserve(HeaderSumPrefix + Sections.size() * TableEntryBytes);
  Prelude.insert(Prelude.end(), FlatImageMagic,
                 FlatImageMagic + sizeof(FlatImageMagic));
  appendU32(Prelude, Routing ? FlatImageVersionRouted : FlatImageVersion);
  appendU32(Prelude, static_cast<uint32_t>(Sections.size()));
  appendU64(Prelude, checksumBytes(KernelName.data(), KernelName.size()));
  appendU64(Prelude, N);
  appendU64(Prelude, Total);
  appendU64(Prelude, HeaderBytes); // tableOffset
  for (const SectionOut &S : Sections) {
    appendU32(Prelude, static_cast<uint32_t>(S.Id));
    appendU32(Prelude, 0);
    appendU64(Prelude, S.Offset);
    appendU64(Prelude, S.Size);
    appendU64(Prelude, checksumBytes(S.Data, S.Size));
  }
  const uint64_t HeaderSum = checksumBytes(Prelude.data(), Prelude.size());

  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return Status::error("cannot open '" + Path + "' for writing");
  Out.write(reinterpret_cast<const char *>(Prelude.data()),
            static_cast<std::streamsize>(HeaderSumPrefix));
  char Tail[16] = {};
  std::memcpy(Tail, &HeaderSum, 8); // LE host: memory order is wire order
  Out.write(Tail, sizeof(Tail));    // headerSum + reserved
  Out.write(reinterpret_cast<const char *>(Prelude.data()) + HeaderSumPrefix,
            static_cast<std::streamsize>(Prelude.size() - HeaderSumPrefix));

  uint64_t Written = HeaderBytes + Sections.size() * TableEntryBytes;
  static const char Zeros[4096] = {};
  for (const SectionOut &S : Sections) {
    for (uint64_t Pad = S.Offset - Written; Pad > 0;) {
      const uint64_t Chunk = Pad < sizeof(Zeros) ? Pad : sizeof(Zeros);
      Out.write(Zeros, static_cast<std::streamsize>(Chunk));
      Pad -= Chunk;
    }
    if (S.Size > 0)
      Out.write(reinterpret_cast<const char *>(S.Data),
                static_cast<std::streamsize>(S.Size));
    Written = S.Offset + S.Size;
  }
  Out.close();
  if (!Out)
    return Status::error("cannot flush '" + Path + "'");
  return Status();
}

} // namespace

Status kast::writeProfileStoreImageFile(const std::string &KernelName,
                                        const std::vector<std::string> &Names,
                                        const std::vector<std::string> &Labels,
                                        const ProfileStore &Store,
                                        const std::string &Path,
                                        const std::string &RouteBlob) {
  return writeImageImpl(KernelName, Names, Labels, Store, Path, RouteBlob,
                        nullptr);
}

Status kast::writeProfileStoreImageFile(const ProfileStoreCache &Cache,
                                        const std::string &Path) {
  return writeImageImpl(Cache.KernelName, Cache.Names, Cache.Labels,
                        Cache.Store, Path, Cache.RouteBlob,
                        Cache.Routing.get());
}

Expected<ProfileStoreCache>
kast::readProfileStoreImageFile(const std::string &Path,
                                const FlatImageReadOptions &Options) {
  using Result = Expected<ProfileStoreCache>;
  if constexpr (std::endian::native != std::endian::little)
    return Result::error("flat image reader requires a little-endian host; "
                         "use the v2 cache format");

  Expected<std::shared_ptr<const MappedImage>> Opened =
      MappedImage::open(Path, Options.ForceBuffered);
  if (!Opened)
    return Result::error(Opened.message());
  std::shared_ptr<const MappedImage> Image = Opened.take();
  const unsigned char *Data = Image->data();
  const uint64_t Size = Image->size();
  // The buffered fallback has already read every byte, so full
  // checksum coverage is free of extra faults; take it.
  const bool Deep = Options.DeepValidate || !Image->isMapped();

  auto fail = [&](const std::string &Message) {
    return Result::error("'" + Path + "': " + Message);
  };

  if (Size >= 8 && std::memcmp(Data, ProfileCacheMagic, 8) == 0)
    return fail("this is a v1/v2 profile cache; read it with "
                "readProfileStoreCacheFile (core/ProfileSerializer)");
  if (Size < HeaderBytes)
    return fail("truncated flat image: missing header");
  if (std::memcmp(Data, FlatImageMagic, 8) != 0)
    return fail("not a flat image (bad magic)");
  const uint32_t Version = readU32At(Data, 8);
  if (Version != FlatImageVersion && Version != FlatImageVersionRouted)
    return fail("unsupported flat image version " + std::to_string(Version) +
                " (expected " + std::to_string(FlatImageVersion) + " or " +
                std::to_string(FlatImageVersionRouted) + ")");
  const uint32_t SectionCount = readU32At(Data, 12);
  const uint64_t KernelHash = readU64At(Data, 16);
  const uint64_t N = readU64At(Data, 24);
  const uint64_t Total = readU64At(Data, 32);
  const uint64_t TableOffset = readU64At(Data, 40);
  const uint64_t HeaderSum = readU64At(Data, 48);
  if (SectionCount == 0 || SectionCount > MaxSections)
    return fail("corrupt flat image: implausible section count " +
                std::to_string(SectionCount));
  if (N >= MaxCount || Total >= MaxCount)
    return fail("corrupt flat image: implausible profile/entry count");
  if (TableOffset != HeaderBytes)
    return fail("corrupt flat image: misaligned section table (offset " +
                std::to_string(TableOffset) + ", expected " +
                std::to_string(HeaderBytes) + ")");
  const uint64_t TableBytes = uint64_t(SectionCount) * TableEntryBytes;
  if (Size < HeaderBytes + TableBytes)
    return fail("truncated flat image: section table past end of file");

  // The header checksum covers the prefix and the whole table, so one
  // comparison validates every offset/size/sum we are about to trust.
  std::vector<unsigned char> Checked;
  Checked.reserve(HeaderSumPrefix + TableBytes);
  Checked.insert(Checked.end(), Data, Data + HeaderSumPrefix);
  Checked.insert(Checked.end(), Data + HeaderBytes,
                 Data + HeaderBytes + TableBytes);
  if (checksumBytes(Checked.data(), Checked.size()) != HeaderSum)
    return fail("corrupt flat image: header checksum mismatch");

  SectionIn Sections[MaxSections + 1] = {};
  for (uint32_t I = 0; I < SectionCount; ++I) {
    const uint64_t Entry = HeaderBytes + uint64_t(I) * TableEntryBytes;
    const uint32_t Id = readU32At(Data, Entry);
    SectionIn S;
    S.Offset = readU64At(Data, Entry + 8);
    S.Size = readU64At(Data, Entry + 16);
    S.Sum = readU64At(Data, Entry + 24);
    S.Present = true;
    // The routing-arena ids only exist from version 4 on; seeing one
    // under version 3 is skew (a patched header or a mixed-up writer),
    // not a format this reader can trust.
    const uint32_t MaxId = Version >= FlatImageVersionRouted
                               ? static_cast<uint32_t>(
                                     FlatSectionId::PostingValues)
                               : static_cast<uint32_t>(FlatSectionId::Route);
    if (Id == 0 || Id > MaxId)
      return fail("corrupt flat image: unknown section id " +
                  std::to_string(Id) + " for version " +
                  std::to_string(Version));
    const char *Name = sectionName(static_cast<FlatSectionId>(Id));
    if (S.Offset % FlatImageAlignment != 0)
      return fail(std::string("corrupt flat image: ") + Name +
                  " section not " + std::to_string(FlatImageAlignment) +
                  "-byte aligned");
    if (S.Offset > Size || S.Size > Size - S.Offset)
      return fail(std::string("truncated flat image: ") + Name +
                  " section past end of file");
    if (Sections[Id].Present)
      return fail(std::string("corrupt flat image: duplicate ") + Name +
                  " section");
    Sections[Id] = S;
  }

  auto section = [&](FlatSectionId Id) -> const SectionIn & {
    return Sections[static_cast<uint32_t>(Id)];
  };
  auto sectionData = [&](FlatSectionId Id) {
    return Data + section(Id).Offset;
  };

  // Presence and exact sizes of the mandatory sections. The
  // entry-array sizes anchor every later pointer view, so they are
  // hard requirements, not checksummed suggestions.
  const struct {
    FlatSectionId Id;
    uint64_t WantSize;
    bool Exact;
  } Shape[] = {
      {FlatSectionId::KernelName, 0, false},
      {FlatSectionId::Offsets, (N + 1) * 8, true},
      {FlatSectionId::Hashes, Total * 8, true},
      {FlatSectionId::Values, Total * 8, true},
      {FlatSectionId::SelfDots, N * 8, true},
      {FlatSectionId::Norms, N * 8, true},
      {FlatSectionId::Names, (N + 1) * 8, false},
      {FlatSectionId::Labels, (N + 1) * 8, false},
  };
  for (const auto &Want : Shape) {
    const SectionIn &S = section(Want.Id);
    const char *Name = sectionName(Want.Id);
    if (!S.Present)
      return fail(std::string("corrupt flat image: missing ") + Name +
                  " section");
    if (Want.Exact ? S.Size != Want.WantSize : S.Size < Want.WantSize)
      return fail(std::string("corrupt flat image: ") + Name +
                  " section size disagrees with header counts");
  }

  // Verify checksums: always for the O(N)-sized metadata sections,
  // entry-sized arrays only under deep validation (see header).
  auto verify = [&](FlatSectionId Id) -> Status {
    const SectionIn &S = section(Id);
    if (S.Present &&
        checksumBytes(Data + S.Offset, static_cast<size_t>(S.Size)) != S.Sum)
      return Status::error(std::string("corrupt flat image: ") +
                           sectionName(Id) + " section checksum mismatch");
    return Status();
  };
  for (FlatSectionId Id :
       {FlatSectionId::KernelName, FlatSectionId::Offsets,
        FlatSectionId::SelfDots, FlatSectionId::Norms, FlatSectionId::Names,
        FlatSectionId::Labels, FlatSectionId::QuantScales,
        FlatSectionId::Route, FlatSectionId::RouteMeta,
        FlatSectionId::RouteAssignments, FlatSectionId::CentroidOffsets,
        FlatSectionId::CentroidSelfDots, FlatSectionId::CentroidNorms,
        FlatSectionId::PostingClusterBegin, FlatSectionId::PostingBegin})
    if (Status S = verify(Id); !S)
      return fail(S.message());
  if (Deep)
    for (FlatSectionId Id :
         {FlatSectionId::Hashes, FlatSectionId::Values,
          FlatSectionId::QuantValues, FlatSectionId::CentroidHashes,
          FlatSectionId::CentroidValues, FlatSectionId::PostingFeatures,
          FlatSectionId::PostingIds, FlatSectionId::PostingValues})
      if (Status S = verify(Id); !S)
        return fail(S.message());

  std::string KernelName(
      reinterpret_cast<const char *>(sectionData(FlatSectionId::KernelName)),
      static_cast<size_t>(section(FlatSectionId::KernelName).Size));
  if (checksumBytes(KernelName.data(), KernelName.size()) != KernelHash)
    return fail("corrupt flat image: kernel-name hash mismatch");

  const uint64_t *Offsets =
      reinterpret_cast<const uint64_t *>(sectionData(FlatSectionId::Offsets));
  if (Status S = validateCsrOffsets(Offsets, static_cast<size_t>(N + 1), Total);
      !S)
    return fail(S.message());

  // Names/labels stay in the image: validate the offset tables once,
  // then view them lazily — no string materializes until someone reads
  // one (core/StringColumn).
  if (Status S = validateStringTable(sectionData(FlatSectionId::Names),
                                     section(FlatSectionId::Names).Size, N,
                                     "names");
      !S)
    return fail(S.message());
  if (Status S = validateStringTable(sectionData(FlatSectionId::Labels),
                                     section(FlatSectionId::Labels).Size, N,
                                     "labels");
      !S)
    return fail(S.message());

  ProfileStoreCache Cache;
  Cache.KernelName = std::move(KernelName);
  std::shared_ptr<const void> Backing = Image;
  auto stringColumn = [&](FlatSectionId Id) {
    const unsigned char *D = sectionData(Id);
    return StringColumn::fromMapped(
        reinterpret_cast<const uint64_t *>(D),
        reinterpret_cast<const char *>(D) + (N + 1) * 8,
        static_cast<size_t>(N), Backing);
  };
  Cache.Names = stringColumn(FlatSectionId::Names);
  Cache.Labels = stringColumn(FlatSectionId::Labels);
  Cache.Store = ProfileStore::fromMapped(
      Offsets,
      reinterpret_cast<const uint64_t *>(sectionData(FlatSectionId::Hashes)),
      reinterpret_cast<const double *>(sectionData(FlatSectionId::Values)),
      reinterpret_cast<const double *>(sectionData(FlatSectionId::SelfDots)),
      reinterpret_cast<const double *>(sectionData(FlatSectionId::Norms)),
      static_cast<size_t>(N), static_cast<size_t>(Total), Backing);
  if (Deep && !Cache.Store.isFinalized())
    return fail("corrupt flat image: profile entries not sorted by hash");

  // Optional quantized sidecar: both sections or neither.
  const SectionIn &QValues = section(FlatSectionId::QuantValues);
  const SectionIn &QScales = section(FlatSectionId::QuantScales);
  if (QValues.Present != QScales.Present)
    return fail("corrupt flat image: quantized sidecar needs both the "
                "quantized-values and quantized-scales sections");
  if (QValues.Present) {
    if (QValues.Size != Total || QScales.Size != N * 8)
      return fail("corrupt flat image: quantized sidecar size disagrees "
                  "with header counts");
    Cache.Store.adoptQuantized(
        std::make_shared<const QuantizedStore>(QuantizedStore::fromMapped(
            reinterpret_cast<const int8_t *>(
                sectionData(FlatSectionId::QuantValues)),
            Offsets,
            reinterpret_cast<const double *>(
                sectionData(FlatSectionId::QuantScales)),
            static_cast<size_t>(N), static_cast<size_t>(Total), Backing)));
  }

  const SectionIn &Route = section(FlatSectionId::Route);
  if (Route.Present)
    Cache.RouteBlob.assign(
        reinterpret_cast<const char *>(sectionData(FlatSectionId::Route)),
        static_cast<size_t>(Route.Size));

  // v4 routing arenas: all twelve sections or none. Structural checks
  // here are the always-on tier — everything an in-bounds query walk
  // depends on (CSR monotonicity, assignment range, exact sizes) —
  // while the payload arrays' checksums ride the deep tier like the
  // store's own entry arrays.
  const FlatSectionId RoutingIds[] = {
      FlatSectionId::RouteMeta,        FlatSectionId::RouteAssignments,
      FlatSectionId::CentroidOffsets,  FlatSectionId::CentroidHashes,
      FlatSectionId::CentroidValues,   FlatSectionId::CentroidSelfDots,
      FlatSectionId::CentroidNorms,    FlatSectionId::PostingClusterBegin,
      FlatSectionId::PostingFeatures,  FlatSectionId::PostingBegin,
      FlatSectionId::PostingIds,       FlatSectionId::PostingValues};
  size_t RoutingPresent = 0;
  for (FlatSectionId Id : RoutingIds)
    if (section(Id).Present)
      ++RoutingPresent;
  if (RoutingPresent != 0 && RoutingPresent != std::size(RoutingIds))
    return fail("corrupt flat image: routing arenas need all of their "
                "sections (" +
                std::to_string(RoutingPresent) + " of " +
                std::to_string(std::size(RoutingIds)) + " present)");
  if (RoutingPresent != 0) {
    const SectionIn &Meta = section(FlatSectionId::RouteMeta);
    const unsigned char *MetaData = sectionData(FlatSectionId::RouteMeta);
    if (Meta.Size != RouteMetaBytes ||
        std::memcmp(MetaData, RouteMetaMagic, sizeof(RouteMetaMagic)) != 0)
      return fail("corrupt flat image: malformed routing-meta section");
    if (readU32At(MetaData, 8) != RouteMetaVersion)
      return fail("unsupported flat image routing-meta version " +
                  std::to_string(readU32At(MetaData, 8)));
    const uint32_t Flags = readU32At(MetaData, 12);
    auto R = std::make_shared<RoutingArenas>();
    R->QuantizedShortlist = (Flags & RouteMetaFlagQuantizedShortlist) != 0;
    R->MaxDocFrequency = std::bit_cast<double>(readU64At(MetaData, 16));
    R->RerankBudget = readU64At(MetaData, 24);
    R->DefaultNProbe = readU64At(MetaData, 32);
    R->ClusterNumCentroids = readU64At(MetaData, 40);
    R->ClusterMaxIterations = readU64At(MetaData, 48);
    R->ClusterTrainingSample = readU64At(MetaData, 56);
    R->ClusterSeed = readU64At(MetaData, 64);
    R->Covered = readU64At(MetaData, 72);
    const uint64_t C = readU64At(MetaData, 80);
    const uint64_t CentroidEntries = readU64At(MetaData, 88);
    const uint64_t F = readU64At(MetaData, 96);
    const uint64_t P = readU64At(MetaData, 104);
    R->PrunedFeatures = readU64At(MetaData, 112);
    if (!(R->MaxDocFrequency >= 0.0) || R->MaxDocFrequency > 1.0)
      return fail("corrupt flat image: routing df threshold out of range");
    if (R->Covered > N || C == 0 || C >= MaxCount ||
        CentroidEntries >= MaxCount || F >= MaxCount || P >= MaxCount)
      return fail("corrupt flat image: routing-meta counts disagree with "
                  "header counts");
    const struct {
      FlatSectionId Id;
      uint64_t WantSize;
    } RoutingShape[] = {
        {FlatSectionId::RouteAssignments, R->Covered * 4},
        {FlatSectionId::CentroidOffsets, (C + 1) * 8},
        {FlatSectionId::CentroidHashes, CentroidEntries * 8},
        {FlatSectionId::CentroidValues, CentroidEntries * 8},
        {FlatSectionId::CentroidSelfDots, C * 8},
        {FlatSectionId::CentroidNorms, C * 8},
        {FlatSectionId::PostingClusterBegin, (C + 1) * 8},
        {FlatSectionId::PostingFeatures, F * 8},
        {FlatSectionId::PostingBegin, (F + 1) * 8},
        {FlatSectionId::PostingIds, P * 4},
        {FlatSectionId::PostingValues, P * 8},
    };
    for (const auto &Want : RoutingShape)
      if (section(Want.Id).Size != Want.WantSize)
        return fail(std::string("corrupt flat image: ") +
                    sectionName(Want.Id) +
                    " section size disagrees with routing-meta counts");

    const uint64_t *CentroidOffsets = reinterpret_cast<const uint64_t *>(
        sectionData(FlatSectionId::CentroidOffsets));
    if (Status S = validateCsrOffsets(
            CentroidOffsets, static_cast<size_t>(C + 1), CentroidEntries);
        !S)
      return fail("routing centroids: " + S.message());
    const uint64_t *ClusterBegin = reinterpret_cast<const uint64_t *>(
        sectionData(FlatSectionId::PostingClusterBegin));
    if (Status S = validateCsrOffsets(ClusterBegin,
                                      static_cast<size_t>(C + 1), F);
        !S)
      return fail("routing cluster index: " + S.message());
    const uint64_t *PostingBegin = reinterpret_cast<const uint64_t *>(
        sectionData(FlatSectionId::PostingBegin));
    if (Status S = validateCsrOffsets(PostingBegin,
                                      static_cast<size_t>(F + 1), P);
        !S)
      return fail("routing posting index: " + S.message());
    const uint32_t *Assignments = reinterpret_cast<const uint32_t *>(
        sectionData(FlatSectionId::RouteAssignments));
    for (uint64_t I = 0; I < R->Covered; ++I)
      if (Assignments[I] >= C)
        return fail("corrupt flat image: routing assignment " +
                    std::to_string(I) + " names centroid " +
                    std::to_string(Assignments[I]) + " of " +
                    std::to_string(C));

    R->Assignments = {Assignments, static_cast<size_t>(R->Covered)};
    R->Centroids = ProfileStore::fromMapped(
        CentroidOffsets,
        reinterpret_cast<const uint64_t *>(
            sectionData(FlatSectionId::CentroidHashes)),
        reinterpret_cast<const double *>(
            sectionData(FlatSectionId::CentroidValues)),
        reinterpret_cast<const double *>(
            sectionData(FlatSectionId::CentroidSelfDots)),
        reinterpret_cast<const double *>(
            sectionData(FlatSectionId::CentroidNorms)),
        static_cast<size_t>(C), static_cast<size_t>(CentroidEntries), Backing);
    if (Deep && !R->Centroids.isFinalized())
      return fail("corrupt flat image: centroid features not sorted by hash");
    R->FeatureHashes = {reinterpret_cast<const uint64_t *>(
                            sectionData(FlatSectionId::PostingFeatures)),
                        static_cast<size_t>(F)};
    R->ClusterBegin = {ClusterBegin, static_cast<size_t>(C + 1)};
    R->PostingBegin = {PostingBegin, static_cast<size_t>(F + 1)};
    R->PostingIds = {reinterpret_cast<const uint32_t *>(
                         sectionData(FlatSectionId::PostingIds)),
                     static_cast<size_t>(P)};
    R->PostingValues = {reinterpret_cast<const double *>(
                            sectionData(FlatSectionId::PostingValues)),
                        static_cast<size_t>(P)};
    R->Backing = Backing;
    Cache.Routing = std::move(R);
  }

  // Serving faults pages in query order, which is as random as the
  // query stream; tell the kernel not to read ahead aggressively.
  Image->adviseRandom();
  return Cache;
}
