//===- core/FlatImage.cpp - v3 flat-image profile cache --------------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/FlatImage.h"

#include "util/Hashing.h"
#include "util/MappedImage.h"

#include <bit>
#include <cstring>
#include <fstream>

using namespace kast;

namespace {

constexpr uint64_t HeaderBytes = 64;
constexpr uint64_t TableEntryBytes = 32;
/// The checksummed prefix of the header: everything up to the
/// headerSum field itself.
constexpr uint64_t HeaderSumPrefix = 48;
constexpr uint32_t MaxSections = 64;
/// Counts past this are structurally impossible for a real corpus and
/// only arise from corruption; rejecting early keeps the (N+1)*8 size
/// arithmetic below overflow-free.
constexpr uint64_t MaxCount = uint64_t(1) << 48;

const char *sectionName(FlatSectionId Id) {
  switch (Id) {
  case FlatSectionId::KernelName:
    return "kernel-name";
  case FlatSectionId::Offsets:
    return "offsets";
  case FlatSectionId::Hashes:
    return "hashes";
  case FlatSectionId::Values:
    return "values";
  case FlatSectionId::SelfDots:
    return "self-dots";
  case FlatSectionId::Norms:
    return "norms";
  case FlatSectionId::Names:
    return "names";
  case FlatSectionId::Labels:
    return "labels";
  case FlatSectionId::QuantValues:
    return "quantized-values";
  case FlatSectionId::QuantScales:
    return "quantized-scales";
  case FlatSectionId::Route:
    return "route";
  }
  return "unknown";
}

void appendU32(std::vector<unsigned char> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<unsigned char>((V >> (8 * I)) & 0xFF));
}

void appendU64(std::vector<unsigned char> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<unsigned char>((V >> (8 * I)) & 0xFF));
}

uint64_t readU64At(const unsigned char *Data, uint64_t Offset) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Data[Offset + I]) << (8 * I);
  return V;
}

uint32_t readU32At(const unsigned char *Data, uint64_t Offset) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Data[Offset + I]) << (8 * I);
  return V;
}

uint64_t alignUp(uint64_t V, uint64_t A) { return (V + A - 1) / A * A; }

/// One section staged for writing: id plus either a borrowed pointer
/// into live store memory (the zero-copy common case) or an owned
/// buffer built for the occasion (names/labels tables).
struct SectionOut {
  FlatSectionId Id;
  const unsigned char *Data = nullptr;
  uint64_t Size = 0;
  std::vector<unsigned char> Owned;
  uint64_t Offset = 0;

  static SectionOut borrowed(FlatSectionId Id, const void *Data,
                             uint64_t Size) {
    SectionOut S;
    S.Id = Id;
    S.Data = static_cast<const unsigned char *>(Data);
    S.Size = Size;
    return S;
  }

  static SectionOut owned(FlatSectionId Id, std::vector<unsigned char> Bytes) {
    SectionOut S;
    S.Id = Id;
    S.Owned = std::move(Bytes);
    S.Data = S.Owned.data();
    S.Size = S.Owned.size();
    return S;
  }
};

/// A string list as a self-contained section: (N+1) u64 offsets into
/// the byte blob that follows — the same CSR idea as the profile
/// arrays, so restore is a bounds-checked view, not a length-prefixed
/// parse.
std::vector<unsigned char>
buildStringTable(const std::vector<std::string> &Strings) {
  std::vector<unsigned char> Out;
  uint64_t Total = 0;
  for (const std::string &S : Strings)
    Total += S.size();
  Out.reserve((Strings.size() + 1) * 8 + Total);
  uint64_t Offset = 0;
  appendU64(Out, 0);
  for (const std::string &S : Strings) {
    Offset += S.size();
    appendU64(Out, Offset);
  }
  for (const std::string &S : Strings)
    Out.insert(Out.end(), S.begin(), S.end());
  return Out;
}

/// Parsed table entry on the read side.
struct SectionIn {
  uint64_t Offset = 0;
  uint64_t Size = 0;
  uint64_t Sum = 0;
  bool Present = false;
};

Expected<std::vector<std::string>>
parseStringTable(const unsigned char *Data, uint64_t Size, uint64_t Count,
                 const char *What) {
  using Result = Expected<std::vector<std::string>>;
  const uint64_t TableBytes = (Count + 1) * 8;
  if (Size < TableBytes)
    return Result::error(std::string("flat image ") + What +
                         " section too small for its offset table");
  const uint64_t BlobBytes = Size - TableBytes;
  uint64_t Prev = readU64At(Data, 0);
  if (Prev != 0)
    return Result::error(std::string("flat image ") + What +
                         " offsets must start at 0");
  std::vector<std::string> Strings;
  Strings.reserve(static_cast<size_t>(Count));
  for (uint64_t I = 0; I < Count; ++I) {
    const uint64_t Next = readU64At(Data, (I + 1) * 8);
    if (Next < Prev || Next > BlobBytes)
      return Result::error(std::string("flat image ") + What +
                           " offsets not monotonic or out of bounds");
    Strings.emplace_back(reinterpret_cast<const char *>(Data) + TableBytes +
                             Prev,
                         static_cast<size_t>(Next - Prev));
    Prev = Next;
  }
  if (Prev != BlobBytes)
    return Result::error(std::string("flat image ") + What +
                         " offsets disagree with blob size");
  return Strings;
}

} // namespace

Status kast::writeProfileStoreImageFile(const std::string &KernelName,
                                        const std::vector<std::string> &Names,
                                        const std::vector<std::string> &Labels,
                                        const ProfileStore &Store,
                                        const std::string &Path,
                                        const std::string &RouteBlob) {
  if constexpr (std::endian::native != std::endian::little)
    return Status::error("flat image writer requires a little-endian host; "
                         "use the v2 cache format");
  if (Names.size() != Store.size() || Labels.size() != Store.size())
    return Status::error("flat image has " + std::to_string(Store.size()) +
                         " profiles but " + std::to_string(Names.size()) +
                         " names / " + std::to_string(Labels.size()) +
                         " labels");

  const uint64_t N = Store.size();
  const uint64_t Total = Store.entryCount();

  // On a little-endian host the in-memory arrays *are* the wire bytes,
  // so every array section is borrowed straight from the store — the
  // writer's only copies are the string tables.
  std::vector<SectionOut> Sections;
  Sections.push_back(SectionOut::borrowed(FlatSectionId::KernelName,
                                          KernelName.data(),
                                          KernelName.size()));
  Sections.push_back(SectionOut::borrowed(
      FlatSectionId::Offsets, Store.offsets().data(), (N + 1) * 8));
  Sections.push_back(SectionOut::borrowed(FlatSectionId::Hashes,
                                          Store.hashes().data(), Total * 8));
  static_assert(sizeof(double) == sizeof(uint64_t));
  Sections.push_back(SectionOut::borrowed(FlatSectionId::Values,
                                          Store.values().data(), Total * 8));
  Sections.push_back(SectionOut::borrowed(FlatSectionId::SelfDots,
                                          Store.selfDots().data(), N * 8));
  Sections.push_back(
      SectionOut::borrowed(FlatSectionId::Norms, Store.norms().data(), N * 8));
  Sections.push_back(
      SectionOut::owned(FlatSectionId::Names, buildStringTable(Names)));
  Sections.push_back(
      SectionOut::owned(FlatSectionId::Labels, buildStringTable(Labels)));
  if (const QuantizedStore *Quant = Store.quantized()) {
    Sections.push_back(SectionOut::borrowed(FlatSectionId::QuantValues,
                                            Quant->values().data(), Total));
    Sections.push_back(SectionOut::borrowed(FlatSectionId::QuantScales,
                                            Quant->scales().data(), N * 8));
  }
  if (!RouteBlob.empty())
    Sections.push_back(SectionOut::borrowed(FlatSectionId::Route,
                                            RouteBlob.data(),
                                            RouteBlob.size()));

  // Lay the sections out page-aligned after the header + table.
  uint64_t Cursor =
      HeaderBytes + Sections.size() * TableEntryBytes;
  for (SectionOut &S : Sections) {
    S.Offset = alignUp(Cursor, FlatImageAlignment);
    Cursor = S.Offset + S.Size;
  }

  // Header prefix [0, 48) and the table, checksummed together.
  std::vector<unsigned char> Prelude;
  Prelude.reserve(HeaderSumPrefix + Sections.size() * TableEntryBytes);
  Prelude.insert(Prelude.end(), FlatImageMagic,
                 FlatImageMagic + sizeof(FlatImageMagic));
  appendU32(Prelude, FlatImageVersion);
  appendU32(Prelude, static_cast<uint32_t>(Sections.size()));
  appendU64(Prelude, checksumBytes(KernelName.data(), KernelName.size()));
  appendU64(Prelude, N);
  appendU64(Prelude, Total);
  appendU64(Prelude, HeaderBytes); // tableOffset
  for (const SectionOut &S : Sections) {
    appendU32(Prelude, static_cast<uint32_t>(S.Id));
    appendU32(Prelude, 0);
    appendU64(Prelude, S.Offset);
    appendU64(Prelude, S.Size);
    appendU64(Prelude, checksumBytes(S.Data, S.Size));
  }
  const uint64_t HeaderSum = checksumBytes(Prelude.data(), Prelude.size());

  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return Status::error("cannot open '" + Path + "' for writing");
  Out.write(reinterpret_cast<const char *>(Prelude.data()),
            static_cast<std::streamsize>(HeaderSumPrefix));
  char Tail[16] = {};
  std::memcpy(Tail, &HeaderSum, 8); // LE host: memory order is wire order
  Out.write(Tail, sizeof(Tail));    // headerSum + reserved
  Out.write(reinterpret_cast<const char *>(Prelude.data()) + HeaderSumPrefix,
            static_cast<std::streamsize>(Prelude.size() - HeaderSumPrefix));

  uint64_t Written = HeaderBytes + Sections.size() * TableEntryBytes;
  static const char Zeros[4096] = {};
  for (const SectionOut &S : Sections) {
    for (uint64_t Pad = S.Offset - Written; Pad > 0;) {
      const uint64_t Chunk = Pad < sizeof(Zeros) ? Pad : sizeof(Zeros);
      Out.write(Zeros, static_cast<std::streamsize>(Chunk));
      Pad -= Chunk;
    }
    if (S.Size > 0)
      Out.write(reinterpret_cast<const char *>(S.Data),
                static_cast<std::streamsize>(S.Size));
    Written = S.Offset + S.Size;
  }
  Out.close();
  if (!Out)
    return Status::error("cannot flush '" + Path + "'");
  return Status();
}

Status kast::writeProfileStoreImageFile(const ProfileStoreCache &Cache,
                                        const std::string &Path) {
  return writeProfileStoreImageFile(Cache.KernelName, Cache.Names,
                                    Cache.Labels, Cache.Store, Path,
                                    Cache.RouteBlob);
}

Expected<ProfileStoreCache>
kast::readProfileStoreImageFile(const std::string &Path,
                                const FlatImageReadOptions &Options) {
  using Result = Expected<ProfileStoreCache>;
  if constexpr (std::endian::native != std::endian::little)
    return Result::error("flat image reader requires a little-endian host; "
                         "use the v2 cache format");

  Expected<std::shared_ptr<const MappedImage>> Opened =
      MappedImage::open(Path, Options.ForceBuffered);
  if (!Opened)
    return Result::error(Opened.message());
  std::shared_ptr<const MappedImage> Image = Opened.take();
  const unsigned char *Data = Image->data();
  const uint64_t Size = Image->size();
  // The buffered fallback has already read every byte, so full
  // checksum coverage is free of extra faults; take it.
  const bool Deep = Options.DeepValidate || !Image->isMapped();

  auto fail = [&](const std::string &Message) {
    return Result::error("'" + Path + "': " + Message);
  };

  if (Size >= 8 && std::memcmp(Data, ProfileCacheMagic, 8) == 0)
    return fail("this is a v1/v2 profile cache; read it with "
                "readProfileStoreCacheFile (core/ProfileSerializer)");
  if (Size < HeaderBytes)
    return fail("truncated flat image: missing header");
  if (std::memcmp(Data, FlatImageMagic, 8) != 0)
    return fail("not a flat image (bad magic)");
  const uint32_t Version = readU32At(Data, 8);
  if (Version != FlatImageVersion)
    return fail("unsupported flat image version " + std::to_string(Version) +
                " (expected " + std::to_string(FlatImageVersion) + ")");
  const uint32_t SectionCount = readU32At(Data, 12);
  const uint64_t KernelHash = readU64At(Data, 16);
  const uint64_t N = readU64At(Data, 24);
  const uint64_t Total = readU64At(Data, 32);
  const uint64_t TableOffset = readU64At(Data, 40);
  const uint64_t HeaderSum = readU64At(Data, 48);
  if (SectionCount == 0 || SectionCount > MaxSections)
    return fail("corrupt flat image: implausible section count " +
                std::to_string(SectionCount));
  if (N >= MaxCount || Total >= MaxCount)
    return fail("corrupt flat image: implausible profile/entry count");
  if (TableOffset != HeaderBytes)
    return fail("corrupt flat image: misaligned section table (offset " +
                std::to_string(TableOffset) + ", expected " +
                std::to_string(HeaderBytes) + ")");
  const uint64_t TableBytes = uint64_t(SectionCount) * TableEntryBytes;
  if (Size < HeaderBytes + TableBytes)
    return fail("truncated flat image: section table past end of file");

  // The header checksum covers the prefix and the whole table, so one
  // comparison validates every offset/size/sum we are about to trust.
  std::vector<unsigned char> Checked;
  Checked.reserve(HeaderSumPrefix + TableBytes);
  Checked.insert(Checked.end(), Data, Data + HeaderSumPrefix);
  Checked.insert(Checked.end(), Data + HeaderBytes,
                 Data + HeaderBytes + TableBytes);
  if (checksumBytes(Checked.data(), Checked.size()) != HeaderSum)
    return fail("corrupt flat image: header checksum mismatch");

  SectionIn Sections[MaxSections + 1] = {};
  for (uint32_t I = 0; I < SectionCount; ++I) {
    const uint64_t Entry = HeaderBytes + uint64_t(I) * TableEntryBytes;
    const uint32_t Id = readU32At(Data, Entry);
    SectionIn S;
    S.Offset = readU64At(Data, Entry + 8);
    S.Size = readU64At(Data, Entry + 16);
    S.Sum = readU64At(Data, Entry + 24);
    S.Present = true;
    if (Id == 0 || Id > static_cast<uint32_t>(FlatSectionId::Route))
      return fail("corrupt flat image: unknown section id " +
                  std::to_string(Id));
    const char *Name = sectionName(static_cast<FlatSectionId>(Id));
    if (S.Offset % FlatImageAlignment != 0)
      return fail(std::string("corrupt flat image: ") + Name +
                  " section not " + std::to_string(FlatImageAlignment) +
                  "-byte aligned");
    if (S.Offset > Size || S.Size > Size - S.Offset)
      return fail(std::string("truncated flat image: ") + Name +
                  " section past end of file");
    if (Sections[Id].Present)
      return fail(std::string("corrupt flat image: duplicate ") + Name +
                  " section");
    Sections[Id] = S;
  }

  auto section = [&](FlatSectionId Id) -> const SectionIn & {
    return Sections[static_cast<uint32_t>(Id)];
  };
  auto sectionData = [&](FlatSectionId Id) {
    return Data + section(Id).Offset;
  };

  // Presence and exact sizes of the mandatory sections. The
  // entry-array sizes anchor every later pointer view, so they are
  // hard requirements, not checksummed suggestions.
  const struct {
    FlatSectionId Id;
    uint64_t WantSize;
    bool Exact;
  } Shape[] = {
      {FlatSectionId::KernelName, 0, false},
      {FlatSectionId::Offsets, (N + 1) * 8, true},
      {FlatSectionId::Hashes, Total * 8, true},
      {FlatSectionId::Values, Total * 8, true},
      {FlatSectionId::SelfDots, N * 8, true},
      {FlatSectionId::Norms, N * 8, true},
      {FlatSectionId::Names, (N + 1) * 8, false},
      {FlatSectionId::Labels, (N + 1) * 8, false},
  };
  for (const auto &Want : Shape) {
    const SectionIn &S = section(Want.Id);
    const char *Name = sectionName(Want.Id);
    if (!S.Present)
      return fail(std::string("corrupt flat image: missing ") + Name +
                  " section");
    if (Want.Exact ? S.Size != Want.WantSize : S.Size < Want.WantSize)
      return fail(std::string("corrupt flat image: ") + Name +
                  " section size disagrees with header counts");
  }

  // Verify checksums: always for the O(N)-sized metadata sections,
  // entry-sized arrays only under deep validation (see header).
  auto verify = [&](FlatSectionId Id) -> Status {
    const SectionIn &S = section(Id);
    if (S.Present &&
        checksumBytes(Data + S.Offset, static_cast<size_t>(S.Size)) != S.Sum)
      return Status::error(std::string("corrupt flat image: ") +
                           sectionName(Id) + " section checksum mismatch");
    return Status();
  };
  for (FlatSectionId Id :
       {FlatSectionId::KernelName, FlatSectionId::Offsets,
        FlatSectionId::SelfDots, FlatSectionId::Norms, FlatSectionId::Names,
        FlatSectionId::Labels, FlatSectionId::QuantScales,
        FlatSectionId::Route})
    if (Status S = verify(Id); !S)
      return fail(S.message());
  if (Deep)
    for (FlatSectionId Id : {FlatSectionId::Hashes, FlatSectionId::Values,
                             FlatSectionId::QuantValues})
      if (Status S = verify(Id); !S)
        return fail(S.message());

  std::string KernelName(
      reinterpret_cast<const char *>(sectionData(FlatSectionId::KernelName)),
      static_cast<size_t>(section(FlatSectionId::KernelName).Size));
  if (checksumBytes(KernelName.data(), KernelName.size()) != KernelHash)
    return fail("corrupt flat image: kernel-name hash mismatch");

  const uint64_t *Offsets =
      reinterpret_cast<const uint64_t *>(sectionData(FlatSectionId::Offsets));
  if (Status S = validateCsrOffsets(Offsets, static_cast<size_t>(N + 1), Total);
      !S)
    return fail(S.message());

  Expected<std::vector<std::string>> Names =
      parseStringTable(sectionData(FlatSectionId::Names),
                       section(FlatSectionId::Names).Size, N, "names");
  if (!Names)
    return fail(Names.message());
  Expected<std::vector<std::string>> Labels =
      parseStringTable(sectionData(FlatSectionId::Labels),
                       section(FlatSectionId::Labels).Size, N, "labels");
  if (!Labels)
    return fail(Labels.message());

  ProfileStoreCache Cache;
  Cache.KernelName = std::move(KernelName);
  Cache.Names = Names.take();
  Cache.Labels = Labels.take();
  std::shared_ptr<const void> Backing = Image;
  Cache.Store = ProfileStore::fromMapped(
      Offsets,
      reinterpret_cast<const uint64_t *>(sectionData(FlatSectionId::Hashes)),
      reinterpret_cast<const double *>(sectionData(FlatSectionId::Values)),
      reinterpret_cast<const double *>(sectionData(FlatSectionId::SelfDots)),
      reinterpret_cast<const double *>(sectionData(FlatSectionId::Norms)),
      static_cast<size_t>(N), static_cast<size_t>(Total), Backing);
  if (Deep && !Cache.Store.isFinalized())
    return fail("corrupt flat image: profile entries not sorted by hash");

  // Optional quantized sidecar: both sections or neither.
  const SectionIn &QValues = section(FlatSectionId::QuantValues);
  const SectionIn &QScales = section(FlatSectionId::QuantScales);
  if (QValues.Present != QScales.Present)
    return fail("corrupt flat image: quantized sidecar needs both the "
                "quantized-values and quantized-scales sections");
  if (QValues.Present) {
    if (QValues.Size != Total || QScales.Size != N * 8)
      return fail("corrupt flat image: quantized sidecar size disagrees "
                  "with header counts");
    Cache.Store.adoptQuantized(
        std::make_shared<const QuantizedStore>(QuantizedStore::fromMapped(
            reinterpret_cast<const int8_t *>(
                sectionData(FlatSectionId::QuantValues)),
            Offsets,
            reinterpret_cast<const double *>(
                sectionData(FlatSectionId::QuantScales)),
            static_cast<size_t>(N), static_cast<size_t>(Total), Backing)));
  }

  const SectionIn &Route = section(FlatSectionId::Route);
  if (Route.Present)
    Cache.RouteBlob.assign(
        reinterpret_cast<const char *>(sectionData(FlatSectionId::Route)),
        static_cast<size_t>(Route.Size));

  // Serving faults pages in query order, which is as random as the
  // query stream; tell the kernel not to read ahead aggressively.
  Image->adviseRandom();
  return Cache;
}
