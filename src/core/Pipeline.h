//===- core/Pipeline.h - Trace to weighted string pipeline -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end two-stage conversion of §3.1: trace -> tree ->
/// compressed tree -> weighted string, with one shared TokenTable so
/// every string produced by a pipeline is kernel-comparable. This is
/// the main entry point for library users:
///
/// \code
///   kast::Pipeline P;                      // byte-aware, 2 passes
///   kast::WeightedString S = P.convert(Trace);
///   kast::KastSpectrumKernel K({.CutWeight = 2});
///   double Sim = K.evaluateNormalized(S, T);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_PIPELINE_H
#define KAST_CORE_PIPELINE_H

#include "core/Token.h"
#include "core/TreeFlattener.h"
#include "tree/TreeBuilder.h"
#include "tree/TreeCompressor.h"

namespace kast {

/// Aggregated stage options.
struct PipelineOptions {
  TreeBuilderOptions Builder;
  CompressorOptions Compressor;
  FlattenOptions Flatten;
};

/// Full conversion result, for inspection and the explorer example.
struct PipelineResult {
  PatternTree Tree;          ///< Compressed tree.
  CompressionStats Stats;    ///< Leaf counts and per-rule merges.
  WeightedString String;     ///< Flattened weighted string.
};

/// Stateful converter owning a TokenTable shared by all outputs.
class Pipeline {
public:
  explicit Pipeline(PipelineOptions Options = {});

  /// Convenience constructor for the paper's two representations.
  static Pipeline withBytes();
  static Pipeline withoutBytes();

  /// Converts one trace to its weighted string (named after the
  /// trace).
  WeightedString convert(const Trace &T) const;

  /// Converts a batch of traces — the unit incremental Gram growth
  /// (KernelMatrix::appendRows) and index insertion operate on. All
  /// outputs share this pipeline's TokenTable, so strings from
  /// successive batches stay kernel-comparable.
  std::vector<WeightedString> convertAll(const std::vector<Trace> &Ts) const;

  /// Converts and returns every intermediate stage.
  PipelineResult convertDetailed(const Trace &T) const;

  const std::shared_ptr<TokenTable> &table() const { return Table; }
  const PipelineOptions &options() const { return Opts; }

private:
  PipelineOptions Opts;
  std::shared_ptr<TokenTable> Table;
};

} // namespace kast

#endif // KAST_CORE_PIPELINE_H
