//===- core/StringSerializer.h - Weighted string text form -----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text form of weighted strings, one "literal:weight" pair per token:
///
///   [ROOT]:1 [HANDLE]:1 [BLOCK]:1 read[1024]:5 [LEVEL_UP]:2 ...
///
/// Weights of 1 may be omitted on input; output always writes them.
/// Used by examples, test fixtures and bench dumps.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_STRINGSERIALIZER_H
#define KAST_CORE_STRINGSERIALIZER_H

#include "core/Token.h"
#include "util/Error.h"

#include <string_view>

namespace kast {

/// Renders \p S as space-separated "literal:weight" pairs.
std::string formatWeightedString(const WeightedString &S);

/// Parses the text form over \p Table. Tokens are whitespace-split;
/// the weight is the suffix after the last ':' (defaulting to 1 when
/// absent).
Expected<WeightedString> parseWeightedString(
    std::string_view Text, const std::shared_ptr<TokenTable> &Table,
    std::string Name = "");

} // namespace kast

#endif // KAST_CORE_STRINGSERIALIZER_H
