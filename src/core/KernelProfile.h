//===- core/KernelProfile.h - Sparse feature profiles ----------*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-string feature representation of the profiled-kernel fast
/// path. A KernelProfile is a flat, hash-sorted sparse vector of
/// (feature hash, feature value) pairs: kernels that admit an explicit
/// per-string embedding (the spectrum family, bag-of-words) emit one
/// profile per string, and any pairwise kernel value is then the
/// merge-join dot product of two profiles. Building all N profiles
/// once and dotting the N(N-1)/2 pairs turns Gram-matrix construction
/// from O(N²·build) into O(N·build + N²·dot); see KernelMatrix.
///
/// Features are identified by 64-bit hashes (util/Hashing.h) of their
/// literal-id sequences, replacing the map<vector<uint32_t>, double>
/// representation: no per-feature allocation, and the intersection of
/// two profiles is a cache-friendly linear merge instead of O(n log n)
/// tree probes.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_CORE_KERNELPROFILE_H
#define KAST_CORE_KERNELPROFILE_H

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kast {

/// One sparse feature: the hash of its literal sequence and its
/// (decay- and weight-scaled) value in the string's embedding.
struct ProfileEntry {
  uint64_t Hash = 0;
  double Value = 0.0;

  bool operator==(const ProfileEntry &Rhs) const = default;
};

/// A flat sorted sparse feature vector.
///
/// Build protocol: add() every occurrence (duplicates allowed, in any
/// order), then finalize() once, which sorts by hash and merges
/// duplicate features by summing their values. dot() requires both
/// operands to be finalized.
class KernelProfile {
public:
  /// Appends one feature occurrence; cheap, unordered, duplicates OK.
  void add(uint64_t Hash, double Value) { Entries.push_back({Hash, Value}); }

  /// Sorts by hash and coalesces duplicate hashes (summing values).
  /// Zero-valued features are dropped and over-reserved build capacity
  /// is released (profiles are long-lived corpus state). Idempotent.
  void finalize();

  /// Merge-join inner product with \p Rhs; both must be finalized.
  double dot(const KernelProfile &Rhs) const;

  /// sqrt(dot(*this, *this)) without the merge join — the cosine
  /// denominator of a one-off query profile. The one definition both
  /// retrieval layers (index/ProfileIndex, index/IndexService) divide
  /// by, so their scores stay bit-identical by construction.
  double norm() const {
    double SelfDot = 0.0;
    for (const ProfileEntry &E : Entries)
      SelfDot += E.Value * E.Value;
    return std::sqrt(SelfDot);
  }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  void reserve(size_t N) { Entries.reserve(N); }

  const std::vector<ProfileEntry> &entries() const { return Entries; }

private:
  std::vector<ProfileEntry> Entries;
};

namespace detail {

/// The one merge-join inner-product implementation behind
/// KernelProfile::dot and the ProfileView dot overloads
/// (core/ProfileStore.h). Hash/value access is abstracted over index
/// so the AoS staging type and the SoA arena share one loop — the
/// bit-exactness contract between them (asserted in ProfileStoreTest)
/// then holds by construction. \p AHash/\p AValue (and the B pair)
/// are callables from index to hash/value.
template <typename AHashFn, typename AValueFn, typename BHashFn,
          typename BValueFn>
double mergeJoinDot(size_t ASize, AHashFn AHash, AValueFn AValue,
                    size_t BSize, BHashFn BHash, BValueFn BValue) {
  double Sum = 0.0;
  size_t I = 0, J = 0;
  while (I < ASize && J < BSize) {
    if (AHash(I) < BHash(J))
      ++I;
    else if (BHash(J) < AHash(I))
      ++J;
    else {
      Sum += AValue(I) * BValue(J);
      ++I;
      ++J;
    }
  }
  return Sum;
}

} // namespace detail

} // namespace kast

#endif // KAST_CORE_KERNELPROFILE_H
