//===- index/ClusterRouter.h - Coarse k-means query routing ----*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coarse tier of sublinear retrieval: a spherical k-means
/// clustering over a ProfileStore that routes queries to the few
/// centroids they resemble, so the inverted tier (index/InvertedIndex)
/// probes only those centroids' posting segments instead of the whole
/// corpus.
///
/// Centroids are themselves sparse profiles — the dense accumulation
/// of their members' unit-normalized sparse vectors, re-normalized and
/// stored in a small ProfileStore — so centroid assignment and query
/// routing reuse the existing merge-join kernel dot, and the router
/// round-trips through the same blob persistence the v2 profile
/// caches use.
///
/// Everything is a pure function of (store, options): seeding draws
/// from util/Rng with a fixed seed, ties in assignment and routing
/// break toward the lower centroid id, and the optional training
/// sample is a deterministic shuffle. Rebuilding a router over the
/// same arena therefore reproduces the same assignments bit-for-bit,
/// which is what lets the inverted tier be rebuilt from persisted
/// assignments instead of serialized posting lists.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_INDEX_CLUSTERROUTER_H
#define KAST_INDEX_CLUSTERROUTER_H

#include "core/ProfileStore.h"
#include "util/Error.h"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace kast {

/// Process-wide count of k-means fits (ClusterRouter::build calls)
/// since start. A rebuild-free restore must leave this untouched —
/// the routed-restart canary asserts exactly that.
uint64_t kmeansFitCount();

/// Shape knobs for ClusterRouter::build.
struct ClusterRouterOptions {
  /// Number of centroids; 0 picks ceil(sqrt(N)) clamped to [1, 4096].
  size_t NumCentroids = 0;
  /// k-means refinement passes over the training set. Assignments
  /// usually stabilize in a handful of rounds; training stops early
  /// once they do.
  size_t MaxIterations = 8;
  /// Profiles used to fit the centroids; 0 trains on the whole store.
  /// A bounded sample (deterministically drawn) keeps fit cost flat as
  /// the corpus grows; the final assignment pass always covers every
  /// profile.
  size_t TrainingSample = 0;
  /// Seed for the deterministic sampling and seeding shuffles.
  uint64_t Seed = 0x5EEDC0DEULL;
};

/// A fitted k-means routing structure: per-profile centroid
/// assignments plus the centroids as unit-norm sparse profiles.
class ClusterRouter {
public:
  ClusterRouter() = default;

  /// Fits \p Options.NumCentroids spherical k-means centroids over
  /// \p Store and assigns every profile to its most similar centroid.
  /// Deterministic for fixed options regardless of \p Threads (the
  /// parallel loops are pure per item). An empty store yields an
  /// empty router (numCentroids() == 0).
  static ClusterRouter build(const ProfileStore &Store,
                             ClusterRouterOptions Options = {},
                             size_t Threads = 0);

  /// Non-owning construction over pre-validated flat arenas (a v4
  /// image's centroid + assignment sections): no fit, no copy — the
  /// router views \p Assignments and the mapped \p Centroids for as
  /// long as \p Backing keeps them alive. The caller (the flat-image
  /// reader) has already range-checked every assignment against the
  /// centroid count. A router is immutable after construction, so
  /// unlike ProfileStore there is no promotion path; replacing the
  /// routing (rebuildRouting/compact) builds a fresh owned router.
  static ClusterRouter fromArenas(ProfileStore Centroids,
                                  ArrayView<uint32_t> Assignments,
                                  std::shared_ptr<const void> Backing);

  /// True while assignments() views externally owned memory.
  bool isMapped() const { return Backing != nullptr; }

  size_t numCentroids() const { return Centroids.size(); }
  size_t numProfiles() const { return NumAssigned; }
  bool empty() const { return NumAssigned == 0; }

  /// Assignments[I] is the centroid id of profile I, in [0,
  /// numCentroids()).
  ArrayView<uint32_t> assignments() const {
    return {AssignmentsP, NumAssigned};
  }

  /// The unit-normalized centroid vectors.
  const ProfileStore &centroids() const { return Centroids; }

  /// The min(NProbe, numCentroids()) centroid ids most similar to
  /// \p Query (cosine over the unit centroids), most similar first;
  /// ties break toward the lower id. NProbe == 0 probes every
  /// centroid — the exhaustive mode differential tests pin against
  /// the exact scan.
  std::vector<uint32_t> route(const KernelProfile &Query,
                              size_t NProbe) const;

  /// route() for a flattened query with caller-owned scratch: the
  /// centroid sweep scores through \p Scored (reused across a batch,
  /// so a warm query allocates nothing) and the vectorized exact dot
  /// (util/SimdDot) instead of N separate merge joins over interleaved
  /// entries. Probe ids land in \p Probes, most similar first —
  /// identical to route()'s, since the flattened dot is bit-identical.
  void route(const FlatProfile &Query, size_t NProbe,
             std::vector<std::pair<double, uint32_t>> &Scored,
             std::vector<uint32_t> &Probes) const;

  /// Binary round-trip (magic "KASTROUT", little-endian, doubles as
  /// IEEE-754 bit patterns): centroid blobs + the assignment array.
  Status write(std::ostream &Out) const;
  static Expected<ClusterRouter> read(std::istream &In);
  Status saveFile(const std::string &Path) const;
  static Expected<ClusterRouter> loadFile(const std::string &Path);

  // Assignments live in AssignmentsOwned (built/read routers) or in an
  // external arena through Backing (mapped routers); either way the
  // active storage is (AssignmentsP, NumAssigned), so copies and moves
  // must re-aim the pointer — memberwise defaults would leave it at
  // the source's vector.
  ClusterRouter(const ClusterRouter &Other) { copyFrom(Other); }
  ClusterRouter &operator=(const ClusterRouter &Other) {
    if (this != &Other)
      copyFrom(Other);
    return *this;
  }
  ClusterRouter(ClusterRouter &&Other) noexcept { moveFrom(Other); }
  ClusterRouter &operator=(ClusterRouter &&Other) noexcept {
    if (this != &Other)
      moveFrom(Other);
    return *this;
  }

private:
  /// Re-aims the active pointer at the owned vector.
  void syncOwned() {
    AssignmentsP = AssignmentsOwned.data();
    NumAssigned = AssignmentsOwned.size();
  }
  void copyFrom(const ClusterRouter &Other) {
    Centroids = Other.Centroids;
    Backing = Other.Backing;
    if (Other.Backing) {
      // Mapped: share the views (O(1), like ProfileStore's mapped
      // copies).
      AssignmentsOwned.clear();
      AssignmentsP = Other.AssignmentsP;
      NumAssigned = Other.NumAssigned;
    } else {
      AssignmentsOwned = Other.AssignmentsOwned;
      syncOwned();
    }
  }
  void moveFrom(ClusterRouter &Other) {
    Centroids = std::move(Other.Centroids);
    Backing = std::move(Other.Backing);
    if (Backing) {
      AssignmentsOwned.clear();
      AssignmentsP = Other.AssignmentsP;
      NumAssigned = Other.NumAssigned;
    } else {
      AssignmentsOwned = std::move(Other.AssignmentsOwned);
      syncOwned();
    }
    Other.AssignmentsOwned.clear();
    Other.AssignmentsP = nullptr;
    Other.NumAssigned = 0;
    Other.Backing.reset();
  }

  ProfileStore Centroids;
  std::vector<uint32_t> AssignmentsOwned;
  const uint32_t *AssignmentsP = nullptr;
  size_t NumAssigned = 0;
  /// Non-null iff the assignment view aims at an external arena.
  std::shared_ptr<const void> Backing;
};

} // namespace kast

#endif // KAST_INDEX_CLUSTERROUTER_H
