//===- index/InvertedIndex.cpp - Posting-list candidate generation --------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "index/InvertedIndex.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <fstream>
#include <unordered_map>

namespace kast {

namespace {

struct Posting {
  uint64_t Hash;
  double Value;
  uint32_t Id;
};

/// Bumped once per build() — the "did a restore secretly rebuild the
/// posting lists?" probe the restart canary and tests read.
std::atomic<uint64_t> PostingRebuilds{0};

} // namespace

uint64_t postingRebuildCount() {
  return PostingRebuilds.load(std::memory_order_relaxed);
}

void InvertedIndex::syncOwned() {
  FeatureHashes = FeatureHashesOwned;
  ClusterBegin = ClusterBeginOwned;
  PostingBegin = PostingBeginOwned;
  PostingIds = PostingIdsOwned;
  PostingValues = PostingValuesOwned;
  Backing.reset();
}

void InvertedIndex::copyFrom(const InvertedIndex &Other) {
  NumProfiles = Other.NumProfiles;
  PrunedFeatures = Other.PrunedFeatures;
  if (Other.Backing) {
    // Mapped: share the views (O(1), like ProfileStore's mapped
    // copies).
    FeatureHashesOwned.clear();
    ClusterBeginOwned.clear();
    PostingBeginOwned.clear();
    PostingIdsOwned.clear();
    PostingValuesOwned.clear();
    FeatureHashes = Other.FeatureHashes;
    ClusterBegin = Other.ClusterBegin;
    PostingBegin = Other.PostingBegin;
    PostingIds = Other.PostingIds;
    PostingValues = Other.PostingValues;
    Backing = Other.Backing;
  } else {
    FeatureHashesOwned = Other.FeatureHashesOwned;
    ClusterBeginOwned = Other.ClusterBeginOwned;
    PostingBeginOwned = Other.PostingBeginOwned;
    PostingIdsOwned = Other.PostingIdsOwned;
    PostingValuesOwned = Other.PostingValuesOwned;
    syncOwned();
  }
}

void InvertedIndex::moveFrom(InvertedIndex &Other) {
  NumProfiles = Other.NumProfiles;
  PrunedFeatures = Other.PrunedFeatures;
  Backing = std::move(Other.Backing);
  if (Backing) {
    FeatureHashesOwned.clear();
    ClusterBeginOwned.clear();
    PostingBeginOwned.clear();
    PostingIdsOwned.clear();
    PostingValuesOwned.clear();
    FeatureHashes = Other.FeatureHashes;
    ClusterBegin = Other.ClusterBegin;
    PostingBegin = Other.PostingBegin;
    PostingIds = Other.PostingIds;
    PostingValues = Other.PostingValues;
  } else {
    FeatureHashesOwned = std::move(Other.FeatureHashesOwned);
    ClusterBeginOwned = std::move(Other.ClusterBeginOwned);
    PostingBeginOwned = std::move(Other.PostingBeginOwned);
    PostingIdsOwned = std::move(Other.PostingIdsOwned);
    PostingValuesOwned = std::move(Other.PostingValuesOwned);
    syncOwned();
  }
  Other.NumProfiles = 0;
  Other.PrunedFeatures = 0;
  Other.FeatureHashesOwned.clear();
  Other.ClusterBeginOwned.clear();
  Other.PostingBeginOwned.clear();
  Other.PostingIdsOwned.clear();
  Other.PostingValuesOwned.clear();
  Other.FeatureHashes = {};
  Other.ClusterBegin = {};
  Other.PostingBegin = {};
  Other.PostingIds = {};
  Other.PostingValues = {};
  Other.Backing.reset();
}

InvertedIndex InvertedIndex::fromArenas(size_t Covered, size_t PrunedFeatures,
                                        ArrayView<uint64_t> FeatureHashes,
                                        ArrayView<uint64_t> ClusterBegin,
                                        ArrayView<uint64_t> PostingBegin,
                                        ArrayView<uint32_t> PostingIds,
                                        ArrayView<double> PostingValues,
                                        std::shared_ptr<const void> Backing) {
  InvertedIndex Index;
  Index.NumProfiles = Covered;
  Index.PrunedFeatures = PrunedFeatures;
  Index.FeatureHashes = FeatureHashes;
  Index.ClusterBegin = ClusterBegin;
  Index.PostingBegin = PostingBegin;
  Index.PostingIds = PostingIds;
  Index.PostingValues = PostingValues;
  Index.Backing = std::move(Backing);
  return Index;
}

InvertedIndex InvertedIndex::build(const ProfileStore &Store,
                                   ArrayView<uint32_t> Assignments,
                                   size_t NumClusters, double MaxDocFrequency) {
  assert(Assignments.size() <= Store.size() &&
         "assignments must cover a prefix of the store");
  PostingRebuilds.fetch_add(1, std::memory_order_relaxed);
  InvertedIndex Index;
  const size_t N = Assignments.size();
  Index.NumProfiles = N;
  Index.ClusterBeginOwned.assign(NumClusters + 1, 0);
  Index.PostingBeginOwned.assign(1, 0);
  Index.syncOwned();
  if (N == 0 || NumClusters == 0)
    return Index;

  // Document frequency per feature. Profiles are finalized (hashes
  // strictly ascending within a profile), so every occurrence is a
  // distinct document.
  std::unordered_map<uint64_t, uint32_t> Df;
  Df.reserve(std::min(Store.entryCount(), size_t(1) << 22));
  for (size_t I = 0; I < N; ++I) {
    const ProfileView V = Store.view(I);
    for (size_t E = 0; E < V.Size; ++E)
      ++Df[V.Hashes[E]];
  }
  // A feature survives iff its df stays within the threshold; a df of
  // 1 always survives (a feature unique to one profile is the most
  // selective evidence there is).
  const size_t DfLimit =
      MaxDocFrequency >= 1.0
          ? N
          : std::max<size_t>(
                1, static_cast<size_t>(std::floor(MaxDocFrequency *
                                                  static_cast<double>(N))));
  for (const auto &[Hash, Count] : Df)
    if (Count > DfLimit)
      ++Index.PrunedFeatures;

  // Group member profiles by cluster, preserving id order.
  std::vector<std::vector<uint32_t>> Members(NumClusters);
  for (size_t I = 0; I < N; ++I) {
    assert(Assignments[I] < NumClusters && "assignment out of range");
    Members[Assignments[I]].push_back(static_cast<uint32_t>(I));
  }

  std::vector<Posting> Postings;
  for (size_t C = 0; C < NumClusters; ++C) {
    Postings.clear();
    for (uint32_t Id : Members[C]) {
      const ProfileView V = Store.view(Id);
      for (size_t E = 0; E < V.Size; ++E)
        if (Df[V.Hashes[E]] <= DfLimit)
          Postings.push_back({V.Hashes[E], V.Values[E], Id});
    }
    // Feature-major; within a feature impact-ordered (value
    // descending, then lower id) so heavy contributors come first.
    std::sort(Postings.begin(), Postings.end(),
              [](const Posting &L, const Posting &R) {
                if (L.Hash != R.Hash)
                  return L.Hash < R.Hash;
                if (L.Value != R.Value)
                  return L.Value > R.Value;
                return L.Id < R.Id;
              });
    for (size_t P = 0; P < Postings.size(); ++P) {
      if (P == 0 || Postings[P].Hash != Postings[P - 1].Hash) {
        Index.FeatureHashesOwned.push_back(Postings[P].Hash);
        Index.PostingBeginOwned.push_back(Index.PostingIdsOwned.size());
      }
      Index.PostingIdsOwned.push_back(Postings[P].Id);
      Index.PostingValuesOwned.push_back(Postings[P].Value);
      Index.PostingBeginOwned.back() = Index.PostingIdsOwned.size();
    }
    Index.ClusterBeginOwned[C + 1] = Index.FeatureHashesOwned.size();
  }
  Index.syncOwned();
  return Index;
}

void InvertedIndex::collectCandidates(const KernelProfile &Query,
                                      const std::vector<uint32_t> &Probes,
                                      InvertedScratch &S) const {
  const auto &Entries = Query.entries();
  collectImpl(
      Entries.size(), [&](size_t Q) { return Entries[Q].Hash; },
      [&](size_t Q) { return Entries[Q].Value; }, Probes, S);
}

void InvertedIndex::collectCandidates(const FlatProfile &Query,
                                      const std::vector<uint32_t> &Probes,
                                      InvertedScratch &S) const {
  collectImpl(
      Query.size(), [&](size_t Q) { return Query.Hashes[Q]; },
      [&](size_t Q) { return Query.Values[Q]; }, Probes, S);
}

template <typename HashAt, typename ValueAt>
void InvertedIndex::collectImpl(size_t QuerySize, HashAt QueryHash,
                                ValueAt QueryValue,
                                const std::vector<uint32_t> &Probes,
                                InvertedScratch &S) const {
  assert(S.Epoch.size() == NumProfiles && "call S.begin(numProfiles()) first");
  if (QuerySize == 0)
    return;
  for (uint32_t C : Probes) {
    if (C + 1 >= ClusterBegin.size())
      continue;
    size_t F = ClusterBegin[C];
    const size_t FEnd = ClusterBegin[C + 1];
    size_t Q = 0;
    // Merge-join the query's (sorted) feature hashes against this
    // cluster's (sorted) surviving features.
    while (Q < QuerySize && F < FEnd) {
      const uint64_t QHash = QueryHash(Q);
      const uint64_t FHash = FeatureHashes[F];
      if (QHash < FHash) {
        ++Q;
      } else if (FHash < QHash) {
        ++F;
      } else {
        const double QValue = QueryValue(Q);
        for (size_t P = PostingBegin[F]; P < PostingBegin[F + 1]; ++P) {
          const uint32_t Id = PostingIds[P];
          // A mapped arena that skipped deep validation could carry a
          // corrupt id; never let it index past the scratch arrays.
          if (Id >= NumProfiles)
            continue;
          if (!S.marked(Id)) {
            S.Epoch[Id] = S.Current;
            S.Acc[Id] = 0.0;
            S.Candidates.push_back(Id);
          }
          S.Acc[Id] += QValue * PostingValues[P];
        }
        ++Q;
        ++F;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Routing cache persistence
//===----------------------------------------------------------------------===//

namespace {

constexpr char RoutingMagic[8] = {'K', 'A', 'S', 'T', 'R', 'T', 'N', 'G'};
/// v1: options + router. v2 appends a flags word after the fixed
/// option fields (bit 0: QuantizedShortlist); v1 files still load with
/// the flag at its default.
constexpr uint32_t RoutingVersion = 2;
constexpr uint64_t RoutingFlagQuantizedShortlist = 1u << 0;

void writeU32(std::ostream &Out, uint32_t V) {
  unsigned char Buf[4];
  for (int I = 0; I < 4; ++I)
    Buf[I] = static_cast<unsigned char>((V >> (8 * I)) & 0xFF);
  Out.write(reinterpret_cast<const char *>(Buf), sizeof(Buf));
}

void writeU64(std::ostream &Out, uint64_t V) {
  unsigned char Buf[8];
  for (int I = 0; I < 8; ++I)
    Buf[I] = static_cast<unsigned char>((V >> (8 * I)) & 0xFF);
  Out.write(reinterpret_cast<const char *>(Buf), sizeof(Buf));
}

bool readU32(std::istream &In, uint32_t &V) {
  unsigned char Buf[4];
  if (!In.read(reinterpret_cast<char *>(Buf), sizeof(Buf)))
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Buf[I]) << (8 * I);
  return true;
}

bool readU64(std::istream &In, uint64_t &V) {
  unsigned char Buf[8];
  if (!In.read(reinterpret_cast<char *>(Buf), sizeof(Buf)))
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Buf[I]) << (8 * I);
  return true;
}

} // namespace

Status writeRouting(const ClusterRouter &Router, const RoutingOptions &Options,
                    std::ostream &Out) {
  Out.write(RoutingMagic, sizeof(RoutingMagic));
  writeU32(Out, RoutingVersion);
  writeU64(Out, std::bit_cast<uint64_t>(Options.MaxDocFrequency));
  writeU64(Out, Options.RerankBudget);
  writeU64(Out, Options.DefaultNProbe);
  writeU64(Out, Options.Cluster.NumCentroids);
  writeU64(Out, Options.Cluster.MaxIterations);
  writeU64(Out, Options.Cluster.TrainingSample);
  writeU64(Out, Options.Cluster.Seed);
  writeU64(Out, Options.QuantizedShortlist ? RoutingFlagQuantizedShortlist : 0);
  if (Status S = Router.write(Out); !S.ok())
    return S;
  Out.flush();
  if (!Out)
    return Status::error("failed writing routing data");
  return Status();
}

Expected<RoutingCache> readRouting(std::istream &In) {
  char Magic[8];
  if (!In.read(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, RoutingMagic, sizeof(Magic)) != 0)
    return Expected<RoutingCache>::error("not a routing sidecar (bad magic)");
  uint32_t Version = 0;
  if (!readU32(In, Version) || Version < 1 || Version > RoutingVersion)
    return Expected<RoutingCache>::error("unsupported routing version");
  RoutingCache Cache;
  uint64_t MaxDfBits = 0, RerankBudget = 0, DefaultNProbe = 0;
  uint64_t NumCentroids = 0, MaxIterations = 0, TrainingSample = 0, Seed = 0;
  if (!readU64(In, MaxDfBits) || !readU64(In, RerankBudget) ||
      !readU64(In, DefaultNProbe) || !readU64(In, NumCentroids) ||
      !readU64(In, MaxIterations) || !readU64(In, TrainingSample) ||
      !readU64(In, Seed))
    return Expected<RoutingCache>::error("truncated routing sidecar");
  Cache.Options.MaxDocFrequency = std::bit_cast<double>(MaxDfBits);
  if (!(Cache.Options.MaxDocFrequency >= 0.0) ||
      Cache.Options.MaxDocFrequency > 1.0)
    return Expected<RoutingCache>::error("corrupt df threshold in routing "
                                         "sidecar");
  Cache.Options.RerankBudget = RerankBudget;
  Cache.Options.DefaultNProbe = DefaultNProbe;
  Cache.Options.Cluster.NumCentroids = NumCentroids;
  Cache.Options.Cluster.MaxIterations = MaxIterations;
  Cache.Options.Cluster.TrainingSample = TrainingSample;
  Cache.Options.Cluster.Seed = Seed;
  if (Version >= 2) {
    uint64_t Flags = 0;
    if (!readU64(In, Flags))
      return Expected<RoutingCache>::error("truncated routing sidecar");
    Cache.Options.QuantizedShortlist =
        (Flags & RoutingFlagQuantizedShortlist) != 0;
  }
  Expected<ClusterRouter> Router = ClusterRouter::read(In);
  if (!Router.hasValue())
    return Expected<RoutingCache>::error(Router.message());
  Cache.Router = Router.take();
  return Cache;
}

Status writeRoutingFile(const ClusterRouter &Router,
                        const RoutingOptions &Options,
                        const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return Status::error("cannot open routing file for writing: " + Path);
  if (Status S = writeRouting(Router, Options, Out); !S.ok())
    return Status::error(S.message() + " ('" + Path + "')");
  return Status();
}

Expected<RoutingCache> readRoutingFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<RoutingCache>::error("cannot open routing file: " + Path);
  Expected<RoutingCache> Cache = readRouting(In);
  if (!Cache)
    return Expected<RoutingCache>::error(Cache.message() + " ('" + Path +
                                         "')");
  return Cache;
}

} // namespace kast
