//===- index/ClusterRouter.cpp - Coarse k-means query routing --------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "index/ClusterRouter.h"
#include "core/KernelProfile.h"
#include "util/Rng.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <unordered_map>

using namespace kast;

namespace {
/// Bumped once per build() — the "did a restore secretly refit
/// k-means?" probe the restart canary and tests read.
std::atomic<uint64_t> KmeansFits{0};
} // namespace

uint64_t kast::kmeansFitCount() {
  return KmeansFits.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Fitting
//===----------------------------------------------------------------------===//

namespace {

constexpr char RouterMagic[8] = {'K', 'A', 'S', 'T', 'R', 'O', 'U', 'T'};
constexpr uint32_t RouterVersion = 1;

/// argmax over centroids of dot(view, centroid); centroids are unit
/// norm, so for a fixed profile the cosine argmax reduces to the raw
/// dot argmax. Ties break toward the lower centroid id (the strict >
/// keeps the incumbent).
uint32_t nearestCentroid(const ProfileStore &Centroids,
                         const ProfileView &V) {
  uint32_t Best = 0;
  double BestSim = dot(Centroids.view(0), V);
  for (size_t C = 1; C < Centroids.size(); ++C) {
    double Sim = dot(Centroids.view(C), V);
    if (Sim > BestSim) {
      BestSim = Sim;
      Best = static_cast<uint32_t>(C);
    }
  }
  return Best;
}

/// Rebuilds the centroid store from the current assignment over the
/// training ids: each centroid is the sum of its members'
/// unit-normalized vectors, re-normalized to unit length. A cluster
/// that lost all its members keeps its previous centroid, so the
/// centroid count never shrinks mid-fit and reseeding stays
/// deterministic. Accumulation iterates members in ascending id order
/// into a per-feature bucket, so the floating-point sums are
/// reproducible.
ProfileStore updateCentroids(const ProfileStore &Store,
                             const std::vector<size_t> &TrainIds,
                             const std::vector<uint32_t> &Assign,
                             const ProfileStore &Previous,
                             size_t NumCentroids) {
  std::vector<std::unordered_map<uint64_t, double>> Sums(NumCentroids);
  std::vector<size_t> Members(NumCentroids, 0);
  for (size_t T = 0; T < TrainIds.size(); ++T) {
    const ProfileView V = Store.view(TrainIds[T]);
    if (V.Norm <= 0.0)
      continue; // An empty profile pulls no centroid anywhere.
    std::unordered_map<uint64_t, double> &Sum = Sums[Assign[T]];
    ++Members[Assign[T]];
    const double Scale = 1.0 / V.Norm;
    for (size_t E = 0; E < V.Size; ++E)
      Sum[V.Hashes[E]] += V.Values[E] * Scale;
  }

  std::vector<KernelProfile> Centroids(NumCentroids);
  for (size_t C = 0; C < NumCentroids; ++C) {
    if (Members[C] == 0) {
      Centroids[C] = Previous.materialize(C);
      continue;
    }
    KernelProfile P;
    P.reserve(Sums[C].size());
    std::vector<std::pair<uint64_t, double>> Entries(Sums[C].begin(),
                                                     Sums[C].end());
    std::sort(Entries.begin(), Entries.end());
    double SelfDot = 0.0;
    for (const auto &[Hash, Value] : Entries)
      SelfDot += Value * Value;
    const double Norm = std::sqrt(SelfDot);
    for (const auto &[Hash, Value] : Entries)
      P.add(Hash, Norm > 0.0 ? Value / Norm : Value);
    Centroids[C] = std::move(P); // Already sorted and coalesced.
  }
  ProfileStore Result;
  Result.appendAll(Centroids);
  return Result;
}

} // namespace

ClusterRouter ClusterRouter::fromArenas(ProfileStore Centroids,
                                        ArrayView<uint32_t> Assignments,
                                        std::shared_ptr<const void> Backing) {
  ClusterRouter Router;
  Router.Centroids = std::move(Centroids);
  Router.AssignmentsP = Assignments.data();
  Router.NumAssigned = Assignments.size();
  Router.Backing = std::move(Backing);
  return Router;
}

ClusterRouter ClusterRouter::build(const ProfileStore &Store,
                                   ClusterRouterOptions Options,
                                   size_t Threads) {
  KmeansFits.fetch_add(1, std::memory_order_relaxed);
  ClusterRouter Router;
  const size_t N = Store.size();
  if (N == 0)
    return Router;

  size_t C = Options.NumCentroids;
  if (C == 0)
    C = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(N))));
  C = std::min(std::max<size_t>(1, std::min(C, N)), size_t(4096));

  // Deterministic training set and seeds: one shuffle yields both the
  // bounded sample (prefix) and the seed order (first C non-empty
  // profiles of that prefix).
  Rng R(Options.Seed);
  std::vector<size_t> Shuffled(N);
  for (size_t I = 0; I < N; ++I)
    Shuffled[I] = I;
  R.shuffle(Shuffled);
  size_t TrainCount = Options.TrainingSample == 0
                          ? N
                          : std::min(N, Options.TrainingSample);
  TrainCount = std::max(TrainCount, C);
  std::vector<size_t> TrainIds(Shuffled.begin(),
                               Shuffled.begin() + TrainCount);

  std::vector<KernelProfile> Seeds;
  for (size_t I = 0; I < TrainIds.size() && Seeds.size() < C; ++I)
    if (Store.view(TrainIds[I]).Norm > 0.0)
      Seeds.push_back(Store.materialize(TrainIds[I]));
  if (Seeds.empty())
    Seeds.push_back(KernelProfile()); // All-empty corpus: one centroid.
  for (KernelProfile &Seed : Seeds) {
    // Seeds are corpus profiles scaled to unit norm, matching the
    // normalization updateCentroids maintains.
    KernelProfile Unit;
    double SelfDot = 0.0;
    for (const ProfileEntry &E : Seed.entries())
      SelfDot += E.Value * E.Value;
    const double Norm = std::sqrt(SelfDot);
    Unit.reserve(Seed.size());
    for (const ProfileEntry &E : Seed.entries())
      Unit.add(E.Hash, Norm > 0.0 ? E.Value / Norm : E.Value);
    Seed = std::move(Unit);
  }
  C = Seeds.size();
  ProfileStore Centroids;
  Centroids.appendAll(Seeds);

  // Lloyd iterations over the training set; the assignment step is a
  // pure function per profile, so parallelFor cannot perturb it.
  std::vector<uint32_t> TrainAssign(TrainIds.size(), 0);
  for (size_t Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    std::vector<uint32_t> Next(TrainIds.size(), 0);
    parallelFor(
        TrainIds.size(),
        [&](size_t T) {
          Next[T] = nearestCentroid(Centroids, Store.view(TrainIds[T]));
        },
        Threads);
    const bool Stable = Iter > 0 && Next == TrainAssign;
    TrainAssign = std::move(Next);
    if (Stable)
      break;
    Centroids =
        updateCentroids(Store, TrainIds, TrainAssign, Centroids, C);
  }

  // Final assignment covers every profile, sampled or not.
  Router.AssignmentsOwned.assign(N, 0);
  parallelFor(
      N,
      [&](size_t I) {
        Router.AssignmentsOwned[I] = nearestCentroid(Centroids, Store.view(I));
      },
      Threads);
  Router.syncOwned();
  Router.Centroids = std::move(Centroids);
  return Router;
}

std::vector<uint32_t> ClusterRouter::route(const KernelProfile &Query,
                                           size_t NProbe) const {
  // One-off convenience shape: flatten and delegate, so both entry
  // points share one sweep (and its vectorized dot). Batch callers use
  // the scratch overload directly and skip the per-call allocations.
  const FlatProfile Flat(Query);
  std::vector<std::pair<double, uint32_t>> Scored;
  std::vector<uint32_t> Probes;
  route(Flat, NProbe, Scored, Probes);
  return Probes;
}

void ClusterRouter::route(const FlatProfile &Query, size_t NProbe,
                          std::vector<std::pair<double, uint32_t>> &Scored,
                          std::vector<uint32_t> &Probes) const {
  Probes.clear();
  const size_t C = Centroids.size();
  if (C == 0)
    return;
  const size_t Take = NProbe == 0 ? C : std::min(NProbe, C);
  Scored.clear();
  Scored.reserve(C);
  for (size_t I = 0; I < C; ++I)
    Scored.push_back({dot(Centroids.view(I), Query),
                      static_cast<uint32_t>(I)});
  std::partial_sort(Scored.begin(), Scored.begin() + Take, Scored.end(),
                    [](const auto &L, const auto &R) {
                      if (L.first != R.first)
                        return L.first > R.first;
                      return L.second < R.second;
                    });
  Probes.reserve(Take);
  for (size_t I = 0; I < Take; ++I)
    Probes.push_back(Scored[I].second);
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

namespace {

void writeU32(std::ostream &Out, uint32_t V) {
  char Bytes[4];
  for (int I = 0; I < 4; ++I)
    Bytes[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  Out.write(Bytes, sizeof(Bytes));
}

void writeU64(std::ostream &Out, uint64_t V) {
  char Bytes[8];
  for (int I = 0; I < 8; ++I)
    Bytes[I] = static_cast<char>((V >> (8 * I)) & 0xFF);
  Out.write(Bytes, sizeof(Bytes));
}

std::optional<uint32_t> readU32(std::istream &In) {
  unsigned char Bytes[4];
  if (!In.read(reinterpret_cast<char *>(Bytes), sizeof(Bytes)))
    return std::nullopt;
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Bytes[I]) << (8 * I);
  return V;
}

std::optional<uint64_t> readU64(std::istream &In) {
  unsigned char Bytes[8];
  if (!In.read(reinterpret_cast<char *>(Bytes), sizeof(Bytes)))
    return std::nullopt;
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Bytes[I]) << (8 * I);
  return V;
}

/// Bounded pre-reserve against corrupt count fields: an honest larger
/// count still loads (push_back growth), a hostile 2^60 surfaces as a
/// truncation error instead of std::bad_alloc.
constexpr uint64_t MaxReserve = 1u << 20;

} // namespace

Status ClusterRouter::write(std::ostream &Out) const {
  Out.write(RouterMagic, sizeof(RouterMagic));
  writeU32(Out, RouterVersion);
  writeU64(Out, Centroids.size());
  writeU64(Out, static_cast<uint64_t>(NumAssigned));
  for (uint32_t A : assignments())
    writeU32(Out, A);
  for (uint64_t Offset : Centroids.offsets())
    writeU64(Out, Offset);
  for (uint64_t Hash : Centroids.hashes())
    writeU64(Out, Hash);
  for (double Value : Centroids.values()) {
    uint64_t Bits;
    std::memcpy(&Bits, &Value, sizeof(Bits));
    writeU64(Out, Bits);
  }
  if (!Out)
    return Status::error("failed to write cluster routing data");
  return Status();
}

Expected<ClusterRouter> ClusterRouter::read(std::istream &In) {
  using Result = Expected<ClusterRouter>;
  char Magic[8];
  if (!In.read(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, RouterMagic, sizeof(Magic)) != 0)
    return Result::error("not a KAST routing file (bad magic)");
  std::optional<uint32_t> Version = readU32(In);
  if (!Version)
    return Result::error("truncated routing header");
  if (*Version != RouterVersion)
    return Result::error("unsupported routing version " +
                         std::to_string(*Version));
  std::optional<uint64_t> NumCentroids = readU64(In);
  std::optional<uint64_t> NumProfiles = readU64(In);
  if (!NumCentroids || !NumProfiles)
    return Result::error("truncated routing header");

  ClusterRouter Router;
  Router.AssignmentsOwned.reserve(
      static_cast<size_t>(std::min(*NumProfiles, MaxReserve)));
  for (uint64_t I = 0; I < *NumProfiles; ++I) {
    std::optional<uint32_t> A = readU32(In);
    if (!A)
      return Result::error("truncated routing assignments at entry " +
                           std::to_string(I));
    if (*A >= *NumCentroids)
      return Result::error("routing assignment " + std::to_string(I) +
                           " names centroid " + std::to_string(*A) +
                           " of " + std::to_string(*NumCentroids));
    Router.AssignmentsOwned.push_back(*A);
  }
  Router.syncOwned();

  std::vector<uint64_t> Offsets;
  Offsets.reserve(
      static_cast<size_t>(std::min(*NumCentroids + 1, MaxReserve)));
  for (uint64_t I = 0; I <= *NumCentroids; ++I) {
    std::optional<uint64_t> O = readU64(In);
    if (!O)
      return Result::error("truncated centroid offsets");
    if ((I == 0 && *O != 0) || (I > 0 && *O < Offsets.back()))
      return Result::error("malformed centroid offsets");
    Offsets.push_back(*O);
  }
  if (*NumCentroids == 0) {
    if (*NumProfiles != 0)
      return Result::error("routing names profiles but no centroids");
    return Result(std::move(Router));
  }
  const uint64_t Total = Offsets.back();
  std::vector<uint64_t> Hashes;
  std::vector<double> Values;
  Hashes.reserve(static_cast<size_t>(std::min(Total, MaxReserve)));
  Values.reserve(static_cast<size_t>(std::min(Total, MaxReserve)));
  for (uint64_t I = 0; I < Total; ++I) {
    std::optional<uint64_t> H = readU64(In);
    if (!H)
      return Result::error("truncated centroid hashes");
    Hashes.push_back(*H);
  }
  for (uint64_t I = 0; I < Total; ++I) {
    std::optional<uint64_t> Bits = readU64(In);
    if (!Bits)
      return Result::error("truncated centroid values");
    double Value;
    std::memcpy(&Value, &*Bits, sizeof(Value));
    Values.push_back(Value);
  }
  ProfileStore Centroids =
      ProfileStore::adopt(std::move(Hashes), std::move(Values),
                          std::move(Offsets));
  if (!Centroids.isFinalized())
    return Result::error("centroid features are not sorted/coalesced");
  Router.Centroids = std::move(Centroids);
  return Result(std::move(Router));
}

Status ClusterRouter::saveFile(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return Status::error("cannot open '" + Path + "' for writing");
  return write(Out);
}

Expected<ClusterRouter> ClusterRouter::loadFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Expected<ClusterRouter>::error("cannot open '" + Path +
                                          "' for reading");
  return read(In);
}
