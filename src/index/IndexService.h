//===- index/IndexService.h - Snapshot-isolated profile serving -*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent serving layer over profile retrieval. A ProfileIndex
/// is a build-mostly object: add() may reallocate the arena and
/// invalidates every outstanding ProfileView, so queries and growth
/// cannot overlap. An IndexService makes that overlap safe with
/// copy-on-write snapshots over sharded, immutable state:
///
///   - Entries are routed to one of S shards by the hash of their
///     name. Each shard is published as an immutable IndexShard: a
///     list of sealed, shared segments (ProfileStore arena + names +
///     labels), per-segment tombstone bitmaps, and live/entry counts.
///
///   - Readers call snapshot(), which atomically loads each shard's
///     current shared_ptr<const IndexShard>. No lock is taken on the
///     query path, and the snapshot stays valid — and keeps answering
///     identically — no matter how many adds, removes, or compactions
///     land after it was taken; the shared_ptrs pin the old segments.
///
///   - Writers take a per-shard mutex, append into that shard's
///     *staging* segment (a mutable ProfileStore tail), and publish a
///     new IndexShard atomically. Publishing copies only the staging
///     tail (bounded by the seal threshold) and the segment pointer
///     list, never the sealed arenas. When staging reaches the seal
///     threshold it is moved — not copied — into a sealed segment.
///
///   - remove(name) tombstones entries instead of erasing them, so
///     published segments stay immutable; compact() rebuilds each
///     shard into one fresh arena without tombstones (old snapshots
///     keep the pre-compaction segments alive).
///
/// Queries fan out across shards through parallelFor and k-way merge
/// the per-shard top-k lists; ordering is deterministic for a given
/// snapshot (similarity desc, then shard, then insertion position).
///
//===----------------------------------------------------------------------===//

#ifndef KAST_INDEX_INDEXSERVICE_H
#define KAST_INDEX_INDEXSERVICE_H

#include "core/ProfileSerializer.h"
#include "core/ProfileStore.h"
#include "core/StringColumn.h"
#include "index/ProfileIndex.h"
#include "util/Error.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kast {

namespace detail {

/// One immutable run of entries published together: an arena plus the
/// parallel name/label columns. Shared (never mutated) once sealed.
/// The columns are core/StringColumn, so a segment restored from a
/// mapped flat image keeps its names as lazy views into the mapping —
/// no string is materialized until a query hit or a remove() actually
/// reads one.
struct IndexSegment {
  ProfileStore Store;
  StringColumn Names;
  StringColumn Labels;

  size_t size() const { return Store.size(); }
};

/// An immutable published view of one shard. Tombstones[I] parallels
/// Segments[I]; a null pointer means "no entry of this segment is
/// removed" (the common case — removal allocates the bitmap lazily).
struct IndexShard {
  std::vector<std::shared_ptr<const IndexSegment>> Segments;
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> Tombstones;
  size_t EntryCount = 0; ///< Entries across segments, tombstoned or not.
  size_t LiveCount = 0;  ///< Entries not tombstoned.

  /// The two-tier retrieval structures fitted over RoutedSegment
  /// (always the shard's first segment when valid), carried
  /// copy-on-write: publishes share the pointers, so a snapshot keeps
  /// the routing it was taken with. Null when the shard was never
  /// routed. Routing applies iff RoutedSegment == Segments[0] — after
  /// a compact() rebuilt the arena the identity no longer holds and
  /// approximate queries fall back to the exact scan for this shard.
  /// Segments after the routed one are the unrouted tail, always
  /// scanned exactly.
  std::shared_ptr<const IndexRouting> Routing;
  std::shared_ptr<const IndexSegment> RoutedSegment;
};

} // namespace detail

/// One retrieval hit from a service query. Name and label are copied
/// out of the snapshot, so hits stay valid after every snapshot and
/// the service itself are gone.
struct ServiceHit {
  std::string Name;
  std::string Label;
  double Similarity = 0.0;

  bool operator==(const ServiceHit &Rhs) const = default;
};

/// Shape knobs for an IndexService.
struct IndexServiceOptions {
  /// Number of shards. More shards mean finer write interleaving and
  /// wider query fan-out; entries are routed by name hash.
  size_t Shards = 8;
  /// A shard's staging tail is sealed into an immutable segment once
  /// it holds this many profiles; publishing an add copies at most
  /// this much staging state.
  size_t SealThreshold = 64;
};

/// An immutable, value-semantic view of the whole service at one
/// publish point. Querying a snapshot never takes a lock and always
/// returns the same answer for the same arguments, regardless of
/// concurrent writes to the owning service.
class IndexSnapshot {
public:
  /// Live (non-tombstoned) entries across all shards.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// All entries across all shards, tombstoned ones included — the
  /// scan cost a query actually pays. entryCount() - size() is the
  /// tombstone debt a compact() would reclaim.
  size_t entryCount() const;

  size_t shardCount() const { return Shards.size(); }

  /// The min(K, size()) live entries most similar to \p Query, most
  /// similar first. \p Normalize selects cosine similarity (vanishing
  /// norms score 0) over the raw dot. Ties break toward the lower
  /// shard, then the earlier insertion position — deterministic for a
  /// fixed snapshot. Shards are scored through parallelFor on
  /// \p Threads (0 = hardware concurrency) and their top-k lists
  /// k-way merged.
  std::vector<ServiceHit> query(const KernelProfile &Query, size_t K,
                                bool Normalize = true,
                                size_t Threads = 0) const;

  /// query() for a batch: queries are strided across worker chunks so
  /// each chunk reuses one scoring scratch buffer; every query scans
  /// the snapshot's shards and merges exactly as query() does.
  std::vector<std::vector<ServiceHit>>
  queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
             bool Normalize = true, size_t Threads = 0) const;

  /// queryBatch over borrowed profiles — the admission seam the
  /// serving runtime executes through, so a batch gathered from many
  /// producers is scored without copying any profile. Null entries are
  /// not allowed. Results[I] is bit-identical to query(*Queries[I],
  /// ...) on this snapshot.
  std::vector<std::vector<ServiceHit>>
  queryBatch(const std::vector<const KernelProfile *> &Queries, size_t K,
             bool Normalize = true, size_t Threads = 0) const;

  /// queryApprox() for a batch of borrowed profiles: same chunk
  /// striding as queryBatch, but each chunk additionally keeps one
  /// InvertedScratch per shard alive across all its queries — the
  /// per-query allocation that dominates routed serving cost is paid
  /// once per chunk instead of once per query. Results[I] is
  /// bit-identical to queryApprox(*Queries[I], ...) on this snapshot.
  std::vector<std::vector<ServiceHit>>
  queryBatchApprox(const std::vector<const KernelProfile *> &Queries,
                   size_t K, bool Normalize = true, size_t NProbe = 0,
                   size_t Threads = 0) const;

  /// queryBatchApprox over owned profiles.
  std::vector<std::vector<ServiceHit>>
  queryBatchApprox(const std::vector<KernelProfile> &Queries, size_t K,
                   bool Normalize = true, size_t NProbe = 0,
                   size_t Threads = 0) const;

  /// query() through each routed shard's candidate-generation tier
  /// (see IndexService::rebuildRouting): the routed segment is probed
  /// via posting lists over the \p NProbe nearest centroids (0 defers
  /// to the shard's RoutingOptions::DefaultNProbe, itself 0 = all),
  /// candidates are exact re-ranked, and unrouted segments — later
  /// seals, the staging tail, and every segment of never-routed or
  /// post-compaction shards — are scanned exactly. Run exhaustively
  /// (all centroids, no df-pruning, no re-rank budget) the result is
  /// bit-identical to query(), tie-break order included.
  std::vector<ServiceHit> queryApprox(const KernelProfile &Query, size_t K,
                                      bool Normalize = true,
                                      size_t NProbe = 0,
                                      size_t Threads = 0) const;

  /// Shards whose published routing still covers their first segment.
  size_t routedShardCount() const;

  /// Majority label among \p Hits; ties break toward the nearer hit's
  /// label (same contract as ProfileIndex::majorityLabel). Empty for
  /// an empty hit list.
  static std::string majorityLabel(const std::vector<ServiceHit> &Hits);

private:
  friend class IndexService;

  std::vector<std::shared_ptr<const detail::IndexShard>> Shards;
};

/// Sharded, thread-safe serving layer over mutable profile retrieval.
///
/// Any number of reader threads may call snapshot()/query()/
/// queryBatch() concurrently with any number of writer threads calling
/// add()/remove()/compact(); writers serialize per shard, readers
/// never block. See the file comment for the publication scheme.
class IndexService {
public:
  /// An empty service tagged with the producing kernel's name.
  explicit IndexService(std::string KernelName,
                        IndexServiceOptions Options = {});

  /// Distributes an existing index's entries into shards (one bulk
  /// publish per shard; the index is copied arena-to-arena).
  static IndexService fromIndex(const ProfileIndex &Index,
                                IndexServiceOptions Options = {});

  /// Restarts a service from sharded v2 caches (workloads/CorpusIO's
  /// loadShardedProfileCaches): each cache becomes one shard, adopted
  /// wholesale by arena move. The shard count is taken from the cache
  /// list (Options.Shards is ignored); all caches must agree on the
  /// kernel name. Caches written by toShardCaches() restore the exact
  /// name-hash routing they were saved with; a layout with off-route
  /// entries still restores, but remove() downgrades to sweeping
  /// every shard (see remove()).
  static Expected<IndexService>
  fromShardCaches(std::vector<ProfileStoreCache> Caches,
                  IndexServiceOptions Options = {});

  IndexService(IndexService &&) = default;
  IndexService &operator=(IndexService &&) = default;

  const std::string &kernelName() const { return KernelName; }
  size_t shardCount() const { return Shards.size(); }

  /// Live entries across the currently published shards.
  size_t size() const { return snapshot().size(); }
  bool empty() const { return size() == 0; }

  /// snapshot().entryCount(): live + tombstoned, i.e. scan cost.
  size_t entryCount() const { return snapshot().entryCount(); }

  /// Appends one profile and publishes it immediately: every snapshot
  /// taken after add() returns observes the new entry.
  void add(std::string Name, std::string Label,
           const KernelProfile &Profile);

  /// Tombstones every live entry named \p Name and publishes.
  /// \returns the number of entries removed (0 if the name is
  /// absent). When every entry is on its name-hash route — always
  /// true for services built through add()/fromIndex, and verified at
  /// restore for fromShardCaches — only the home shard is scanned;
  /// a foreign cache layout downgrades remove() to a sweep of every
  /// shard so off-route entries are still found.
  size_t remove(const std::string &Name);

  /// Rebuilds every shard's arena: live entries are copied into one
  /// fresh segment per shard, tombstones and staging are dropped, and
  /// the result is published. Old snapshots keep the pre-compaction
  /// segments alive and keep answering identically. Shards compact in
  /// parallel (\p Threads as in parallelFor). Routing is dropped (it
  /// was fitted on the replaced arenas); rebuildRouting() re-fits it.
  void compact(size_t Threads = 0);

  /// Compacts each shard and fits the two-tier retrieval structures
  /// (index/ClusterRouter + index/InvertedIndex) over its fresh
  /// arena, then publishes. Entries added afterwards land in the
  /// unrouted tail and are scanned exactly until the next rebuild;
  /// remove() keeps working through tombstones without disturbing the
  /// routing. Outstanding snapshots are untouched (copy-on-write).
  void rebuildRouting(const RoutingOptions &RoutingOpts = {},
                      size_t Threads = 0);

  /// True if any published shard currently carries applicable routing.
  bool routed() const { return snapshot().routedShardCount() > 0; }

  /// Persists each routed shard's router as "<Dir>/shard-NNN.route"
  /// beside the v2 caches toShardCaches/CorpusIO write there, and
  /// removes stale .route files of unrouted shards. Load order at
  /// restart: fromShardCaches(loadShardedProfileCaches(Dir)), then
  /// loadShardRouting(Dir).
  Status saveShardRouting(const std::string &Dir) const;

  /// Restores per-shard routing written by saveShardRouting: posting
  /// lists are rebuilt deterministically from the persisted
  /// assignments. Shards without a .route file stay unrouted; a
  /// sidecar that does not match the shard's published first segment
  /// (wrong entry count) fails loudly.
  Status loadShardRouting(const std::string &Dir);

  /// The current published state; never blocks on writers.
  IndexSnapshot snapshot() const;

  /// snapshot().query(...) — for callers that don't reuse a snapshot.
  std::vector<ServiceHit> query(const KernelProfile &Query, size_t K,
                                bool Normalize = true,
                                size_t Threads = 0) const {
    return snapshot().query(Query, K, Normalize, Threads);
  }

  /// snapshot().queryBatch(...): the whole batch sees one snapshot.
  std::vector<std::vector<ServiceHit>>
  queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
             bool Normalize = true, size_t Threads = 0) const {
    return snapshot().queryBatch(Queries, K, Normalize, Threads);
  }

  /// snapshot().queryApprox(...) — the candidate-generation tier.
  std::vector<ServiceHit> queryApprox(const KernelProfile &Query, size_t K,
                                      bool Normalize = true,
                                      size_t NProbe = 0,
                                      size_t Threads = 0) const {
    return snapshot().queryApprox(Query, K, Normalize, NProbe, Threads);
  }

  /// snapshot().queryBatchApprox(...): one snapshot, amortized scratch.
  std::vector<std::vector<ServiceHit>>
  queryBatchApprox(const std::vector<KernelProfile> &Queries, size_t K,
                   bool Normalize = true, size_t NProbe = 0,
                   size_t Threads = 0) const {
    return snapshot().queryBatchApprox(Queries, K, Normalize, NProbe, Threads);
  }

  /// Exports the published state as one compacted ProfileStoreCache
  /// per shard (tombstoned entries dropped), ready for
  /// workloads/CorpusIO's writeShardedProfileCaches.
  std::vector<ProfileStoreCache> toShardCaches() const;

private:
  /// Writer-side state of one shard, guarded by its mutex: the sealed
  /// segment list the next publish will reference, the mutable staging
  /// tail, and the authoritative tombstone bitmaps.
  struct ShardWriter {
    std::vector<std::shared_ptr<const detail::IndexSegment>> Sealed;
    std::vector<std::shared_ptr<const std::vector<uint8_t>>> SealedTombs;
    detail::IndexSegment Staging;
    std::vector<uint8_t> StagingTombs;
    size_t LiveCount = 0;
    size_t EntryCount = 0;
    /// Routing fitted over RoutedSegment (must be Sealed[0] to apply);
    /// copied into every publish. See detail::IndexShard.
    std::shared_ptr<const detail::IndexRouting> Routing;
    std::shared_ptr<const detail::IndexSegment> RoutedSegment;
  };

  /// One shard: atomically published snapshot + mutex-guarded writer
  /// state. Held by unique_ptr so the service stays movable.
  struct ShardState {
    std::atomic<std::shared_ptr<const detail::IndexShard>> Published;
    std::mutex WriterMutex;
    ShardWriter Writer;
  };

  /// Name-hash shard routing. The string_view overload exists so
  /// mapped (lazily decoded) name columns can be routed without
  /// materializing strings; std::hash<std::string_view> is guaranteed
  /// to agree with std::hash<std::string> on equal character
  /// sequences, so both overloads route identically.
  size_t shardOf(const std::string &Name) const;
  size_t shardOf(std::string_view Name) const;
  /// Seals staging if it reached the threshold, then builds and
  /// publishes a new IndexShard from the writer state. Caller holds
  /// the shard's WriterMutex.
  static void publishLocked(ShardState &Shard, size_t SealThreshold);
  /// Merges a shard's live entries into one fresh sealed segment and
  /// drops tombstones, staging, and (stale by construction) routing.
  /// Caller holds the shard's WriterMutex and publishes afterwards.
  static void compactShardLocked(ShardWriter &W);
  /// Tombstones live entries named \p Name in one shard; returns the
  /// count. Caller holds nothing; takes the writer mutex itself.
  static size_t removeFromShard(ShardState &Shard, const std::string &Name,
                                size_t SealThreshold);

  std::string KernelName;
  IndexServiceOptions Options;
  /// True while every entry lives on its name-hash shard (the add()
  /// invariant). fromShardCaches clears it if a restored cache holds
  /// off-route entries, which downgrades remove() to a full sweep.
  bool StrictRouting = true;
  std::vector<std::unique_ptr<ShardState>> Shards;
};

} // namespace kast

#endif // KAST_INDEX_INDEXSERVICE_H
