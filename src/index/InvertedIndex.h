//===- index/InvertedIndex.h - Posting-list candidate generation -*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fine tier of sublinear retrieval: per-cluster posting lists
/// keyed by feature hash over a ProfileStore. Profiles are sparse
/// hashed-feature vectors, so a query need only touch profiles that
/// share at least one (surviving) feature with it — the classic
/// inverted-file answer to the O(N) scan.
///
///   - Postings are grouped by the owning profile's cluster
///     (index/ClusterRouter assignment), so a routed query probes only
///     the nearest nprobe centroids' segments.
///   - Features whose document frequency exceeds a threshold fraction
///     of the corpus are not indexed at all (df-pruning): a feature
///     shared by most profiles distinguishes nothing and its posting
///     list costs almost a full scan.
///   - Within one feature's posting run, postings are impact-ordered
///     (value descending), so heavy contributors accumulate first and
///     any posting budget keeps the candidates that matter.
///
/// Candidate generation only *finds and pre-scores* survivors; final
/// scores always come from the exact merge-join dot over the full
/// profiles (the re-rank step in ProfileIndex / IndexService), so the
/// approximate tier can be bit-identical to the exact scan when run
/// exhaustively (all centroids probed, no df-pruning, no re-rank
/// budget) — the contract the differential tests pin.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_INDEX_INVERTEDINDEX_H
#define KAST_INDEX_INVERTEDINDEX_H

#include "core/KernelProfile.h"
#include "core/ProfileStore.h"
#include "index/ClusterRouter.h"
#include "util/Error.h"
#include "util/SimdDot.h"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace kast {

/// Process-wide count of posting-list builds (InvertedIndex::build
/// calls) since start. A rebuild-free routed restore must leave this
/// untouched — the restart canary and tests assert on deltas.
uint64_t postingRebuildCount();

/// Knobs of the approximate retrieval tier: how the router is fitted,
/// how aggressively postings are pruned, and how queries probe.
struct RoutingOptions {
  /// k-means shape for the coarse router.
  ClusterRouterOptions Cluster;
  /// Features present in more than this fraction of the covered
  /// profiles are not indexed (their posting lists are dropped). 1.0
  /// disables pruning; candidates then cover every profile sharing
  /// any feature with the query.
  double MaxDocFrequency = 1.0;
  /// Cap on candidates surviving to the exact re-rank, selected by
  /// accumulated partial score (impact-ordered posting accumulation).
  /// 0 re-ranks every candidate — required for bit-identity with the
  /// exact scan.
  size_t RerankBudget = 0;
  /// Centroids probed when the query does not say: 0 probes all.
  size_t DefaultNProbe = 0;
  /// When a RerankBudget is set, select the shortlist by scoring every
  /// candidate with the int8 quantized dot (core/ProfileStore's
  /// QuantizedStore sidecar) instead of the accumulated partial score.
  /// The quantized score sees *all* of a candidate's features — the
  /// partial accumulator only sees features surviving df-pruning in
  /// probed clusters — so the shortlist ranks closer to the exact
  /// order at a fraction of the exact dot's cost. Survivors are still
  /// re-ranked with the exact f64 kernel; this knob only changes which
  /// candidates make the shortlist. Ignored when RerankBudget == 0
  /// (nothing is pruned, so there is nothing to select).
  bool QuantizedShortlist = true;
};

/// Reusable per-thread query scratch: an epoch-versioned candidate
/// mark plus the partial-score accumulator. Versioning (instead of a
/// clear per query) makes reuse across a batch O(candidates), and —
/// the determinism contract — leaves no state behind that could leak
/// into the next query on the same worker: an id is a candidate iff
/// its epoch equals the current one, and Acc[id] is written before it
/// is ever read within one epoch.
struct InvertedScratch {
  /// Starts a new query over \p N profiles.
  void begin(size_t N) {
    if (Epoch.size() != N) {
      Epoch.assign(N, 0);
      Acc.assign(N, 0.0);
      Current = 0;
    }
    ++Current;
    if (Current == 0) { // Epoch wrap: invalidate everything once.
      std::fill(Epoch.begin(), Epoch.end(), 0u);
      Current = 1;
    }
    Candidates.clear();
  }

  bool marked(size_t Id) const { return Epoch[Id] == Current; }

  std::vector<uint32_t> Epoch;
  uint32_t Current = 0;
  /// Candidate ids in first-touch order; valid for the current epoch.
  std::vector<uint32_t> Candidates;
  /// Accumulated partial score per candidate id (query value × posting
  /// value over matched, surviving features).
  std::vector<double> Acc;
  /// The query flattened to dense hash/value arrays — the shape the
  /// vectorized kernels (util/SimdDot) stream. Assigned once per query
  /// by the retrieval layers and reused for routing, candidate
  /// generation, shortlist scoring, and the exact re-rank.
  FlatProfile Query;
  /// Probe-table scan over the flattened query for the exact re-rank
  /// (one table build per query, one branchless probe pass per
  /// candidate); bit-identical to the merge-join dot.
  simd::ExactScan Scan;
  /// Centroid-scoring scratch for ClusterRouter::route, reused across
  /// a batch so the per-query sweep allocates nothing once warm.
  std::vector<std::pair<double, uint32_t>> RouteScored;
  /// Probed centroid ids from the last route() call.
  std::vector<uint32_t> Probes;
};

/// Cluster-segmented, df-pruned, impact-ordered posting lists over one
/// ProfileStore.
class InvertedIndex {
public:
  InvertedIndex() = default;

  /// Builds posting lists over the prefix of \p Store covered by
  /// \p Assignments (one cluster id per profile, values <
  /// \p NumClusters; the assignment array may be shorter than the
  /// store when routing predates appended entries). Features with
  /// document frequency above MaxDocFrequency × covered are pruned;
  /// pruning never drops a feature held by a single profile. The
  /// build is a pure function of its arguments, so an index rebuilt
  /// from persisted assignments reproduces the original exactly.
  static InvertedIndex build(const ProfileStore &Store,
                             ArrayView<uint32_t> Assignments,
                             size_t NumClusters,
                             double MaxDocFrequency = 1.0);

  /// Non-owning construction over pre-validated flat arenas (a v4
  /// image's posting CSR sections): no rebuild, no copy — the index
  /// views the five arrays for as long as \p Backing keeps them alive.
  /// The caller (the flat-image reader) has already validated the CSR
  /// shape (ClusterBegin/PostingBegin monotonic, final elements equal
  /// to the array totals); posting ids are additionally clamped at
  /// query time, so even a deep-validation-skipping open cannot write
  /// out of scratch bounds. Like ClusterRouter, an index is immutable
  /// after construction — replacement, not promotion, is the mutation
  /// path.
  static InvertedIndex fromArenas(size_t Covered, size_t PrunedFeatures,
                                  ArrayView<uint64_t> FeatureHashes,
                                  ArrayView<uint64_t> ClusterBegin,
                                  ArrayView<uint64_t> PostingBegin,
                                  ArrayView<uint32_t> PostingIds,
                                  ArrayView<double> PostingValues,
                                  std::shared_ptr<const void> Backing);

  /// True while the posting arrays view externally owned memory.
  bool isMapped() const { return Backing != nullptr; }

  size_t numProfiles() const { return NumProfiles; }
  size_t numClusters() const {
    return ClusterBegin.empty() ? 0 : ClusterBegin.size() - 1;
  }
  /// Total postings stored (after pruning).
  size_t postingCount() const { return PostingIds.size(); }
  /// Distinct features dropped by the df threshold.
  size_t prunedFeatureCount() const { return PrunedFeatures; }

  // The flat arenas, for serialization (core/FlatImage sections) —
  // views into this index, valid while it lives.
  ArrayView<uint64_t> featureHashes() const { return FeatureHashes; }
  ArrayView<uint64_t> clusterBegin() const { return ClusterBegin; }
  ArrayView<uint64_t> postingBegin() const { return PostingBegin; }
  ArrayView<uint32_t> postingIds() const { return PostingIds; }
  ArrayView<double> postingValues() const { return PostingValues; }

  /// Marks every profile of the probed clusters sharing a surviving
  /// feature with \p Query into \p S (first-touch order) and
  /// accumulates its partial score. \p Probes are cluster ids (from
  /// ClusterRouter::route); out-of-range ids are ignored. The caller
  /// must have called S.begin(numProfiles()).
  void collectCandidates(const KernelProfile &Query,
                         const std::vector<uint32_t> &Probes,
                         InvertedScratch &S) const;

  /// collectCandidates for a flattened query: merge-joins the dense
  /// hash array instead of striding interleaved entries. Same marks,
  /// same accumulation order, same results.
  void collectCandidates(const FlatProfile &Query,
                         const std::vector<uint32_t> &Probes,
                         InvertedScratch &S) const;

private:
  /// The shared merge-join behind both collectCandidates overloads,
  /// parameterized over the query's element accessors (AoS entries or
  /// dense flattened arrays). Defined in the .cpp — only instantiated
  /// there.
  template <typename HashAt, typename ValueAt>
  void collectImpl(size_t QuerySize, HashAt QueryHash, ValueAt QueryValue,
                   const std::vector<uint32_t> &Probes,
                   InvertedScratch &S) const;

  /// Re-aims the active views at the owned vectors (after build or a
  /// deep copy).
  void syncOwned();
  void copyFrom(const InvertedIndex &Other);
  void moveFrom(InvertedIndex &Other);

  size_t NumProfiles = 0;
  size_t PrunedFeatures = 0;
  // The canonical representation is one contiguous CSR arena per
  // array, addressed through the non-owning views below — the same
  // dual-mode layout ProfileStore uses. Built indices own their
  // storage in the *Owned vectors; mapped indices (fromArenas) view an
  // external image kept alive by Backing and leave the vectors empty.
  std::vector<uint64_t> FeatureHashesOwned;
  std::vector<uint64_t> ClusterBeginOwned;
  std::vector<uint64_t> PostingBeginOwned;
  std::vector<uint32_t> PostingIdsOwned;
  std::vector<double> PostingValuesOwned;
  /// Distinct surviving feature hashes, cluster-major, sorted within
  /// each cluster (merge-joinable against a finalized query).
  ArrayView<uint64_t> FeatureHashes;
  /// CSR: cluster C's features span FeatureHashes[ClusterBegin[C],
  /// ClusterBegin[C+1]).
  ArrayView<uint64_t> ClusterBegin;
  /// CSR: feature F's postings span [PostingBegin[F],
  /// PostingBegin[F+1]) of PostingIds/PostingValues.
  ArrayView<uint64_t> PostingBegin;
  ArrayView<uint32_t> PostingIds;
  ArrayView<double> PostingValues;
  /// Non-null iff the views aim at an external arena.
  std::shared_ptr<const void> Backing;

public:
  // Views must follow the storage on copy/move (memberwise defaults
  // would alias the source's vectors), mirroring QuantizedStore.
  InvertedIndex(const InvertedIndex &Other) { copyFrom(Other); }
  InvertedIndex &operator=(const InvertedIndex &Other) {
    if (this != &Other)
      copyFrom(Other);
    return *this;
  }
  InvertedIndex(InvertedIndex &&Other) noexcept { moveFrom(Other); }
  InvertedIndex &operator=(InvertedIndex &&Other) noexcept {
    if (this != &Other)
      moveFrom(Other);
    return *this;
  }
};

/// On-disk routing cache: the fitted router plus the options needed to
/// rebuild the posting lists deterministically. Persisted alongside
/// the v2 profile caches (ProfileIndex writes "<cache>.route",
/// IndexService one "shard-NNN.route" per routed shard); the inverted
/// index itself is never serialized — it is a pure function of
/// (store, assignments, MaxDocFrequency) and rebuilds on load.
struct RoutingCache {
  ClusterRouter Router;
  RoutingOptions Options;
};

/// Stream forms of the routing sidecar's "KASTRTNG" wire format. The
/// file functions below are these over a file stream; the v3 flat
/// image (core/FlatImage) embeds the identical bytes as its ROUTE
/// section (ProfileStoreCache::RouteBlob), so a routed shard restores
/// from either carrier with one parser.
Status writeRouting(const ClusterRouter &Router, const RoutingOptions &Options,
                    std::ostream &Out);
Expected<RoutingCache> readRouting(std::istream &In);

Status writeRoutingFile(const ClusterRouter &Router,
                        const RoutingOptions &Options,
                        const std::string &Path);
Expected<RoutingCache> readRoutingFile(const std::string &Path);

} // namespace kast

#endif // KAST_INDEX_INVERTEDINDEX_H
