//===- index/IndexService.cpp - Snapshot-isolated profile serving ----------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "index/IndexService.h"
#include "util/SimdDot.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <filesystem>
#include <functional>
#include <sstream>
#include <thread>

using namespace kast;

//===----------------------------------------------------------------------===//
// Snapshot scoring and k-way merge
//===----------------------------------------------------------------------===//

namespace {

/// One scored candidate inside a shard. Pos is the flattened insertion
/// position across the shard's segments — the deterministic tie-break
/// within a shard (older entries win ties, mirroring ProfileIndex's
/// smaller-index rule).
struct ShardHit {
  double Sim = 0.0;
  size_t Pos = 0;
  size_t Seg = 0;
  size_t Off = 0;
};

/// Visits (segment, offset) of every live entry across parallel
/// segment/tombstone lists — the one definition of "live" shared by
/// compaction and cache export, so a tombstone-representation change
/// cannot leave the two walks disagreeing.
template <typename Fn>
void forEachLiveEntry(
    const std::vector<std::shared_ptr<const detail::IndexSegment>> &Segments,
    const std::vector<std::shared_ptr<const std::vector<uint8_t>>> &Tombs,
    Fn Visit) {
  for (size_t S = 0; S < Segments.size(); ++S) {
    const detail::IndexSegment &Seg = *Segments[S];
    const std::vector<uint8_t> *T = Tombs[S].get();
    for (size_t I = 0; I < Seg.size(); ++I)
      if (!T || !(*T)[I])
        Visit(Seg, I);
  }
}

/// Scores every live entry of \p Shard against the flattened \p Query
/// into \p Scratch (caller-owned so batches reuse the allocation) and
/// leaves the shard's top-K, best first, in \p TopK. Callers flatten
/// each query once (IndexSnapshot::query / queryBatch) so every
/// shard's scan streams the dense arrays through the vectorized dot.
void scoreShard(const detail::IndexShard &Shard, const FlatProfile &Query,
                size_t K, bool Normalize, double QNorm,
                simd::ExactScan &Scan, std::vector<ShardHit> &Scratch,
                std::vector<ShardHit> &TopK) {
  TopK.clear();
  if (K == 0 || Shard.LiveCount == 0)
    return;
  Scan.assign(Query.Hashes.data(), Query.Values.data(), Query.size());
  Scratch.clear();
  size_t Pos = 0;
  for (size_t S = 0; S < Shard.Segments.size(); ++S) {
    const detail::IndexSegment &Seg = *Shard.Segments[S];
    const std::vector<uint8_t> *Tombs = Shard.Tombstones[S].get();
    for (size_t I = 0; I < Seg.size(); ++I, ++Pos) {
      if (Tombs && (*Tombs)[I])
        continue;
      const ProfileView V = Seg.Store.view(I);
      double Sim = Scan.dot(V.Hashes, V.Values, V.Size);
      if (Normalize) {
        double Denominator = QNorm * V.Norm;
        Sim = Denominator > 0.0 ? Sim / Denominator : 0.0;
      }
      Scratch.push_back({Sim, Pos, S, I});
    }
  }
  const size_t Take = std::min(K, Scratch.size());
  std::partial_sort(Scratch.begin(), Scratch.begin() + Take, Scratch.end(),
                    [](const ShardHit &L, const ShardHit &R) {
                      if (L.Sim != R.Sim)
                        return L.Sim > R.Sim;
                      return L.Pos < R.Pos;
                    });
  TopK.assign(Scratch.begin(), Scratch.begin() + Take);
}

/// scoreShard through the shard's candidate-generation tier. The
/// routed first segment contributes only posting-list candidates
/// (exact re-ranked, so a survivor's similarity is bit-identical to
/// the exact scan's); every later segment — sealed after the fit, or
/// the staging tail — is scanned exactly. When fewer than K hits
/// score above zero, live unmarked entries of the routed segment pad
/// the tail at similarity exactly +0.0 in position order, which is
/// what the exact scan computes for a profile sharing no feature with
/// the query — the bit-identity argument of ProfileIndex's
/// approxQueryInto, with Pos as the tie-break. Shards without
/// applicable routing (never routed, or compacted since) fall back to
/// scoreShard.
void scoreShardApprox(const detail::IndexShard &Shard,
                      const FlatProfile &Query, size_t K, bool Normalize,
                      double QNorm, size_t NProbe, InvertedScratch &IS,
                      simd::ExactScan &Scan, std::vector<ShardHit> &Scratch,
                      std::vector<ShardHit> &TopK) {
  const bool Routed = Shard.Routing && !Shard.Segments.empty() &&
                      Shard.Segments[0] == Shard.RoutedSegment;
  if (!Routed) {
    scoreShard(Shard, Query, K, Normalize, QNorm, Scan, Scratch, TopK);
    return;
  }
  TopK.clear();
  if (K == 0 || Shard.LiveCount == 0)
    return;
  const detail::IndexRouting &R = *Shard.Routing;
  const detail::IndexSegment &Seg0 = *Shard.Segments[0];
  const std::vector<uint8_t> *Tombs0 = Shard.Tombstones[0].get();
  const size_t Covered = R.covered();
  assert(Covered == Seg0.size() && "routing must cover the first segment");

  const size_t Probe = NProbe != 0 ? NProbe : R.Options.DefaultNProbe;
  R.Router.route(Query, Probe, IS.RouteScored, IS.Probes);
  IS.begin(Covered);
  R.Inverted.collectCandidates(Query, IS.Probes, IS);
  // Shortlist selection mirrors ProfileIndex's approxQueryInto: the
  // quantized dot over the full candidate profile when the sidecar
  // exists, the accumulated partial score otherwise. Tombstoned
  // candidates are filtered below either way, so scoring them here
  // only costs a few wasted int8 dots.
  const size_t Budget = R.Options.RerankBudget;
  if (Budget > 0 && IS.Candidates.size() > Budget) {
    if (const QuantizedStore *Quant = R.Quant.get()) {
      for (uint32_t Id : IS.Candidates) {
        const ProfileView V = Seg0.Store.view(Id);
        const QuantizedStore::View QV = Quant->view(Id);
        double Sim =
            simd::dotQuantized(Query.Hashes.data(), Query.Values.data(),
                               Query.size(), V.Hashes, QV.Values, QV.Size,
                               QV.Scale);
        if (Normalize)
          Sim = V.Norm > 0.0 ? Sim / V.Norm : 0.0;
        IS.Acc[Id] = Sim;
      }
    }
    std::partial_sort(IS.Candidates.begin(), IS.Candidates.begin() + Budget,
                      IS.Candidates.end(), [&](uint32_t L, uint32_t R2) {
                        if (IS.Acc[L] != IS.Acc[R2])
                          return IS.Acc[L] > IS.Acc[R2];
                        return L < R2;
                      });
    IS.Candidates.resize(Budget);
  }

  Scan.assign(Query.Hashes.data(), Query.Values.data(), Query.size());
  const auto Score = [&](const ProfileView &V) {
    double Sim = Scan.dot(V.Hashes, V.Values, V.Size);
    if (Normalize) {
      double Denominator = QNorm * V.Norm;
      Sim = Denominator > 0.0 ? Sim / Denominator : 0.0;
    }
    return Sim;
  };
  Scratch.clear();
  for (uint32_t Id : IS.Candidates) {
    if (Tombs0 && (*Tombs0)[Id])
      continue;
    Scratch.push_back({Score(Seg0.Store.view(Id)), Id, 0, Id});
  }
  size_t Pos = Seg0.size();
  for (size_t S = 1; S < Shard.Segments.size(); ++S) {
    const detail::IndexSegment &Seg = *Shard.Segments[S];
    const std::vector<uint8_t> *Tombs = Shard.Tombstones[S].get();
    for (size_t I = 0; I < Seg.size(); ++I, ++Pos) {
      if (Tombs && (*Tombs)[I])
        continue;
      Scratch.push_back({Score(Seg.Store.view(I)), Pos, S, I});
    }
  }
  const size_t Take = std::min(K, Scratch.size());
  std::partial_sort(Scratch.begin(), Scratch.begin() + Take, Scratch.end(),
                    [](const ShardHit &L, const ShardHit &R2) {
                      if (L.Sim != R2.Sim)
                        return L.Sim > R2.Sim;
                      return L.Pos < R2.Pos;
                    });
  if (Take == K && Scratch[K - 1].Sim > 0.0) {
    TopK.assign(Scratch.begin(), Scratch.begin() + Take);
    return;
  }

  // Merge the ranked survivors with the zero stream: live, unmarked
  // entries of the routed segment, ascending position, exactly +0.0.
  size_t Zero = 0;
  const auto AdvanceZero = [&] {
    while (Zero < Covered &&
           (IS.marked(Zero) || (Tombs0 && (*Tombs0)[Zero])))
      ++Zero;
  };
  AdvanceZero();
  size_t Next = 0;
  while (TopK.size() < K) {
    const bool HaveScored = Next < Take;
    const bool HaveZero = Zero < Covered;
    if (!HaveScored && !HaveZero)
      break;
    bool TakeScored;
    if (!HaveZero) {
      TakeScored = true;
    } else if (!HaveScored) {
      TakeScored = false;
    } else {
      const ShardHit &H = Scratch[Next];
      TakeScored = H.Sim > 0.0 || (H.Sim == 0.0 && H.Pos < Zero);
    }
    if (TakeScored) {
      TopK.push_back(Scratch[Next++]);
    } else {
      TopK.push_back({0.0, Zero, 0, Zero});
      ++Zero;
      AdvanceZero();
    }
  }
}

/// K-way merge of per-shard top-k lists into the global top-K. Lists
/// are short (at most K each), so a linear scan over the S heads per
/// emitted hit beats heap bookkeeping; ties break toward the lower
/// shard index, then the earlier position (strictly-greater test keeps
/// the incumbent).
std::vector<ServiceHit>
mergeTopK(const std::vector<std::shared_ptr<const detail::IndexShard>> &Shards,
          const std::vector<std::vector<ShardHit>> &PerShard, size_t K) {
  std::vector<size_t> Heads(PerShard.size(), 0);
  std::vector<ServiceHit> Out;
  while (Out.size() < K) {
    size_t Best = PerShard.size();
    for (size_t S = 0; S < PerShard.size(); ++S) {
      if (Heads[S] >= PerShard[S].size())
        continue;
      if (Best == PerShard.size() ||
          PerShard[S][Heads[S]].Sim > PerShard[Best][Heads[Best]].Sim)
        Best = S;
    }
    if (Best == PerShard.size())
      break;
    const ShardHit &H = PerShard[Best][Heads[Best]++];
    const detail::IndexSegment &Seg = *Shards[Best]->Segments[H.Seg];
    // Hit materialization is where a mapped segment's lazy name/label
    // columns are finally decoded — only the K winners pay it.
    Out.push_back({std::string(Seg.Names[H.Off]),
                   std::string(Seg.Labels[H.Off]), H.Sim});
  }
  return Out;
}

} // namespace

size_t IndexSnapshot::size() const {
  size_t Live = 0;
  for (const std::shared_ptr<const detail::IndexShard> &S : Shards)
    Live += S->LiveCount;
  return Live;
}

size_t IndexSnapshot::entryCount() const {
  size_t Entries = 0;
  for (const std::shared_ptr<const detail::IndexShard> &S : Shards)
    Entries += S->EntryCount;
  return Entries;
}

std::vector<ServiceHit> IndexSnapshot::query(const KernelProfile &Query,
                                             size_t K, bool Normalize,
                                             size_t Threads) const {
  if (K == 0 || Shards.empty())
    return {};
  // Flattened once; the per-shard workers share it read-only.
  const FlatProfile Flat(Query);
  const double QNorm = Normalize ? Flat.Norm : 1.0;
  std::vector<std::vector<ShardHit>> PerShard(Shards.size());
  parallelFor(
      Shards.size(),
      [&](size_t S) {
        simd::ExactScan Scan;
        std::vector<ShardHit> Scratch;
        scoreShard(*Shards[S], Flat, K, Normalize, QNorm, Scan, Scratch,
                   PerShard[S]);
      },
      Threads);
  return mergeTopK(Shards, PerShard, K);
}

std::vector<std::vector<ServiceHit>>
IndexSnapshot::queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
                          bool Normalize, size_t Threads) const {
  std::vector<const KernelProfile *> Borrowed(Queries.size());
  for (size_t I = 0; I < Queries.size(); ++I)
    Borrowed[I] = &Queries[I];
  return queryBatch(Borrowed, K, Normalize, Threads);
}

std::vector<std::vector<ServiceHit>>
IndexSnapshot::queryBatch(const std::vector<const KernelProfile *> &Queries,
                          size_t K, bool Normalize, size_t Threads) const {
  std::vector<std::vector<ServiceHit>> Results(Queries.size());
  if (Shards.empty())
    return Results;
  // Same striding scheme as ProfileIndex::queryBatch: each chunk owns
  // one scoring scratch and one set of per-shard top-k lists, reused
  // for every query the chunk scores.
  const size_t Workers =
      Threads != 0 ? Threads
                   : std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t Chunks = std::min(Queries.size(), Workers);
  parallelFor(
      Chunks,
      [&](size_t Chunk) {
        FlatProfile Flat;
        simd::ExactScan Scan;
        std::vector<ShardHit> Scratch;
        std::vector<std::vector<ShardHit>> PerShard(Shards.size());
        for (size_t I = Chunk; I < Queries.size(); I += Chunks) {
          Flat.assign(*Queries[I]);
          const double QNorm = Normalize ? Flat.Norm : 1.0;
          for (size_t S = 0; S < Shards.size(); ++S)
            scoreShard(*Shards[S], Flat, K, Normalize, QNorm, Scan, Scratch,
                       PerShard[S]);
          Results[I] = mergeTopK(Shards, PerShard, K);
        }
      },
      Threads);
  return Results;
}

std::vector<std::vector<ServiceHit>> IndexSnapshot::queryBatchApprox(
    const std::vector<KernelProfile> &Queries, size_t K, bool Normalize,
    size_t NProbe, size_t Threads) const {
  std::vector<const KernelProfile *> Borrowed(Queries.size());
  for (size_t I = 0; I < Queries.size(); ++I)
    Borrowed[I] = &Queries[I];
  return queryBatchApprox(Borrowed, K, Normalize, NProbe, Threads);
}

std::vector<std::vector<ServiceHit>> IndexSnapshot::queryBatchApprox(
    const std::vector<const KernelProfile *> &Queries, size_t K,
    bool Normalize, size_t NProbe, size_t Threads) const {
  std::vector<std::vector<ServiceHit>> Results(Queries.size());
  if (Shards.empty())
    return Results;
  const size_t Workers =
      Threads != 0 ? Threads
                   : std::max<size_t>(1, std::thread::hardware_concurrency());
  const size_t Chunks = std::min(Queries.size(), Workers);
  parallelFor(
      Chunks,
      [&](size_t Chunk) {
        FlatProfile Flat;
        simd::ExactScan Scan;
        std::vector<ShardHit> Scratch;
        std::vector<std::vector<ShardHit>> PerShard(Shards.size());
        // One InvertedScratch per shard, kept across the whole chunk:
        // InvertedScratch::begin() only reallocates when the covered
        // size changes, and a shard's routed segment size is fixed
        // within a snapshot, so queries after the first pay an epoch
        // bump instead of allocating and zeroing ~N doubles per shard.
        // This amortization is what makes batched admission beat
        // call-per-query serving.
        std::vector<InvertedScratch> IS(Shards.size());
        for (size_t I = Chunk; I < Queries.size(); I += Chunks) {
          Flat.assign(*Queries[I]);
          const double QNorm = Normalize ? Flat.Norm : 1.0;
          for (size_t S = 0; S < Shards.size(); ++S)
            scoreShardApprox(*Shards[S], Flat, K, Normalize, QNorm, NProbe,
                             IS[S], Scan, Scratch, PerShard[S]);
          Results[I] = mergeTopK(Shards, PerShard, K);
        }
      },
      Threads);
  return Results;
}

std::vector<ServiceHit> IndexSnapshot::queryApprox(const KernelProfile &Query,
                                                   size_t K, bool Normalize,
                                                   size_t NProbe,
                                                   size_t Threads) const {
  if (K == 0 || Shards.empty())
    return {};
  const FlatProfile Flat(Query);
  const double QNorm = Normalize ? Flat.Norm : 1.0;
  std::vector<std::vector<ShardHit>> PerShard(Shards.size());
  parallelFor(
      Shards.size(),
      [&](size_t S) {
        InvertedScratch IS;
        simd::ExactScan Scan;
        std::vector<ShardHit> Scratch;
        scoreShardApprox(*Shards[S], Flat, K, Normalize, QNorm, NProbe, IS,
                         Scan, Scratch, PerShard[S]);
      },
      Threads);
  return mergeTopK(Shards, PerShard, K);
}

size_t IndexSnapshot::routedShardCount() const {
  size_t Count = 0;
  for (const std::shared_ptr<const detail::IndexShard> &S : Shards)
    if (S->Routing && !S->Segments.empty() &&
        S->Segments[0] == S->RoutedSegment)
      ++Count;
  return Count;
}

std::string IndexSnapshot::majorityLabel(const std::vector<ServiceHit> &Hits) {
  return detail::majorityVote(
      Hits.size(), [&](size_t I) -> const std::string & { return Hits[I].Label; });
}

//===----------------------------------------------------------------------===//
// Service: construction and publication
//===----------------------------------------------------------------------===//

IndexService::IndexService(std::string KernelName, IndexServiceOptions Opts)
    : KernelName(std::move(KernelName)), Options(Opts) {
  Options.Shards = std::max<size_t>(1, Options.Shards);
  Options.SealThreshold = std::max<size_t>(1, Options.SealThreshold);
  Shards.reserve(Options.Shards);
  for (size_t I = 0; I < Options.Shards; ++I) {
    Shards.push_back(std::make_unique<ShardState>());
    Shards.back()->Published.store(std::make_shared<const detail::IndexShard>());
  }
}

size_t IndexService::shardOf(const std::string &Name) const {
  return std::hash<std::string>{}(Name) % Shards.size();
}

size_t IndexService::shardOf(std::string_view Name) const {
  return std::hash<std::string_view>{}(Name) % Shards.size();
}

void IndexService::publishLocked(ShardState &Shard, size_t SealThreshold) {
  ShardWriter &W = Shard.Writer;
  const auto anyTomb = [](const std::vector<uint8_t> &Tombs) {
    return std::find(Tombs.begin(), Tombs.end(), uint8_t(1)) != Tombs.end();
  };
  if (W.Staging.size() >= SealThreshold) {
    // Seal by *moving* the staging arena — the whole point of the
    // cheap ProfileStore move: no entry is copied again after this.
    W.SealedTombs.push_back(
        anyTomb(W.StagingTombs)
            ? std::make_shared<const std::vector<uint8_t>>(
                  std::move(W.StagingTombs))
            : nullptr);
    W.Sealed.push_back(
        std::make_shared<const detail::IndexSegment>(std::move(W.Staging)));
    W.Staging = {};
    W.StagingTombs.clear();
  }
  auto Published = std::make_shared<detail::IndexShard>();
  Published->Segments = W.Sealed;
  Published->Tombstones = W.SealedTombs;
  if (W.Staging.size() > 0) {
    // The mutable tail is copied into the published shard; the copy is
    // bounded by the seal threshold, so per-add publish cost stays
    // O(threshold) regardless of shard size.
    Published->Segments.push_back(
        std::make_shared<const detail::IndexSegment>(W.Staging));
    Published->Tombstones.push_back(
        anyTomb(W.StagingTombs)
            ? std::make_shared<const std::vector<uint8_t>>(W.StagingTombs)
            : nullptr);
  }
  Published->EntryCount = W.EntryCount;
  Published->LiveCount = W.LiveCount;
  // Routing rides copy-on-write: publishes share the fitted
  // structures; readers decide applicability by segment identity.
  Published->Routing = W.Routing;
  Published->RoutedSegment = W.RoutedSegment;
  Shard.Published.store(
      std::shared_ptr<const detail::IndexShard>(std::move(Published)));
}

IndexSnapshot IndexService::snapshot() const {
  IndexSnapshot Snap;
  Snap.Shards.reserve(Shards.size());
  for (const std::unique_ptr<ShardState> &S : Shards)
    Snap.Shards.push_back(S->Published.load());
  return Snap;
}

//===----------------------------------------------------------------------===//
// Service: writers
//===----------------------------------------------------------------------===//

void IndexService::add(std::string Name, std::string Label,
                       const KernelProfile &Profile) {
  ShardState &Shard = *Shards[shardOf(Name)];
  std::lock_guard<std::mutex> Lock(Shard.WriterMutex);
  ShardWriter &W = Shard.Writer;
  W.Staging.Store.append(Profile);
  W.Staging.Names.push_back(std::move(Name));
  W.Staging.Labels.push_back(std::move(Label));
  W.StagingTombs.push_back(0);
  ++W.LiveCount;
  ++W.EntryCount;
  publishLocked(Shard, Options.SealThreshold);
}

size_t IndexService::removeFromShard(ShardState &Shard,
                                     const std::string &Name,
                                     size_t SealThreshold) {
  std::lock_guard<std::mutex> Lock(Shard.WriterMutex);
  ShardWriter &W = Shard.Writer;
  size_t Removed = 0;
  for (size_t S = 0; S < W.Sealed.size(); ++S) {
    const detail::IndexSegment &Seg = *W.Sealed[S];
    // Sealed segments are shared with outstanding snapshots, so the
    // tombstone bitmap is copied on the first hit (copy-on-write) and
    // mutated privately; the segment arena itself is never touched.
    std::shared_ptr<std::vector<uint8_t>> Copy;
    for (size_t I = 0; I < Seg.size(); ++I) {
      if (Seg.Names[I] != Name)
        continue;
      const std::vector<uint8_t> *Current =
          Copy ? Copy.get() : W.SealedTombs[S].get();
      if (Current && (*Current)[I])
        continue;
      if (!Copy)
        Copy = W.SealedTombs[S]
                   ? std::make_shared<std::vector<uint8_t>>(*W.SealedTombs[S])
                   : std::make_shared<std::vector<uint8_t>>(Seg.size(), 0);
      (*Copy)[I] = 1;
      ++Removed;
    }
    if (Copy)
      W.SealedTombs[S] = std::move(Copy);
  }
  for (size_t I = 0; I < W.Staging.size(); ++I) {
    if (W.Staging.Names[I] == Name && !W.StagingTombs[I]) {
      W.StagingTombs[I] = 1;
      ++Removed;
    }
  }
  if (Removed) {
    W.LiveCount -= Removed;
    publishLocked(Shard, SealThreshold);
  }
  return Removed;
}

size_t IndexService::remove(const std::string &Name) {
  // add() routes by name hash, so under strict routing the home shard
  // is the only one that can hold the name. A foreign cache layout
  // (detected at restore) voids that invariant, and every shard must
  // be swept — accumulating, since the same name may sit in several.
  if (StrictRouting)
    return removeFromShard(*Shards[shardOf(Name)], Name,
                           Options.SealThreshold);
  size_t Removed = 0;
  for (const std::unique_ptr<ShardState> &Shard : Shards)
    Removed += removeFromShard(*Shard, Name, Options.SealThreshold);
  return Removed;
}

void IndexService::compactShardLocked(ShardWriter &W) {
  const auto forEachLive = [&](auto Fn) {
    forEachLiveEntry(W.Sealed, W.SealedTombs, Fn);
    for (size_t I = 0; I < W.Staging.size(); ++I)
      if (!W.StagingTombs[I])
        Fn(W.Staging, I);
  };
  size_t LiveEntries = 0;
  forEachLive([&](const detail::IndexSegment &Seg, size_t I) {
    LiveEntries += Seg.Store.view(I).Size;
  });
  detail::IndexSegment Merged;
  Merged.Store.reserve(W.LiveCount, LiveEntries);
  Merged.Names.reserve(W.LiveCount);
  Merged.Labels.reserve(W.LiveCount);
  forEachLive([&](const detail::IndexSegment &Seg, size_t I) {
    Merged.Store.appendFrom(Seg.Store, I);
    Merged.Names.push_back(Seg.Names[I]);
    Merged.Labels.push_back(Seg.Labels[I]);
  });
  W.Sealed.clear();
  W.SealedTombs.clear();
  W.EntryCount = W.LiveCount = Merged.size();
  if (Merged.size() > 0) {
    W.Sealed.push_back(
        std::make_shared<const detail::IndexSegment>(std::move(Merged)));
    W.SealedTombs.push_back(nullptr);
  }
  W.Staging = {};
  W.StagingTombs.clear();
  // The fit covered the pre-compaction arena; drop it rather than
  // serve a router whose ids no longer mean anything.
  W.Routing.reset();
  W.RoutedSegment.reset();
}

void IndexService::compact(size_t Threads) {
  parallelFor(
      Shards.size(),
      [&](size_t ShardIdx) {
        ShardState &Shard = *Shards[ShardIdx];
        std::lock_guard<std::mutex> Lock(Shard.WriterMutex);
        compactShardLocked(Shard.Writer);
        publishLocked(Shard, Options.SealThreshold);
      },
      Threads);
}

void IndexService::rebuildRouting(const RoutingOptions &RoutingOpts,
                                  size_t Threads) {
  // Shards are processed sequentially so the k-means fit inside each
  // can use the thread budget without nesting parallel loops.
  for (const std::unique_ptr<ShardState> &ShardPtr : Shards) {
    ShardState &Shard = *ShardPtr;
    std::lock_guard<std::mutex> Lock(Shard.WriterMutex);
    ShardWriter &W = Shard.Writer;
    compactShardLocked(W);
    if (!W.Sealed.empty()) {
      auto R = std::make_shared<detail::IndexRouting>();
      R->Options = RoutingOpts;
      const ProfileStore &Store = W.Sealed[0]->Store;
      R->Router = ClusterRouter::build(Store, RoutingOpts.Cluster, Threads);
      R->Inverted =
          InvertedIndex::build(Store, R->Router.assignments(),
                               R->Router.numCentroids(),
                               RoutingOpts.MaxDocFrequency);
      // Segment stores are shared-const, so the sidecar is built
      // standalone and owned by the routing structure.
      if (RoutingOpts.RerankBudget > 0 && RoutingOpts.QuantizedShortlist)
        R->Quant =
            std::make_shared<const QuantizedStore>(QuantizedStore::build(Store));
      W.Routing = std::move(R);
      W.RoutedSegment = W.Sealed[0];
    }
    publishLocked(Shard, Options.SealThreshold);
  }
}

//===----------------------------------------------------------------------===//
// Service: routing persistence
//===----------------------------------------------------------------------===//

/// "<Dir>/shard-NNN.route", numbered like workloads/CorpusIO's
/// "shard-NNN.kpc" so a routed shard's sidecar sits beside its cache.
static std::string shardRoutePath(const std::string &Dir, size_t Shard) {
  std::string Number = std::to_string(Shard);
  while (Number.size() < 3)
    Number.insert(Number.begin(), '0');
  return Dir + "/shard-" + Number + ".route";
}

Status IndexService::saveShardRouting(const std::string &Dir) const {
  IndexSnapshot Snap = snapshot();
  for (size_t S = 0; S < Snap.Shards.size(); ++S) {
    const detail::IndexShard &Shard = *Snap.Shards[S];
    const std::string Path = shardRoutePath(Dir, S);
    const bool Routed = Shard.Routing && !Shard.Segments.empty() &&
                        Shard.Segments[0] == Shard.RoutedSegment;
    if (Routed) {
      if (Status W = writeRoutingFile(Shard.Routing->Router,
                                      Shard.Routing->Options, Path);
          !W.ok())
        return W;
      continue;
    }
    // Unrouted shard: sweep a stale sidecar so a later restore cannot
    // pair it with contents it was not fitted on.
    std::error_code Ec;
    std::filesystem::remove(Path, Ec);
  }
  return Status();
}

Status IndexService::loadShardRouting(const std::string &Dir) {
  for (size_t S = 0; S < Shards.size(); ++S) {
    const std::string Path = shardRoutePath(Dir, S);
    std::error_code Ec;
    if (!std::filesystem::exists(Path, Ec))
      continue;
    Expected<RoutingCache> Route = readRoutingFile(Path);
    if (!Route)
      return Status::error(Route.message());
    RoutingCache Loaded = Route.take();
    ShardState &Shard = *Shards[S];
    std::lock_guard<std::mutex> Lock(Shard.WriterMutex);
    ShardWriter &W = Shard.Writer;
    if (W.Routing) {
      // The shard is already routed (typically embedded arenas from a
      // v4 flat image). A sidecar carrying the same fit is a harmless
      // leftover of the pre-image layout — keep the embedded tier and
      // skip the posting rebuild. A *disagreeing* sidecar means two
      // generations of routing point at the same shard; refuse rather
      // than silently pick one.
      if (Loaded.Router.numProfiles() == W.Routing->Router.numProfiles() &&
          Loaded.Router.assignments() == W.Routing->Router.assignments())
        continue;
      return Status::error("shard " + std::to_string(S) +
                           " carries embedded routing that disagrees with "
                           "sidecar '" + Path +
                           "'; remove the stale sidecar or re-save");
    }
    if (W.Sealed.empty() || Loaded.Router.numProfiles() != W.Sealed[0]->size())
      return Status::error("routing sidecar '" + Path +
                           "' does not match shard " + std::to_string(S) +
                           "'s first segment");
    auto R = std::make_shared<detail::IndexRouting>();
    R->Options = Loaded.Options;
    R->Router = std::move(Loaded.Router);
    R->Inverted = InvertedIndex::build(W.Sealed[0]->Store,
                                       R->Router.assignments(),
                                       R->Router.numCentroids(),
                                       R->Options.MaxDocFrequency);
    if (R->Options.RerankBudget > 0 && R->Options.QuantizedShortlist)
      R->Quant = std::make_shared<const QuantizedStore>(
          QuantizedStore::build(W.Sealed[0]->Store));
    W.Routing = std::move(R);
    W.RoutedSegment = W.Sealed[0];
    publishLocked(Shard, Options.SealThreshold);
  }
  return Status();
}

//===----------------------------------------------------------------------===//
// Service: bulk import/export
//===----------------------------------------------------------------------===//

IndexService IndexService::fromIndex(const ProfileIndex &Index,
                                     IndexServiceOptions Opts) {
  IndexService Service(Index.kernelName(), Opts);
  // A fresh service has no concurrent readers or writers yet, so the
  // entries are staged shard by shard and published once per shard;
  // staging exceeding the seal threshold is moved (not copied) into a
  // sealed segment by publishLocked.
  for (size_t I = 0; I < Index.size(); ++I) {
    ShardWriter &W = Service.Shards[Service.shardOf(Index.name(I))]->Writer;
    W.Staging.Store.appendFrom(Index.store(), I);
    W.Staging.Names.push_back(Index.name(I));
    W.Staging.Labels.push_back(Index.label(I));
    W.StagingTombs.push_back(0);
    ++W.LiveCount;
    ++W.EntryCount;
  }
  for (const std::unique_ptr<ShardState> &Shard : Service.Shards) {
    std::lock_guard<std::mutex> Lock(Shard->WriterMutex);
    publishLocked(*Shard, Service.Options.SealThreshold);
  }
  return Service;
}

Expected<IndexService>
IndexService::fromShardCaches(std::vector<ProfileStoreCache> Caches,
                              IndexServiceOptions Opts) {
  using Result = Expected<IndexService>;
  if (Caches.empty())
    return Result::error("no shard caches to restore a service from");
  for (size_t S = 0; S < Caches.size(); ++S) {
    if (Caches[S].KernelName != Caches[0].KernelName)
      return Result::error("shard cache " + std::to_string(S) +
                           " was built by kernel '" + Caches[S].KernelName +
                           "', shard 0 by '" + Caches[0].KernelName + "'");
    if (Caches[S].Names.size() != Caches[S].Store.size() ||
        Caches[S].Labels.size() != Caches[S].Store.size())
      return Result::error("shard cache " + std::to_string(S) +
                           " has inconsistent name/label/profile counts");
  }
  Opts.Shards = Caches.size();
  IndexService Service(Caches[0].KernelName, Opts);
  for (size_t S = 0; S < Caches.size(); ++S) {
    ShardWriter &W = Service.Shards[S]->Writer;
    auto Seg = std::make_shared<detail::IndexSegment>();
    Seg->Store = std::move(Caches[S].Store);
    Seg->Names = std::move(Caches[S].Names);
    Seg->Labels = std::move(Caches[S].Labels);
    // Verify the add() routing invariant entry by entry: caches from
    // toShardCaches always satisfy it, but a hand-assembled layout may
    // hold off-route names, and remove() must know to sweep for them.
    // The string_view hash agrees with the string hash, so a mapped
    // name column is checked without materializing any string.
    for (size_t I = 0; I < Seg->Names.size(); ++I)
      if (Service.shardOf(Seg->Names[I]) != S)
        Service.StrictRouting = false;
    W.EntryCount = W.LiveCount = Seg->size();
    W.Sealed.push_back(Seg);
    W.SealedTombs.push_back(nullptr);
    // A cache carrying flat routing arenas (the v4 flat image's CSR
    // sections, or a live export from toShardCaches) restores its
    // routed tier by *view*: the router and the posting lists alias
    // the arenas directly — no k-means refit, no posting rebuild.
    // Holding the RoutingArenas struct itself keeps both the views
    // and their backing mapping alive.
    if (std::shared_ptr<const RoutingArenas> A = Caches[S].Routing) {
      if (A->Covered != Seg->size())
        return Result::error("shard cache " + std::to_string(S) +
                             "'s embedded routing does not match its "
                             "profile count");
      auto R = std::make_shared<detail::IndexRouting>();
      R->Options.MaxDocFrequency = A->MaxDocFrequency;
      R->Options.RerankBudget = A->RerankBudget;
      R->Options.DefaultNProbe = A->DefaultNProbe;
      R->Options.QuantizedShortlist = A->QuantizedShortlist;
      R->Options.Cluster.NumCentroids = A->ClusterNumCentroids;
      R->Options.Cluster.MaxIterations = A->ClusterMaxIterations;
      R->Options.Cluster.TrainingSample = A->ClusterTrainingSample;
      R->Options.Cluster.Seed = A->ClusterSeed;
      std::shared_ptr<const void> Keep = A;
      R->Router = ClusterRouter::fromArenas(A->Centroids, A->Assignments,
                                            Keep);
      R->Inverted = InvertedIndex::fromArenas(
          A->Covered, A->PrunedFeatures, A->FeatureHashes, A->ClusterBegin,
          A->PostingBegin, A->PostingIds, A->PostingValues, Keep);
      if (R->Options.RerankBudget > 0 && R->Options.QuantizedShortlist) {
        R->Quant = Seg->Store.quantizedShared();
        if (!R->Quant)
          R->Quant = std::make_shared<const QuantizedStore>(
              QuantizedStore::build(Seg->Store));
      }
      W.Routing = std::move(R);
      W.RoutedSegment = Seg;
    } else if (!Caches[S].RouteBlob.empty()) {
      // Legacy carrier: the opaque "KASTRTNG" sidecar bytes (the ROUTE
      // section of a sectionless-v3 flat image) restore exactly as
      // loadShardRouting does from a "shard-NNN.route" file — the
      // fitted router comes off the wire, and the inverted index
      // rebuilds deterministically. The quantized shortlist store
      // reuses the image's sidecar when the store carries one
      // (zero-copy) instead of requantizing.
      std::istringstream In(Caches[S].RouteBlob);
      Expected<RoutingCache> Route = readRouting(In);
      if (!Route)
        return Result::error("shard cache " + std::to_string(S) +
                             ": " + Route.message());
      RoutingCache Loaded = Route.take();
      if (Loaded.Router.numProfiles() != Seg->size())
        return Result::error("shard cache " + std::to_string(S) +
                             "'s embedded routing sidecar does not match its "
                             "profile count");
      auto R = std::make_shared<detail::IndexRouting>();
      R->Options = Loaded.Options;
      R->Router = std::move(Loaded.Router);
      R->Inverted = InvertedIndex::build(Seg->Store, R->Router.assignments(),
                                         R->Router.numCentroids(),
                                         R->Options.MaxDocFrequency);
      if (R->Options.RerankBudget > 0 && R->Options.QuantizedShortlist) {
        R->Quant = Seg->Store.quantizedShared();
        if (!R->Quant)
          R->Quant = std::make_shared<const QuantizedStore>(
              QuantizedStore::build(Seg->Store));
      }
      W.Routing = std::move(R);
      W.RoutedSegment = Seg;
    }
    std::lock_guard<std::mutex> Lock(Service.Shards[S]->WriterMutex);
    publishLocked(*Service.Shards[S], Service.Options.SealThreshold);
  }
  return Service;
}

std::vector<ProfileStoreCache> IndexService::toShardCaches() const {
  // Export from the published snapshot: consistent per shard, and no
  // writer lock is held while the arenas are copied out.
  IndexSnapshot Snap = snapshot();
  std::vector<ProfileStoreCache> Caches(Snap.Shards.size());
  for (size_t S = 0; S < Snap.Shards.size(); ++S) {
    const detail::IndexShard &Shard = *Snap.Shards[S];
    ProfileStoreCache &Cache = Caches[S];
    Cache.KernelName = KernelName;
    size_t LiveEntries = 0;
    forEachLiveEntry(Shard.Segments, Shard.Tombstones,
                     [&](const detail::IndexSegment &Seg, size_t I) {
                       LiveEntries += Seg.Store.view(I).Size;
                     });
    Cache.Store.reserve(Shard.LiveCount, LiveEntries);
    Cache.Names.reserve(Shard.LiveCount);
    Cache.Labels.reserve(Shard.LiveCount);
    forEachLiveEntry(Shard.Segments, Shard.Tombstones,
                     [&](const detail::IndexSegment &Seg, size_t I) {
                       Cache.Store.appendFrom(Seg.Store, I);
                       Cache.Names.push_back(Seg.Names[I]);
                       Cache.Labels.push_back(Seg.Labels[I]);
                     });
    // A shard whose whole published state is its one routed segment
    // (no staging tail, no tombstones) exports bit-identically to that
    // segment, so the fitted router and the quantized shortlist store
    // stay valid for the exported arena: export the routing tier as
    // flat arena views (what core/FlatImage serializes as the v4 CSR
    // sections) and hang the quantized sidecar on the exported store,
    // so fromShardCaches restores the routed, quantized tier with no
    // refit, no posting rebuild, and no requantize. Any other shape
    // leaves Routing null — the router's assignments would not line
    // up with the exported profile numbering.
    const bool ExactRoutedCopy =
        Shard.Routing && Shard.Segments.size() == 1 &&
        Shard.Segments[0] == Shard.RoutedSegment && !Shard.Tombstones[0];
    if (ExactRoutedCopy) {
      const detail::IndexRouting &R = *Shard.Routing;
      auto Arenas = std::make_shared<RoutingArenas>();
      Arenas->MaxDocFrequency = R.Options.MaxDocFrequency;
      Arenas->RerankBudget = R.Options.RerankBudget;
      Arenas->DefaultNProbe = R.Options.DefaultNProbe;
      Arenas->QuantizedShortlist = R.Options.QuantizedShortlist;
      Arenas->ClusterNumCentroids = R.Options.Cluster.NumCentroids;
      Arenas->ClusterMaxIterations = R.Options.Cluster.MaxIterations;
      Arenas->ClusterTrainingSample = R.Options.Cluster.TrainingSample;
      Arenas->ClusterSeed = R.Options.Cluster.Seed;
      Arenas->Covered = R.covered();
      Arenas->PrunedFeatures = R.Inverted.prunedFeatureCount();
      Arenas->Assignments = R.Router.assignments();
      Arenas->Centroids = R.Router.centroids();
      Arenas->FeatureHashes = R.Inverted.featureHashes();
      Arenas->ClusterBegin = R.Inverted.clusterBegin();
      Arenas->PostingBegin = R.Inverted.postingBegin();
      Arenas->PostingIds = R.Inverted.postingIds();
      Arenas->PostingValues = R.Inverted.postingValues();
      // The views alias the live routing structures (the centroid
      // store is a cheap copy — mapped centroids share, owned ones are
      // small); pinning the IndexRouting keeps every view valid for
      // the cache's lifetime, snapshots and compactions be damned.
      Arenas->Backing = std::shared_ptr<const void>(Shard.Routing);
      Cache.Routing = std::move(Arenas);
      if (Shard.Routing->Quant)
        Cache.Store.adoptQuantized(Shard.Routing->Quant);
    }
  }
  return Caches;
}
