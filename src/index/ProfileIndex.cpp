//===- index/ProfileIndex.cpp - Profile nearest-neighbor index -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "index/ProfileIndex.h"
#include "util/SimdDot.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <filesystem>
#include <thread>

using namespace kast;

ProfileIndex ProfileIndex::build(const ProfiledStringKernel &Kernel,
                                 const std::vector<WeightedString> &Strings,
                                 const std::vector<std::string> &Labels,
                                 size_t Threads) {
  assert((Labels.empty() || Labels.size() == Strings.size()) &&
         "label count mismatch");
  std::vector<KernelProfile> Profiles(Strings.size());
  parallelFor(
      Strings.size(),
      [&](size_t I) { Profiles[I] = Kernel.profile(Strings[I]); }, Threads);

  ProfileIndex Index(Kernel.name());
  Index.Store.appendAll(Profiles);
  for (size_t I = 0; I < Strings.size(); ++I) {
    Index.Names.push_back(Strings[I].name());
    Index.Labels.push_back(Labels.empty() ? "" : Labels[I]);
  }
  return Index;
}

ProfileIndex ProfileIndex::fromCache(ProfileCache Cache) {
  ProfileIndex Index(std::move(Cache.KernelName));
  for (ProfileRecord &R : Cache.Records)
    Index.add(std::move(R.Name), std::move(R.Label), R.Profile);
  return Index;
}

ProfileIndex ProfileIndex::fromStoreCache(ProfileStoreCache Cache) {
  ProfileIndex Index(std::move(Cache.KernelName));
  // The cache's columns may be lazy views over a mapped image;
  // ProfileIndex mutates its name/label lists (add()), so it
  // materializes them up front rather than holding views.
  Index.Names = Cache.Names.takeVector();
  Index.Labels = Cache.Labels.takeVector();
  Index.Store = std::move(Cache.Store);
  return Index;
}

void ProfileIndex::add(std::string Name, std::string Label,
                       const KernelProfile &Profile) {
  Store.append(Profile);
  Names.push_back(std::move(Name));
  Labels.push_back(std::move(Label));
}

/// The shared single-query kernel: flattens the query once (the dense
/// shape util/SimdDot streams), scores every entry into \p All
/// (resized, never reallocated once warm), then partial-sorts the top
/// K out. Callers own both scratches so batched queries can reuse
/// them. Flat.Norm is bit-identical to Query.norm(), and the
/// vectorized dot is bit-identical to the entry merge join, so
/// flattening changes nothing but the layout.
static std::vector<Neighbor> queryInto(const ProfileStore &Store,
                                       const KernelProfile &Query, size_t K,
                                       bool Normalize, FlatProfile &Flat,
                                       simd::ExactScan &Scan,
                                       std::vector<Neighbor> &All) {
  if (K == 0 || Store.empty())
    return {};
  const size_t N = Store.size();
  All.resize(N);
  Flat.assign(Query);
  Scan.assign(Flat.Hashes.data(), Flat.Values.data(), Flat.size());
  const double QueryNorm = Normalize ? Flat.Norm : 1.0;
  for (size_t I = 0; I < N; ++I) {
    const ProfileView V = Store.view(I);
    double Sim = Scan.dot(V.Hashes, V.Values, V.Size);
    if (Normalize) {
      double Denominator = QueryNorm * V.Norm;
      Sim = Denominator > 0.0 ? Sim / Denominator : 0.0;
    }
    All[I] = {I, Sim};
  }
  const size_t Take = std::min(K, N);
  std::partial_sort(All.begin(), All.begin() + Take, All.end(),
                    [](const Neighbor &L, const Neighbor &R) {
                      if (L.Similarity != R.Similarity)
                        return L.Similarity > R.Similarity;
                      return L.Index < R.Index;
                    });
  return {All.begin(), All.begin() + Take};
}

std::vector<Neighbor> ProfileIndex::query(const KernelProfile &Query,
                                          size_t K, bool Normalize) const {
  FlatProfile Flat;
  simd::ExactScan Scan;
  std::vector<Neighbor> Scratch;
  return queryInto(Store, Query, K, Normalize, Flat, Scan, Scratch);
}

std::vector<std::vector<Neighbor>>
ProfileIndex::queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
                         bool Normalize, size_t Threads) const {
  std::vector<std::vector<Neighbor>> Results(Queries.size());
  // Queries are strided across worker-count chunks so each chunk
  // allocates its O(N) candidate buffer once and reuses it for every
  // query it scores; the scratch is call-scoped (a thread_local would
  // pin index-sized buffers to caller threads for the process
  // lifetime). Query cost is uniform, so striding balances fine.
  const size_t Workers = Threads != 0 ? Threads
                         : std::max<size_t>(
                               1, std::thread::hardware_concurrency());
  const size_t Chunks = std::min(Queries.size(), Workers);
  parallelFor(
      Chunks,
      [&](size_t Chunk) {
        FlatProfile Flat;
        simd::ExactScan Scan;
        std::vector<Neighbor> Scratch;
        for (size_t I = Chunk; I < Queries.size(); I += Chunks)
          Results[I] =
              queryInto(Store, Queries[I], K, Normalize, Flat, Scan, Scratch);
      },
      Threads);
  return Results;
}

/// The shared approximate-query kernel. Candidate generation probes
/// the routed posting segments; the unrouted tail [covered, N) always
/// joins the candidate set. Survivors get *exact* merge-join scores —
/// the same arithmetic queryInto runs — so a candidate's similarity
/// is bit-identical to its exact-scan similarity. Non-candidates
/// share no surviving feature with the query inside the probed
/// clusters; exhaustively (all clusters, no df-pruning) their exact
/// similarity is exactly +0.0, so padding the top-k with unmarked ids
/// at 0.0 in ascending-id order reproduces the exact scan's result
/// bit-for-bit, tie-break order included: the (K+1)-th ranked
/// candidate is strictly dominated by K candidates under the (sim
/// desc, id asc) total order, so merging only the top-K candidates
/// with the zero stream loses nothing.
static std::vector<Neighbor>
approxQueryInto(const ProfileStore &Store, const detail::IndexRouting &Routing,
                const KernelProfile &Query, size_t K, bool Normalize,
                size_t NProbe, InvertedScratch &Scratch) {
  const size_t N = Store.size();
  if (K == 0 || N == 0)
    return {};
  const size_t Covered = Routing.covered();
  const size_t Probe = NProbe != 0 ? NProbe : Routing.Options.DefaultNProbe;
  FlatProfile &Flat = Scratch.Query;
  Flat.assign(Query);
  Routing.Router.route(Flat, Probe, Scratch.RouteScored, Scratch.Probes);
  Scratch.begin(Covered);
  Routing.Inverted.collectCandidates(Flat, Scratch.Probes, Scratch);

  // Budget-prune before paying for exact dots. With a quantized
  // sidecar the shortlist is selected by the int8 approximate dot over
  // each candidate's *full* profile (off by at most Scale/2 · L1(q),
  // see QuantizedStore); otherwise by the accumulated partial score,
  // which only saw features surviving df-pruning in probed clusters.
  // Dropped candidates stay marked, so they neither re-rank nor
  // reappear in the zero pad — they are simply not returned.
  const size_t Budget = Routing.Options.RerankBudget;
  if (Budget > 0 && Scratch.Candidates.size() > Budget) {
    if (const QuantizedStore *Quant = Routing.Quant.get()) {
      for (uint32_t Id : Scratch.Candidates) {
        const ProfileView V = Store.view(Id);
        const QuantizedStore::View QV = Quant->view(Id);
        double Sim =
            simd::dotQuantized(Flat.Hashes.data(), Flat.Values.data(),
                               Flat.size(), V.Hashes, QV.Values, QV.Size,
                               QV.Scale);
        // The query norm is a common positive factor; dividing by the
        // candidate norm alone already ranks by cosine.
        if (Normalize)
          Sim = V.Norm > 0.0 ? Sim / V.Norm : 0.0;
        Scratch.Acc[Id] = Sim;
      }
    }
    std::partial_sort(Scratch.Candidates.begin(),
                      Scratch.Candidates.begin() + Budget,
                      Scratch.Candidates.end(),
                      [&](uint32_t L, uint32_t R) {
                        if (Scratch.Acc[L] != Scratch.Acc[R])
                          return Scratch.Acc[L] > Scratch.Acc[R];
                        return L < R;
                      });
    Scratch.Candidates.resize(Budget);
  }

  const double QueryNorm = Normalize ? Flat.Norm : 1.0;
  Scratch.Scan.assign(Flat.Hashes.data(), Flat.Values.data(), Flat.size());
  const auto Score = [&](size_t I) {
    const ProfileView V = Store.view(I);
    double Sim = Scratch.Scan.dot(V.Hashes, V.Values, V.Size);
    if (Normalize) {
      double Denominator = QueryNorm * V.Norm;
      Sim = Denominator > 0.0 ? Sim / Denominator : 0.0;
    }
    return Sim;
  };

  std::vector<Neighbor> Scored;
  Scored.reserve(Scratch.Candidates.size() + (N - Covered));
  for (uint32_t Id : Scratch.Candidates)
    Scored.push_back({Id, Score(Id)});
  for (size_t I = Covered; I < N; ++I)
    Scored.push_back({I, Score(I)});
  const size_t Take = std::min(K, Scored.size());
  std::partial_sort(Scored.begin(), Scored.begin() + Take, Scored.end(),
                    [](const Neighbor &L, const Neighbor &R) {
                      if (L.Similarity != R.Similarity)
                        return L.Similarity > R.Similarity;
                      return L.Index < R.Index;
                    });
  Scored.resize(Take);

  // Fast path: K scored entries all strictly above zero — no unmarked
  // id can displace or interleave with them.
  if (Scored.size() == K && Scored.back().Similarity > 0.0)
    return Scored;

  // Merge the ranked survivors with the zero stream (unmarked covered
  // ids, ascending, similarity exactly +0.0 — what the exact scan
  // computes for a profile sharing no feature with the query).
  std::vector<Neighbor> Out;
  Out.reserve(std::min(K, N));
  size_t Zero = 0;
  const auto AdvanceZero = [&] {
    while (Zero < Covered && Scratch.marked(Zero))
      ++Zero;
  };
  AdvanceZero();
  size_t Next = 0;
  while (Out.size() < K) {
    const bool HaveScored = Next < Scored.size();
    const bool HaveZero = Zero < Covered;
    if (!HaveScored && !HaveZero)
      break;
    bool TakeScored;
    if (!HaveZero) {
      TakeScored = true;
    } else if (!HaveScored) {
      TakeScored = false;
    } else {
      const Neighbor &C = Scored[Next];
      TakeScored =
          C.Similarity > 0.0 || (C.Similarity == 0.0 && C.Index < Zero);
    }
    if (TakeScored) {
      Out.push_back(Scored[Next++]);
    } else {
      Out.push_back({Zero, 0.0});
      ++Zero;
      AdvanceZero();
    }
  }
  return Out;
}

void ProfileIndex::buildRouting(const RoutingOptions &Options, size_t Threads) {
  auto R = std::make_shared<detail::IndexRouting>();
  R->Options = Options;
  R->Router = ClusterRouter::build(Store, Options.Cluster, Threads);
  R->Inverted =
      InvertedIndex::build(Store, R->Router.assignments(),
                           R->Router.numCentroids(), Options.MaxDocFrequency);
  // The int8 scan tier only matters when a budget will prune: without
  // one every candidate gets the exact dot anyway.
  if (Options.RerankBudget > 0 && Options.QuantizedShortlist) {
    Store.buildQuantized();
    R->Quant = Store.quantizedShared();
  }
  Routing = std::move(R);
}

void ProfileIndex::clearRouting() { Routing.reset(); }

std::vector<Neighbor> ProfileIndex::queryApprox(const KernelProfile &Query,
                                                size_t K, bool Normalize,
                                                size_t NProbe) const {
  if (!Routing)
    return query(Query, K, Normalize);
  InvertedScratch Scratch;
  return approxQueryInto(Store, *Routing, Query, K, Normalize, NProbe,
                         Scratch);
}

std::vector<std::vector<Neighbor>>
ProfileIndex::queryBatchApprox(const std::vector<KernelProfile> &Queries,
                               size_t K, bool Normalize, size_t NProbe,
                               size_t Threads) const {
  if (!Routing)
    return queryBatch(Queries, K, Normalize, Threads);
  std::vector<std::vector<Neighbor>> Results(Queries.size());
  // Same strided chunking as queryBatch: one epoch-versioned scratch
  // per chunk, reused across that chunk's queries. Each query fully
  // re-initializes its view of the scratch (epoch bump), so results
  // are independent of chunk count and thread count.
  const size_t Workers = Threads != 0 ? Threads
                         : std::max<size_t>(
                               1, std::thread::hardware_concurrency());
  const size_t Chunks = std::min(Queries.size(), Workers);
  parallelFor(
      Chunks,
      [&](size_t Chunk) {
        InvertedScratch Scratch;
        for (size_t I = Chunk; I < Queries.size(); I += Chunks)
          Results[I] = approxQueryInto(Store, *Routing, Queries[I], K,
                                       Normalize, NProbe, Scratch);
      },
      Threads);
  return Results;
}

std::string
ProfileIndex::majorityLabel(const std::vector<Neighbor> &Neighbors) const {
  // Neighbors arrive most-similar first; majorityVote's first-seen
  // tie-break therefore lands on the nearer neighbor's label.
  return detail::majorityVote(
      Neighbors.size(),
      [&](size_t I) -> const std::string & { return Labels[Neighbors[I].Index]; });
}

ProfileCache ProfileIndex::toCache() const {
  ProfileCache Cache;
  Cache.KernelName = KernelName;
  Cache.Records.reserve(size());
  for (size_t I = 0; I < size(); ++I)
    Cache.Records.push_back({Names[I], Labels[I], Store.materialize(I)});
  return Cache;
}

Status ProfileIndex::save(const std::string &Path) const {
  // v2 block layout straight from the arena: the three arrays go out
  // as contiguous blobs, no per-profile materialization or copy.
  Status S = writeProfileStoreCacheFile(KernelName, Names, Labels, Store, Path);
  if (!S.ok())
    return S;
  const std::string RoutePath = Path + ".route";
  if (Routing)
    return writeRoutingFile(Routing->Router, Routing->Options, RoutePath);
  // No routing: drop any stale sidecar so a later load cannot pair it
  // with contents it was not fitted on.
  std::error_code Ec;
  std::filesystem::remove(RoutePath, Ec);
  return Status();
}

Expected<ProfileIndex> ProfileIndex::load(const std::string &Path) {
  Expected<ProfileStoreCache> Cache = readProfileStoreCacheFile(Path);
  if (!Cache)
    return Expected<ProfileIndex>::error(Cache.message());
  ProfileIndex Index = fromStoreCache(Cache.take());
  const std::string RoutePath = Path + ".route";
  std::error_code Ec;
  if (!std::filesystem::exists(RoutePath, Ec))
    return Index;
  Expected<RoutingCache> Route = readRoutingFile(RoutePath);
  if (!Route)
    return Expected<ProfileIndex>::error(Route.message());
  RoutingCache Loaded = Route.take();
  if (Loaded.Router.numProfiles() > Index.size())
    return Expected<ProfileIndex>::error(
        "routing sidecar covers more profiles than the cache: " + RoutePath);
  auto R = std::make_shared<detail::IndexRouting>();
  R->Options = Loaded.Options;
  R->Router = std::move(Loaded.Router);
  // The posting lists are a pure function of (arena prefix,
  // assignments, df threshold); rebuilding reproduces the saved
  // index's tier exactly, so only the router is ever serialized.
  R->Inverted =
      InvertedIndex::build(Index.Store, R->Router.assignments(),
                           R->Router.numCentroids(),
                           R->Options.MaxDocFrequency);
  // Like the posting lists, the quantized sidecar is a pure function
  // of the arena — rebuilt, never persisted.
  if (R->Options.RerankBudget > 0 && R->Options.QuantizedShortlist) {
    Index.Store.buildQuantized();
    R->Quant = Index.Store.quantizedShared();
  }
  Index.Routing = std::move(R);
  return Index;
}
