//===- index/ProfileIndex.cpp - Profile nearest-neighbor index -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "index/ProfileIndex.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <thread>

using namespace kast;

ProfileIndex ProfileIndex::build(const ProfiledStringKernel &Kernel,
                                 const std::vector<WeightedString> &Strings,
                                 const std::vector<std::string> &Labels,
                                 size_t Threads) {
  assert((Labels.empty() || Labels.size() == Strings.size()) &&
         "label count mismatch");
  std::vector<KernelProfile> Profiles(Strings.size());
  parallelFor(
      Strings.size(),
      [&](size_t I) { Profiles[I] = Kernel.profile(Strings[I]); }, Threads);

  ProfileIndex Index(Kernel.name());
  Index.Store.appendAll(Profiles);
  for (size_t I = 0; I < Strings.size(); ++I) {
    Index.Names.push_back(Strings[I].name());
    Index.Labels.push_back(Labels.empty() ? "" : Labels[I]);
  }
  return Index;
}

ProfileIndex ProfileIndex::fromCache(ProfileCache Cache) {
  ProfileIndex Index(std::move(Cache.KernelName));
  for (ProfileRecord &R : Cache.Records)
    Index.add(std::move(R.Name), std::move(R.Label), R.Profile);
  return Index;
}

ProfileIndex ProfileIndex::fromStoreCache(ProfileStoreCache Cache) {
  ProfileIndex Index(std::move(Cache.KernelName));
  Index.Names = std::move(Cache.Names);
  Index.Labels = std::move(Cache.Labels);
  Index.Store = std::move(Cache.Store);
  return Index;
}

void ProfileIndex::add(std::string Name, std::string Label,
                       const KernelProfile &Profile) {
  Store.append(Profile);
  Names.push_back(std::move(Name));
  Labels.push_back(std::move(Label));
}

/// The shared single-query kernel: scores every entry into \p All
/// (resized, never reallocated once warm), then partial-sorts the top
/// K out. Callers own the scratch so batched queries can reuse it.
static std::vector<Neighbor> queryInto(const ProfileStore &Store,
                                       const KernelProfile &Query, size_t K,
                                       bool Normalize,
                                       std::vector<Neighbor> &All) {
  if (K == 0 || Store.empty())
    return {};
  const size_t N = Store.size();
  All.resize(N);
  const double QueryNorm = Normalize ? Query.norm() : 1.0;
  for (size_t I = 0; I < N; ++I) {
    const ProfileView V = Store.view(I);
    double Sim = dot(V, Query);
    if (Normalize) {
      double Denominator = QueryNorm * V.Norm;
      Sim = Denominator > 0.0 ? Sim / Denominator : 0.0;
    }
    All[I] = {I, Sim};
  }
  const size_t Take = std::min(K, N);
  std::partial_sort(All.begin(), All.begin() + Take, All.end(),
                    [](const Neighbor &L, const Neighbor &R) {
                      if (L.Similarity != R.Similarity)
                        return L.Similarity > R.Similarity;
                      return L.Index < R.Index;
                    });
  return {All.begin(), All.begin() + Take};
}

std::vector<Neighbor> ProfileIndex::query(const KernelProfile &Query,
                                          size_t K, bool Normalize) const {
  std::vector<Neighbor> Scratch;
  return queryInto(Store, Query, K, Normalize, Scratch);
}

std::vector<std::vector<Neighbor>>
ProfileIndex::queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
                         bool Normalize, size_t Threads) const {
  std::vector<std::vector<Neighbor>> Results(Queries.size());
  // Queries are strided across worker-count chunks so each chunk
  // allocates its O(N) candidate buffer once and reuses it for every
  // query it scores; the scratch is call-scoped (a thread_local would
  // pin index-sized buffers to caller threads for the process
  // lifetime). Query cost is uniform, so striding balances fine.
  const size_t Workers = Threads != 0 ? Threads
                         : std::max<size_t>(
                               1, std::thread::hardware_concurrency());
  const size_t Chunks = std::min(Queries.size(), Workers);
  parallelFor(
      Chunks,
      [&](size_t Chunk) {
        std::vector<Neighbor> Scratch;
        for (size_t I = Chunk; I < Queries.size(); I += Chunks)
          Results[I] = queryInto(Store, Queries[I], K, Normalize, Scratch);
      },
      Threads);
  return Results;
}

std::string
ProfileIndex::majorityLabel(const std::vector<Neighbor> &Neighbors) const {
  // Neighbors arrive most-similar first; majorityVote's first-seen
  // tie-break therefore lands on the nearer neighbor's label.
  return detail::majorityVote(
      Neighbors.size(),
      [&](size_t I) -> const std::string & { return Labels[Neighbors[I].Index]; });
}

ProfileCache ProfileIndex::toCache() const {
  ProfileCache Cache;
  Cache.KernelName = KernelName;
  Cache.Records.reserve(size());
  for (size_t I = 0; I < size(); ++I)
    Cache.Records.push_back({Names[I], Labels[I], Store.materialize(I)});
  return Cache;
}

Status ProfileIndex::save(const std::string &Path) const {
  // v2 block layout straight from the arena: the three arrays go out
  // as contiguous blobs, no per-profile materialization or copy.
  return writeProfileStoreCacheFile(KernelName, Names, Labels, Store, Path);
}

Expected<ProfileIndex> ProfileIndex::load(const std::string &Path) {
  Expected<ProfileStoreCache> Cache = readProfileStoreCacheFile(Path);
  if (!Cache)
    return Expected<ProfileIndex>::error(Cache.message());
  return fromStoreCache(Cache.take());
}
