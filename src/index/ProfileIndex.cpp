//===- index/ProfileIndex.cpp - Profile nearest-neighbor index -------------===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "index/ProfileIndex.h"
#include "util/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace kast;

ProfileIndex ProfileIndex::build(const ProfiledStringKernel &Kernel,
                                 const std::vector<WeightedString> &Strings,
                                 const std::vector<std::string> &Labels,
                                 size_t Threads) {
  assert((Labels.empty() || Labels.size() == Strings.size()) &&
         "label count mismatch");
  std::vector<KernelProfile> Profiles(Strings.size());
  parallelFor(
      Strings.size(),
      [&](size_t I) { Profiles[I] = Kernel.profile(Strings[I]); }, Threads);

  ProfileIndex Index(Kernel.name());
  for (size_t I = 0; I < Strings.size(); ++I)
    Index.add(Strings[I].name(), Labels.empty() ? "" : Labels[I],
              std::move(Profiles[I]));
  return Index;
}

ProfileIndex ProfileIndex::fromCache(ProfileCache Cache) {
  ProfileIndex Index(std::move(Cache.KernelName));
  for (ProfileRecord &R : Cache.Records)
    Index.add(std::move(R.Name), std::move(R.Label), std::move(R.Profile));
  return Index;
}

void ProfileIndex::add(std::string Name, std::string Label,
                       KernelProfile Profile) {
  Norms.push_back(std::sqrt(Profile.dot(Profile)));
  Names.push_back(std::move(Name));
  Labels.push_back(std::move(Label));
  Profiles.push_back(std::move(Profile));
}

std::vector<Neighbor> ProfileIndex::query(const KernelProfile &Query,
                                          size_t K, bool Normalize) const {
  std::vector<Neighbor> All;
  All.reserve(Profiles.size());
  const double QueryNorm =
      Normalize ? std::sqrt(Query.dot(Query)) : 1.0;
  for (size_t I = 0; I < Profiles.size(); ++I) {
    double Sim = Query.dot(Profiles[I]);
    if (Normalize) {
      double Denominator = QueryNorm * Norms[I];
      Sim = Denominator > 0.0 ? Sim / Denominator : 0.0;
    }
    All.push_back({I, Sim});
  }
  const size_t Take = std::min(K, All.size());
  std::partial_sort(All.begin(), All.begin() + Take, All.end(),
                    [](const Neighbor &L, const Neighbor &R) {
                      if (L.Similarity != R.Similarity)
                        return L.Similarity > R.Similarity;
                      return L.Index < R.Index;
                    });
  All.resize(Take);
  return All;
}

std::vector<std::vector<Neighbor>>
ProfileIndex::queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
                         bool Normalize, size_t Threads) const {
  std::vector<std::vector<Neighbor>> Results(Queries.size());
  parallelFor(
      Queries.size(),
      [&](size_t I) { Results[I] = query(Queries[I], K, Normalize); },
      Threads);
  return Results;
}

std::string
ProfileIndex::majorityLabel(const std::vector<Neighbor> &Neighbors) const {
  std::string Best;
  size_t BestCount = 0;
  // Neighbors arrive most-similar first, so scanning in order and
  // requiring a strictly greater count to displace the incumbent
  // breaks ties toward the nearer neighbor's label.
  for (const Neighbor &Hit : Neighbors) {
    const std::string &Label = Labels[Hit.Index];
    size_t Count = 0;
    for (const Neighbor &Other : Neighbors)
      if (Labels[Other.Index] == Label)
        ++Count;
    if (Count > BestCount) {
      BestCount = Count;
      Best = Label;
    }
  }
  return Best;
}

ProfileCache ProfileIndex::toCache() const {
  ProfileCache Cache;
  Cache.KernelName = KernelName;
  Cache.Records.reserve(size());
  for (size_t I = 0; I < size(); ++I)
    Cache.Records.push_back({Names[I], Labels[I], Profiles[I]});
  return Cache;
}

Status ProfileIndex::save(const std::string &Path) const {
  return writeProfileCacheFile(toCache(), Path);
}

Expected<ProfileIndex> ProfileIndex::load(const std::string &Path) {
  Expected<ProfileCache> Cache = readProfileCacheFile(Path);
  if (!Cache)
    return Expected<ProfileIndex>::error(Cache.message());
  return fromCache(Cache.take());
}
