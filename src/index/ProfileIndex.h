//===- index/ProfileIndex.h - Profile nearest-neighbor index ---*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retrieval over cached kernel profiles — the paper's "access patterns
/// as fingerprints" claim served directly. A ProfileIndex holds N
/// prepared (finalized) KernelProfiles with names, labels and cached
/// self-norms, and answers top-k nearest-neighbor queries by merge-join
/// dot products against the query profile. No Gram matrix is built:
/// one query costs O(N · dot) instead of the O(N² · dot) a full-matrix
/// detour would, and batched queries parallelize per query.
///
/// Indexes round-trip through the versioned binary profile cache
/// (core/ProfileSerializer), so a served corpus profiles each trace
/// exactly once — build, save(), and every later process load()s and
/// queries without touching a kernel.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_INDEX_PROFILEINDEX_H
#define KAST_INDEX_PROFILEINDEX_H

#include "core/ProfileSerializer.h"
#include "core/StringKernel.h"
#include "util/Error.h"

#include <string>
#include <vector>

namespace kast {

/// One retrieval hit: the index entry and its similarity to the query.
struct Neighbor {
  size_t Index = 0;
  double Similarity = 0.0;

  bool operator==(const Neighbor &Rhs) const = default;
};

/// Top-k nearest-neighbor index over prepared kernel profiles.
class ProfileIndex {
public:
  ProfileIndex() = default;

  /// An empty index tagged with the producing kernel's name.
  explicit ProfileIndex(std::string KernelName)
      : KernelName(std::move(KernelName)) {}

  /// Profiles every string with \p Kernel (in parallel) and indexes
  /// the results. \p Labels may be empty (unlabeled corpus) or must
  /// match \p Strings in length.
  static ProfileIndex build(const ProfiledStringKernel &Kernel,
                            const std::vector<WeightedString> &Strings,
                            const std::vector<std::string> &Labels = {},
                            size_t Threads = 0);

  /// Adopts an in-memory profile cache (e.g. loaded from disk).
  static ProfileIndex fromCache(ProfileCache Cache);

  /// Appends one finalized profile.
  void add(std::string Name, std::string Label, KernelProfile Profile);

  size_t size() const { return Profiles.size(); }
  bool empty() const { return Profiles.empty(); }

  const std::string &kernelName() const { return KernelName; }
  const std::string &name(size_t I) const { return Names[I]; }
  const std::string &label(size_t I) const { return Labels[I]; }
  const KernelProfile &profile(size_t I) const { return Profiles[I]; }

  /// sqrt(dot(p, p)) of entry \p I, cached at insertion.
  double norm(size_t I) const { return Norms[I]; }

  /// The \p K entries most similar to \p Query, most similar first;
  /// ties break toward the smaller index for determinism. \p Normalize
  /// selects cosine similarity (entries or queries with vanishing
  /// norm score 0) over the raw profile dot.
  std::vector<Neighbor> query(const KernelProfile &Query, size_t K,
                              bool Normalize = true) const;

  /// query() for a batch, one query per parallelFor item.
  std::vector<std::vector<Neighbor>>
  queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
             bool Normalize = true, size_t Threads = 0) const;

  /// Majority label among \p Neighbors; ties break toward the label of
  /// the nearer neighbor. Empty for an empty neighbor list.
  std::string majorityLabel(const std::vector<Neighbor> &Neighbors) const;

  /// Copies the index contents into a serializable cache.
  ProfileCache toCache() const;

  /// Round-trip through core/ProfileSerializer's binary format.
  Status save(const std::string &Path) const;
  static Expected<ProfileIndex> load(const std::string &Path);

private:
  std::string KernelName;
  std::vector<std::string> Names;
  std::vector<std::string> Labels;
  std::vector<KernelProfile> Profiles;
  std::vector<double> Norms;
};

} // namespace kast

#endif // KAST_INDEX_PROFILEINDEX_H
