//===- index/ProfileIndex.h - Profile nearest-neighbor index ---*- C++ -*-===//
//
// Part of KAST, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retrieval over cached kernel profiles — the paper's "access patterns
/// as fingerprints" claim served directly. A ProfileIndex holds N
/// prepared profiles in a core/ProfileStore arena (one flat
/// structure-of-arrays, not N heap vectors) with names, labels and
/// cached self-norms, and answers top-k nearest-neighbor queries by
/// merge-join dot products of the query against each stored
/// ProfileView. No Gram matrix is built: one query costs O(N · dot)
/// instead of the O(N² · dot) a full-matrix detour would, the scan
/// streams one contiguous hash array instead of chasing N pointers,
/// and batched queries parallelize per query reusing one scratch
/// buffer per worker thread.
///
/// Indexes round-trip through the versioned binary profile cache
/// (core/ProfileSerializer; saved in the v2 block format, v1 caches
/// still load), so a served corpus profiles each trace exactly once —
/// build, save(), and every later process load()s and queries without
/// touching a kernel.
///
//===----------------------------------------------------------------------===//

#ifndef KAST_INDEX_PROFILEINDEX_H
#define KAST_INDEX_PROFILEINDEX_H

#include "core/ProfileSerializer.h"
#include "core/ProfileStore.h"
#include "core/StringKernel.h"
#include "index/InvertedIndex.h"
#include "util/Error.h"

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kast {

namespace detail {

/// The immutable routing tier over a prefix of an index's arena: the
/// fitted coarse router, the posting lists rebuilt from its
/// assignments, and the options both were built with. Shared by
/// pointer so copied indexes (and service snapshots) alias one fitted
/// structure; entries appended after the fit form the unrouted tail
/// (ids >= covered()) and are always scanned exactly.
struct IndexRouting {
  ClusterRouter Router;
  InvertedIndex Inverted;
  RoutingOptions Options;
  /// The int8 scan tier over the routed arena, built when the options
  /// ask for a quantized shortlist (RerankBudget > 0 &&
  /// QuantizedShortlist); null otherwise. Self-contained (values and
  /// CSR copied at build), so it stays valid for ids < covered() even
  /// after the owning store appends an unrouted tail.
  std::shared_ptr<const QuantizedStore> Quant;

  size_t covered() const { return Router.numProfiles(); }
};

} // namespace detail

namespace detail {

/// Single-pass majority vote over \p Count labels addressed
/// most-similar-first by \p LabelAt (an index → const std::string&
/// callable). The winner is the label with the highest total count;
/// ties break toward the label whose first occurrence is nearest —
/// the contract ProfileIndex::majorityLabel and
/// IndexSnapshot::majorityLabel both document. O(Count) expected,
/// replacing the O(Count²) rescan-per-neighbor counting.
template <typename LabelAtFn>
std::string majorityVote(size_t Count, LabelAtFn LabelAt) {
  // Counts are kept in first-seen order, so "earliest slot among the
  // maxima" is exactly "nearest first occurrence". The string_view
  // keys borrow from the caller's label storage, which outlives the
  // vote.
  std::unordered_map<std::string_view, size_t> Slots;
  std::vector<std::pair<std::string_view, size_t>> Counts;
  for (size_t I = 0; I < Count; ++I) {
    const std::string &Label = LabelAt(I);
    auto [It, Inserted] = Slots.try_emplace(Label, Counts.size());
    if (Inserted)
      Counts.push_back({Label, 0});
    ++Counts[It->second].second;
  }
  if (Counts.empty())
    return {};
  size_t Best = 0;
  for (size_t I = 1; I < Counts.size(); ++I)
    if (Counts[I].second > Counts[Best].second)
      Best = I;
  return std::string(Counts[Best].first);
}

} // namespace detail

/// One retrieval hit: the index entry and its similarity to the query.
struct Neighbor {
  size_t Index = 0;
  double Similarity = 0.0;

  bool operator==(const Neighbor &Rhs) const = default;
};

/// Top-k nearest-neighbor index over prepared kernel profiles.
class ProfileIndex {
public:
  ProfileIndex() = default;

  /// An empty index tagged with the producing kernel's name.
  explicit ProfileIndex(std::string KernelName)
      : KernelName(std::move(KernelName)) {}

  /// Profiles every string with \p Kernel (in parallel) and indexes
  /// the results. \p Labels may be empty (unlabeled corpus) or must
  /// match \p Strings in length.
  static ProfileIndex build(const ProfiledStringKernel &Kernel,
                            const std::vector<WeightedString> &Strings,
                            const std::vector<std::string> &Labels = {},
                            size_t Threads = 0);

  /// Adopts an in-memory record-wise profile cache.
  static ProfileIndex fromCache(ProfileCache Cache);

  /// Adopts an in-memory arena cache (the v2 load path: the store
  /// moves in wholesale, no per-profile copying).
  static ProfileIndex fromStoreCache(ProfileStoreCache Cache);

  /// Appends one finalized profile (copied into the arena).
  void add(std::string Name, std::string Label,
           const KernelProfile &Profile);

  size_t size() const { return Store.size(); }
  bool empty() const { return Store.empty(); }

  const std::string &kernelName() const { return KernelName; }
  const std::string &name(size_t I) const { return Names[I]; }
  const std::string &label(size_t I) const { return Labels[I]; }

  /// The arena view of entry \p I; invalidated by the next add().
  ProfileView view(size_t I) const { return Store.view(I); }

  /// Entry \p I copied back out as a staging-type KernelProfile (e.g.
  /// to re-query the index with one of its own entries).
  KernelProfile profile(size_t I) const { return Store.materialize(I); }

  /// The arena backing the index.
  const ProfileStore &store() const { return Store; }

  /// sqrt(dot(p, p)) of entry \p I, cached at insertion.
  double norm(size_t I) const { return Store.norm(I); }

  /// The min(K, size()) entries most similar to \p Query, most similar
  /// first; ties break toward the smaller index for determinism.
  /// \p Normalize selects cosine similarity (entries or queries with
  /// vanishing norm score 0) over the raw profile dot. K == 0 and an
  /// empty index both return an empty list.
  std::vector<Neighbor> query(const KernelProfile &Query, size_t K,
                              bool Normalize = true) const;

  /// query() for a batch, one query per parallelFor item; candidate
  /// scratch (the O(N) similarity buffer) is allocated once per worker
  /// thread and reused across that thread's queries.
  std::vector<std::vector<Neighbor>>
  queryBatch(const std::vector<KernelProfile> &Queries, size_t K,
             bool Normalize = true, size_t Threads = 0) const;

  /// Fits the two-tier retrieval structures (index/ClusterRouter +
  /// index/InvertedIndex) over the current contents. Entries added
  /// later form an unrouted tail that queryApprox always scans
  /// exactly; rebuild to fold them in. Deterministic for fixed
  /// options regardless of \p Threads.
  void buildRouting(const RoutingOptions &Options = {}, size_t Threads = 0);

  /// Drops the routing tier; queryApprox falls back to the exact scan.
  void clearRouting();

  bool routed() const { return Routing != nullptr; }

  /// Entries covered by the routing fit (the prefix [0, routedCount());
  /// everything at or beyond it is the unrouted tail). 0 when unrouted.
  size_t routedCount() const { return Routing ? Routing->covered() : 0; }

  /// The fitted coarse router, or nullptr when unrouted.
  const ClusterRouter *router() const {
    return Routing ? &Routing->Router : nullptr;
  }

  /// The routing options the tier was built with, or nullptr.
  const RoutingOptions *routingOptions() const {
    return Routing ? &Routing->Options : nullptr;
  }

  /// query() through the candidate-generation tier: probes the
  /// \p NProbe nearest centroids' posting segments (0 defers to
  /// RoutingOptions::DefaultNProbe, itself 0 = all centroids), exact
  /// re-ranks the candidates with the merge-join dot, and pads with
  /// non-candidates at similarity exactly 0.0 in id order when fewer
  /// than K candidates score above zero. Run exhaustively (all
  /// centroids, MaxDocFrequency 1.0, RerankBudget 0) the result is
  /// bit-identical to query(), including tie-break order. Falls back
  /// to query() when unrouted.
  std::vector<Neighbor> queryApprox(const KernelProfile &Query, size_t K,
                                    bool Normalize = true,
                                    size_t NProbe = 0) const;

  /// queryApprox() for a batch; mirrors queryBatch's chunked
  /// parallelism with one InvertedScratch per worker chunk.
  std::vector<std::vector<Neighbor>>
  queryBatchApprox(const std::vector<KernelProfile> &Queries, size_t K,
                   bool Normalize = true, size_t NProbe = 0,
                   size_t Threads = 0) const;

  /// Majority label among \p Neighbors; ties break toward the label of
  /// the nearer neighbor. Empty for an empty neighbor list.
  std::string majorityLabel(const std::vector<Neighbor> &Neighbors) const;

  /// Copies the index contents into a record-wise cache.
  ProfileCache toCache() const;

  /// Round-trip through core/ProfileSerializer's binary format: save
  /// writes the v2 block layout straight from the arena; load accepts
  /// v1 and v2 files. A routed index also writes a "<path>.route"
  /// sidecar (and removes a stale one when unrouted); load restores
  /// routing from the sidecar when present — the posting lists are
  /// rebuilt deterministically from the persisted assignments — and
  /// fails loudly on a corrupt or mismatched sidecar.
  Status save(const std::string &Path) const;
  static Expected<ProfileIndex> load(const std::string &Path);

private:
  std::string KernelName;
  std::vector<std::string> Names;
  std::vector<std::string> Labels;
  ProfileStore Store;
  std::shared_ptr<const detail::IndexRouting> Routing;
};

} // namespace kast

#endif // KAST_INDEX_PROFILEINDEX_H
