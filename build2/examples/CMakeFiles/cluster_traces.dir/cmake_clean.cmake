file(REMOVE_RECURSE
  "CMakeFiles/cluster_traces.dir/cluster_traces.cpp.o"
  "CMakeFiles/cluster_traces.dir/cluster_traces.cpp.o.d"
  "cluster_traces"
  "cluster_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
