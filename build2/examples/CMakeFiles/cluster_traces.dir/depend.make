# Empty dependencies file for cluster_traces.
# This may be replaced when dependencies are built.
