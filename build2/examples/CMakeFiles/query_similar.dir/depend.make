# Empty dependencies file for query_similar.
# This may be replaced when dependencies are built.
