file(REMOVE_RECURSE
  "CMakeFiles/query_similar.dir/query_similar.cpp.o"
  "CMakeFiles/query_similar.dir/query_similar.cpp.o.d"
  "query_similar"
  "query_similar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_similar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
