# Empty dependencies file for compare_kernels.
# This may be replaced when dependencies are built.
