file(REMOVE_RECURSE
  "CMakeFiles/compare_kernels.dir/compare_kernels.cpp.o"
  "CMakeFiles/compare_kernels.dir/compare_kernels.cpp.o.d"
  "compare_kernels"
  "compare_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
