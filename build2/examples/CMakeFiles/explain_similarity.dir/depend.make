# Empty dependencies file for explain_similarity.
# This may be replaced when dependencies are built.
