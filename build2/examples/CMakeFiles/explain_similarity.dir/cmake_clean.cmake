file(REMOVE_RECURSE
  "CMakeFiles/explain_similarity.dir/explain_similarity.cpp.o"
  "CMakeFiles/explain_similarity.dir/explain_similarity.cpp.o.d"
  "explain_similarity"
  "explain_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
