file(REMOVE_RECURSE
  "CMakeFiles/compare_programs.dir/compare_programs.cpp.o"
  "CMakeFiles/compare_programs.dir/compare_programs.cpp.o.d"
  "compare_programs"
  "compare_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
