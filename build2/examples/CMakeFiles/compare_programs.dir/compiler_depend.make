# Empty compiler generated dependencies file for compare_programs.
# This may be replaced when dependencies are built.
