file(REMOVE_RECURSE
  "CMakeFiles/ProfiledKernelTest.dir/ProfiledKernelTest.cpp.o"
  "CMakeFiles/ProfiledKernelTest.dir/ProfiledKernelTest.cpp.o.d"
  "ProfiledKernelTest"
  "ProfiledKernelTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ProfiledKernelTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
