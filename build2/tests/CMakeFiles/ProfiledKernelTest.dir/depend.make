# Empty dependencies file for ProfiledKernelTest.
# This may be replaced when dependencies are built.
