# Empty dependencies file for KastKernelTest.
# This may be replaced when dependencies are built.
