file(REMOVE_RECURSE
  "CMakeFiles/KastKernelTest.dir/KastKernelTest.cpp.o"
  "CMakeFiles/KastKernelTest.dir/KastKernelTest.cpp.o.d"
  "KastKernelTest"
  "KastKernelTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/KastKernelTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
