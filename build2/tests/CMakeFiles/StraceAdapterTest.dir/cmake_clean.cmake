file(REMOVE_RECURSE
  "CMakeFiles/StraceAdapterTest.dir/StraceAdapterTest.cpp.o"
  "CMakeFiles/StraceAdapterTest.dir/StraceAdapterTest.cpp.o.d"
  "StraceAdapterTest"
  "StraceAdapterTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StraceAdapterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
