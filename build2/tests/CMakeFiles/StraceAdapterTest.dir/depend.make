# Empty dependencies file for StraceAdapterTest.
# This may be replaced when dependencies are built.
