# Empty compiler generated dependencies file for ProfileIndexTest.
# This may be replaced when dependencies are built.
