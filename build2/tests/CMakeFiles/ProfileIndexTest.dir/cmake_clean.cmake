file(REMOVE_RECURSE
  "CMakeFiles/ProfileIndexTest.dir/ProfileIndexTest.cpp.o"
  "CMakeFiles/ProfileIndexTest.dir/ProfileIndexTest.cpp.o.d"
  "ProfileIndexTest"
  "ProfileIndexTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ProfileIndexTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
