file(REMOVE_RECURSE
  "CMakeFiles/WorkloadsTest.dir/WorkloadsTest.cpp.o"
  "CMakeFiles/WorkloadsTest.dir/WorkloadsTest.cpp.o.d"
  "WorkloadsTest"
  "WorkloadsTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/WorkloadsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
