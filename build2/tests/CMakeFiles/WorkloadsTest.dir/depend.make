# Empty dependencies file for WorkloadsTest.
# This may be replaced when dependencies are built.
