# Empty compiler generated dependencies file for TreeTest.
# This may be replaced when dependencies are built.
