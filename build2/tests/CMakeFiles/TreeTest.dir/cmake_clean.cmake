file(REMOVE_RECURSE
  "CMakeFiles/TreeTest.dir/TreeTest.cpp.o"
  "CMakeFiles/TreeTest.dir/TreeTest.cpp.o.d"
  "TreeTest"
  "TreeTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TreeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
