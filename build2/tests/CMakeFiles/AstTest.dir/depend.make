# Empty dependencies file for AstTest.
# This may be replaced when dependencies are built.
