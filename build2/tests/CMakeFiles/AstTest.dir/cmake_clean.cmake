file(REMOVE_RECURSE
  "AstTest"
  "AstTest.pdb"
  "CMakeFiles/AstTest.dir/AstTest.cpp.o"
  "CMakeFiles/AstTest.dir/AstTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AstTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
