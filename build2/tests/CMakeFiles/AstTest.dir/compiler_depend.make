# Empty compiler generated dependencies file for AstTest.
# This may be replaced when dependencies are built.
