file(REMOVE_RECURSE
  "CMakeFiles/KernelMatrixTest.dir/KernelMatrixTest.cpp.o"
  "CMakeFiles/KernelMatrixTest.dir/KernelMatrixTest.cpp.o.d"
  "KernelMatrixTest"
  "KernelMatrixTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/KernelMatrixTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
