# Empty dependencies file for KernelMatrixTest.
# This may be replaced when dependencies are built.
