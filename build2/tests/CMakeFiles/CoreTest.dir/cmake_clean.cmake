file(REMOVE_RECURSE
  "CMakeFiles/CoreTest.dir/CoreTest.cpp.o"
  "CMakeFiles/CoreTest.dir/CoreTest.cpp.o.d"
  "CoreTest"
  "CoreTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CoreTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
