# Empty compiler generated dependencies file for CoreTest.
# This may be replaced when dependencies are built.
