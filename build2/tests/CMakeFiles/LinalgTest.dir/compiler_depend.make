# Empty compiler generated dependencies file for LinalgTest.
# This may be replaced when dependencies are built.
