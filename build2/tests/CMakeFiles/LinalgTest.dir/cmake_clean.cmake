file(REMOVE_RECURSE
  "CMakeFiles/LinalgTest.dir/LinalgTest.cpp.o"
  "CMakeFiles/LinalgTest.dir/LinalgTest.cpp.o.d"
  "LinalgTest"
  "LinalgTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LinalgTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
