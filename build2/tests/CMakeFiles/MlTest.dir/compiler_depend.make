# Empty compiler generated dependencies file for MlTest.
# This may be replaced when dependencies are built.
