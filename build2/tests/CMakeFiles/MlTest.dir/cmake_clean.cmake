file(REMOVE_RECURSE
  "CMakeFiles/MlTest.dir/MlTest.cpp.o"
  "CMakeFiles/MlTest.dir/MlTest.cpp.o.d"
  "MlTest"
  "MlTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MlTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
