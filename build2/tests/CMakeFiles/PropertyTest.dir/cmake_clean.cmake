file(REMOVE_RECURSE
  "CMakeFiles/PropertyTest.dir/PropertyTest.cpp.o"
  "CMakeFiles/PropertyTest.dir/PropertyTest.cpp.o.d"
  "PropertyTest"
  "PropertyTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
