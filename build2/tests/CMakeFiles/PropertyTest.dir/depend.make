# Empty dependencies file for PropertyTest.
# This may be replaced when dependencies are built.
