file(REMOVE_RECURSE
  "CMakeFiles/InterpreterTest.dir/InterpreterTest.cpp.o"
  "CMakeFiles/InterpreterTest.dir/InterpreterTest.cpp.o.d"
  "InterpreterTest"
  "InterpreterTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/InterpreterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
