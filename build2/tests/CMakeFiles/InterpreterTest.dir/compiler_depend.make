# Empty compiler generated dependencies file for InterpreterTest.
# This may be replaced when dependencies are built.
