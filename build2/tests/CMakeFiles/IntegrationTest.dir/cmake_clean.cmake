file(REMOVE_RECURSE
  "CMakeFiles/IntegrationTest.dir/IntegrationTest.cpp.o"
  "CMakeFiles/IntegrationTest.dir/IntegrationTest.cpp.o.d"
  "IntegrationTest"
  "IntegrationTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/IntegrationTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
