# Empty dependencies file for IntegrationTest.
# This may be replaced when dependencies are built.
