# Empty compiler generated dependencies file for KernelAlgebraTest.
# This may be replaced when dependencies are built.
