file(REMOVE_RECURSE
  "CMakeFiles/KernelAlgebraTest.dir/KernelAlgebraTest.cpp.o"
  "CMakeFiles/KernelAlgebraTest.dir/KernelAlgebraTest.cpp.o.d"
  "KernelAlgebraTest"
  "KernelAlgebraTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/KernelAlgebraTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
