file(REMOVE_RECURSE
  "AstSimilarityTest"
  "AstSimilarityTest.pdb"
  "CMakeFiles/AstSimilarityTest.dir/AstSimilarityTest.cpp.o"
  "CMakeFiles/AstSimilarityTest.dir/AstSimilarityTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/AstSimilarityTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
