# Empty dependencies file for AstSimilarityTest.
# This may be replaced when dependencies are built.
