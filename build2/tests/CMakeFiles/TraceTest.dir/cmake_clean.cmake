file(REMOVE_RECURSE
  "CMakeFiles/TraceTest.dir/TraceTest.cpp.o"
  "CMakeFiles/TraceTest.dir/TraceTest.cpp.o.d"
  "TraceTest"
  "TraceTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TraceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
