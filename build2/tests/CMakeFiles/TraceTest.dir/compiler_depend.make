# Empty compiler generated dependencies file for TraceTest.
# This may be replaced when dependencies are built.
