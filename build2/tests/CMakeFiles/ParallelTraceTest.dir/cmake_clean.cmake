file(REMOVE_RECURSE
  "CMakeFiles/ParallelTraceTest.dir/ParallelTraceTest.cpp.o"
  "CMakeFiles/ParallelTraceTest.dir/ParallelTraceTest.cpp.o.d"
  "ParallelTraceTest"
  "ParallelTraceTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ParallelTraceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
