# Empty dependencies file for ParallelTraceTest.
# This may be replaced when dependencies are built.
