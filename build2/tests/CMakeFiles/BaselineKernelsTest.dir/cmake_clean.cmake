file(REMOVE_RECURSE
  "BaselineKernelsTest"
  "BaselineKernelsTest.pdb"
  "CMakeFiles/BaselineKernelsTest.dir/BaselineKernelsTest.cpp.o"
  "CMakeFiles/BaselineKernelsTest.dir/BaselineKernelsTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BaselineKernelsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
