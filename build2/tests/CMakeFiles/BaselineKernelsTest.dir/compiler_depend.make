# Empty compiler generated dependencies file for BaselineKernelsTest.
# This may be replaced when dependencies are built.
