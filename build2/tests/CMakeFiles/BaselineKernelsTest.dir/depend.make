# Empty dependencies file for BaselineKernelsTest.
# This may be replaced when dependencies are built.
