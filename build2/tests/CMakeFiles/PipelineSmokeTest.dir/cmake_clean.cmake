file(REMOVE_RECURSE
  "CMakeFiles/PipelineSmokeTest.dir/PipelineSmokeTest.cpp.o"
  "CMakeFiles/PipelineSmokeTest.dir/PipelineSmokeTest.cpp.o.d"
  "PipelineSmokeTest"
  "PipelineSmokeTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PipelineSmokeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
