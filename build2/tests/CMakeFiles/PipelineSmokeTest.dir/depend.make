# Empty dependencies file for PipelineSmokeTest.
# This may be replaced when dependencies are built.
