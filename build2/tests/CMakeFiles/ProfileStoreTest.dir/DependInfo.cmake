
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ProfileStoreTest.cpp" "tests/CMakeFiles/ProfileStoreTest.dir/ProfileStoreTest.cpp.o" "gcc" "tests/CMakeFiles/ProfileStoreTest.dir/ProfileStoreTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/kast_kernels.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_ast.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_ml.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_index.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_workloads.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_linalg.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_tree.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
