# Empty compiler generated dependencies file for ProfileStoreTest.
# This may be replaced when dependencies are built.
