file(REMOVE_RECURSE
  "CMakeFiles/ProfileStoreTest.dir/ProfileStoreTest.cpp.o"
  "CMakeFiles/ProfileStoreTest.dir/ProfileStoreTest.cpp.o.d"
  "ProfileStoreTest"
  "ProfileStoreTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ProfileStoreTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
