file(REMOVE_RECURSE
  "CMakeFiles/ExplainTest.dir/ExplainTest.cpp.o"
  "CMakeFiles/ExplainTest.dir/ExplainTest.cpp.o.d"
  "ExplainTest"
  "ExplainTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExplainTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
