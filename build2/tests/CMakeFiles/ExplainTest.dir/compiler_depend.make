# Empty compiler generated dependencies file for ExplainTest.
# This may be replaced when dependencies are built.
