# Empty dependencies file for MatcherTest.
# This may be replaced when dependencies are built.
