file(REMOVE_RECURSE
  "CMakeFiles/MatcherTest.dir/MatcherTest.cpp.o"
  "CMakeFiles/MatcherTest.dir/MatcherTest.cpp.o.d"
  "MatcherTest"
  "MatcherTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MatcherTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
