# Empty compiler generated dependencies file for UtilTest.
# This may be replaced when dependencies are built.
