file(REMOVE_RECURSE
  "CMakeFiles/UtilTest.dir/UtilTest.cpp.o"
  "CMakeFiles/UtilTest.dir/UtilTest.cpp.o.d"
  "UtilTest"
  "UtilTest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/UtilTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
