file(REMOVE_RECURSE
  "CMakeFiles/tab1_cutweight_sweep.dir/tab1_cutweight_sweep.cpp.o"
  "CMakeFiles/tab1_cutweight_sweep.dir/tab1_cutweight_sweep.cpp.o.d"
  "tab1_cutweight_sweep"
  "tab1_cutweight_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_cutweight_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
