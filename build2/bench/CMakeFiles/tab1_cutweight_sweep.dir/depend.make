# Empty dependencies file for tab1_cutweight_sweep.
# This may be replaced when dependencies are built.
