# Empty dependencies file for fig7_kast_dendrogram.
# This may be replaced when dependencies are built.
