file(REMOVE_RECURSE
  "CMakeFiles/fig7_kast_dendrogram.dir/fig7_kast_dendrogram.cpp.o"
  "CMakeFiles/fig7_kast_dendrogram.dir/fig7_kast_dendrogram.cpp.o.d"
  "fig7_kast_dendrogram"
  "fig7_kast_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_kast_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
