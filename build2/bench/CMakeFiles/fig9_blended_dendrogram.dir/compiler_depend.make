# Empty compiler generated dependencies file for fig9_blended_dendrogram.
# This may be replaced when dependencies are built.
