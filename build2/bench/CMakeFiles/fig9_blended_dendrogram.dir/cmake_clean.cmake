file(REMOVE_RECURSE
  "CMakeFiles/fig9_blended_dendrogram.dir/fig9_blended_dendrogram.cpp.o"
  "CMakeFiles/fig9_blended_dendrogram.dir/fig9_blended_dendrogram.cpp.o.d"
  "fig9_blended_dendrogram"
  "fig9_blended_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_blended_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
