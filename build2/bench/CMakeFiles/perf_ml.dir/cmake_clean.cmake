file(REMOVE_RECURSE
  "CMakeFiles/perf_ml.dir/perf_ml.cpp.o"
  "CMakeFiles/perf_ml.dir/perf_ml.cpp.o.d"
  "perf_ml"
  "perf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
