# Empty compiler generated dependencies file for perf_ml.
# This may be replaced when dependencies are built.
