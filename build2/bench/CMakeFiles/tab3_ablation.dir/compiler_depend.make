# Empty compiler generated dependencies file for tab3_ablation.
# This may be replaced when dependencies are built.
