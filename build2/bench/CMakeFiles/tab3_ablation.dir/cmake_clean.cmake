file(REMOVE_RECURSE
  "CMakeFiles/tab3_ablation.dir/tab3_ablation.cpp.o"
  "CMakeFiles/tab3_ablation.dir/tab3_ablation.cpp.o.d"
  "tab3_ablation"
  "tab3_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
