file(REMOVE_RECURSE
  "CMakeFiles/fig8_blended_kpca.dir/fig8_blended_kpca.cpp.o"
  "CMakeFiles/fig8_blended_kpca.dir/fig8_blended_kpca.cpp.o.d"
  "fig8_blended_kpca"
  "fig8_blended_kpca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_blended_kpca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
