# Empty compiler generated dependencies file for fig8_blended_kpca.
# This may be replaced when dependencies are built.
