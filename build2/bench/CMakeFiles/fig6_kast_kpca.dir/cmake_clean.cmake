file(REMOVE_RECURSE
  "CMakeFiles/fig6_kast_kpca.dir/fig6_kast_kpca.cpp.o"
  "CMakeFiles/fig6_kast_kpca.dir/fig6_kast_kpca.cpp.o.d"
  "fig6_kast_kpca"
  "fig6_kast_kpca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_kast_kpca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
