# Empty compiler generated dependencies file for fig6_kast_kpca.
# This may be replaced when dependencies are built.
