# Empty dependencies file for kast_bench_common.
# This may be replaced when dependencies are built.
