file(REMOVE_RECURSE
  "libkast_bench_common.a"
)
