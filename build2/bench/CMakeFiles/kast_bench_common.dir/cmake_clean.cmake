file(REMOVE_RECURSE
  "CMakeFiles/kast_bench_common.dir/FigureCommon.cpp.o"
  "CMakeFiles/kast_bench_common.dir/FigureCommon.cpp.o.d"
  "libkast_bench_common.a"
  "libkast_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
