# Empty compiler generated dependencies file for perf_kernels.
# This may be replaced when dependencies are built.
