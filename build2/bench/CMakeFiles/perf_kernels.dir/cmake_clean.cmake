file(REMOVE_RECURSE
  "CMakeFiles/perf_kernels.dir/perf_kernels.cpp.o"
  "CMakeFiles/perf_kernels.dir/perf_kernels.cpp.o.d"
  "perf_kernels"
  "perf_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
