file(REMOVE_RECURSE
  "CMakeFiles/perf_index.dir/perf_index.cpp.o"
  "CMakeFiles/perf_index.dir/perf_index.cpp.o.d"
  "perf_index"
  "perf_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
