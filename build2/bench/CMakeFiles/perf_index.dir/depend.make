# Empty dependencies file for perf_index.
# This may be replaced when dependencies are built.
