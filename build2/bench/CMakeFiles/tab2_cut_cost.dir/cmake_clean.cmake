file(REMOVE_RECURSE
  "CMakeFiles/tab2_cut_cost.dir/tab2_cut_cost.cpp.o"
  "CMakeFiles/tab2_cut_cost.dir/tab2_cut_cost.cpp.o.d"
  "tab2_cut_cost"
  "tab2_cut_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_cut_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
