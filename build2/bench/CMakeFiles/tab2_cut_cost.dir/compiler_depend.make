# Empty compiler generated dependencies file for tab2_cut_cost.
# This may be replaced when dependencies are built.
