file(REMOVE_RECURSE
  "CMakeFiles/perf_pipeline.dir/perf_pipeline.cpp.o"
  "CMakeFiles/perf_pipeline.dir/perf_pipeline.cpp.o.d"
  "perf_pipeline"
  "perf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
