# Empty compiler generated dependencies file for perf_pipeline.
# This may be replaced when dependencies are built.
