# Empty compiler generated dependencies file for kast_workloads.
# This may be replaced when dependencies are built.
