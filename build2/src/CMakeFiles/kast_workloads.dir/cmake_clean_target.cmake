file(REMOVE_RECURSE
  "libkast_workloads.a"
)
