file(REMOVE_RECURSE
  "CMakeFiles/kast_workloads.dir/workloads/CorpusIO.cpp.o"
  "CMakeFiles/kast_workloads.dir/workloads/CorpusIO.cpp.o.d"
  "CMakeFiles/kast_workloads.dir/workloads/DatasetBuilder.cpp.o"
  "CMakeFiles/kast_workloads.dir/workloads/DatasetBuilder.cpp.o.d"
  "CMakeFiles/kast_workloads.dir/workloads/Generators.cpp.o"
  "CMakeFiles/kast_workloads.dir/workloads/Generators.cpp.o.d"
  "CMakeFiles/kast_workloads.dir/workloads/Mutator.cpp.o"
  "CMakeFiles/kast_workloads.dir/workloads/Mutator.cpp.o.d"
  "CMakeFiles/kast_workloads.dir/workloads/ParallelTrace.cpp.o"
  "CMakeFiles/kast_workloads.dir/workloads/ParallelTrace.cpp.o.d"
  "libkast_workloads.a"
  "libkast_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
