file(REMOVE_RECURSE
  "libkast_ml.a"
)
