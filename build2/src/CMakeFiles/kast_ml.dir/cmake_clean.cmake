file(REMOVE_RECURSE
  "CMakeFiles/kast_ml.dir/ml/ClusterMetrics.cpp.o"
  "CMakeFiles/kast_ml.dir/ml/ClusterMetrics.cpp.o.d"
  "CMakeFiles/kast_ml.dir/ml/HierarchicalClustering.cpp.o"
  "CMakeFiles/kast_ml.dir/ml/HierarchicalClustering.cpp.o.d"
  "CMakeFiles/kast_ml.dir/ml/KernelPca.cpp.o"
  "CMakeFiles/kast_ml.dir/ml/KernelPca.cpp.o.d"
  "CMakeFiles/kast_ml.dir/ml/NearestNeighbor.cpp.o"
  "CMakeFiles/kast_ml.dir/ml/NearestNeighbor.cpp.o.d"
  "libkast_ml.a"
  "libkast_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
