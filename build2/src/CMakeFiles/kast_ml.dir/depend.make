# Empty dependencies file for kast_ml.
# This may be replaced when dependencies are built.
