file(REMOVE_RECURSE
  "CMakeFiles/kast_index.dir/index/ProfileIndex.cpp.o"
  "CMakeFiles/kast_index.dir/index/ProfileIndex.cpp.o.d"
  "libkast_index.a"
  "libkast_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
