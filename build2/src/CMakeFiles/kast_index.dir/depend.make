# Empty dependencies file for kast_index.
# This may be replaced when dependencies are built.
