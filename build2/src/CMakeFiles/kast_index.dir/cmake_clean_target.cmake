file(REMOVE_RECURSE
  "libkast_index.a"
)
