file(REMOVE_RECURSE
  "libkast_core.a"
)
