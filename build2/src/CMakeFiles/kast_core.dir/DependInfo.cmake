
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Dataset.cpp" "src/CMakeFiles/kast_core.dir/core/Dataset.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/Dataset.cpp.o.d"
  "/root/repo/src/core/Explain.cpp" "src/CMakeFiles/kast_core.dir/core/Explain.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/Explain.cpp.o.d"
  "/root/repo/src/core/KastKernel.cpp" "src/CMakeFiles/kast_core.dir/core/KastKernel.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/KastKernel.cpp.o.d"
  "/root/repo/src/core/KernelMatrix.cpp" "src/CMakeFiles/kast_core.dir/core/KernelMatrix.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/KernelMatrix.cpp.o.d"
  "/root/repo/src/core/KernelProfile.cpp" "src/CMakeFiles/kast_core.dir/core/KernelProfile.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/KernelProfile.cpp.o.d"
  "/root/repo/src/core/Matcher.cpp" "src/CMakeFiles/kast_core.dir/core/Matcher.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/Matcher.cpp.o.d"
  "/root/repo/src/core/Pipeline.cpp" "src/CMakeFiles/kast_core.dir/core/Pipeline.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/Pipeline.cpp.o.d"
  "/root/repo/src/core/PreorderEncoder.cpp" "src/CMakeFiles/kast_core.dir/core/PreorderEncoder.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/PreorderEncoder.cpp.o.d"
  "/root/repo/src/core/ProfileSerializer.cpp" "src/CMakeFiles/kast_core.dir/core/ProfileSerializer.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/ProfileSerializer.cpp.o.d"
  "/root/repo/src/core/ProfileStore.cpp" "src/CMakeFiles/kast_core.dir/core/ProfileStore.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/ProfileStore.cpp.o.d"
  "/root/repo/src/core/StringKernel.cpp" "src/CMakeFiles/kast_core.dir/core/StringKernel.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/StringKernel.cpp.o.d"
  "/root/repo/src/core/StringSerializer.cpp" "src/CMakeFiles/kast_core.dir/core/StringSerializer.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/StringSerializer.cpp.o.d"
  "/root/repo/src/core/SuffixAutomaton.cpp" "src/CMakeFiles/kast_core.dir/core/SuffixAutomaton.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/SuffixAutomaton.cpp.o.d"
  "/root/repo/src/core/Token.cpp" "src/CMakeFiles/kast_core.dir/core/Token.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/Token.cpp.o.d"
  "/root/repo/src/core/TreeFlattener.cpp" "src/CMakeFiles/kast_core.dir/core/TreeFlattener.cpp.o" "gcc" "src/CMakeFiles/kast_core.dir/core/TreeFlattener.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/kast_linalg.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_tree.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
