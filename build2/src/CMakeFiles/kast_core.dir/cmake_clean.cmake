file(REMOVE_RECURSE
  "CMakeFiles/kast_core.dir/core/Dataset.cpp.o"
  "CMakeFiles/kast_core.dir/core/Dataset.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/Explain.cpp.o"
  "CMakeFiles/kast_core.dir/core/Explain.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/KastKernel.cpp.o"
  "CMakeFiles/kast_core.dir/core/KastKernel.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/KernelMatrix.cpp.o"
  "CMakeFiles/kast_core.dir/core/KernelMatrix.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/KernelProfile.cpp.o"
  "CMakeFiles/kast_core.dir/core/KernelProfile.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/Matcher.cpp.o"
  "CMakeFiles/kast_core.dir/core/Matcher.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/Pipeline.cpp.o"
  "CMakeFiles/kast_core.dir/core/Pipeline.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/PreorderEncoder.cpp.o"
  "CMakeFiles/kast_core.dir/core/PreorderEncoder.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/ProfileSerializer.cpp.o"
  "CMakeFiles/kast_core.dir/core/ProfileSerializer.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/ProfileStore.cpp.o"
  "CMakeFiles/kast_core.dir/core/ProfileStore.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/StringKernel.cpp.o"
  "CMakeFiles/kast_core.dir/core/StringKernel.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/StringSerializer.cpp.o"
  "CMakeFiles/kast_core.dir/core/StringSerializer.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/SuffixAutomaton.cpp.o"
  "CMakeFiles/kast_core.dir/core/SuffixAutomaton.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/Token.cpp.o"
  "CMakeFiles/kast_core.dir/core/Token.cpp.o.d"
  "CMakeFiles/kast_core.dir/core/TreeFlattener.cpp.o"
  "CMakeFiles/kast_core.dir/core/TreeFlattener.cpp.o.d"
  "libkast_core.a"
  "libkast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
