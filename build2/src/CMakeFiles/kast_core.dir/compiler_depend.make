# Empty compiler generated dependencies file for kast_core.
# This may be replaced when dependencies are built.
