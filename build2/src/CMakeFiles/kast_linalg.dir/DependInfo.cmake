
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/Eigen.cpp" "src/CMakeFiles/kast_linalg.dir/linalg/Eigen.cpp.o" "gcc" "src/CMakeFiles/kast_linalg.dir/linalg/Eigen.cpp.o.d"
  "/root/repo/src/linalg/Matrix.cpp" "src/CMakeFiles/kast_linalg.dir/linalg/Matrix.cpp.o" "gcc" "src/CMakeFiles/kast_linalg.dir/linalg/Matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/kast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
