file(REMOVE_RECURSE
  "libkast_linalg.a"
)
