# Empty compiler generated dependencies file for kast_linalg.
# This may be replaced when dependencies are built.
