file(REMOVE_RECURSE
  "CMakeFiles/kast_linalg.dir/linalg/Eigen.cpp.o"
  "CMakeFiles/kast_linalg.dir/linalg/Eigen.cpp.o.d"
  "CMakeFiles/kast_linalg.dir/linalg/Matrix.cpp.o"
  "CMakeFiles/kast_linalg.dir/linalg/Matrix.cpp.o.d"
  "libkast_linalg.a"
  "libkast_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
