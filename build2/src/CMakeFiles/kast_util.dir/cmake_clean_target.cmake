file(REMOVE_RECURSE
  "libkast_util.a"
)
