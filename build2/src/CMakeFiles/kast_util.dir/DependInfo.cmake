
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/AsciiPlot.cpp" "src/CMakeFiles/kast_util.dir/util/AsciiPlot.cpp.o" "gcc" "src/CMakeFiles/kast_util.dir/util/AsciiPlot.cpp.o.d"
  "/root/repo/src/util/Csv.cpp" "src/CMakeFiles/kast_util.dir/util/Csv.cpp.o" "gcc" "src/CMakeFiles/kast_util.dir/util/Csv.cpp.o.d"
  "/root/repo/src/util/Rng.cpp" "src/CMakeFiles/kast_util.dir/util/Rng.cpp.o" "gcc" "src/CMakeFiles/kast_util.dir/util/Rng.cpp.o.d"
  "/root/repo/src/util/StringUtil.cpp" "src/CMakeFiles/kast_util.dir/util/StringUtil.cpp.o" "gcc" "src/CMakeFiles/kast_util.dir/util/StringUtil.cpp.o.d"
  "/root/repo/src/util/TextTable.cpp" "src/CMakeFiles/kast_util.dir/util/TextTable.cpp.o" "gcc" "src/CMakeFiles/kast_util.dir/util/TextTable.cpp.o.d"
  "/root/repo/src/util/ThreadPool.cpp" "src/CMakeFiles/kast_util.dir/util/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/kast_util.dir/util/ThreadPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
