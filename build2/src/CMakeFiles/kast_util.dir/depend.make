# Empty dependencies file for kast_util.
# This may be replaced when dependencies are built.
