file(REMOVE_RECURSE
  "CMakeFiles/kast_util.dir/util/AsciiPlot.cpp.o"
  "CMakeFiles/kast_util.dir/util/AsciiPlot.cpp.o.d"
  "CMakeFiles/kast_util.dir/util/Csv.cpp.o"
  "CMakeFiles/kast_util.dir/util/Csv.cpp.o.d"
  "CMakeFiles/kast_util.dir/util/Rng.cpp.o"
  "CMakeFiles/kast_util.dir/util/Rng.cpp.o.d"
  "CMakeFiles/kast_util.dir/util/StringUtil.cpp.o"
  "CMakeFiles/kast_util.dir/util/StringUtil.cpp.o.d"
  "CMakeFiles/kast_util.dir/util/TextTable.cpp.o"
  "CMakeFiles/kast_util.dir/util/TextTable.cpp.o.d"
  "CMakeFiles/kast_util.dir/util/ThreadPool.cpp.o"
  "CMakeFiles/kast_util.dir/util/ThreadPool.cpp.o.d"
  "libkast_util.a"
  "libkast_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
