file(REMOVE_RECURSE
  "CMakeFiles/kast_trace.dir/trace/StraceAdapter.cpp.o"
  "CMakeFiles/kast_trace.dir/trace/StraceAdapter.cpp.o.d"
  "CMakeFiles/kast_trace.dir/trace/Trace.cpp.o"
  "CMakeFiles/kast_trace.dir/trace/Trace.cpp.o.d"
  "CMakeFiles/kast_trace.dir/trace/TraceParser.cpp.o"
  "CMakeFiles/kast_trace.dir/trace/TraceParser.cpp.o.d"
  "CMakeFiles/kast_trace.dir/trace/TraceWriter.cpp.o"
  "CMakeFiles/kast_trace.dir/trace/TraceWriter.cpp.o.d"
  "libkast_trace.a"
  "libkast_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
