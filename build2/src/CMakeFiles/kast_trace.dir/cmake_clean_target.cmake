file(REMOVE_RECURSE
  "libkast_trace.a"
)
