# Empty dependencies file for kast_trace.
# This may be replaced when dependencies are built.
