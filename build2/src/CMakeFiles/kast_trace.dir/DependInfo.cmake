
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/StraceAdapter.cpp" "src/CMakeFiles/kast_trace.dir/trace/StraceAdapter.cpp.o" "gcc" "src/CMakeFiles/kast_trace.dir/trace/StraceAdapter.cpp.o.d"
  "/root/repo/src/trace/Trace.cpp" "src/CMakeFiles/kast_trace.dir/trace/Trace.cpp.o" "gcc" "src/CMakeFiles/kast_trace.dir/trace/Trace.cpp.o.d"
  "/root/repo/src/trace/TraceParser.cpp" "src/CMakeFiles/kast_trace.dir/trace/TraceParser.cpp.o" "gcc" "src/CMakeFiles/kast_trace.dir/trace/TraceParser.cpp.o.d"
  "/root/repo/src/trace/TraceWriter.cpp" "src/CMakeFiles/kast_trace.dir/trace/TraceWriter.cpp.o" "gcc" "src/CMakeFiles/kast_trace.dir/trace/TraceWriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/kast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
