file(REMOVE_RECURSE
  "CMakeFiles/kast_ast.dir/ast/Ast.cpp.o"
  "CMakeFiles/kast_ast.dir/ast/Ast.cpp.o.d"
  "CMakeFiles/kast_ast.dir/ast/AstEncoder.cpp.o"
  "CMakeFiles/kast_ast.dir/ast/AstEncoder.cpp.o.d"
  "CMakeFiles/kast_ast.dir/ast/Interpreter.cpp.o"
  "CMakeFiles/kast_ast.dir/ast/Interpreter.cpp.o.d"
  "CMakeFiles/kast_ast.dir/ast/Lexer.cpp.o"
  "CMakeFiles/kast_ast.dir/ast/Lexer.cpp.o.d"
  "CMakeFiles/kast_ast.dir/ast/Parser.cpp.o"
  "CMakeFiles/kast_ast.dir/ast/Parser.cpp.o.d"
  "libkast_ast.a"
  "libkast_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
