
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/Ast.cpp" "src/CMakeFiles/kast_ast.dir/ast/Ast.cpp.o" "gcc" "src/CMakeFiles/kast_ast.dir/ast/Ast.cpp.o.d"
  "/root/repo/src/ast/AstEncoder.cpp" "src/CMakeFiles/kast_ast.dir/ast/AstEncoder.cpp.o" "gcc" "src/CMakeFiles/kast_ast.dir/ast/AstEncoder.cpp.o.d"
  "/root/repo/src/ast/Interpreter.cpp" "src/CMakeFiles/kast_ast.dir/ast/Interpreter.cpp.o" "gcc" "src/CMakeFiles/kast_ast.dir/ast/Interpreter.cpp.o.d"
  "/root/repo/src/ast/Lexer.cpp" "src/CMakeFiles/kast_ast.dir/ast/Lexer.cpp.o" "gcc" "src/CMakeFiles/kast_ast.dir/ast/Lexer.cpp.o.d"
  "/root/repo/src/ast/Parser.cpp" "src/CMakeFiles/kast_ast.dir/ast/Parser.cpp.o" "gcc" "src/CMakeFiles/kast_ast.dir/ast/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/kast_core.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_util.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_linalg.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_tree.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
