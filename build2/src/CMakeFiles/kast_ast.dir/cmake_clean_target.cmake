file(REMOVE_RECURSE
  "libkast_ast.a"
)
