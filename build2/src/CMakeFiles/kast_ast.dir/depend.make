# Empty dependencies file for kast_ast.
# This may be replaced when dependencies are built.
