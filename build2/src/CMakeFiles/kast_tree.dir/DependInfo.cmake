
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/PatternTree.cpp" "src/CMakeFiles/kast_tree.dir/tree/PatternTree.cpp.o" "gcc" "src/CMakeFiles/kast_tree.dir/tree/PatternTree.cpp.o.d"
  "/root/repo/src/tree/TreeBuilder.cpp" "src/CMakeFiles/kast_tree.dir/tree/TreeBuilder.cpp.o" "gcc" "src/CMakeFiles/kast_tree.dir/tree/TreeBuilder.cpp.o.d"
  "/root/repo/src/tree/TreeCompressor.cpp" "src/CMakeFiles/kast_tree.dir/tree/TreeCompressor.cpp.o" "gcc" "src/CMakeFiles/kast_tree.dir/tree/TreeCompressor.cpp.o.d"
  "/root/repo/src/tree/TreeDump.cpp" "src/CMakeFiles/kast_tree.dir/tree/TreeDump.cpp.o" "gcc" "src/CMakeFiles/kast_tree.dir/tree/TreeDump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/kast_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/kast_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
