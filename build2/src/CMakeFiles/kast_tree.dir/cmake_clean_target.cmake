file(REMOVE_RECURSE
  "libkast_tree.a"
)
