file(REMOVE_RECURSE
  "CMakeFiles/kast_tree.dir/tree/PatternTree.cpp.o"
  "CMakeFiles/kast_tree.dir/tree/PatternTree.cpp.o.d"
  "CMakeFiles/kast_tree.dir/tree/TreeBuilder.cpp.o"
  "CMakeFiles/kast_tree.dir/tree/TreeBuilder.cpp.o.d"
  "CMakeFiles/kast_tree.dir/tree/TreeCompressor.cpp.o"
  "CMakeFiles/kast_tree.dir/tree/TreeCompressor.cpp.o.d"
  "CMakeFiles/kast_tree.dir/tree/TreeDump.cpp.o"
  "CMakeFiles/kast_tree.dir/tree/TreeDump.cpp.o.d"
  "libkast_tree.a"
  "libkast_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
