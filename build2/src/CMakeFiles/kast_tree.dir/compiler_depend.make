# Empty compiler generated dependencies file for kast_tree.
# This may be replaced when dependencies are built.
