file(REMOVE_RECURSE
  "libkast_kernels.a"
)
