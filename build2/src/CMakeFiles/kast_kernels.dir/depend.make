# Empty dependencies file for kast_kernels.
# This may be replaced when dependencies are built.
