file(REMOVE_RECURSE
  "CMakeFiles/kast_kernels.dir/kernels/BagOfWordsKernel.cpp.o"
  "CMakeFiles/kast_kernels.dir/kernels/BagOfWordsKernel.cpp.o.d"
  "CMakeFiles/kast_kernels.dir/kernels/Combinators.cpp.o"
  "CMakeFiles/kast_kernels.dir/kernels/Combinators.cpp.o.d"
  "CMakeFiles/kast_kernels.dir/kernels/GapWeightedKernel.cpp.o"
  "CMakeFiles/kast_kernels.dir/kernels/GapWeightedKernel.cpp.o.d"
  "CMakeFiles/kast_kernels.dir/kernels/SpectrumKernels.cpp.o"
  "CMakeFiles/kast_kernels.dir/kernels/SpectrumKernels.cpp.o.d"
  "libkast_kernels.a"
  "libkast_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kast_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
